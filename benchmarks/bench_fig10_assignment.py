"""Fig. 10: cyclic processor assignment of loop L4' on a 2x2 grid.

Every processor must receive exactly 16 iterations (perfect balance),
exactly as the paper's figure shows.
"""

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.mapping import assign_blocks, shape_grid, workload_stats
from repro.transform import transform_nest
from repro.viz import fig10_l4_processor_assignment


def test_fig10_assignment(benchmark):
    art = benchmark(fig10_l4_processor_assignment)
    benchmark.extra_info.update(loads=str(art.data["loads"]))
    assert art.data["loads"] == {(0, 0): 16, (0, 1): 16, (1, 0): 16, (1, 1): 16}
    assert art.data["imbalance"] == 1.0


def test_l4_transform_pipeline(benchmark):
    """Partition + transform + assign, timed end to end."""
    nest = catalog.l4()

    def pipeline():
        plan = build_plan(nest, Strategy.NONDUPLICATE)
        t = transform_nest(nest, plan.psi)
        grid = shape_grid(4, t.k)
        return workload_stats(assign_blocks(t, grid))

    stats = benchmark(pipeline)
    assert stats.total == 64 and stats.imbalance == 1.0


def test_scaled_l4_balance(benchmark):
    """The balance claim holds as the space grows (n=8: 512 iterations)."""
    nest = catalog.l4(8)

    def pipeline():
        plan = build_plan(nest, Strategy.NONDUPLICATE)
        t = transform_nest(nest, plan.psi)
        return workload_stats(assign_blocks(t, shape_grid(4, t.k)))

    stats = benchmark(pipeline)
    benchmark.extra_info.update(imbalance=round(stats.imbalance, 3))
    assert stats.total == 512
    assert stats.imbalance < 1.05  # near-perfect balance via cyclic mapping
