"""Figs. 2-3: data blocks and iteration blocks of L1 (non-duplicate).

The whole Theorem-1 pipeline on Example 1: seven communication-free
blocks along span{(1,1)}, with the exact base points of Fig. 3.
"""

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.viz import fig02_l1_data_partition, fig03_l1_iteration_partition


def test_fig02_data_partition(benchmark):
    art = benchmark(fig02_l1_data_partition)
    benchmark.extra_info.update(num_blocks=art.data["num_blocks"])
    assert art.data["num_blocks"] == 7
    sizes = art.data["block_sizes"]
    assert sum(sizes["A"]) == 23 and sum(sizes["B"]) == 16


def test_fig03_iteration_partition(benchmark):
    art = benchmark(fig03_l1_iteration_partition)
    benchmark.extra_info.update(base_points=str(art.data["base_points"]))
    assert art.data["base_points"] == [
        (1, 1), (1, 2), (1, 3), (1, 4), (2, 1), (3, 1), (4, 1)]
    assert art.data["block_sizes"] == [4, 3, 2, 1, 3, 2, 1]


def test_l1_partition_pipeline(benchmark):
    """Time the raw analysis+partition pipeline (no rendering)."""
    plan = benchmark(build_plan, catalog.l1(), Strategy.NONDUPLICATE)
    assert plan.num_blocks == 7
