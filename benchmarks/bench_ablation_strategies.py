"""Ablation: which arrays to duplicate (the DESIGN.md design-choice study).

Sweeps the duplication choice on L5 {none, A, B, A+B} and reports the
parallelism / replication / simulated-time trade-off the paper discusses
("determining which kind of duplication of array is suitable ... can be
appropriately estimated").
"""

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.machine.cost import TRANSPUTER
from repro.perf import simulate_l5, simulate_l5_doubleprime, simulate_l5_prime

CHOICES = [
    ("none", None, Strategy.NONDUPLICATE),
    ("B", {"B"}, Strategy.DUPLICATE),
    ("A", {"A"}, Strategy.DUPLICATE),
    ("AB", {"A", "B"}, Strategy.DUPLICATE),
]


@pytest.mark.parametrize("label,dup,strategy", CHOICES,
                         ids=[c[0] for c in CHOICES])
def test_duplication_choice(benchmark, label, dup, strategy):
    nest = catalog.l5(4)

    def build():
        return build_plan(nest, strategy, duplicate_arrays=dup)

    plan = benchmark(build)
    repl = {n: round(plan.replication_factor(n), 2) for n in ("A", "B", "C")}
    benchmark.extra_info.update(choice=label, blocks=plan.num_blocks,
                                replication=str(repl))
    expected_blocks = {"none": 1, "B": 4, "A": 4, "AB": 16}[label]
    assert plan.num_blocks == expected_blocks


def test_tradeoff_ranking(benchmark):
    """More duplication -> more parallelism -> lower simulated time
    (at Transputer constants, M=256, p=16)."""

    def times():
        return (simulate_l5(256).total_time,
                simulate_l5_prime(256, 16).total_time,
                simulate_l5_doubleprime(256, 16).total_time)

    seq, dup_b, dup_ab = benchmark(times)
    benchmark.extra_info.update(sequential=seq, dup_B=dup_b, dup_AB=dup_ab)
    assert dup_ab < dup_b < seq


def test_replication_memory_cost(benchmark):
    """The flip side: duplication multiplies memory footprint."""
    nest = catalog.l5(4)

    def footprints():
        out = {}
        for label, dup, strategy in CHOICES:
            plan = build_plan(nest, strategy, duplicate_arrays=dup)
            out[label] = sum(
                len(db) for blocks in plan.data_blocks.values()
                for db in blocks)
        return out

    words = benchmark(footprints)
    benchmark.extra_info.update(**{f"words_{k}": v for k, v in words.items()})
    assert words["none"] <= words["B"] <= words["AB"]
    assert words["AB"] > 2 * words["none"]  # replication is not free
