"""Multi-loop programs: inter-phase reallocation cost (extension bench).

Quantifies the communication a per-loop communication-free program pays
*between* loops, for layouts that agree (zero movement), partially
agree, and fully disagree (transpose).
"""

import pytest

from repro.core import Strategy
from repro.lang import parse
from repro.machine.cost import TRANSPUTER
from repro.program import Program, plan_program, verify_program

STENCIL = """
  for i = 1 to 8 { for j = 1 to 8 {
    U[i, j] = U[i - 1, j - 1] + F[i, j];
  } }
"""


def make_program(consumer_lhs: str, consumer_rhs: str = "U[i, j] * 2"):
    p1 = parse(STENCIL, name="PRODUCE")
    p2 = parse(f"""
      for i = 1 to 8 {{ for j = 1 to 8 {{
        {consumer_lhs} = {consumer_rhs};
      }} }}
    """, name="CONSUME")
    return Program(nests=[p1, p2])


def test_identical_layout_zero_movement(benchmark):
    p1 = parse(STENCIL, name="A")
    p2 = parse(STENCIL.replace("F[i, j]", "G[i, j]"), name="B")
    prog = Program(nests=[p1, p2])
    pplan = benchmark(plan_program, prog, 4, TRANSPUTER,
                      Strategy.NONDUPLICATE)
    r = pplan.reallocations[0]
    benchmark.extra_info.update(moved=r.moved_words, locality=r.locality)
    assert r.moved_words == 0 and r.locality == 1.0


def test_partial_relayout(benchmark):
    prog = make_program("V[i, j]")
    pplan = benchmark(plan_program, prog, 4, TRANSPUTER)
    r = pplan.reallocations[0]
    benchmark.extra_info.update(moved=r.moved_words,
                                locality=round(r.locality, 2))
    assert r.moved_words > 0
    assert verify_program(pplan).ok


def test_transpose_worst_case(benchmark):
    """A transposed consumer forces most elements to move."""
    straight = make_program("V[i, j]")
    transposed = make_program("V[j, i]")

    def both():
        a = plan_program(straight, 4, TRANSPUTER, Strategy.NONDUPLICATE)
        b = plan_program(transposed, 4, TRANSPUTER, Strategy.NONDUPLICATE)
        return a, b

    a, b = benchmark(both)
    benchmark.extra_info.update(
        straight_moved=a.reallocations[0].moved_words,
        transposed_moved=b.reallocations[0].moved_words)
    # both verify; serialized time upper-bounds the overlapped one
    for pp in (a, b):
        assert verify_program(pp).ok
        r = pp.reallocations[0]
        assert r.parallel_time <= r.time
