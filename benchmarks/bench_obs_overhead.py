"""Observability overhead: disabled tracing must stay under 2%,
and so must the *always-on* flight recorder.

The tracer call sites (pipeline passes, plan-cache lookups, per-block
engine runs, machine phases) are *unconditional* -- no ``if tracing:``
guards -- so the disabled path must be essentially free.  This bench
enforces that with two measurements on a real workload (a parallel run
of a scaled matrix multiply, the same Theorem 2 workload
``bench_engine.py`` uses):

1. **Accounting bound** -- microbenchmark the per-call cost of a
   disabled ``tracer.span(...)`` (the null-recorder path: one
   ``enabled`` check, return the shared ``NULL_SPAN``), count the spans
   the workload would open (by running it once under an *enabled*
   tracer), and bound the disabled-tracing tax as
   ``spans * per_call / workload_time``.  Asserted ``< DISABLED_FLOOR``
   (2%).
2. **A/B wall time** -- best-of workload time under the default null
   tracer vs. under an enabled tracer, recorded in ``BENCH_obs.json``
   as the honest flip side (enabled tracing is allowed to cost more;
   only the disabled path has a floor).

The flight recorder (:mod:`repro.obs.flight`) has the opposite default:
it is **on** unless ``REPRO_FLIGHT=0``, so its *enabled* steady state is
what carries the budget.  Same two-sided treatment: an accounting bound
(ring entries per run x per-record cost / workload time, asserted
``< FLIGHT_FLOOR``) plus the A/B wall times, written to
``BENCH_obs.json`` under ``"flight"`` -- where the ``obs-overhead`` SLO
(:mod:`repro.obs.slo`) reads the committed figure back.

``python benchmarks/bench_obs_overhead.py`` regenerates
``BENCH_obs.json``.
"""

import json
from functools import lru_cache
from pathlib import Path
from time import perf_counter

from repro.core import Strategy, build_plan
from repro.lang.parser import parse
import importlib

from repro.obs import Tracer, current_tracer, use_tracer
from repro.obs.flight import FlightRecorder

# the package re-exports the flight() accessor under the same name as
# the module, so resolve the module itself for FLIGHT swapping
flight_mod = importlib.import_module("repro.obs.flight")
from repro.runtime import make_arrays
from repro.runtime.parallel import run_parallel

#: Maximum tolerated disabled-tracing overhead, as a fraction of
#: workload wall time (the issue's acceptance bound).
DISABLED_FLOOR = 0.02
#: Maximum tolerated *always-on* flight-recorder overhead.
FLIGHT_FLOOR = 0.02

MATMUL_N = 24
SPAN_CALLS = 200_000
RECORD_CALLS = 200_000


def matmul_nest(n: int = MATMUL_N):
    hi = n - 1
    return parse(
        f"""
        for i = 0 to {hi} {{
          for j = 0 to {hi} {{
            for k = 0 to {hi} {{
              C[i,j] = C[i,j] + A[i,k] * B[k,j];
            }} }} }}
        """,
        name=f"MATMUL{n}",
    )


def null_span_per_call_s(calls: int = SPAN_CALLS) -> float:
    """Per-call seconds of a disabled span open/close, best of 3."""
    tracer = Tracer(enabled=False)
    best = float("inf")
    for _ in range(3):
        t0 = perf_counter()
        for _ in range(calls):
            with tracer.span("bench.noop", category="bench", k=1) as sp:
                sp.set(v=2)
        best = min(best, perf_counter() - t0)
    return best / calls


def flight_record_per_call_s(calls: int = RECORD_CALLS) -> float:
    """Per-call seconds of one enabled ring append, best of 3."""
    fr = FlightRecorder(capacity=4096, enabled=True)
    best = float("inf")
    for _ in range(3):
        t0 = perf_counter()
        for _ in range(calls):
            fr.record("event", "bench.noop", k=1)
        best = min(best, perf_counter() - t0)
    return best / calls


def workload(plan, initial):
    run_parallel(plan, initial=initial, backend="interp")


def _best_workload_s(plan, initial, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        workload(plan, initial)
        best = min(best, perf_counter() - t0)
    return best


@lru_cache(maxsize=None)
def measure():
    plan = build_plan(matmul_nest(), strategy=Strategy.DUPLICATE)
    initial = make_arrays(plan.model)

    assert not current_tracer().enabled, \
        "bench must run under the default null tracer"
    disabled_s = _best_workload_s(plan, initial)

    enabled = Tracer(enabled=True)
    with use_tracer(enabled):
        enabled_s = _best_workload_s(plan, initial)
        spans_per_run = len(enabled.find()) // 3 + 1

    per_call = null_span_per_call_s()
    accounted = spans_per_run * per_call / disabled_s

    # -- flight recorder: the always-on steady state ----------------------
    saved = flight_mod.FLIGHT
    try:
        counting = FlightRecorder(capacity=1 << 20, enabled=True)
        flight_mod.FLIGHT = counting
        workload(plan, initial)   # warm + count ring entries per run
        records_per_run = len(counting)

        flight_mod.FLIGHT = FlightRecorder(enabled=True)
        flight_on_s = _best_workload_s(plan, initial)
        flight_mod.FLIGHT = FlightRecorder(enabled=False)
        flight_off_s = _best_workload_s(plan, initial)
    finally:
        flight_mod.FLIGHT = saved
    record_call = flight_record_per_call_s()
    flight_accounted = records_per_run * record_call / flight_off_s

    return {
        "workload": f"run_parallel(MATMUL{MATMUL_N}, duplicate, interp)",
        "disabled_ms": round(disabled_s * 1e3, 3),
        "enabled_ms": round(enabled_s * 1e3, 3),
        "spans_per_run": spans_per_run,
        "null_span_ns_per_call": round(per_call * 1e9, 1),
        "disabled_overhead_fraction": round(accounted, 6),
        "floor": DISABLED_FLOOR,
        "flight": {
            "on_ms": round(flight_on_s * 1e3, 3),
            "off_ms": round(flight_off_s * 1e3, 3),
            "records_per_run": records_per_run,
            "record_ns_per_call": round(record_call * 1e9, 1),
            "overhead_fraction": round(flight_accounted, 6),
            "floor": FLIGHT_FLOOR,
        },
    }


def test_disabled_overhead_under_floor(benchmark):
    row = measure()
    benchmark(lambda: null_span_per_call_s(10_000))
    benchmark.extra_info.update(**row)
    assert row["disabled_overhead_fraction"] < DISABLED_FLOOR, (
        f"disabled tracing costs {row['disabled_overhead_fraction']:.2%} "
        f"of the workload (floor {DISABLED_FLOOR:.0%}): "
        f"{row['spans_per_run']} spans x "
        f"{row['null_span_ns_per_call']}ns over {row['disabled_ms']}ms")


def test_flight_overhead_under_floor(benchmark):
    row = measure()
    fl = row["flight"]
    benchmark(lambda: flight_record_per_call_s(10_000))
    benchmark.extra_info.update(**fl)
    assert fl["overhead_fraction"] < FLIGHT_FLOOR, (
        f"always-on flight recording costs {fl['overhead_fraction']:.2%} "
        f"of the workload (floor {FLIGHT_FLOOR:.0%}): "
        f"{fl['records_per_run']} records x "
        f"{fl['record_ns_per_call']}ns over {fl['off_ms']}ms")


def test_flight_recording_stays_coarse():
    """The recorder must see pass/engine-grained entries, not per-block
    or per-iteration work -- coarseness is what keeps it always-on."""
    plan = build_plan(matmul_nest(), strategy=Strategy.DUPLICATE)
    initial = make_arrays(plan.model)
    saved = flight_mod.FLIGHT
    try:
        counting = FlightRecorder(capacity=1 << 20, enabled=True)
        flight_mod.FLIGHT = counting
        workload(plan, initial)
        nblocks = len(plan.blocks)
        iterations = MATMUL_N ** 3
        assert len(counting) > 0, "no flight entries recorded at all"
        assert len(counting) < max(64, nblocks), (
            f"{len(counting)} flight entries for one run of {nblocks} "
            f"blocks / {iterations} iterations -- recording is too fine "
            f"to stay always-on")
    finally:
        flight_mod.FLIGHT = saved


def test_null_span_is_shared_singleton():
    """The fast path allocates nothing: every disabled span is NULL_SPAN."""
    from repro.obs import NULL_SPAN

    tracer = Tracer(enabled=False)
    assert tracer.span("a", category="b", x=1) is NULL_SPAN
    assert tracer.span("c") is NULL_SPAN


def main():
    out = measure()
    path = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(json.dumps(out, indent=2, sort_keys=True))
    ok = out["disabled_overhead_fraction"] < DISABLED_FLOOR
    print(f"floor: {'PASS' if ok else 'FAIL'} "
          f"({out['disabled_overhead_fraction']:.3%} < {DISABLED_FLOOR:.0%})")
    fok = out["flight"]["overhead_fraction"] < FLIGHT_FLOOR
    print(f"flight floor: {'PASS' if fok else 'FAIL'} "
          f"({out['flight']['overhead_fraction']:.3%} < {FLIGHT_FLOOR:.0%})")
    return 0 if ok and fok else 1


if __name__ == "__main__":
    raise SystemExit(main())
