"""Ablation: redundant-computation elimination on/off.

Section III.C's trade-off: "the approach of removing redundant
computations ... is complex and more time-consuming.  The trade-off
depends on whether users need to obtain large amounts of parallelism."
We measure both sides: the analysis cost and the parallelism gained,
plus the executed-work reduction.
"""

import pytest

from repro.analysis import analyze_redundancy, extract_references
from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.runtime import verify_plan


@pytest.mark.parametrize("n", (4, 6, 8))
def test_analysis_cost_scaling(benchmark, n):
    """The price side: exact redundancy analysis over the trace."""
    model = extract_references(catalog.l3(n))
    red = benchmark(analyze_redundancy, model)
    benchmark.extra_info.update(n=n, live=len(red.live),
                                total=2 * model.space.size())
    assert len(red.n_set(0)) == n  # only the last column of S1 survives


@pytest.mark.parametrize("elim", (False, True), ids=["off", "on"])
def test_parallelism_gained(benchmark, elim):
    def build():
        return build_plan(catalog.l3(), Strategy.DUPLICATE,
                          eliminate_redundant=elim)

    plan = benchmark(build)
    benchmark.extra_info.update(eliminate=elim, blocks=plan.num_blocks)
    assert plan.num_blocks == (4 if elim else 1)


def test_work_reduction(benchmark):
    """Eliminated computations are real savings: 12 of 32 skipped on L3."""
    plan = build_plan(catalog.l3(), Strategy.DUPLICATE, eliminate_redundant=True)
    report = benchmark(verify_plan, plan)
    benchmark.extra_info.update(skipped=report.skipped_computations,
                                executed=report.executed_iterations)
    assert report.ok
    assert report.skipped_computations == 12


def test_no_gain_without_redundancy(benchmark):
    """On a redundancy-free loop the minimal spaces change nothing."""
    nest = catalog.l1()

    def both():
        a = build_plan(nest, Strategy.DUPLICATE)
        b = build_plan(nest, Strategy.DUPLICATE, eliminate_redundant=True)
        return a.num_blocks, b.num_blocks

    plain, minimal = benchmark(both)
    assert plain == minimal == 7
