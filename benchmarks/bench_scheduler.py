"""Dynamic scheduler vs static chunking on skewed block sizes.

The static split hands each worker one contiguous chunk of blocks, so
a cluster of slow blocks lands on a single worker and the whole run
waits for that straggler.  The dynamic scheduler leases small batches
from a shared queue: the slow blocks spread across workers and the
fast ones backfill.  This bench builds exactly that adversarial case
-- the first quarter of the blocks is made slow via the chaos layer's
``slow_blocks`` knob (a deterministic per-block delay, no randomness)
-- and asserts the dynamic mode beats static with margin.

Run directly (``python benchmarks/bench_scheduler.py``) to record
``BENCH_scheduler.json``; the pytest entry points assert the win.
"""

import json
import os
from contextlib import contextmanager
from functools import lru_cache
from pathlib import Path
from time import perf_counter

from repro.core import Strategy, build_plan
from repro.lang.parser import parse
from repro.machine.memory import LocalMemory
from repro.runtime import make_arrays
from repro.runtime.engine import get_engine
from repro.runtime.parallel import ParallelResult
from repro.runtime.scheduler import FaultPlan, use_fault_plan

MATMUL_N = 8            # 64 blocks under the duplicate-data strategy
WORKERS = 4
SLOW_MS = 60.0          # per slow block; the skew, not real compute
REPEATS = 2
MARGIN = 1.25           # dynamic must be at least this much faster


def matmul_nest(n: int = MATMUL_N):
    hi = n - 1
    return parse(
        f"""
        for i = 0 to {hi} {{
          for j = 0 to {hi} {{
            for k = 0 to {hi} {{
              C[i,j] = C[i,j] + A[i,k] * B[k,j];
            }} }} }}
        """,
        name=f"MATMUL{n}",
    )


def _alloc(plan, initial):
    memories = {}
    for b in plan.blocks:
        mem = LocalMemory(pid=b.index, strict=True)
        for name, dblocks in plan.data_blocks.items():
            src = initial[name]
            mem.allocate(name, dblocks[b.index].elements,
                         init=lambda c, s=src: s[c])
        memories[b.index] = mem
    return memories


@contextmanager
def _sched_env(mode):
    saved = {k: os.environ.get(k)
             for k in ("REPRO_SCHED", "REPRO_MP_WORKERS")}
    os.environ["REPRO_SCHED"] = mode
    os.environ["REPRO_MP_WORKERS"] = str(WORKERS)
    try:
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _skew(plan):
    """The adversarial case: the first quarter of the blocks is slow --
    exactly the prefix the static split assigns to worker 0."""
    slow = tuple(range(len(plan.blocks) // 4))
    return FaultPlan(slow_blocks=slow, slow_ms=SLOW_MS)


def run_once(mode, plan, initial, faults):
    engine = get_engine("multiprocess")
    memories = _alloc(plan, initial)
    result = ParallelResult(
        plan=plan, memories=memories,
        block_to_pid={b.index: b.index for b in plan.blocks})
    with _sched_env(mode), use_fault_plan(faults):
        t0 = perf_counter()
        engine.run_blocks(plan, memories, result, initial, {}, strict=True)
        elapsed = perf_counter() - t0
    sres = result.scheduler
    assert sres is not None and sres.ok, f"{mode} run did not complete"
    assert sres.mode == mode
    return elapsed


@lru_cache(maxsize=None)
def _measure():
    plan = build_plan(matmul_nest(), strategy=Strategy.DUPLICATE)
    initial = make_arrays(plan.model)
    faults = _skew(plan)
    times = {
        mode: min(run_once(mode, plan, initial, faults)
                  for _ in range(REPEATS))
        for mode in ("static", "dynamic")
    }
    from repro.obs.history import perf_env

    return {
        "blocks": len(plan.blocks),
        "workers": WORKERS,
        "env": perf_env(workers=WORKERS),
        "slow_blocks": len(faults.slow_blocks),
        "slow_ms": SLOW_MS,
        "ms": {m: round(t * 1e3, 1) for m, t in times.items()},
        "speedup": round(times["static"] / times["dynamic"], 2),
    }


def test_dynamic_beats_static_on_skewed_blocks(benchmark):
    row = _measure()
    benchmark(lambda: row)  # numbers ride along on the report
    benchmark.extra_info.update(**{k: v for k, v in row.items()
                                   if k != "ms"}, **row["ms"])
    assert row["speedup"] >= MARGIN, (
        f"dynamic only {row['speedup']}x vs static on skewed blocks "
        f"(need >= {MARGIN}x): {row['ms']}")


def main():
    row = _measure()
    out = {
        "case": f"MATMUL{MATMUL_N}-dup skewed",
        "margin": MARGIN,
        "note": ("multiprocess engine, first quarter of blocks delayed "
                 f"{SLOW_MS}ms each via FaultPlan.slow_blocks; static = "
                 "one contiguous chunk per worker"),
        **row,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(json.dumps(out, indent=2, sort_keys=True))
    ok = row["speedup"] >= MARGIN
    print(f"dynamic vs static: {'PASS' if ok else 'FAIL'} "
          f"({row['speedup']}x, need {MARGIN}x)")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
