"""Fig. 1: data spaces and data-referenced vectors of L1's arrays."""

from repro.viz import fig01_l1_dataspaces


def test_fig01(benchmark):
    art = benchmark(fig01_l1_dataspaces)
    benchmark.extra_info.update(drvs=str(art.data["drvs"]))
    assert art.data["drvs"] == {"A": [(2, 1)], "B": [], "C": [(1, 1)]}
    assert "array A" in art.text
