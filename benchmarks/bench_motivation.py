"""Motivation experiment: communication-free vs naive chunking.

Quantifies the paper's introduction -- "a large amount of time spent in
data communication and synchronization may seriously undermine the
benefits of parallelism" -- by counting the messages a naive contiguous
chunking would pay on each workload, against the zero of the
communication-free partition.
"""

import pytest

from repro.baseline import compare_with_commfree, naive_partition
from repro.core import Strategy
from repro.lang import catalog

WORKLOADS = [
    ("L1", lambda: catalog.l1(8), Strategy.NONDUPLICATE),
    ("L4", lambda: catalog.l4(6), Strategy.NONDUPLICATE),
    ("STENCIL2D", lambda: catalog.stencil2d(8), Strategy.NONDUPLICATE),
    ("MATVEC", lambda: catalog.matvec(8), Strategy.DUPLICATE),
]


@pytest.mark.parametrize("name,fn,strategy", WORKLOADS,
                         ids=[w[0] for w in WORKLOADS])
def test_commfree_eliminates_messages(benchmark, name, fn, strategy):
    nest = fn()
    cmp = benchmark(compare_with_commfree, nest, 4, strategy=strategy)
    benchmark.extra_info.update(
        loop=name,
        naive_remote=cmp.naive.remote_accesses,
        naive_comm_s=round(cmp.naive_comm_time, 6),
        comm_to_compute=round(cmp.comm_to_compute_ratio, 2),
        commfree_blocks=cmp.commfree_blocks,
    )
    assert cmp.commfree_remote == 0
    assert cmp.naive.remote_accesses > 0


def test_overhead_grows_with_p(benchmark):
    """More processors -> more chunk boundaries -> more messages."""
    nest = catalog.l1(12)

    def sweep():
        return {p: naive_partition(nest, p).remote_accesses
                for p in (2, 4, 8)}

    remote = benchmark(sweep)
    benchmark.extra_info.update(**{f"p{p}": v for p, v in remote.items()})
    assert remote[2] <= remote[4] <= remote[8]
    assert remote[8] > remote[2]
