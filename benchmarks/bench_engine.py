"""Execution-engine speedups (engineering bench, not a paper table).

Times the five runtime backends -- ``interp`` (golden model),
``compiled`` (statement-specialized kernels), ``codegen`` (per-plan
specialized source, checks elided under the communication-audit
certificate), ``vectorized`` (numpy lock-step), ``multiprocess``
(block fan-out) -- on catalog nests and on a scaled matrix-multiply
under the duplicate-data strategy (the paper's Theorem 2 workload: one
(i, j) block per processor, A row / B column replicated).  Only engine
execution is timed; allocation is redone fresh for every repetition so
each run sees cold memories.  Each case also records the *cold* first
run and the setup delta (cold minus steady-state best) per backend, so
one-time costs -- kernel emission/compilation, plan geometry, the
certificate -- are visible separately instead of polluting (or hiding
in) the best-of number; a warm on-disk codegen cache shows up directly
as a collapsed setup column.

Hard floors on the matmul case (asserted here, recorded in
``BENCH_engine.json`` by ``python benchmarks/bench_engine.py``):

- ``compiled``     >= 5x the interpreter
- ``codegen``      >= 25x the interpreter AND >= 1.5x the compiled tier
- ``vectorized``   >= 20x the interpreter
- ``multiprocess`` >= 2x the interpreter (shared-memory store path,
  warm worker pool; skipped when ``REPRO_NO_SHM`` / no numpy forces
  the by-value fallback, which is dominated by pickling)

Multiprocess is measured the way a :class:`repro.api.Session` runs it:
leases are descriptors into a shared-memory block store (the plan is
pickled once per run, not once per lease) against a persistent warm
pool, and best-of discards the cold first repetition.

The tiny catalog nests are reported too, as the honest flip side:
at ~16 iterations the fixed per-run setup dominates and the fancy
tiers buy little or nothing -- the speedups are a large-block story.
"""

import json
from functools import lru_cache
from pathlib import Path
from time import perf_counter

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.lang.parser import parse
from repro.machine.memory import LocalMemory
from repro.runtime import make_arrays
from repro.runtime import numpy_compat as npc
from repro.obs.history import perf_env
from repro.runtime.blockstore import shm_available
from repro.runtime.engine import get_engine
from repro.runtime.engine.multiproc import worker_count
from repro.runtime.parallel import ParallelResult
from repro.runtime.pool import WorkerPool, use_pool

MATMUL_N = 40

COMPILED_FLOOR = 5.0
VECTORIZED_FLOOR = 20.0
MULTIPROCESS_FLOOR = 2.0
CODEGEN_FLOOR = 25.0
CODEGEN_OVER_COMPILED = 1.5

BACKENDS = ("interp", "compiled", "codegen", "vectorized", "multiprocess")


def matmul_nest(n: int = MATMUL_N):
    """C = C + A*B as a 3-deep nest (not in the paper's catalog)."""
    hi = n - 1
    return parse(
        f"""
        for i = 0 to {hi} {{
          for j = 0 to {hi} {{
            for k = 0 to {hi} {{
              C[i,j] = C[i,j] + A[i,k] * B[k,j];
            }} }} }}
        """,
        name=f"MATMUL{n}",
    )


def _alloc(plan, initial):
    memories = {}
    for b in plan.blocks:
        mem = LocalMemory(pid=b.index, strict=True)
        for name, dblocks in plan.data_blocks.items():
            elems = dblocks[b.index].elements
            src = initial[name]
            mem.allocate(name, elems, init=lambda c, s=src: s[c])
        memories[b.index] = mem
    return memories


def run_engine_once(backend, plan, initial, scalars=None):
    """One fresh-allocation run; returns engine-only seconds."""
    engine = get_engine(backend)
    memories = _alloc(plan, initial)
    result = ParallelResult(
        plan=plan, memories=memories,
        block_to_pid={b.index: b.index for b in plan.blocks})
    t0 = perf_counter()
    engine.run_blocks(plan, memories, result, initial, scalars or {},
                      strict=True)
    return perf_counter() - t0


def _runs(backend, plan, initial, repeats, scalars=None):
    """All run times in order (the first one is the cold run)."""
    return [run_engine_once(backend, plan, initial, scalars)
            for _ in range(repeats)]


CASES = [
    # (label, nest factory, plan kwargs, scalars, repeats per backend)
    ("L2-dup", catalog.l2, dict(strategy=Strategy.DUPLICATE), None, 30),
    ("L3-min-nondup", catalog.l3, dict(eliminate_redundant=True), None, 30),
    (f"MATMUL{MATMUL_N}-dup", matmul_nest, dict(strategy=Strategy.DUPLICATE),
     None, 3),
]


@lru_cache(maxsize=None)
def _measure_case(label):
    """Best-of times (ms) for every backend on one case, shared across
    the tests below so the slow interpreter baseline runs only once."""
    spec = next(c for c in CASES if c[0] == label)
    _, factory, kwargs, scalars, repeats = spec
    plan = build_plan(factory(), **kwargs)
    initial = make_arrays(plan.model)
    runs = {}
    pool = WorkerPool()
    try:
        with use_pool(pool):
            for backend in BACKENDS:
                if backend == "vectorized" and not npc.have_numpy():
                    continue
                reps = max(2, repeats if backend != "interp"
                           else min(repeats, 2))
                runs[backend] = _runs(backend, plan, initial, reps,
                                      scalars)
    finally:
        pool.shutdown()
    times = {b: min(r) for b, r in runs.items()}
    return {
        "blocks": len(plan.blocks),
        "iterations": sum(len(b.iterations) for b in plan.blocks),
        "env": perf_env(workers=worker_count(len(plan.blocks))),
        "ms": {b: round(t * 1e3, 3) for b, t in times.items()},
        "cold_ms": {b: round(r[0] * 1e3, 3) for b, r in runs.items()},
        "setup_ms": {b: round(max(0.0, r[0] - min(r)) * 1e3, 3)
                     for b, r in runs.items()},
        "speedup": {b: round(times["interp"] / t, 1)
                    for b, t in times.items() if b != "interp"},
    }


def test_compiled_floor_on_matmul(benchmark):
    label = f"MATMUL{MATMUL_N}-dup"
    plan = build_plan(matmul_nest(), strategy=Strategy.DUPLICATE)
    initial = make_arrays(plan.model)
    benchmark(lambda: run_engine_once("compiled", plan, initial))
    row = _measure_case(label)
    benchmark.extra_info.update(case=label, floor=COMPILED_FLOOR, **row["ms"])
    speedup = row["speedup"]["compiled"]
    assert speedup >= COMPILED_FLOOR, \
        f"compiled only {speedup}x vs interp (floor {COMPILED_FLOOR}x)"


@pytest.mark.skipif(not npc.have_numpy(), reason="numpy not available")
def test_vectorized_floor_on_matmul(benchmark):
    label = f"MATMUL{MATMUL_N}-dup"
    plan = build_plan(matmul_nest(), strategy=Strategy.DUPLICATE)
    initial = make_arrays(plan.model)
    benchmark(lambda: run_engine_once("vectorized", plan, initial))
    row = _measure_case(label)
    benchmark.extra_info.update(case=label, floor=VECTORIZED_FLOOR,
                                **row["ms"])
    speedup = row["speedup"]["vectorized"]
    assert speedup >= VECTORIZED_FLOOR, \
        f"vectorized only {speedup}x vs interp (floor {VECTORIZED_FLOOR}x)"


def test_codegen_floor_on_matmul(benchmark):
    """The specialization commitment: per-plan emitted source with
    certificate-elided checks beats the interpreter 25x and the
    compiled tier it specializes past by 1.5x."""
    label = f"MATMUL{MATMUL_N}-dup"
    row = _measure_case(label)
    benchmark(lambda: row)
    over_compiled = round(row["ms"]["compiled"] / row["ms"]["codegen"], 2)
    benchmark.extra_info.update(case=label, **row["ms"],
                                speedup=row["speedup"]["codegen"],
                                over_compiled=over_compiled)
    speedup = row["speedup"]["codegen"]
    assert speedup >= CODEGEN_FLOOR, \
        f"codegen only {speedup}x vs interp (floor {CODEGEN_FLOOR}x)"
    assert over_compiled >= CODEGEN_OVER_COMPILED, \
        f"codegen only {over_compiled}x vs compiled " \
        f"(floor {CODEGEN_OVER_COMPILED}x)"


def test_multiprocess_floor_on_matmul(benchmark):
    """The zero-copy commitment: descriptor leases against the
    shared-memory store beat the interpreter by 2x even on one core
    (the by-value path used to *lose* to it -- each lease shipped a
    multi-MB plan pickle).  Without the store the test only asserts
    completion, honestly recording the fallback number."""
    label = f"MATMUL{MATMUL_N}-dup"
    row = _measure_case(label)
    benchmark(lambda: row)  # times the (cached) lookup; numbers ride along
    benchmark.extra_info.update(case=label, **row["ms"],
                                speedup=row["speedup"]["multiprocess"])
    speedup = row["speedup"]["multiprocess"]
    assert speedup > 0
    if shm_available():
        assert speedup >= MULTIPROCESS_FLOOR, \
            f"multiprocess only {speedup}x vs interp " \
            f"(floor {MULTIPROCESS_FLOOR}x)"


def measure_all():
    return {label: _measure_case(label) for label, *_ in CASES}


def main():
    out = {
        "matmul_n": MATMUL_N,
        "floors": {"compiled": COMPILED_FLOOR,
                   "vectorized": VECTORIZED_FLOOR,
                   "multiprocess": MULTIPROCESS_FLOOR,
                   "codegen": CODEGEN_FLOOR,
                   "codegen_over_compiled": CODEGEN_OVER_COMPILED},
        "note": ("engine-only best-of times, fresh memories per run; "
                 "interp is the golden model baseline; cold_ms is each "
                 "backend's first run, setup_ms the one-time cost it "
                 "paid over the steady-state best"),
        "cases": measure_all(),
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(json.dumps(out, indent=2, sort_keys=True))
    row = out["cases"][f"MATMUL{MATMUL_N}-dup"]
    mm = row["speedup"]
    over_compiled = round(row["ms"]["compiled"] / row["ms"]["codegen"], 2)
    ok = (mm.get("compiled", 0) >= COMPILED_FLOOR
          and mm.get("vectorized", VECTORIZED_FLOOR) >= VECTORIZED_FLOOR
          and mm.get("codegen", 0) >= CODEGEN_FLOOR
          and over_compiled >= CODEGEN_OVER_COMPILED
          and (not shm_available()
               or mm.get("multiprocess", 0) >= MULTIPROCESS_FLOOR))
    print(f"floors: {'PASS' if ok else 'FAIL'} "
          f"({mm}, codegen/compiled {over_compiled}x)")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
