"""Serving layer under bursty traffic: single-flight + latency floors.

Two claims, benched against the in-process :class:`AsyncServer` (no
socket -- the wire adds framing, not work):

1. **Single-flight**: a burst of identical requests costs exactly one
   pipeline analysis.  With a cold plan cache, 12 concurrent identical
   verify requests must produce exactly 1 ``cache.miss`` and 11
   coalesced responses.
2. **Warm throughput**: sustained bursty mixed traffic (plan / verify
   over several catalog nests, fired in bursts to exercise admission
   and coalescing together) clears committed floors for requests/sec
   and p95 latency, read from the ``serve.latency_ms`` histogram's
   exact nearest-rank quantiles.

Run directly (``python benchmarks/bench_serve.py``) to record
``BENCH_serve.json`` (committed floors live there; ``repro perf
--check`` gates against them via ``repro.obs.slo.serve_slos``); the
pytest entry points assert both claims.
"""

import asyncio
import json
from functools import lru_cache
from pathlib import Path
from time import perf_counter

from repro.serve import AsyncServer
from repro.serve.protocol import Request

#: Identical requests in the single-flight burst (the acceptance
#: threshold is >= 8 concurrent requests -> exactly one analysis).
IDENTICAL_BURST = 12
#: Bursts x burst size of the mixed warm-traffic phase.
BURSTS = 6
BURST_SIZE = 10
#: Committed floors (also written into BENCH_serve.json).
FLOOR_PLANS_PER_SEC = 5.0
FLOOR_P95_MS = 2000.0


def _mixed_frames(burst: int) -> list[dict]:
    """One burst of mixed traffic: repeat plans + verifies over a few
    nests, so coalescing, warm sessions and admission all engage."""
    cases = [("plan", "L1", "duplicate"), ("verify", "L2", "duplicate"),
             ("plan", "L3", "duplicate"), ("verify", "L1", "duplicate"),
             ("plan", "L2", "duplicate")]
    frames = []
    for i in range(BURST_SIZE):
        op, nest, strategy = cases[i % len(cases)]
        frames.append(Request(op=op, nest=nest, strategy=strategy,
                              id=f"b{burst}-{i}").to_dict())
    return frames


async def _single_flight_phase(srv: AsyncServer) -> dict:
    frames = [Request(op="verify", nest="L2", strategy="duplicate",
                      id=f"sf{i}").to_dict()
              for i in range(IDENTICAL_BURST)]
    responses = await asyncio.gather(*[srv.handle(f) for f in frames])
    return {
        "requests": len(responses),
        "ok": sum(1 for r in responses if r["ok"]),
        "coalesced": sum(1 for r in responses if r.get("coalesced")),
        "plan_cache_misses": int(srv.registry.value("cache.miss")),
    }


async def _throughput_phase(srv: AsyncServer) -> dict:
    t0 = perf_counter()
    total = ok = rejected = 0
    for burst in range(BURSTS):
        responses = await asyncio.gather(
            *[srv.handle(f) for f in _mixed_frames(burst)])
        total += len(responses)
        ok += sum(1 for r in responses if r["ok"])
        rejected += sum(1 for r in responses
                        if not r["ok"]
                        and r.get("error", {}).get("kind") == "overloaded")
    wall = perf_counter() - t0
    lat = srv.registry.get("serve.latency_ms")
    return {
        "requests": total,
        "ok": ok,
        "rejected": rejected,
        "wall_ms": round(wall * 1e3, 1),
        "plans_per_sec": round(ok / wall, 2),
        "p50_ms": round(lat.quantile(0.50), 3),
        "p95_ms": round(lat.quantile(0.95), 3),
        "p99_ms": round(lat.quantile(0.99), 3),
    }


@lru_cache(maxsize=None)
def _measure() -> dict:
    from repro.obs.history import perf_env
    from repro.pipeline import PLAN_CACHE

    async def run_phases(srv):
        single = await _single_flight_phase(srv)
        through = await _throughput_phase(srv)
        return single, through

    PLAN_CACHE.clear()  # the single-flight phase needs a cold cache
    with AsyncServer(max_concurrency=4, queue_limit=64) as srv:
        single, through = asyncio.run(run_phases(srv))
        coalesced_total = int(srv.registry.value("serve.coalesced"))
    return {
        "env": perf_env(),
        "single_flight": single,
        "throughput": through,
        "coalesced_total": coalesced_total,
    }


def test_single_flight_coalesces_identical_burst(benchmark):
    row = _measure()
    benchmark(lambda: row)
    sf = row["single_flight"]
    benchmark.extra_info.update(sf)
    assert sf["requests"] == IDENTICAL_BURST >= 8
    assert sf["ok"] == IDENTICAL_BURST
    assert sf["plan_cache_misses"] == 1, (
        f"{sf['plan_cache_misses']} pipeline analyses for "
        f"{IDENTICAL_BURST} identical requests (want exactly 1)")
    assert sf["coalesced"] == IDENTICAL_BURST - 1


def test_warm_throughput_clears_floors(benchmark):
    row = _measure()
    benchmark(lambda: row)
    th = row["throughput"]
    benchmark.extra_info.update(th)
    assert th["ok"] == th["requests"], "warm traffic must not error"
    assert th["plans_per_sec"] >= FLOOR_PLANS_PER_SEC, (
        f"{th['plans_per_sec']} req/s under the committed "
        f"{FLOOR_PLANS_PER_SEC} floor")
    assert th["p95_ms"] <= FLOOR_P95_MS, (
        f"p95 {th['p95_ms']}ms over the committed {FLOOR_P95_MS}ms floor")


def main():
    row = _measure()
    out = {
        "case": "serve mixed-burst",
        "note": (f"in-process AsyncServer, {IDENTICAL_BURST} identical "
                 f"verifies (single flight) then {BURSTS}x{BURST_SIZE} "
                 "mixed plan/verify bursts over L1-L3"),
        "floors": {"plans_per_sec": FLOOR_PLANS_PER_SEC,
                   "p95_ms": FLOOR_P95_MS},
        **row,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(json.dumps(out, indent=2, sort_keys=True))
    sf, th = row["single_flight"], row["throughput"]
    ok = (sf["plan_cache_misses"] == 1
          and th["plans_per_sec"] >= FLOOR_PLANS_PER_SEC
          and th["p95_ms"] <= FLOOR_P95_MS)
    print(f"single-flight: {sf['coalesced']}/{sf['requests'] - 1} "
          f"coalesced, {sf['plan_cache_misses']} analysis; "
          f"throughput {th['plans_per_sec']} req/s, p95 {th['p95_ms']}ms: "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
