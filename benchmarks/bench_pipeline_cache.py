"""Plan-cache effectiveness and pipeline overhead (engineering bench).

Not a paper table: measures the compiler infrastructure added by the
pass-pipeline refactor.  Three questions, each with a hard floor and a
reported number in ``extra_info``:

- how much faster is a warm (content-addressed cache hit) compile than a
  cold one? (floor: 5x; typically two orders of magnitude)
- what hit rate does a realistic re-compilation workload reach?
- how much does the instrumented pass manager cost over calling the
  Section II-III primitives directly? (target: < 5%, asserted < 25% to
  stay robust on noisy CI machines)
"""

from time import perf_counter

from repro.analysis import analyze_redundancy, extract_references
from repro.core import Strategy, partitioning_space
from repro.core.partition import (
    all_data_partitions,
    block_index_map,
    iteration_partition,
)
from repro.core.plan import PartitionPlan
from repro.lang import catalog
from repro.pipeline import PipelineConfig, PlanCache, run_pipeline


def _best_of(fn, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def _hand_sequenced(nest, strategy=Strategy.NONDUPLICATE, eliminate=False):
    """The primitives called directly: no passes, no instrumentation."""
    model = extract_references(nest)
    redundancy = analyze_redundancy(model) if eliminate else None
    breakdown = partitioning_space(model, strategy=strategy,
                                   eliminate_redundant=eliminate,
                                   redundancy=redundancy)
    blocks = iteration_partition(model.space, breakdown.psi)
    live = redundancy.live if redundancy is not None else None
    data_blocks = all_data_partitions(model, blocks, live=live)
    return PartitionPlan(nest=nest, model=model, breakdown=breakdown,
                         blocks=blocks, data_blocks=data_blocks,
                         _block_of=block_index_map(blocks))


def test_cold_vs_warm_compile(benchmark):
    """A cache hit must be at least 5x faster than a cold compile."""
    cache = PlanCache(maxsize=16)
    config = PipelineConfig()

    cold = _best_of(
        lambda: run_pipeline(catalog.l4(6), PipelineConfig(use_cache=False)))
    run_pipeline(catalog.l4(6), config, cache=cache)       # populate
    warm = benchmark(
        lambda: run_pipeline(catalog.l4(6), config, cache=cache).plan)

    assert cache.hits >= 1
    warm_t = _best_of(
        lambda: run_pipeline(catalog.l4(6), config, cache=cache))
    benchmark.extra_info.update(
        cold_ms=round(cold * 1e3, 3), warm_ms=round(warm_t * 1e3, 3),
        speedup=round(cold / warm_t, 1))
    assert cold >= 5 * warm_t, \
        f"warm compile only {cold / warm_t:.1f}x faster than cold"
    assert warm.num_blocks == 91     # L4's forall point count at n=6


def test_hit_rate_on_recompilation_workload(benchmark):
    """Re-planning the whole catalog: every loop after the first sweep
    is content-identical, so the steady-state hit rate approaches 1."""
    cache = PlanCache(maxsize=32)
    config = PipelineConfig()

    def sweep():
        for factory in (catalog.l1, catalog.l2, catalog.l3,
                        catalog.l4, catalog.l5):
            run_pipeline(factory(), config, cache=cache)

    sweep()                                   # cold: 5 misses
    benchmark(sweep)                          # warm rounds: all hits
    assert cache.misses == 5
    assert cache.hits >= 5
    benchmark.extra_info.update(hit_rate=round(cache.hit_rate, 3),
                                hits=cache.hits, misses=cache.misses)
    # one warm sweep (benchmark-disabled runs) gives exactly 0.5; full
    # benchmark rounds push it toward 1.0
    assert cache.hit_rate >= 0.5


def test_pipeline_overhead_vs_primitives(benchmark):
    """Pass manager + instrumentation overhead over direct primitive
    calls; the engineering target is < 5% on a warm interpreter."""
    nest_of = lambda: catalog.l4(6)           # noqa: E731 - tiny factory
    direct = _best_of(lambda: _hand_sequenced(nest_of()))
    piped = benchmark(
        lambda: run_pipeline(nest_of(), PipelineConfig(use_cache=False)).plan)
    piped_t = _best_of(
        lambda: run_pipeline(nest_of(), PipelineConfig(use_cache=False)))

    overhead = (piped_t - direct) / direct
    benchmark.extra_info.update(direct_ms=round(direct * 1e3, 3),
                                piped_ms=round(piped_t * 1e3, 3),
                                overhead_pct=round(overhead * 100, 2),
                                target_pct=5.0)
    assert piped.summary() == _hand_sequenced(nest_of()).summary()
    assert overhead < 0.25, \
        f"pipeline overhead {overhead:.1%} (target < 5%, hard cap 25%)"
