"""Section III.A claim: more parallelism than Ramanujam & Sadayappan [18].

Three comparison regimes:
- loops R&S cannot handle at all (not For-all): L1, L3, L5;
- For-all loops where our n-dim partition beats their 1-dim hyperplane
  family (dim(Psi) < n-1);
- the duplicate strategy unlocking loops that are sequential for both.
"""

import pytest

from repro.baseline import hyperplane_partition
from repro.core import Strategy, build_plan
from repro.lang import catalog


@pytest.mark.parametrize("fn,ours_expected", [
    (catalog.l1, 7),
    (catalog.l3, 1),   # ours is also sequential here without elimination
    (catalog.l5, 1),
])
def test_non_forall_loops(benchmark, fn, ours_expected):
    nest = fn()

    def compare():
        return hyperplane_partition(nest), build_plan(nest)

    baseline, ours = benchmark(compare)
    benchmark.extra_info.update(loop=nest.name, baseline="n/a (not For-all)",
                                ours=ours.num_blocks)
    assert not baseline.applicable
    assert ours.num_blocks == ours_expected


def test_forall_dimension_advantage(benchmark):
    nest = catalog.independent(4)

    def compare():
        return hyperplane_partition(nest), build_plan(nest)

    baseline, ours = benchmark(compare)
    benchmark.extra_info.update(baseline_blocks=baseline.num_blocks,
                                our_blocks=ours.num_blocks)
    assert baseline.applicable and baseline.num_blocks == 4
    assert ours.num_blocks == 16  # dim(Psi)=0 < n-1: strictly more parallel


def test_duplicate_strategy_advantage(benchmark):
    nest = catalog.l2()

    def compare():
        return hyperplane_partition(nest), build_plan(nest, Strategy.DUPLICATE)

    baseline, ours = benchmark(compare)
    benchmark.extra_info.update(
        baseline=baseline.degree_of_parallelism, ours=ours.num_blocks)
    assert ours.num_blocks == 16
    assert ours.num_blocks > baseline.degree_of_parallelism


def test_scaling_advantage(benchmark):
    """The advantage grows with the space: N^2 blocks vs N hyperplanes."""
    n = 8
    nest = catalog.independent(n)

    def compare():
        return (hyperplane_partition(nest).num_blocks,
                build_plan(nest).num_blocks)

    base, ours = benchmark(compare)
    benchmark.extra_info.update(baseline=base, ours=ours)
    assert base == n and ours == n * n
