"""Table II: speedups of L5' and L5'' over sequential L5.

Regenerates the paper's speedup grid from the simulator.  Shape
criteria: speedups grow with M, stay below p, and L5'' dominates L5'
(the paper's small-M p=16 cells show the same ordering).
"""

import pytest

from repro.perf import PAPER_TABLE2, simulate_l5, simulate_l5_doubleprime, simulate_l5_prime

MS = (16, 32, 64, 128, 256)


def _speedup(loop: str, p: int, m: int) -> float:
    seq = simulate_l5(m).total_time
    sim = (simulate_l5_prime(m, p) if loop == "L5'"
           else simulate_l5_doubleprime(m, p))
    return seq / sim.total_time


@pytest.mark.parametrize("loop", ("L5'", "L5''"))
@pytest.mark.parametrize("p", (4, 16))
def test_speedup_grid(benchmark, loop, p):
    def compute():
        return {m: _speedup(loop, p, m) for m in MS}

    speedups = benchmark(compute)
    paper = {m: PAPER_TABLE2[(loop, p, m)] for m in MS}
    benchmark.extra_info.update(loop=loop, p=p,
                                simulated={m: round(s, 2) for m, s in speedups.items()},
                                paper=paper)
    values = [speedups[m] for m in MS]
    # monotone growth with M, bounded by p (Table II shape)
    assert all(a < b for a, b in zip(values, values[1:]))
    assert all(v < p for v in values)
    # large-M cells within 15% of the paper
    assert abs(speedups[256] / paper[256] - 1) < 0.15


@pytest.mark.parametrize("p", (4, 16))
@pytest.mark.parametrize("m", MS)
def test_l5pp_speedup_dominates(benchmark, p, m):
    def compute():
        return _speedup("L5''", p, m), _speedup("L5'", p, m)

    spp, sp = benchmark(compute)
    benchmark.extra_info.update(p=p, M=m, l5pp=round(spp, 2), l5p=round(sp, 2))
    assert spp > sp
