"""Section IV cost formulas: analytic T1/T2/T3 vs the message-level simulator.

The simulator must agree with the paper's closed-form complexity
expressions on structure: same compute term, communication within a
small constant factor, same winner at every operating point.
"""

import pytest

from repro.machine.cost import TRANSPUTER
from repro.perf import (
    simulate_l5,
    simulate_l5_doubleprime,
    simulate_l5_prime,
    t1_sequential,
    t2_duplicate_b,
    t3_duplicate_ab,
)


@pytest.mark.parametrize("m", (64, 128, 256))
def test_t1_vs_simulated(benchmark, m):
    sim = benchmark(simulate_l5, m, TRANSPUTER, True)
    analytic = t1_sequential(m, TRANSPUTER)
    benchmark.extra_info.update(M=m, analytic=analytic, simulated=sim.total_time)
    assert sim.total_time == pytest.approx(analytic, rel=0.05)


@pytest.mark.parametrize("m,p", [(64, 4), (64, 16), (256, 16)])
def test_t2_vs_simulated(benchmark, m, p):
    sim = benchmark(simulate_l5_prime, m, p)
    analytic = t2_duplicate_b(m, p, TRANSPUTER)
    benchmark.extra_info.update(M=m, p=p, analytic=analytic,
                                simulated=sim.total_time)
    # same compute term; communication within 2x of the paper's accounting
    assert sim.compute_time == pytest.approx((m ** 3 / p) * TRANSPUTER.t_comp)
    assert 0.5 < sim.total_time / analytic < 2.0


@pytest.mark.parametrize("m,p", [(64, 4), (64, 16), (256, 16)])
def test_t3_vs_simulated(benchmark, m, p):
    sim = benchmark(simulate_l5_doubleprime, m, p)
    analytic = t3_duplicate_ab(m, p, TRANSPUTER)
    benchmark.extra_info.update(M=m, p=p, analytic=analytic,
                                simulated=sim.total_time)
    assert sim.compute_time == pytest.approx((m ** 3 / p) * TRANSPUTER.t_comp)
    assert 0.5 < sim.total_time / analytic < 2.0


@pytest.mark.parametrize("m,p", [(32, 4), (64, 16), (256, 16)])
def test_winner_agreement(benchmark, m, p):
    """Analytic model and simulator agree on which strategy wins."""

    def winners():
        analytic = t3_duplicate_ab(m, p, TRANSPUTER) < t2_duplicate_b(m, p, TRANSPUTER)
        simulated = (simulate_l5_doubleprime(m, p).total_time
                     < simulate_l5_prime(m, p).total_time)
        return analytic, simulated

    analytic, simulated = benchmark(winners)
    assert analytic == simulated == True  # noqa: E712 -- L5'' always wins
