"""Compiler-pipeline cost scaling (not a paper table; engineering bench).

Measures how the analysis/partition/transform pipeline scales with the
iteration-space size -- the "compile time" of the technique, which the
paper argues is acceptable for the parallelism gained.
"""

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.runtime import verify_plan
from repro.transform import transform_nest


@pytest.mark.parametrize("n", (4, 8, 12))
def test_partition_scaling_l1(benchmark, n):
    nest = catalog.l1(n)
    plan = benchmark(build_plan, nest)
    benchmark.extra_info.update(n=n, blocks=plan.num_blocks)
    assert plan.num_blocks == 2 * n - 1


@pytest.mark.parametrize("n", (4, 6, 8))
def test_full_pipeline_scaling_l4(benchmark, n):
    nest = catalog.l4(n)

    def pipeline():
        plan = build_plan(nest)
        return transform_nest(nest, plan.psi)

    t = benchmark(pipeline)
    benchmark.extra_info.update(n=n, forall_points=sum(1 for _ in t.iterate_blocks()))
    assert sum(t.block_sizes().values()) == n ** 3


@pytest.mark.parametrize("m", (3, 4, 5))
def test_verification_scaling_l5(benchmark, m):
    """End-to-end functional verification cost on growing matmul."""
    plan = build_plan(catalog.l5(m), Strategy.DUPLICATE)
    report = benchmark(verify_plan, plan)
    assert report.ok
    assert report.executed_iterations == m ** 3
