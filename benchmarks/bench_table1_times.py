"""Table I: execution time of loops L5, L5', L5'' (simulated Transputer).

Regenerates every cell of the paper's Table I on the simulated 16-node
mesh and records simulated-vs-paper seconds.  The benchmark time is the
cost of running the *simulation* (the reproduction artifact is in
``extra_info``).

Shape assertions (the reproduction criteria):
- L5'' beats L5' at every (p, M);
- both parallel variants beat sequential L5 for M >= 32;
- every simulated cell is within 2x of the paper's measurement.
"""

import pytest

from repro.perf import PAPER_TABLE1, simulate_l5, simulate_l5_doubleprime, simulate_l5_prime

MS = (16, 32, 64, 128, 256)


@pytest.mark.parametrize("m", MS)
def test_l5_sequential(benchmark, m):
    sim = benchmark(simulate_l5, m)
    paper = PAPER_TABLE1[("L5", 1, m)]
    benchmark.extra_info.update(
        loop="L5", p=1, M=m, simulated_s=sim.total_time, paper_s=paper)
    assert 0.5 < sim.total_time / paper < 2.0


@pytest.mark.parametrize("p", (4, 16))
@pytest.mark.parametrize("m", MS)
def test_l5_prime(benchmark, m, p):
    sim = benchmark(simulate_l5_prime, m, p)
    paper = PAPER_TABLE1[("L5'", p, m)]
    benchmark.extra_info.update(
        loop="L5'", p=p, M=m, simulated_s=sim.total_time, paper_s=paper)
    assert 0.5 < sim.total_time / paper < 2.0
    seq = simulate_l5(m).total_time
    if m >= 32:
        assert sim.total_time < seq


@pytest.mark.parametrize("p", (4, 16))
@pytest.mark.parametrize("m", MS)
def test_l5_doubleprime(benchmark, m, p):
    sim = benchmark(simulate_l5_doubleprime, m, p)
    paper = PAPER_TABLE1[("L5''", p, m)]
    benchmark.extra_info.update(
        loop="L5''", p=p, M=m, simulated_s=sim.total_time, paper_s=paper)
    assert 0.5 < sim.total_time / paper < 2.0
    # the headline ordering of Table I
    assert sim.total_time < simulate_l5_prime(m, p).total_time
