"""Benchmark-suite configuration.

Each bench regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index) and attaches the paper-vs-reproduced
numbers to ``benchmark.extra_info`` so they land in the JSON report.
"""

import pytest


@pytest.fixture
def scalars():
    return {"D": 2.0, "F": 3.0, "G": 1.5, "K": 0.5}
