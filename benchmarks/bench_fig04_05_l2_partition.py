"""Figs. 4-5: L2 under the duplicate-data strategy.

Theorem 2 on Example 2: every iteration becomes its own block (16
blocks for the 4x4 space), with the per-block data regions of Fig. 4.
"""

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.viz import fig04_l2_data_partition, fig05_l2_iteration_partition


def test_fig04_data_partition(benchmark):
    art = benchmark(fig04_l2_data_partition)
    benchmark.extra_info.update(replication=str(art.data["replication"]))
    assert art.data["num_blocks"] == 16
    assert art.data["replication"]["A"] > 1.0


def test_fig05_iteration_partition(benchmark):
    art = benchmark(fig05_l2_iteration_partition)
    assert art.data["num_blocks"] == 16


def test_l2_duplicate_vs_nonduplicate(benchmark):
    """The Section III.B contrast: sequential vs fully parallel."""

    def both():
        return (build_plan(catalog.l2()).num_blocks,
                build_plan(catalog.l2(), Strategy.DUPLICATE).num_blocks)

    nd, dup = benchmark(both)
    benchmark.extra_info.update(nonduplicate_blocks=nd, duplicate_blocks=dup)
    assert nd == 1 and dup == 16
