"""Communication-audit benchmark: correctness assertions + cost bound.

The static audit replays every reference of a plan analytically, so it
scales with ``iterations x references`` -- the same work one sequential
execution does, minus the arithmetic.  This bench pins two properties
on the Theorem 2 matmul workload that ``bench_engine.py`` uses:

1. the audit *certifies* the plan (zero cross-block accesses, exact
   read/write totals for the n^3 matmul reference pattern), and
2. the static replay costs at most ``AUDIT_CEILING`` times one
   interpreted sequential run of the same nest -- auditing a plan must
   stay in the same cost class as executing it once (the audit pays
   extra per access for footprint sets, attribution bookkeeping and
   heatmap counts, so a constant factor over the interpreter is
   expected; runaway asymptotics are not).

Run under pytest (``--benchmark-disable`` for assertions only) or
directly: ``python benchmarks/bench_audit.py``.
"""

from functools import lru_cache
from time import perf_counter

from repro.core import Strategy, build_plan
from repro.lang.parser import parse
from repro.obs.audit import audit_plan, inject_violation
from repro.runtime import make_arrays, run_sequential

#: static audit wall time / one sequential interpreted run, upper bound
#: (measured ~10x locally; headroom for CI jitter)
AUDIT_CEILING = 30.0

MATMUL_N = 16


def matmul_nest(n: int = MATMUL_N):
    hi = n - 1
    return parse(
        f"""
        for i = 0 to {hi} {{
          for j = 0 to {hi} {{
            for k = 0 to {hi} {{
              C[i,j] = C[i,j] + A[i,k] * B[k,j];
            }} }} }}
        """,
        name=f"MATMUL{n}",
    )


@lru_cache(maxsize=None)
def measure():
    plan = build_plan(matmul_nest(), strategy=Strategy.DUPLICATE)

    audit_s = float("inf")
    report = None
    for _ in range(2):
        t0 = perf_counter()
        report = audit_plan(plan, run_engines=False)
        audit_s = min(audit_s, perf_counter() - t0)

    seq_s = float("inf")
    for _ in range(2):
        arrays = make_arrays(plan.model)
        t0 = perf_counter()
        run_sequential(plan.model.nest, arrays, backend="interp")
        seq_s = min(seq_s, perf_counter() - t0)

    return plan, report, audit_s, seq_s


def test_audit_certifies_matmul(benchmark):
    plan, report, audit_s, seq_s = measure()
    benchmark(lambda: audit_plan(plan, run_engines=False))
    n = MATMUL_N
    assert report.certified
    assert report.cross_block_accesses == 0
    assert report.theorem == 2
    assert report.executed_iterations == n ** 3
    assert report.total_writes == n ** 3        # one store per iteration
    assert report.total_reads == 3 * n ** 3     # C, A, B loads
    benchmark.extra_info.update(
        audit_ms=round(audit_s * 1e3, 3),
        sequential_ms=round(seq_s * 1e3, 3),
        ratio=round(audit_s / seq_s, 2),
    )


def test_audit_cost_is_bounded():
    _, _, audit_s, seq_s = measure()
    ratio = audit_s / seq_s
    assert ratio < AUDIT_CEILING, (
        f"static audit took {ratio:.1f}x one sequential run "
        f"(ceiling {AUDIT_CEILING}x): {audit_s * 1e3:.1f}ms vs "
        f"{seq_s * 1e3:.1f}ms")


def test_audit_detects_injected_violation():
    plan, _, _, _ = measure()
    broken = audit_plan(inject_violation(plan), run_engines=False)
    assert not broken.certified
    assert broken.cross_block_accesses > 0
    assert broken.violations


def main():
    _, report, audit_s, seq_s = measure()
    print(f"audit:      {audit_s * 1e3:8.3f} ms  ({report.verdict()})")
    print(f"sequential: {seq_s * 1e3:8.3f} ms")
    print(f"ratio:      {audit_s / seq_s:8.2f}x  (ceiling {AUDIT_CEILING}x)")
    return 0 if audit_s / seq_s < AUDIT_CEILING else 1


if __name__ == "__main__":
    raise SystemExit(main())
