"""The cost-based strategy selector (extension bench).

Validates the selector against the paper's known verdicts: full
duplication wins for matmul at Transputer constants, redundancy
elimination wins for L3, and duplication is declined when it buys
nothing (L1).
"""

import pytest

from repro.lang import catalog
from repro.machine.cost import CostModel, TRANSPUTER
from repro.perf import choose_strategy

CHEAP_COMM = CostModel(t_comp=1e-3, t_start=1e-6, t_comm=1e-7)


def test_selector_matmul(benchmark):
    result = benchmark(choose_strategy, catalog.l5(16), 16, TRANSPUTER)
    benchmark.extra_info.update(best=result.best.label,
                                blocks=result.best.blocks)
    assert result.best.label == "duplicate{A,B}"  # the paper's L5'' verdict


def test_selector_l3_elimination(benchmark):
    result = benchmark(choose_strategy, catalog.l3(8), 4, CHEAP_COMM, True)
    benchmark.extra_info.update(best=result.best.label)
    assert result.best.eliminate_redundant
    assert result.best.blocks == 8


def test_selector_declines_useless_duplication(benchmark):
    result = benchmark(choose_strategy, catalog.l1(), 4, CHEAP_COMM)
    benchmark.extra_info.update(best=result.best.label)
    assert result.best.label == "nonduplicate"


def test_selector_keeps_tiny_loops_serial(benchmark):
    pricey = CostModel(t_comp=1e-6, t_start=10.0, t_comm=1.0)
    result = benchmark(choose_strategy, catalog.l5(4), 4, pricey)
    benchmark.extra_info.update(best=result.best.label)
    assert result.best.label == "nonduplicate"
