"""Ablation: interconnect topology sensitivity of the distribution phase.

The paper's machine is a mesh; Transputers were also wired as rings,
tori and hypercubes.  This bench replays the L5'/L5'' distribution
patterns on each interconnect, showing how the broadcast term of T2
(diameter-bound) shrinks on richer topologies while the pipelined
scatter/multicast terms barely move -- i.e. the paper's preference for
L5'' is topology-robust.
"""

import pytest

from repro.machine import (
    HOST,
    Hypercube,
    Mesh2D,
    Multicomputer,
    RingTopology,
    Torus2D,
    UNIT_COSTS,
)

TOPOLOGIES = {
    "mesh": lambda: Mesh2D(4, 4),
    "torus": lambda: Torus2D(4, 4),
    "hypercube": lambda: Hypercube(4),
    "ring": lambda: RingTopology(16),
}


def l5p_distribution(topology, m=64):
    """The L5' pattern: scatter A, broadcast B."""
    mc = Multicomputer(topology, cost=UNIT_COSTS)
    for pid in range(16):
        mc.network.send(HOST, pid, (m // 16) * m, tag="A")
    mc.network.broadcast(HOST, m * m, tag="B")
    return mc.network.elapsed


def l5pp_distribution(topology, m=64):
    """The L5'' pattern: row/column multicasts of A and B."""
    mc = Multicomputer(topology, cost=UNIT_COSTS)
    groups = [list(range(g * 4, g * 4 + 4)) for g in range(4)]
    for grp in groups:
        mc.network.multicast(HOST, grp, (m // 4) * m, tag="A")
    for c in range(4):
        mc.network.multicast(HOST, [c + 4 * r for r in range(4)],
                             (m // 4) * m, tag="B")
    return mc.network.elapsed


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_l5pp_beats_l5p_on_every_topology(benchmark, name):
    topo = TOPOLOGIES[name]()

    def both():
        return l5p_distribution(topo), l5pp_distribution(topo)

    t_p, t_pp = benchmark(both)
    benchmark.extra_info.update(topology=name, l5p=t_p, l5pp=t_pp)
    assert t_pp < t_p


def test_broadcast_tracks_diameter(benchmark):
    def measure():
        return {name: TOPOLOGIES[name]().diameter_from(HOST)
                for name in TOPOLOGIES}

    diam = benchmark(measure)
    benchmark.extra_info.update(**diam)
    assert diam["hypercube"] < diam["mesh"] < diam["ring"]
    # L5' total distribution ranks accordingly
    costs = {name: l5p_distribution(TOPOLOGIES[name]())
             for name in ("hypercube", "mesh", "ring")}
    assert costs["hypercube"] < costs["mesh"] < costs["ring"]
