"""Figs. 6-7: the data reference graph.

Fig. 6 is the generic schema (a definition); Fig. 7 instantiates it for
loop L3 and is regenerated and pinned here.
"""

from repro.analysis import build_reference_graph, extract_references
from repro.lang import catalog
from repro.viz import fig07_l3_reference_graph


def test_fig07_graph(benchmark):
    art = benchmark(fig07_l3_reference_graph)
    benchmark.extra_info.update(edges=str(sorted(art.data["edges"])))
    assert sorted(art.data["edges"]) == sorted([
        ("w1", "w2", "output"), ("r2", "r1", "input"),
        ("r2", "w1", "anti"), ("r2", "w2", "anti"),
        ("w1", "r1", "flow"), ("w2", "r1", "flow"),
    ])


def test_graph_construction_all_arrays_l1(benchmark):
    model = extract_references(catalog.l1())

    def build():
        return {n: build_reference_graph(model, n) for n in model.arrays}

    graphs = benchmark(build)
    assert len(graphs["C"].edges) == 1  # the input dependence of Example 1
