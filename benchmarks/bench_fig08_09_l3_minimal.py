"""Figs. 8-9: L3 under redundancy elimination + duplicate data.

Section III.C end to end: without elimination L3 is sequential even
with duplication; eliminating the redundant S1 computations yields
Psi^min^r = span{(1,0)} and 4 parallel blocks.
"""

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.runtime import verify_plan
from repro.viz import fig08_l3_data_partition, fig09_l3_iteration_partition


def test_fig08_data_partition(benchmark):
    art = benchmark(fig08_l3_data_partition)
    assert art.data["num_blocks"] == 4


def test_fig09_iteration_partition(benchmark):
    art = benchmark(fig09_l3_iteration_partition)
    benchmark.extra_info.update(N_S1=str(art.data["N_S1"]))
    assert art.data["N_S1"] == [(1, 4), (2, 4), (3, 4), (4, 4)]
    assert art.data["num_blocks"] == 4


def test_elimination_unlocks_parallelism(benchmark):
    def both():
        without = build_plan(catalog.l3(), Strategy.DUPLICATE).num_blocks
        with_elim = build_plan(catalog.l3(), Strategy.DUPLICATE,
                               eliminate_redundant=True).num_blocks
        return without, with_elim

    without, with_elim = benchmark(both)
    benchmark.extra_info.update(blocks_without=without, blocks_with=with_elim)
    assert without == 1 and with_elim == 4


def test_minimal_plan_exactness(benchmark):
    plan = build_plan(catalog.l3(), Strategy.DUPLICATE, eliminate_redundant=True)
    report = benchmark(verify_plan, plan)
    assert report.ok and report.skipped_computations == 12
