#!/usr/bin/env python3
"""Program transformation and processor assignment (Section IV, loop L4).

Reproduces Example 4 end to end:

1. the partitioning space Psi = span{(1,-1,1)} of the 3-nested loop L4;
2. the transformed parallel form L4' -- two forall loops, one
   sequential loop, extended statements (our kernel basis is an
   equivalent choice to the paper's, spanning the same Ker(Psi));
3. cyclic mapping of the 37 forall points onto a 2x2 processor grid:
   every processor gets exactly 16 iterations (Fig. 10);
4. execution of the generated Python code for L4' and comparison with
   the sequential interpreter.

Run:  python examples/transform_and_map.py
"""

from repro import (
    Strategy,
    build_plan,
    catalog,
    compile_nest,
    make_arrays,
    run_sequential,
    to_pseudocode,
    transform_nest,
)
from repro.mapping import assign_blocks, shape_grid, workload_stats
from repro.transform.codegen import to_python_source


def main() -> None:
    nest = catalog.l4()
    plan = build_plan(nest, Strategy.NONDUPLICATE)
    print(f"partitioning space: {plan.psi!r}")
    print(f"iteration blocks: {plan.num_blocks}\n")

    tnest = transform_nest(nest, plan.psi)
    print("== transformed loop L4' ==")
    print(to_pseudocode(tnest))
    print()

    # --- processor assignment (Fig. 10) -----------------------------------
    grid = shape_grid(4, tnest.k)
    assignment = assign_blocks(tnest, grid)
    stats = workload_stats(assignment)
    print(f"== cyclic assignment on a {grid.dims} grid ==")
    for proc in grid.coords():
        pts = sorted(assignment.points_of[proc])
        print(f"PE{proc}: {stats.loads[proc]} iterations over {len(pts)} blocks")
    print(stats.summary())
    print()

    # --- generated code -----------------------------------------------------
    print("== generated Python for L4' ==")
    print(to_python_source(tnest))

    # --- execute and compare --------------------------------------------------
    arrays = make_arrays(plan.model)
    expected = {n: a.copy() for n, a in arrays.items()}
    run_sequential(nest, expected)

    run = compile_nest(tnest)

    class DictView(dict):
        """Adapter: tuple-indexed view over a DataSpace for generated code."""

        def __init__(self, ds):
            super().__init__()
            self.ds = ds

        def __getitem__(self, coords):
            return self.ds[coords]

        def __setitem__(self, coords, value):
            self.ds[coords] = value

    run({n: DictView(a) for n, a in arrays.items()}, {})
    same = all(arrays[n] == expected[n] for n in arrays)
    print(f"generated L4' output identical to sequential: {same}")


if __name__ == "__main__":
    main()
