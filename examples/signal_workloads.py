#!/usr/bin/env python3
"""UPPER-project workloads: convolution and DFT under duplicate data.

The paper's conclusion names the scientific kernels evaluated in the
authors' UPPER programming environment: matrix multiplication, discrete
Fourier transform, convolution, basic linear algebra.  This example runs
the convolution and DFT kernels through the pipeline:

- both have an accumulation array with a flow dependence along the
  reduction axis, and read-only inputs -> the duplicate-data strategy
  parallelizes fully across outputs;
- the blocks are mapped cyclically onto a fixed-size machine and the
  workload balance is reported;
- the host-to-node distribution is simulated on a mesh to show the
  communication cost structure of the duplicate strategy.

Run:  python examples/signal_workloads.py
"""

from repro import (
    Strategy,
    build_plan,
    catalog,
    transform_nest,
    verify_plan,
)
from repro.machine import Mesh2D, Multicomputer, TRANSPUTER
from repro.machine.distribution import broadcast_array, scatter_slices
from repro.mapping import assign_blocks, shape_grid, workload_stats
from repro.runtime import make_arrays


def study(name: str, nest, p: int) -> None:
    print(f"== {name} ==")
    plan = build_plan(nest, Strategy.DUPLICATE)
    rep = verify_plan(plan).raise_on_failure()
    print(f"Psi = {plan.psi!r}; {plan.num_blocks} independent blocks; "
          f"remote accesses {rep.remote_accesses}")

    tnest = transform_nest(nest, plan.psi)
    grid = shape_grid(p, tnest.k)
    assignment = assign_blocks(tnest, grid)
    print(f"on {p} processors (grid {grid.dims}): "
          f"{workload_stats(assignment).summary()}")

    # simulated initial distribution: accumulators scattered (private),
    # read-only inputs broadcast (replicated everywhere)
    machine = Multicomputer(Mesh2D(1, p), cost=TRANSPUTER)
    arrays = make_arrays(plan.model)
    model = plan.model
    written = {ref.array for info in model.arrays.values()
               for ref in info.references if ref.is_write}
    for arr_name, ds in arrays.items():
        coords = list(ds.coords_iter())
        if arr_name in written:
            pieces = {pid: coords[pid::p] for pid in range(p)}
            scatter_slices(machine, arr_name, pieces, init=lambda c, d=ds: d[c])
        else:
            broadcast_array(machine, arr_name, coords, init=lambda c, d=ds: d[c])
    st = machine.stats()
    print(f"distribution: {st.messages} messages, {st.words_sent} words, "
          f"{st.distribution_time * 1e3:.2f} ms simulated\n")


def main() -> None:
    study("1-D convolution (y[i] += x[i+k] * h[k])", catalog.convolution(16, 4), 4)
    study("DFT (X[i] += W[i,k] * x[k])", catalog.dft(16), 4)


if __name__ == "__main__":
    main()
