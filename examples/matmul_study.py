#!/usr/bin/env python3
"""The Section-IV matrix-multiplication study (loops L5, L5', L5'').

Reproduces, on the simulated 16-node Transputer mesh:

- the strategy analysis: non-duplicate forces sequential execution;
  duplicating B gives a 1-D forall (L5'); duplicating A and B gives a
  2-D forall (L5'');
- functional verification of all three plans on a small instance;
- Tables I and II (execution times and speedups) side by side with the
  paper's measurements.

Run:  python examples/matmul_study.py
"""

from repro import Strategy, build_plan, catalog, verify_plan
from repro.perf import table1_rows, table2_rows
from repro.perf.tables import format_rows
from repro.transform import to_pseudocode, transform_nest


def main() -> None:
    nest = catalog.l5(4)

    # --- strategy analysis --------------------------------------------------
    print("== strategy analysis (M=4) ==")
    for label, kwargs in [
        ("non-duplicate (L5)", dict(strategy=Strategy.NONDUPLICATE)),
        ("duplicate B only (L5')", dict(strategy=Strategy.DUPLICATE,
                                        duplicate_arrays={"B"})),
        ("duplicate A and B (L5'')", dict(strategy=Strategy.DUPLICATE,
                                          duplicate_arrays={"A", "B"})),
    ]:
        plan = build_plan(nest, **kwargs)
        rep = verify_plan(plan).raise_on_failure()
        print(f"{label}: dim(Psi)={plan.psi.dim}, blocks={plan.num_blocks}, "
              f"remote accesses={rep.remote_accesses}, "
              f"replication(B)={plan.replication_factor('B'):.1f}x")
    print()

    # --- the parallel form of L5'' ------------------------------------------
    plan = build_plan(nest, Strategy.DUPLICATE, duplicate_arrays={"A", "B"})
    tnest = transform_nest(nest, plan.psi)
    print("== transformed loop L5'' ==")
    print(to_pseudocode(tnest))
    print()

    # --- Tables I and II ------------------------------------------------------
    print("== Table I: execution time (s), simulated vs paper ==")
    print(format_rows(table1_rows(),
                      ["loop", "p", "M", "simulated_s", "paper_s"]))
    print()
    print("== Table II: speedup, simulated vs paper ==")
    print(format_rows(table2_rows(),
                      ["loop", "p", "M", "simulated_speedup", "paper_speedup"]))


if __name__ == "__main__":
    main()
