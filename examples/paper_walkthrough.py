#!/usr/bin/env python3
"""The whole paper, example by example.

Reproduces every numbered example of Chen & Sheu (1994) in the paper's
order, printing what the paper states next to what the library derives:

  Example 1 (L1)  -- reference functions, DRVs, Theorem-1 partition
  Example 2 (L2)  -- singular H, non-integer solutions, Theorem 2
  Example 3 (L3)  -- reference graph, redundancy, Theorems 3-4
  Example 4 (L4)  -- transformation to L4', Fig. 10 assignment
  Section IV (L5) -- the three matmul allocations and their costs

Run:  python examples/paper_walkthrough.py
"""

from repro import (
    Strategy,
    analyze_redundancy,
    build_plan,
    build_reference_graph,
    catalog,
    data_referenced_vectors,
    extract_references,
    to_pseudocode,
    transform_nest,
    verify_plan,
)
from repro.mapping import assign_blocks, shape_grid, workload_stats
from repro.perf import t1_sequential, t2_duplicate_b, t3_duplicate_ab
from repro.machine.cost import TRANSPUTER


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def example1() -> None:
    banner("Example 1 (loop L1): communication-free partition, Theorem 1")
    model = extract_references(catalog.l1())
    for name in ("A", "B", "C"):
        info = model.arrays[name]
        drvs = [tuple(int(x) for x in d.vector)
                for d in data_referenced_vectors(info)]
        print(f"H_{name} = {info.h!r}   DRVs: {drvs}")
    plan = build_plan(catalog.l1())
    print(f"paper: Psi = span{{(1,1)}}, 7 blocks B_1..B_7")
    print(f"ours : Psi = {plan.psi!r}, {plan.num_blocks} blocks, "
          f"base points {[b.base_point for b in plan.blocks]}")
    rep = verify_plan(plan).raise_on_failure()
    print(f"executed on {rep.num_blocks} processors with "
          f"{rep.remote_accesses} remote accesses; exact: {rep.equal}")


def example2() -> None:
    banner("Example 2 (loop L2): duplicate data, Theorem 2")
    model = extract_references(catalog.l2())
    from repro.core import reference_space

    psi_a = reference_space(model.arrays["A"], model.space)
    psi_b = reference_space(model.arrays["B"], model.space)
    print(f"paper: Psi_A = span{{(1,-1),(1/2,1/2)}} (the plane), "
          f"Psi_B = span(phi)")
    print(f"ours : Psi_A dim {psi_a.dim} (full: {psi_a.is_full()}), "
          f"Psi_B dim {psi_b.dim}")
    nd = build_plan(catalog.l2())
    dup = build_plan(catalog.l2(), Strategy.DUPLICATE)
    print(f"non-duplicate: {nd.num_blocks} block (sequential)  |  "
          f"duplicate: {dup.num_blocks} blocks (fully parallel)")
    verify_plan(dup).raise_on_failure()
    print("duplicate plan verified: exact, zero communication")


def example3() -> None:
    banner("Example 3 (loop L3): redundant computations, Theorems 3-4")
    model = extract_references(catalog.l3())
    g = build_reference_graph(model, "A")
    print("reference graph edges (Fig. 7):")
    for s, d, k in sorted(g.edge_names()):
        print(f"  {s} -> {d}  [{k}]")
    red = analyze_redundancy(model)
    print(f"\npaper: N(S1) = {{(i,4)}}, N(S2) = I^2")
    print(f"ours : N(S1) = {sorted(red.n_set(0))}")
    print(f"       N(S2) covers {len(red.n_set(1))}/16 iterations")
    dup = build_plan(catalog.l3(), Strategy.DUPLICATE)
    mini = build_plan(catalog.l3(), Strategy.DUPLICATE,
                      eliminate_redundant=True)
    print(f"\nduplicate w/o elimination: Psi = {dup.psi!r} "
          f"-> {dup.num_blocks} block")
    print(f"duplicate with elimination: Psi = {mini.psi!r} "
          f"-> {mini.num_blocks} blocks")
    rep = verify_plan(mini).raise_on_failure()
    print(f"verified: {rep.skipped_computations} redundant computations "
          f"skipped, result exact")


def example4() -> None:
    banner("Example 4 (loop L4): transformation to L4' and Fig. 10")
    nest = catalog.l4()
    plan = build_plan(nest)
    print(f"paper: Psi = span{{(1,-1,1)}}; ours: {plan.psi!r}")
    t = transform_nest(nest, plan.psi)
    print("\ntransformed loop L4' (our equivalent kernel basis):")
    print(to_pseudocode(t))
    grid = shape_grid(4, t.k)
    stats = workload_stats(assign_blocks(t, grid))
    print(f"\npaper Fig. 10: all four processors get 16 iterations")
    print(f"ours         : {stats.loads}")


def section4_matmul() -> None:
    banner("Section IV (loop L5): the three allocations and their costs")
    for label, kwargs, expect in [
        ("L5   (non-duplicate)", dict(strategy=Strategy.NONDUPLICATE), 1),
        ("L5'  (duplicate B)", dict(strategy=Strategy.DUPLICATE,
                                    duplicate_arrays={"B"}), 4),
        ("L5'' (duplicate A,B)", dict(strategy=Strategy.DUPLICATE), 16),
    ]:
        plan = build_plan(catalog.l5(), **kwargs)
        print(f"{label}: {plan.num_blocks} blocks (paper: {expect})")
    m, p = 256, 16
    print(f"\nanalytic costs at M={m}, p={p} (Transputer constants):")
    print(f"  T1 = {t1_sequential(m, TRANSPUTER, False):8.2f} s  (sequential)")
    print(f"  T2 = {t2_duplicate_b(m, p, TRANSPUTER):8.2f} s  (L5')")
    print(f"  T3 = {t3_duplicate_ab(m, p, TRANSPUTER):8.2f} s  (L5'')")
    print("paper Table I measured:  161.25 / 12.36 / 10.65 s")


def main() -> None:
    example1()
    example2()
    example3()
    example4()
    section4_matmul()
    print("\nAll of the paper's worked results reproduced. "
          "See EXPERIMENTS.md for the full record.")


if __name__ == "__main__":
    main()
