#!/usr/bin/env python3
"""Redundant-computation elimination on loop L3 (Section III.C).

Shows the complete Section III.C story:

1. the data reference graph G^A of L3 (Fig. 7);
2. the exact redundancy analysis: N(S1) = {(i,4)}, N(S2) = all;
3. false vs useful dependences via Val-set intersection;
4. the minimal partitioning spaces: without elimination L3 is
   sequential even with duplicate data; with elimination the duplicate
   strategy runs 4 blocks in parallel (Figs. 8, 9);
5. verification that skipping the redundant computations still produces
   the exact sequential result.

Run:  python examples/redundancy_elimination.py
"""

from repro import (
    Strategy,
    analyze_redundancy,
    build_plan,
    build_reference_graph,
    catalog,
    extract_references,
    to_source,
    verify_plan,
)
from repro.viz import (
    fig07_l3_reference_graph,
    fig08_l3_data_partition,
    fig09_l3_iteration_partition,
)


def main() -> None:
    nest = catalog.l3()
    print("input loop:\n" + to_source(nest) + "\n")

    # --- the reference graph (Fig. 7) ----------------------------------------
    print(fig07_l3_reference_graph())
    print()

    # --- redundancy analysis -----------------------------------------------
    model = extract_references(nest)
    red = analyze_redundancy(model)
    print("== redundancy analysis ==")
    print(red.summary())
    print(f"N(S1) = {sorted(red.n_set(0))}")
    g = red.graphs["A"]
    for dep in red.useful_edges:
        print(f"useful: {g.vertex_name(dep.src)} -> {g.vertex_name(dep.dst)} "
              f"[{dep.kind.value}]")
    for dep in red.false_edges:
        print(f"false:  {g.vertex_name(dep.src)} -> {g.vertex_name(dep.dst)} "
              f"[{dep.kind.value}]")
    print()

    # --- partitioning with and without elimination ---------------------------
    print("== partitioning spaces ==")
    for label, kwargs in [
        ("duplicate, no elimination", dict(strategy=Strategy.DUPLICATE)),
        ("non-duplicate, minimal", dict(strategy=Strategy.NONDUPLICATE,
                                        eliminate_redundant=True)),
        ("duplicate, minimal", dict(strategy=Strategy.DUPLICATE,
                                    eliminate_redundant=True)),
    ]:
        plan = build_plan(nest, **kwargs)
        print(f"{label}: Psi = {plan.psi!r} -> {plan.num_blocks} block(s)")
    print()

    # --- Figs. 8 and 9 ----------------------------------------------------------
    print(fig08_l3_data_partition())
    print()
    print(fig09_l3_iteration_partition())
    print()

    # --- verification ------------------------------------------------------------
    plan = build_plan(nest, Strategy.DUPLICATE, eliminate_redundant=True)
    rep = verify_plan(plan).raise_on_failure()
    print(f"minimal duplicate plan: {plan.num_blocks} blocks, "
          f"{rep.skipped_computations} redundant computations skipped, "
          f"{rep.remote_accesses} remote accesses, exact result: {rep.equal}")


if __name__ == "__main__":
    main()
