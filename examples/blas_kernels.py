#!/usr/bin/env python3
"""Basic linear-algebra kernels through the pipeline (UPPER workloads).

The paper's UPPER project evaluates "matrix multiplication, discrete
Fourier transform, convolution, some basic linear algebra programs".
This example runs the BLAS-style kernels and shows the spectrum of
verdicts the analysis produces:

- AXPY:     non-duplicate already fully parallel (dim Psi = 0);
- OUTER:    rank-1 update -- duplicate x and y for 2-D parallelism;
- MATVEC:   accumulation row per output -- duplicate A columns... the
            selector decides;
- FSUB:     forward substitution -- *not uniformly generated*; the
            front end rejects it, marking the model boundary.

Run:  python examples/blas_kernels.py
"""

from repro import Strategy, build_plan, catalog, verify_plan
from repro.analysis import NonUniformReferenceError, extract_references
from repro.machine.cost import CostModel
from repro.perf import choose_strategy

CHEAP_COMM = CostModel(t_comp=1e-3, t_start=1e-6, t_comm=1e-7)
SCALARS = {"ALPHA": 2.5}


def study(nest) -> None:
    print(f"== {nest.name} ==")
    res = choose_strategy(nest, p=4, cost=CHEAP_COMM)
    print(res.table())
    best = res.best
    report = verify_plan(best.plan, scalars=SCALARS).raise_on_failure()
    print(f"selected {best.label}: {best.blocks} blocks, "
          f"verified ({report.remote_accesses} remote accesses)\n")


def main() -> None:
    study(catalog.axpy(8))
    study(catalog.outer_product(6))
    study(catalog.matvec(6))

    print("== FSUB (forward substitution) ==")
    try:
        extract_references(catalog.forward_subst())
    except NonUniformReferenceError as exc:
        print(f"rejected by the front end (as the model requires):\n  {exc}")


if __name__ == "__main__":
    main()
