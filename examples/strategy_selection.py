#!/usr/bin/env python3
"""Automatic strategy selection and multi-loop programs.

The paper closes Section IV observing that "determining which kind of
duplication of array is suitable for replicating their referenced data
can be appropriately estimated".  This example does exactly that:

1. the cost-based selector ranks every duplication choice for matmul
   (reproducing the L5 < L5' < L5'' verdict of Tables I-II) and for
   L3 with redundancy elimination;
2. a two-phase program (stencil, then a transposed consumer) is planned
   phase by phase, with the inter-phase *reallocation* traffic -- the
   only communication a per-loop communication-free program pays --
   quantified exactly;
3. both are verified against sequential execution.

Run:  python examples/strategy_selection.py
"""

from repro import catalog, parse
from repro.machine.cost import TRANSPUTER
from repro.perf import choose_strategy
from repro.program import Program, plan_program, verify_program


def main() -> None:
    # --- 1. strategy selection for matmul ------------------------------
    print("== strategy ranking: matmul (M=16, p=16, Transputer costs) ==")
    result = choose_strategy(catalog.l5(16), p=16, cost=TRANSPUTER)
    print(result.table())
    print(f"selected: {result.best.label}\n")

    print("== strategy ranking: L3 (n=8, with redundancy elimination) ==")
    result = choose_strategy(catalog.l3(8), p=4, cost=TRANSPUTER,
                             consider_elimination=True)
    print(result.table())
    print(f"selected: {result.best.label}\n")

    # --- 2. multi-loop program with reallocation ----------------------
    stencil = parse("""
      for i = 1 to 8 { for j = 1 to 8 {
        U[i, j] = U[i - 1, j - 1] + F[i, j];
      } }
    """, name="STENCIL")
    consumer = parse("""
      for i = 1 to 8 { for j = 1 to 8 {
        V[j, i] = U[i, j] * 2;
      } }
    """, name="TRANSPOSE-CONSUME")
    program = Program(nests=[stencil, consumer], name="stencil-then-consume")
    pplan = plan_program(program, p=4, cost=TRANSPUTER)
    print("== two-phase program plan ==")
    print(pplan.summary())
    r = pplan.reallocations[0]
    print(f"\nreallocation detail: {r.moved_words} words over "
          f"{r.messages} processor pairs, locality {r.locality:.0%}")

    # --- 3. verification -------------------------------------------------
    v = verify_program(pplan)
    print(f"\nphase-parallel result identical to sequential: {v.ok}")


if __name__ == "__main__":
    main()
