#!/usr/bin/env python3
"""Quickstart: communication-free partitioning of the paper's loop L1.

Walks the full pipeline on Example 1 of the paper:

1. parse the nested loop,
2. analyze its reference pattern (H matrices, data-referenced vectors),
3. build the non-duplicate partition (Theorem 1): Psi = span{(1,1)},
   seven iteration blocks,
4. execute the blocks on simulated processors and verify the result is
   bit-identical to sequential execution with ZERO interprocessor
   communication.

Run:  python examples/quickstart.py
"""

from repro import (
    Strategy,
    build_plan,
    data_referenced_vectors,
    extract_references,
    parse,
    to_source,
    verify_plan,
)
from repro.viz import fig02_l1_data_partition, fig03_l1_iteration_partition

SOURCE = """
for i = 1 to 4 {
  for j = 1 to 4 {
    S1: A[2*i, j] = C[i, j] * 7;
    S2: B[j, i + 1] = A[2*i - 2, j - 1] + C[i - 1, j - 1];
  }
}
"""


def main() -> None:
    nest = parse(SOURCE, name="L1")
    print("input loop:\n" + to_source(nest) + "\n")

    # --- reference analysis -------------------------------------------------
    model = extract_references(nest)
    for name, info in model.arrays.items():
        drvs = [tuple(int(x) for x in d.vector)
                for d in data_referenced_vectors(info)]
        print(f"array {name}: H = {info.h!r}, data-referenced vectors {drvs}")
    print()

    # --- partitioning (Theorem 1, non-duplicate data) -----------------------
    plan = build_plan(nest, Strategy.NONDUPLICATE)
    print(plan.summary())
    print()
    for b in plan.blocks:
        print(f"  block {b.index}: base {b.base_point}, iterations {b.iterations}")
    print()

    # --- the partitions behind Figs. 2 and 3 -------------------------------
    print(fig03_l1_iteration_partition())
    print()
    print(fig02_l1_data_partition())
    print()

    # --- end-to-end verification ------------------------------------------
    report = verify_plan(plan).raise_on_failure()
    print(f"parallel execution on {report.num_blocks} processors: "
          f"{report.executed_iterations} iterations, "
          f"{report.remote_accesses} remote accesses, "
          f"results identical to sequential: {report.equal}")


if __name__ == "__main__":
    main()
