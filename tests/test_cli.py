"""CLI driver tests (all through main(argv, out))."""

import io

import pytest

from repro.cli import main


def run(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestAnalyze:
    def test_catalog_loop(self):
        code, text = run("analyze", "--loop", "L1")
        assert code == 0
        assert "array A" in text
        assert "(2, 1)" in text                # the DRV
        assert "fully duplicable" in text      # arrays B / C

    def test_with_elimination(self):
        code, text = run("analyze", "--loop", "L3", "--eliminate")
        assert code == 0
        assert "4/16" in text  # N(S1)

    def test_unknown_loop(self):
        with pytest.raises(SystemExit):
            run("analyze", "--loop", "NOPE")

    def test_missing_input(self):
        with pytest.raises(SystemExit):
            run("analyze")

    def test_file_input(self, tmp_path):
        f = tmp_path / "loop.cf"
        f.write_text("for i = 1 to 4 { A[i] = B[i] * 2; }")
        code, text = run("analyze", str(f))
        assert code == 0 and "array A" in text


class TestPartition:
    def test_l1(self):
        code, text = run("partition", "--loop", "L1")
        assert code == 0
        assert "blocks: 7" in text
        assert "iteration -> block" in text

    def test_duplicate_flag(self):
        code, text = run("partition", "--loop", "L2", "--duplicate")
        assert code == 0 and "blocks: 16" in text

    def test_duplicate_subset(self):
        code, text = run("partition", "--loop", "L5",
                         "--duplicate-arrays", "B")
        assert code == 0 and "blocks: 4" in text

    def test_eliminate(self):
        code, text = run("partition", "--loop", "L3", "--duplicate",
                         "--eliminate")
        assert code == 0 and "blocks: 4" in text

    def test_3d_listing(self):
        code, text = run("partition", "--loop", "L4")
        assert code == 0 and "more blocks" in text


class TestTransform:
    def test_forall_form(self):
        code, text = run("transform", "--loop", "L4")
        assert code == 0
        assert "forall" in text and "E1:" in text

    def test_spmd(self):
        code, text = run("transform", "--loop", "L4", "-p", "4")
        assert code == 0
        assert "step 2" in text
        assert "imbalance=1.000" in text


class TestVerify:
    def test_ok(self):
        code, text = run("verify", "--loop", "L1")
        assert code == 0 and "OK" in text
        assert "remote accesses: 0" in text

    def test_with_scalars(self):
        code, text = run("verify", "--loop", "L3sub", "--scalars",
                         "D=2,F=3,G=1.5,K=0.5")
        assert code == 0 and "OK" in text

    def test_eliminate_skips(self):
        code, text = run("verify", "--loop", "L3", "--duplicate",
                         "--eliminate")
        assert code == 0
        assert "skipped (redundant) computations: 12" in text


class TestSelect:
    def test_l5(self):
        code, text = run("select", "--loop", "L5", "-p", "4")
        assert code == 0
        assert "best:" in text and "duplicate{A,B}" in text


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            run("--version")
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_short_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run("-V")
        assert exc.value.code == 0
        assert "repro " in capsys.readouterr().out


class TestTimings:
    def test_partition_timing_table(self):
        from repro.pipeline import PLAN_CACHE

        PLAN_CACHE.clear()                    # cold cache: every pass runs
        code, text = run("partition", "--loop", "L4", "--timings")
        assert code == 0
        assert "blocks: 37" in text           # normal output still present
        assert "calls" in text and "total(ms)" in text
        for name in ("extract-refs", "choose-space", "partition"):
            assert name in text
        assert "counter cache.miss: 1" in text

    def test_cache_counters_in_table(self):
        code1, _ = run("partition", "--loop", "L5", "--timings")
        code2, text2 = run("partition", "--loop", "L5", "--timings")
        assert code1 == code2 == 0
        # the second invocation is served from the warm in-process cache
        assert "counter cache.hit: 1" in text2

    def test_timings_scoped_per_invocation(self):
        _, first = run("verify", "--loop", "L1", "--timings")
        assert "total(ms)" in first
        # a run without the flag prints no table
        _, quiet = run("verify", "--loop", "L1")
        assert "total(ms)" not in quiet


class TestFiguresAndTables:
    def test_figures(self):
        code, text = run("figures")
        assert code == 0
        for fig in ("Fig. 1", "Fig. 7", "Fig. 10"):
            assert fig in text

    def test_tables(self):
        code, text = run("tables")
        assert code == 0
        assert "Table I" in text and "L5''" in text
