"""The snapshot writer and the `repro top` dashboard."""

import io
import json
import os
import time

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.top import (
    SNAPSHOT_ENV_VAR,
    SnapshotWriter,
    current_writer,
    read_snapshot,
    registry_stats,
    render_top,
    run_top,
)


class TestSnapshotWriter:
    def test_write_is_atomic_and_stamped(self, tmp_path):
        path = tmp_path / "top.json"
        w = SnapshotWriter(path)
        w.write({"phase": "execute", "units": 4})
        doc = json.loads(path.read_text())
        assert doc["phase"] == "execute"
        assert doc["pid"] == os.getpid()
        assert doc["written_at"] > 0
        assert "registry" in doc
        assert not list(tmp_path.glob("*.tmp.*")), "tmp file left behind"

    def test_maybe_write_throttles(self, tmp_path):
        w = SnapshotWriter(tmp_path / "top.json", interval_s=60.0)
        assert w.maybe_write({"phase": "a"})
        assert not w.maybe_write({"phase": "b"})   # inside the interval
        assert w.writes == 1

    def test_maybe_write_accepts_thunk_lazily(self, tmp_path):
        w = SnapshotWriter(tmp_path / "top.json", interval_s=60.0)
        calls = []

        def thunk():
            calls.append(1)
            return {"phase": "x"}

        assert w.maybe_write(thunk)
        assert not w.maybe_write(thunk)   # throttled: thunk never built
        assert calls == [1]

    def test_write_never_raises(self):
        w = SnapshotWriter("/nonexistent-dir/nope/top.json")
        w.write({"phase": "x"})   # swallowed, run must not die
        assert w.writes == 0

    def test_current_writer_follows_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(SNAPSHOT_ENV_VAR, raising=False)
        assert current_writer() is None
        monkeypatch.setenv(SNAPSHOT_ENV_VAR, str(tmp_path / "t.json"))
        w = current_writer()
        assert w is not None and w.path == str(tmp_path / "t.json")
        assert current_writer() is w   # cached per path (throttle state)
        monkeypatch.setenv(SNAPSHOT_ENV_VAR, str(tmp_path / "u.json"))
        assert current_writer() is not w


class TestRegistryStats:
    def test_reads_standard_families(self):
        reg = MetricsRegistry()
        reg.set("engine.pool.workers", 4)
        reg.inc("engine.pool.spawns")
        reg.set("engine.shm.bytes", 2048)
        reg.inc("cache.hit", 3)
        reg.inc("cache.miss.new-fingerprint", 1)
        reg.inc("cache.disk.hit", 1)
        stats = registry_stats(reg)
        assert stats["pool_workers"] == 4
        assert stats["shm_bytes"] == 2048
        assert stats["plan_cache_hit_rate"] == 0.75
        assert stats["kernel_cache_hit_rate"] == 1.0

    def test_empty_registry_rates_are_none(self):
        stats = registry_stats(MetricsRegistry())
        assert stats["plan_cache_hit_rate"] is None
        assert stats["kernel_cache_hit_rate"] is None

    def test_scoped_registry_is_the_default_source(self):
        reg = MetricsRegistry()
        reg.set("engine.pool.workers", 7)
        with use_registry(reg):
            assert registry_stats()["pool_workers"] == 7


class TestRenderTop:
    def _snap(self, **over):
        snap = {
            "case": "MATMUL40", "backend": "multiprocess", "pid": 123,
            "phase": "execute", "elapsed_s": 2.5, "written_at": time.time(),
            "units": 16, "units_done": 8, "blocks": 1600, "blocks_done": 800,
            "blocks_per_sec": 320.0,
            "leases": {"total": 10, "ok": 8, "inflight": 2, "pending": 6,
                       "expired": 1, "crashed": 1, "dropped": 0},
            "workers": {"101": {"blocks": 500, "units": 5},
                        "102": {"blocks": 300, "units": 3}},
            "registry": {"pool_workers": 4, "pool_spawns": 1,
                         "pool_reuses": 2, "shm_bytes": 3 * 1024 * 1024,
                         "plan_cache_hits": 2, "plan_cache_hit_rate": 0.5,
                         "kernel_cache_hits": 1,
                         "kernel_cache_hit_rate": 1.0},
            "comm_optimality": 1.0, "remote_accesses": 0,
        }
        snap.update(over)
        return snap

    def test_full_frame(self):
        text = render_top(self._snap())
        assert "MATMUL40" in text and "phase execute" in text
        assert "8/16 units, 800/1600 blocks" in text
        assert "320.0 blocks/s" in text
        assert "10 total | 8 ok | 2 inflight" in text
        assert "worker lanes:" in text and "101" in text
        assert "4 workers, 1 spawns, 2 reuses | shm 3.0MiB" in text
        assert "plan cache" in text and "kernel cache" in text
        assert "communication-free" in text
        assert "STALE" not in text

    def test_stale_snapshot_is_labeled(self):
        text = render_top(self._snap(written_at=time.time() - 60))
        assert "STALE" in text

    def test_degraded_gauge_shows_remote_count(self):
        text = render_top(self._snap(comm_optimality=0.6,
                                     remote_accesses=40))
        assert "40 remote accesses" in text
        assert "communication-free" not in text

    def test_minimal_snapshot_renders(self):
        text = render_top({"phase": "plan", "case": "L1"})
        assert "phase plan" in text   # missing sections simply absent


class TestRunTop:
    def test_no_snapshot_is_nonzero(self, tmp_path, capsys):
        out = io.StringIO()
        code = run_top(path=str(tmp_path / "none.json"), iterations=1,
                       out=out)
        assert code == 1
        assert "no snapshot" in capsys.readouterr().err

    def test_once_renders_single_frame(self, tmp_path):
        path = tmp_path / "top.json"
        SnapshotWriter(path).write({"phase": "done", "case": "L1"})
        out = io.StringIO()
        assert run_top(path=str(path), iterations=1, out=out) == 0
        frame = out.getvalue()
        assert "repro top -- L1" in frame
        assert "\x1b[2J" not in frame   # --once never clears the screen

    def test_garbage_snapshot_reads_as_not_yet(self, tmp_path):
        path = tmp_path / "top.json"
        path.write_text("{not json")
        assert read_snapshot(str(path)) is None
        out = io.StringIO()
        assert run_top(path=str(path), iterations=1, out=out) == 1

    def test_scheduler_snapshot_appears_during_real_run(self, tmp_path,
                                                        monkeypatch):
        """An actual multiprocess run publishes execute-phase frames."""
        path = tmp_path / "top.json"
        monkeypatch.setenv(SNAPSHOT_ENV_VAR, str(path))
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        from repro.core import Strategy, build_plan
        from repro.lang import catalog
        from repro.obs import top as topmod
        from repro.runtime.parallel import run_parallel

        # a fresh writer's first maybe_write fires immediately, so even a
        # fast run leaves at least one execute-phase frame behind
        topmod._writer = None   # drop any cached (throttled) writer
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        run_parallel(plan, backend="multiprocess")
        snap = read_snapshot(str(path))
        assert snap is not None
        assert snap["phase"] == "execute"
        assert snap["backend"] == "multiprocess"
        assert snap["blocks"] == len(plan.blocks)
        assert "leases" in snap and "comm_optimality" in snap
        render_top(snap)   # and it renders
