"""SLOs, the EWMA regression watchdog, and the comm-optimality gauge."""

import pytest

from repro.obs.slo import (
    DEFAULT_SLOS,
    MIN_HISTORY,
    SLO,
    comm_optimality,
    evaluate_slos,
    ewma,
    load_slos,
    resolve,
    slo_block,
    watchdog,
)


class TestSLO:
    def test_min_kind(self):
        slo = SLO("tput", "blocks_per_sec", "min", 100.0)
        assert slo.check(150.0) and not slo.check(50.0)
        assert slo.check(100.0)  # boundary is inclusive

    def test_max_kind(self):
        slo = SLO("lat", "plan_ms.p95", "max", 2000.0)
        assert slo.check(100.0) and not slo.check(3000.0)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            SLO("x", "m", "average", 1.0)

    def test_resolve_dotted_paths(self):
        entry = {"plan_ms": {"p95": 1.5}, "blocks_per_sec": 10,
                 "speedup": {"compiled": 30}}
        assert resolve(entry, "plan_ms.p95") == 1.5
        assert resolve(entry, "blocks_per_sec") == 10.0
        assert resolve(entry, "speedup.compiled") == 30.0
        assert resolve(entry, "speedup.missing") is None
        assert resolve(entry, "nope.deep.path") is None
        assert resolve({"s": "text"}, "s") is None

    def test_evaluate_skips_absent_metrics(self):
        results = evaluate_slos({"blocks_per_sec": 50.0})
        names = {r.slo.name for r in results}
        assert "block-throughput" in names
        assert "plan-latency-p95" not in names  # absent metric: no verdict

    def test_evaluate_flags_violations(self):
        entry = {"plan_ms": {"p95": 9999.0}, "blocks_per_sec": 0.1}
        bad = {r.slo.name for r in evaluate_slos(entry) if not r.ok}
        assert bad == {"plan-latency-p95", "block-throughput"}

    def test_describe_marks_verdict(self):
        (r,) = evaluate_slos({"blocks_per_sec": 0.5},
                             [SLO("tput", "blocks_per_sec", "min", 1.0)])
        assert "VIOLATED" in r.describe()
        (ok,) = evaluate_slos({"blocks_per_sec": 5.0},
                              [SLO("tput", "blocks_per_sec", "min", 1.0)])
        assert ok.describe().endswith("ok")

    def test_slo_block_shape(self):
        results = evaluate_slos({"blocks_per_sec": 5.0})
        block = slo_block(results)
        assert block["block-throughput"]["ok"] is True
        assert block["block-throughput"]["value"] == 5.0

    def test_load_slos(self, tmp_path):
        p = tmp_path / "slo.json"
        p.write_text('[{"name": "a", "metric": "m", "kind": "min", '
                     '"threshold": 2.0}]')
        (slo,) = load_slos(str(p))
        assert slo.name == "a" and slo.kind == "min"

    def test_defaults_include_overhead_budget(self):
        by_name = {s.name: s for s in DEFAULT_SLOS}
        assert by_name["obs-overhead"].threshold == 0.02
        assert by_name["obs-overhead"].kind == "max"


class TestWatchdog:
    def _history(self, n, value=10.0, case="MATMUL40-dup"):
        return [{"case": case, "speedup": {"compiled": value},
                 "blocks_per_sec": 100.0} for _ in range(n)]

    def test_ewma_weights_recent(self):
        flat = ewma([10.0] * 5, alpha=0.3)
        assert flat == pytest.approx(10.0)
        rising = ewma([1.0, 1.0, 1.0, 10.0], alpha=0.5)
        assert rising > ewma([10.0, 1.0, 1.0, 1.0], alpha=0.5)

    def test_idle_below_min_history(self):
        hist = self._history(MIN_HISTORY - 1)
        entry = {"case": "MATMUL40-dup", "speedup": {"compiled": 0.1},
                 "blocks_per_sec": 0.1}
        assert watchdog(hist, entry) == []

    def test_flags_a_real_drop(self):
        hist = self._history(6)
        entry = {"case": "MATMUL40-dup", "speedup": {"compiled": 2.0},
                 "blocks_per_sec": 100.0}
        (failure,) = watchdog(hist, entry)
        assert "speedup.compiled" in failure
        assert "below its EWMA" in failure

    def test_passes_within_tolerance(self):
        hist = self._history(6)
        entry = {"case": "MATMUL40-dup", "speedup": {"compiled": 8.0},
                 "blocks_per_sec": 90.0}
        assert watchdog(hist, entry) == []  # 20%/10% dips < 35% tolerance

    def test_improvement_never_flags(self):
        hist = self._history(6)
        entry = {"case": "MATMUL40-dup", "speedup": {"compiled": 50.0},
                 "blocks_per_sec": 900.0}
        assert watchdog(hist, entry) == []

    def test_other_cases_do_not_count(self):
        # enough history, but for a different workload
        hist = self._history(10, case="MATMUL16-dup")
        entry = {"case": "MATMUL40-dup", "speedup": {"compiled": 0.01},
                 "blocks_per_sec": 0.01}
        assert watchdog(hist, entry) == []

    def test_missing_keys_are_skipped(self):
        hist = [{"case": "C", "speedup": {}} for _ in range(8)]
        entry = {"case": "C", "speedup": {"compiled": 1.0}}
        assert watchdog(hist, entry) == []

    def test_tolerance_is_tunable(self):
        hist = self._history(6)
        entry = {"case": "MATMUL40-dup", "speedup": {"compiled": 8.0},
                 "blocks_per_sec": 100.0}
        assert watchdog(hist, entry) == []                     # 20% < 35%
        assert watchdog(hist, entry, rel_tolerance=0.1) != []  # 20% > 10%


class TestCommOptimality:
    def test_zero_remote_is_communication_free(self):
        assert comm_optimality(1000, 0) == 1.0

    def test_fraction_of_remote_traffic(self):
        assert comm_optimality(100, 25) == pytest.approx(0.75)

    def test_no_accesses_reads_optimistic(self):
        assert comm_optimality(0, 0) == 1.0

    def test_clamped_at_zero(self):
        assert comm_optimality(10, 50) == 0.0
