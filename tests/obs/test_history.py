"""Perf history: measurement entries, the JSON-lines file, floor gates."""

import io
import json

import pytest

from repro.obs import history as hist
from repro.obs.metrics import MetricsRegistry, use_registry


def _fake_times():
    return {"interp": 0.100, "compiled": 0.010, "multiprocess": 0.200}


class TestEntries:
    def test_make_entry_computes_speedups(self):
        entry = hist.make_entry(_fake_times(), n=8, repeats=2)
        assert entry["case"] == "MATMUL8-dup"
        assert entry["ms"]["interp"] == 100.0
        assert entry["speedup"]["compiled"] == 10.0
        assert entry["speedup"]["multiprocess"] == 0.5
        assert "interp" not in entry["speedup"]
        assert entry["ts"].endswith("Z")

    def test_measure_engines_produces_real_times(self):
        times = hist.measure_engines(n=4, repeats=1,
                                     backends=["interp", "compiled"])
        assert set(times) == {"interp", "compiled"}
        assert all(t > 0 for t in times.values())

    def test_measure_entry_publishes_perf_metrics(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            entry = hist.measure_entry(n=4, repeats=1)
        assert reg.get("perf.runs").value == 1
        for backend, s in entry["speedup"].items():
            assert reg.get(f"perf.speedup.{backend}").value == s


class TestHistoryFile:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        e1 = hist.make_entry(_fake_times(), n=8, repeats=2)
        assert hist.append_history(e1, path) == 1
        assert hist.append_history(e1, path) == 2
        loaded = hist.load_history(path)
        assert len(loaded) == 2
        assert loaded[0]["case"] == "MATMUL8-dup"

    def test_load_missing_history_is_empty(self, tmp_path):
        assert hist.load_history(tmp_path / "absent.jsonl") == []


class TestBaseline:
    def test_load_baseline_extracts_matmul_case(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps({
            "matmul_n": 8,
            "floors": {"compiled": 5.0},
            "cases": {"MATMUL8-dup": {
                "ms": {"interp": 100.0, "compiled": 10.0},
                "speedup": {"compiled": 10.0},
            }},
        }))
        base = hist.load_baseline(path)
        assert base["case"] == "MATMUL8-dup"
        assert base["floors"] == {"compiled": 5.0}
        assert base["speedup"]["compiled"] == 10.0

    def test_load_missing_baseline_is_none(self, tmp_path):
        assert hist.load_baseline(tmp_path / "absent.json") is None

    def test_committed_baseline_parses(self):
        base = hist.load_baseline()  # the repo's own BENCH_engine.json
        assert base is not None
        assert base["case"] == f"MATMUL{hist.DEFAULT_N}-dup"
        assert "compiled" in base["floors"]


class TestFloorGate:
    def test_check_floors_passes_above(self):
        entry = hist.make_entry(_fake_times(), n=8, repeats=1)
        assert hist.check_floors(entry, {"compiled": 5.0}) == []

    def test_check_floors_fails_below(self):
        entry = hist.make_entry(_fake_times(), n=8, repeats=1)
        failures = hist.check_floors(entry, {"compiled": 100.0})
        assert failures == ["compiled: 10.0x < floor 100.0x"]

    def test_missing_backend_is_not_a_regression(self):
        entry = hist.make_entry({"interp": 0.1, "compiled": 0.01}, 8, 1)
        assert hist.check_floors(entry, {"vectorized": 20.0}) == []

    def test_render_table_marks_regressions(self):
        entry = hist.make_entry(_fake_times(), n=8, repeats=1)
        table = hist.render_perf_table(
            entry, {"speedup": {"compiled": 12.0}}, {"compiled": 100.0})
        assert "REGRESSION" in table
        assert "-2.0" in table   # delta vs baseline speedup


class TestPerfCli:
    def _run(self, argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_perf_appends_a_nonempty_entry(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        code, text = self._run(["perf", "--n", "4", "--repeats", "1",
                                "--history", str(path)])
        assert code == 0
        (entry,) = hist.load_history(path)
        assert entry["ms"] and entry["speedup"]
        assert "entry 1" in text

    def test_perf_check_fails_on_injected_regression(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        code, text = self._run(["perf", "--n", "4", "--repeats", "1",
                                "--history", str(path), "--check",
                                "--floor", "compiled=1000000"])
        assert code == 1
        assert "perf regression" in text
        assert "compiled" in text
        # the failing run is still recorded in the history
        assert len(hist.load_history(path)) == 1

    def test_perf_check_passes_without_floors(self, tmp_path):
        # n != baseline n, so committed floors don't apply
        code, text = self._run(["perf", "--n", "4", "--repeats", "1",
                                "--history", str(tmp_path / "h.jsonl"),
                                "--check"])
        assert code == 0
        assert "perf floors: PASS" in text

    def test_bad_floor_spec_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            self._run(["perf", "--n", "4", "--repeats", "1",
                       "--history", str(tmp_path / "h.jsonl"),
                       "--floor", "compiled"])
