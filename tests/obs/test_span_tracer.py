"""Span tracer: null fast path, nesting, errors, scoping."""

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    current_tracer,
    use_tracer,
)


class TestNullPath:
    def test_default_tracer_is_disabled(self):
        assert current_tracer() is NULL_TRACER
        assert not current_tracer().enabled

    def test_disabled_span_is_the_shared_singleton(self):
        t = Tracer(enabled=False)
        assert t.span("anything", category="x", a=1) is NULL_SPAN
        assert t.span("other") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as sp:
            assert sp is NULL_SPAN
            assert sp.set(a=1, b=2) is NULL_SPAN
            assert sp.recording is False

    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        with t.span("a"):
            t.event("e")
        assert t.spans == [] and t.events == []


class TestRecording:
    def test_span_fields(self):
        t = Tracer()
        with t.span("work", category="test", n=3) as sp:
            assert sp.recording
        (s,) = t.spans
        assert s.name == "work"
        assert s.category == "test"
        assert s.attributes["n"] == 3
        assert s.duration_ns >= 0
        assert s.parent_id is None

    def test_nesting_records_parents(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                with t.span("leaf") as leaf:
                    pass
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id
        # children finish (and are appended) before their parents
        assert [s.name for s in t.spans] == ["leaf", "inner", "outer"]

    def test_set_attaches_attributes(self):
        t = Tracer()
        with t.span("s") as sp:
            sp.set(outcome="hit").set(extra=1)
        assert t.spans[0].attributes == {"outcome": "hit", "extra": 1}

    def test_exception_recorded_and_propagated(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("nope")
        (s,) = t.spans
        assert s.error == "ValueError: nope"

    def test_event_attaches_to_open_span(self):
        t = Tracer()
        with t.span("ctx") as sp:
            t.event("hit", category="cache", key="k")
        (e,) = t.events
        assert e.span_id == sp.span_id
        assert e.attributes == {"key": "k"}

    def test_event_without_open_span(self):
        t = Tracer()
        t.event("orphan")
        assert t.events[0].span_id is None

    def test_find_and_categories(self):
        t = Tracer()
        with t.span("a", category="one"):
            pass
        with t.span("b", category="two"):
            pass
        assert [s.name for s in t.find(category="one")] == ["a"]
        assert [s.name for s in t.find(name="b")] == ["b"]
        assert t.categories() == {"one", "two"}

    def test_clear(self):
        t = Tracer()
        with t.span("a"):
            t.event("e")
        t.clear()
        assert t.spans == [] and t.events == []

    def test_span_ids_are_unique(self):
        t = Tracer()
        for _ in range(5):
            with t.span("x"):
                pass
        ids = [s.span_id for s in t.spans]
        assert len(set(ids)) == 5


class TestScoping:
    def test_use_tracer_scopes_and_restores(self):
        t = Tracer()
        assert current_tracer() is NULL_TRACER
        with use_tracer(t) as active:
            assert active is t
            assert current_tracer() is t
        assert current_tracer() is NULL_TRACER

    def test_instrumented_call_sites_see_the_scoped_tracer(self):
        from repro.runtime.engine import resolve_engine

        t = Tracer()
        with use_tracer(t):
            resolve_engine("interp")
        (s,) = t.find("engine.resolve")
        assert s.attributes["requested"] == "interp"
        assert s.attributes["resolved"] == "interp"
