"""Cross-process aggregation: worker lanes, merged counters, degradation."""

import json

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.obs.aggregate import WorkerObs, capture_worker_obs, merge_worker_obs
from repro.obs.export import chrome_trace
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.schema import validate_chrome_trace
from repro.obs.trace import Event, Span, Tracer, use_tracer
from repro.runtime.parallel import run_parallel


def _worker_obs(pid=4242):
    """A hand-built worker delta: a parent span, a child, an event."""
    obs = WorkerObs(pid=pid)
    obs.spans = [
        Span(name="engine.chunk", category="engine", span_id=0,
             parent_id=None, start_ns=100, duration_ns=50),
        Span(name="engine.block", category="engine", span_id=1,
             parent_id=0, start_ns=110, duration_ns=20),
    ]
    obs.events = [Event(name="worker.note", category="engine", ts_ns=115,
                        span_id=1)]
    reg = MetricsRegistry()
    reg.inc("engine.worker.blocks", 3)
    reg.histogram("worker.h").observe(5.0)
    obs.metrics = [reg.get(n) for n in reg.names()]
    return obs


class TestMergeWorkerObs:
    def test_spans_are_remapped_and_rehomed(self):
        tracer = Tracer(enabled=True)
        with tracer.span("engine.fanout") as fsp:
            pass
        merge_worker_obs(tracer, MetricsRegistry(), _worker_obs(),
                         ts_offset_ns=1000, parent_span_id=fsp.span_id)
        adopted = [s for s in tracer.spans if s.pid == 4242]
        assert len(adopted) == 2
        chunk = next(s for s in adopted if s.name == "engine.chunk")
        block = next(s for s in adopted if s.name == "engine.block")
        # worker root hangs off the fan-out span; child keeps its parent
        assert chunk.parent_id == fsp.span_id
        assert block.parent_id == chunk.span_id
        assert chunk.span_id != 0   # remapped past local ids
        assert chunk.start_ns == 1100 and block.start_ns == 1110
        assert block.duration_ns == 20

    def test_events_follow_their_spans(self):
        tracer = Tracer(enabled=True)
        merge_worker_obs(tracer, MetricsRegistry(), _worker_obs())
        (evt,) = tracer.events
        assert evt.pid == 4242
        block = next(s for s in tracer.spans if s.name == "engine.block")
        assert evt.span_id == block.span_id

    def test_metrics_merge_counters_and_histograms(self):
        reg = MetricsRegistry()
        reg.inc("engine.worker.blocks", 2)
        reg.histogram("worker.h").observe(0.5)
        merge_worker_obs(Tracer(enabled=False), reg, _worker_obs())
        assert reg.get("engine.worker.blocks").value == 5
        h = reg.get("worker.h")
        assert h.count == 2
        assert h.total == 5.5

    def test_disabled_tracer_still_merges_metrics(self):
        tracer = Tracer(enabled=False)
        reg = MetricsRegistry()
        merge_worker_obs(tracer, reg, _worker_obs())
        assert tracer.spans == []
        assert reg.get("engine.worker.blocks").value == 3

    def test_capture_round_trips_through_pickle(self):
        import pickle

        tracer = Tracer(enabled=True)
        with tracer.span("w", category="engine"):
            tracer.event("e", category="engine")
        reg = MetricsRegistry()
        reg.inc("c", 2)
        obs = pickle.loads(pickle.dumps(capture_worker_obs(tracer, reg)))
        assert [s.name for s in obs.spans] == ["w"]
        assert [e.name for e in obs.events] == ["e"]
        assert obs.metrics[0].value == 2


class TestMultiprocessLanes:
    @pytest.fixture()
    def traced_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        # static mode: exactly one lease per worker, so the lane/counter
        # arithmetic below is deterministic
        monkeypatch.setenv("REPRO_SCHED", "static")
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        tracer = Tracer(enabled=True)
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            result = run_parallel(plan, backend="multiprocess")
        return plan, tracer, registry, result

    def test_trace_has_one_lane_per_worker(self, traced_run):
        plan, tracer, _, result = traced_run
        assert result.backend == "multiprocess"
        worker_pids = {s.pid for s in tracer.spans if s.pid is not None}
        assert len(worker_pids) == 2
        assert tracer.pid not in worker_pids

    def test_worker_span_totals_equal_parent_aggregates(self, traced_run):
        plan, tracer, registry, _ = traced_run
        worker_blocks = [s for s in tracer.spans
                         if s.name == "engine.block" and s.pid is not None]
        assert len(worker_blocks) == len(plan.blocks)
        assert registry.get("engine.worker.blocks").value == len(plan.blocks)
        assert registry.get("engine.worker.chunks").value == 2
        assert registry.get("engine.worker.executed_iterations").value \
            == sum(len(b.iterations) for b in plan.blocks)

    def test_worker_spans_nest_under_the_scheduler_span(self, traced_run):
        _, tracer, _, _ = traced_run
        (sched,) = [s for s in tracer.spans if s.name == "scheduler.run"]
        roots = [s for s in tracer.spans
                 if s.pid is not None and s.parent_id == sched.span_id]
        assert len(roots) >= 2   # at least one root span per worker

    def test_chrome_trace_is_schema_valid_with_lanes(self, traced_run):
        _, tracer, _, _ = traced_run
        doc = json.loads(json.dumps(chrome_trace(tracer)))
        assert validate_chrome_trace(doc) == []
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(pids) == 3   # parent + 2 workers


class TestDegradation:
    def test_pool_failure_degrades_with_counter_and_event(self, monkeypatch,
                                                          capsys):
        import repro.runtime.engine.multiproc as mp

        class BrokenPool:
            def __init__(self, *a, **k):
                raise OSError("no fork for you")

        monkeypatch.setattr("concurrent.futures.ProcessPoolExecutor",
                            BrokenPool)
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        tracer = Tracer(enabled=True)
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            result = run_parallel(plan, backend="multiprocess")
        # the run still completes, in-process, and says so loudly
        assert result.remote_accesses == 0
        assert registry.get("engine.multiproc.degraded").value == 1
        (evt,) = [e for e in tracer.events
                  if e.name == "engine.multiproc.degraded"]
        assert "OSError" in evt.attributes["reason"]
        assert "degrading to the compiled tier" in capsys.readouterr().err


class TestConcurrentMerge:
    """Id remapping under concurrent merges: no collisions, stable trees."""

    N_WORKERS = 8
    SPANS_EACH = 25

    def _obs(self, pid):
        obs = WorkerObs(pid=pid)
        # one root plus a chain of children, all with *overlapping* local
        # ids (every worker numbers its spans 0..n-1)
        obs.spans = [Span(name=f"w{pid}.s{i}", category="engine", span_id=i,
                          parent_id=(i - 1 if i else None),
                          start_ns=100 + i, duration_ns=1)
                     for i in range(self.SPANS_EACH)]
        obs.events = [Event(name=f"w{pid}.evt", category="engine",
                            ts_ns=200, span_id=self.SPANS_EACH - 1)]
        return obs

    def test_reserve_ids_is_atomic_across_threads(self):
        import threading

        tracer = Tracer(enabled=True)
        got = []
        barrier = threading.Barrier(self.N_WORKERS)

        def grab():
            barrier.wait()
            for _ in range(50):
                got.append(tracer.reserve_ids(3))

        threads = [threading.Thread(target=grab)
                   for _ in range(self.N_WORKERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        blocks = sorted(got)
        # every reserved block of 3 is disjoint from every other
        assert len(blocks) == self.N_WORKERS * 50
        assert all(b + 3 <= nxt for b, nxt in zip(blocks, blocks[1:]))

    def test_concurrent_merges_never_collide_and_keep_parenting(self):
        import threading

        tracer = Tracer(enabled=True)
        registry = MetricsRegistry()
        with tracer.span("scheduler.run") as root:
            parent_id = root.span_id
        barrier = threading.Barrier(self.N_WORKERS)

        def merge(pid):
            barrier.wait()
            merge_worker_obs(tracer, registry, self._obs(pid),
                             parent_span_id=parent_id)

        threads = [threading.Thread(target=merge, args=(pid,))
                   for pid in range(self.N_WORKERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        merged = [s for s in tracer.spans if s.span_id != parent_id]
        assert len(merged) == self.N_WORKERS * self.SPANS_EACH
        ids = [s.span_id for s in merged]
        assert len(ids) == len(set(ids)), "remapped span ids collided"

        by_id = {s.span_id: s for s in tracer.spans}
        for s in merged:
            i = int(s.name.split(".s")[1])
            if i == 0:
                # worker roots re-home under the fan-out span
                assert s.parent_id == parent_id
            else:
                # chain intact: parent is the same worker's previous span
                parent = by_id[s.parent_id]
                assert parent.pid == s.pid
                assert parent.name == f"w{s.pid}.s{i - 1}"

        # every event followed its own worker's last span
        for e in tracer.events:
            owner = by_id[e.span_id]
            assert owner.name == f"w{owner.pid}.s{self.SPANS_EACH - 1}"
