"""The flight recorder: ring semantics, dumps, the post-mortem render."""

import json

import pytest

from repro.obs.flight import (
    BLACKBOX_PREFIX,
    FlightRecorder,
    dump_blackbox,
    flight,
    latest_blackbox,
    load_blackbox,
    render_blackbox,
)
from repro.obs.metrics import MetricsRegistry


class TestRing:
    def test_bounded_keeps_newest(self):
        fr = FlightRecorder(capacity=16, enabled=True)
        for i in range(40):
            fr.record("event", f"e{i}")
        assert len(fr) == 16
        names = [name for _, _, name, _ in fr.entries()]
        assert names[0] == "e24" and names[-1] == "e39"

    def test_capacity_floor(self):
        assert FlightRecorder(capacity=1, enabled=True).capacity == 16

    def test_disabled_records_nothing(self):
        fr = FlightRecorder(capacity=64, enabled=False)
        fr.record("event", "x")
        fr.error("boom", ValueError("v"))
        with fr.span("region"):
            pass
        assert len(fr) == 0

    def test_env_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT", "0")
        assert not FlightRecorder().enabled
        monkeypatch.setenv("REPRO_FLIGHT", "1")
        assert FlightRecorder().enabled

    def test_env_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_CAPACITY", "128")
        assert FlightRecorder().capacity == 128

    def test_span_records_duration_and_error(self):
        fr = FlightRecorder(capacity=64, enabled=True)
        with fr.span("fine", tag=1):
            pass
        with pytest.raises(RuntimeError):
            with fr.span("bad"):
                raise RuntimeError("boom")
        (fine, bad) = fr.entries()
        assert fine[1] == "span" and fine[3]["dur_us"] >= 0
        assert fine[3]["tag"] == 1
        assert bad[3]["error"] == "RuntimeError: boom"

    def test_timestamps_monotone(self):
        fr = FlightRecorder(capacity=64, enabled=True)
        for i in range(5):
            fr.record("event", f"e{i}")
        stamps = [ts for ts, _, _, _ in fr.entries()]
        assert stamps == sorted(stamps)

    def test_process_recorder_is_always_on_by_default(self):
        assert flight() is flight()
        assert isinstance(flight(), FlightRecorder)


class TestDump:
    def _recorder(self):
        fr = FlightRecorder(capacity=64, enabled=True)
        fr.record("event", "scheduler.start", units=4)
        fr.record("lease", "submit", unit=0, attempt=1, fault="crash")
        fr.record("lease", "retry", unit=0, attempt=2,
                  reason="worker crashed")
        fr.error("scheduler.abort", RuntimeError("collapse"))
        return fr

    def test_roundtrip(self, tmp_path):
        fr = self._recorder()
        reg = MetricsRegistry()
        reg.inc("scheduler.retries", 2)
        path = str(tmp_path / "bb.json")
        assert fr.dump("it died", path=path, registry=reg) == path
        doc = load_blackbox(path)
        assert doc["blackbox"] == 1
        assert doc["reason"] == "it died"
        assert len(doc["entries"]) == 4
        assert doc["entries"][1]["kind"] == "lease"
        assert doc["entries"][1]["data"]["fault"] == "crash"
        assert doc["metrics"]["scheduler.retries"]["value"] == 2

    def test_dump_disabled_returns_none(self, tmp_path):
        fr = FlightRecorder(capacity=64, enabled=False)
        assert fr.dump("x", path=str(tmp_path / "bb.json")) is None

    def test_dump_names_land_in_blackbox_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BLACKBOX_DIR", str(tmp_path))
        fr = self._recorder()
        path = fr.dump("reason", registry=MetricsRegistry())
        assert path is not None
        assert path.startswith(str(tmp_path))
        assert BLACKBOX_PREFIX in path
        # consecutive dumps from one process get distinct names
        path2 = fr.dump("reason", registry=MetricsRegistry())
        assert path2 != path

    def test_extra_payload_is_merged(self, tmp_path):
        fr = self._recorder()
        path = str(tmp_path / "bb.json")
        fr.dump("r", path=path, extra={"scheduler": {"units": 4}},
                registry=MetricsRegistry())
        assert load_blackbox(path)["scheduler"] == {"units": 4}

    def test_load_rejects_non_blackbox(self, tmp_path):
        p = tmp_path / "not.json"
        p.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            load_blackbox(str(p))

    def test_latest_picks_newest(self, tmp_path):
        import os
        import time

        for i, stamp in enumerate((100, 300, 200)):
            p = tmp_path / f"{BLACKBOX_PREFIX}1-{i}.json"
            p.write_text('{"blackbox": 1}')
            t = time.time() - 1000 + stamp
            os.utime(p, (t, t))
        assert latest_blackbox(str(tmp_path)).endswith("-1.json")

    def test_latest_none_when_empty(self, tmp_path):
        assert latest_blackbox(str(tmp_path)) is None

    def test_dump_blackbox_announces_on_stderr(self, tmp_path, monkeypatch,
                                               capsys):
        monkeypatch.setenv("REPRO_BLACKBOX_DIR", str(tmp_path))
        flight().record("event", "poke")
        path = dump_blackbox("unit-test reason")
        err = capsys.readouterr().err
        assert path in err and "unit-test reason" in err
        # the notice must not collide with the CLI's "repro: <reason>"
        # failure-line contract
        assert not any(ln.startswith("repro: ")
                       for ln in err.splitlines())


class TestRender:
    def _doc(self, tmp_path):
        fr = FlightRecorder(capacity=64, enabled=True)
        fr.record("event", "scheduler.start", units=2)
        fr.record("lease", "submit", unit=0, attempt=1, fault="crash")
        fr.record("lease", "retry", unit=0, attempt=2,
                  reason="worker crashed")
        fr.error("scheduler.abort", RuntimeError("gone"))
        reg = MetricsRegistry()
        reg.inc("scheduler.crashes", 1)
        reg.observe("pipeline.pass.seconds.partition", 0.004)
        path = str(tmp_path / "bb.json")
        fr.dump("SchedulerError: unit 0 not recovered", path=path,
                registry=reg,
                extra={"scheduler": {
                    "units": 2, "completed_units": 1, "retries": 1,
                    "respawns": 1,
                    "leases": [{"unit": 0, "attempt": 1, "start_ms": 1.0,
                                "end_ms": 2.0, "outcome": "crash",
                                "fault": "crash"}],
                }})
        return load_blackbox(path)

    def test_renders_tail_leases_metrics_errors(self, tmp_path):
        text = render_blackbox(self._doc(tmp_path))
        assert "SchedulerError: unit 0 not recovered" in text
        assert "last 4 entries" in text
        assert "lease timeline (1/2 units recovered, 1 retries" in text
        assert "unit   0 attempt 1" in text
        assert "scheduler.crashes: 1" in text
        assert "pipeline.pass.seconds.partition: count=1" in text
        assert "errors recorded: 1" in text
        assert "RuntimeError: gone" in text

    def test_render_last_limits_tail(self, tmp_path):
        doc = self._doc(tmp_path)
        text = render_blackbox(doc, last=2)
        assert "last 2 entries (of 4 kept)" in text

    def test_render_falls_back_to_lease_entries(self, tmp_path):
        doc = self._doc(tmp_path)
        del doc["scheduler"]
        text = render_blackbox(doc)
        assert "lease transitions (2):" in text
        assert "fault=crash" in text

    def test_rendered_doc_is_json_clean(self, tmp_path):
        # the whole doc survives a JSON round-trip (no stray types)
        doc = self._doc(tmp_path)
        assert json.loads(json.dumps(doc)) == doc


class TestSchedulerDump:
    def test_unrecovered_chaos_leaves_a_blackbox(self, tmp_path,
                                                 monkeypatch, capsys):
        """A chaos run the scheduler cannot absorb dumps before raising."""
        monkeypatch.setenv("REPRO_BLACKBOX_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_MP_WORKERS", "1")
        monkeypatch.setenv("REPRO_SCHED_ATTEMPTS", "2")
        from repro.core import Strategy, build_plan
        from repro.lang import catalog
        from repro.runtime.parallel import run_parallel
        from repro.runtime.scheduler import (
            FaultPlan,
            SchedulerError,
            use_fault_plan,
        )

        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        with use_fault_plan(FaultPlan.parse(
                "crash-prob=1,shield-final=0,seed=1")):
            with pytest.raises(SchedulerError):
                run_parallel(plan, backend="multiprocess")
        capsys.readouterr()
        path = latest_blackbox(str(tmp_path))
        assert path is not None
        doc = load_blackbox(path)
        assert "SchedulerError" in doc["reason"]
        assert doc["scheduler"]["leases"], "lease timeline missing"
        kinds = {e["kind"] for e in doc["entries"]}
        assert "lease" in kinds and "error" in kinds
        # and the post-mortem renders without a re-run
        text = render_blackbox(doc)
        assert "lease timeline" in text
