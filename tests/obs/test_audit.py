"""The communication audit: static replay, attribution, reconciliation."""

import io
import json
import pathlib
import re

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.obs.audit import (
    THEOREMS,
    audit_plan,
    inject_violation,
    render_audit_dashboard,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import Tracer, use_tracer
from repro.runtime import numpy_compat as npc
from repro.runtime.engine.base import available_backends

ALL_BACKENDS = ("interp", "compiled", "vectorized", "multiprocess")

#: certified example plans: (id, nest factory, plan kwargs, theorem)
PLANS = [
    ("L1-nondup", catalog.l1, dict(), 1),
    ("L1-dup", catalog.l1, dict(strategy=Strategy.DUPLICATE), 2),
    ("L2-dup", catalog.l2, dict(strategy=Strategy.DUPLICATE), 2),
    ("L3-elim", catalog.l3, dict(eliminate_redundant=True), 3),
    ("L3-dup-elim", catalog.l3,
     dict(strategy=Strategy.DUPLICATE, eliminate_redundant=True), 4),
    ("L4-nondup", catalog.l4, dict(), 1),
    ("STENCIL2D-nondup", catalog.stencil2d, dict(), 1),
]


def _plan(spec):
    _, factory, kwargs, _ = spec
    return build_plan(factory(), **kwargs)


class TestStaticReplay:
    @pytest.mark.parametrize("spec", PLANS, ids=[s[0] for s in PLANS])
    def test_example_plans_have_zero_cross_block_accesses(self, spec):
        report = audit_plan(_plan(spec), run_engines=False)
        assert report.cross_block_accesses == 0
        assert report.communication_free
        assert report.certified
        assert report.violations == []

    @pytest.mark.parametrize("spec", PLANS, ids=[s[0] for s in PLANS])
    def test_theorem_mapping(self, spec):
        report = audit_plan(_plan(spec), run_engines=False)
        assert report.theorem == spec[3]

    def test_totals_count_every_live_access(self):
        # L1: 2 statements x 16 iterations, S1 has 1 read, S2 has 2
        report = audit_plan(build_plan(catalog.l1()), run_engines=False)
        assert report.executed_computations == 32
        assert report.total_writes == 32     # one write per statement
        assert report.total_reads == 48      # 16*1 + 16*2
        assert report.executed_iterations == 16

    def test_elimination_shrinks_the_footprint(self):
        full = audit_plan(build_plan(catalog.l3()), run_engines=False)
        elim = audit_plan(build_plan(catalog.l3(), eliminate_redundant=True),
                          run_engines=False)
        assert elim.executed_computations < full.executed_computations
        assert elim.total_accesses < full.total_accesses
        assert elim.communication_free

    def test_footprints_partition_the_accesses(self):
        plan = build_plan(catalog.l1(), strategy=Strategy.DUPLICATE)
        report = audit_plan(plan, run_engines=False)
        assert sum(fp.reads for fp in report.footprints.values()) \
            == report.total_reads
        assert sum(fp.writes for fp in report.footprints.values()) \
            == report.total_writes
        # every touched element is inside the block's data block
        for (blk, name), fp in report.footprints.items():
            allocated = plan.data_blocks[name][blk].elements
            assert fp.elements <= allocated

    def test_duplicate_footprints_overlap_elements(self):
        # Definition 5: under the duplicate strategy the same element
        # may legitimately live in (and be read by) several blocks.
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        report = audit_plan(plan, run_engines=False)
        assert report.cross_block_accesses == 0
        seen = {}
        overlapped = False
        for (blk, name), fp in report.footprints.items():
            for e in fp.elements:
                if (name, e) in seen and seen[(name, e)] != blk:
                    overlapped = True
                seen.setdefault((name, e), blk)
        assert overlapped

    def test_publishes_audit_metrics(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            audit_plan(build_plan(catalog.l1()), run_engines=False)
        assert reg.get("audit.runs").value == 1
        assert reg.get("audit.cross_block_accesses").value == 0
        assert reg.get("audit.certified").value == 1
        assert reg.get("audit.theorem").value == 1


class TestEngineReconciliation:
    @pytest.mark.parametrize("spec", PLANS[:4], ids=[s[0] for s in PLANS[:4]])
    def test_all_available_engines_reconcile(self, spec):
        report = audit_plan(_plan(spec), backends=ALL_BACKENDS)
        ran = set(report.engine_runs)
        assert {"interp", "compiled", "multiprocess"} <= ran
        if npc.have_numpy():
            assert "vectorized" in ran
        for run in report.engine_runs.values():
            assert run.completed, run.aborted
            assert run.remote_accesses == 0
            assert run.matches_static, (run.reads, run.writes,
                                        report.total_reads,
                                        report.total_writes)
        assert report.certified

    def test_counters_equal_static_totals(self):
        report = audit_plan(build_plan(catalog.l2(),
                                       strategy=Strategy.DUPLICATE),
                            backends=["interp"])
        run = report.engine_runs["interp"]
        assert run.reads == report.total_reads
        assert run.writes == report.total_writes
        assert run.executed_iterations == report.executed_iterations

    def test_unavailable_backend_records_resolved_engine(self, monkeypatch):
        from repro.runtime.engine import vectorized as vec

        monkeypatch.setattr(vec.VectorizedEngine, "is_available",
                            classmethod(lambda cls: False))
        report = audit_plan(build_plan(catalog.l1()),
                            backends=["vectorized"])
        (run,) = report.engine_runs.values()
        assert run.backend == "vectorized"
        assert run.resolved == "compiled"
        assert run.ok


class TestInjectedViolation:
    def _broken_report(self, **plan_kwargs):
        plan = build_plan(catalog.l1(), **plan_kwargs)
        return audit_plan(inject_violation(plan), backends=["interp"])

    def test_static_replay_finds_the_violations(self):
        report = self._broken_report(strategy=Strategy.DUPLICATE)
        assert report.cross_block_accesses > 0
        assert not report.communication_free
        assert not report.certified
        assert report.violations

    def test_violation_names_array_reference_pair_and_r(self):
        report = self._broken_report(strategy=Strategy.DUPLICATE)
        v = report.violations[0]
        assert v.array == "A"
        assert "A[2 * i - 2, j - 1]" in v.reference
        assert "A[2 * i, j]" in v.owner_reference
        # r = c - c' between the two references (Definition 1)
        assert v.r == (-2, -1)
        # the iteration offset escaping the (broken) partitioning space
        assert v.delta is not None
        assert v.delta_in_psi is False
        assert v.owner_block != v.block

    def test_verdict_is_self_contained(self):
        report = self._broken_report(strategy=Strategy.DUPLICATE)
        verdict = report.verdict()
        assert "VIOLATED" in verdict
        assert "A[2 * i - 2, j - 1]" in verdict
        assert "A[2 * i, j]" in verdict
        assert "r = [-2, -1]" in verdict
        assert "delta in Psi: no" in verdict

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_every_engine_aborts_on_the_broken_plan(self, backend):
        plan = inject_violation(build_plan(catalog.l1(),
                                           strategy=Strategy.DUPLICATE))
        report = audit_plan(plan, backends=[backend])
        (run,) = report.engine_runs.values()
        assert not run.completed
        assert "remote access" in run.aborted
        assert run.remote_accesses == 1

    def test_detail_cap_does_not_cap_the_count(self):
        plan = inject_violation(build_plan(catalog.l1(),
                                           strategy=Strategy.DUPLICATE))
        report = audit_plan(plan, run_engines=False, max_detail=2)
        assert len(report.violations) == 2
        assert report.cross_block_accesses > 2

    def test_to_dict_round_trips_through_json(self):
        report = self._broken_report(strategy=Strategy.DUPLICATE)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["certified"] is False
        assert data["cross_block_accesses"] == report.cross_block_accesses
        assert data["violations"][0]["r"] == [-2, -1]
        assert data["engine_runs"]["interp"]["completed"] is False


class TestTheoremTable:
    def test_covers_all_four_combinations(self):
        assert set(THEOREMS.values()) == {1, 2, 3, 4}
        assert len(THEOREMS) == 4


GOLDEN = pathlib.Path(__file__).parent.parent / "golden" / "audit_l1.txt"


def _mask_ms(text: str) -> str:
    return re.sub(r"\d+\.\d{3}", "X.XXX", text)


class TestDashboardGolden:
    def regenerate(self):  # python -c "...; TestDashboardGolden().regenerate()"
        GOLDEN.write_text(self._render() + "\n")

    def _render(self) -> str:
        from repro.cli import main

        out = io.StringIO()
        code = main(["audit", "--loop", "L1", "--duplicate", "--static"],
                    out=out)
        assert code == 0
        return _mask_ms(out.getvalue().rstrip("\n"))

    def test_dashboard_matches_golden(self):
        assert self._render() == GOLDEN.read_text().rstrip("\n"), \
            "audit dashboard changed; regenerate tests/golden/audit_l1.txt " \
            "if intended"

    def test_dashboard_shows_violations_section(self):
        plan = inject_violation(build_plan(catalog.l1(),
                                           strategy=Strategy.DUPLICATE))
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            report = audit_plan(plan, backends=["interp"])
        text = render_audit_dashboard(report, spans=tracer.spans)
        assert "-- violations (showing" in text
        assert "-- engine reconciliation --" in text
        assert "aborted" in text
        assert "verdict: VIOLATED" in text
        assert "-- span rollup --" in text

    def test_dashboard_heatmap_limits(self):
        # 3-deep nests have no rank-2 iteration rendering but rank-2
        # arrays (matmul C/A/B) still get heatmaps
        plan = build_plan(catalog.l5(), strategy=Strategy.DUPLICATE)
        report = audit_plan(plan, run_engines=False)
        text = render_audit_dashboard(report, spans=[])
        assert "access heatmap" in text
