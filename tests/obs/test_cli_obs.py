"""CLI observability flags: --trace, --metrics, --metrics-out, --events."""

import io
import json

from repro.cli import main
from repro.obs import validate_chrome_trace


def run(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestTraceFlag:
    def test_verify_trace_is_valid_and_covers_layers(self, tmp_path):
        path = tmp_path / "trace.json"
        code, text = run("verify", "--loop", "L1", "--trace", str(path))
        assert code == 0 and "OK" in text
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert {"cli", "engine", "runtime"} <= cats
        names = {e["name"] for e in doc["traceEvents"]}
        assert "engine.block" in names          # per-block engine spans
        assert "engine.resolve" in names
        assert "cli.verify" in names

    def test_report_trace_has_pipeline_engine_machine(self, tmp_path):
        from repro.pipeline import PLAN_CACHE

        PLAN_CACHE.clear()
        path = tmp_path / "trace.json"
        code, _ = run("report", "--loop", "L1", "-p", "4",
                      "--trace", str(path))
        assert code == 0
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert {"pipeline", "engine", "machine", "cache"} <= cats
        names = {e["name"] for e in doc["traceEvents"]}
        assert any(n.startswith("pass:") for n in names)
        assert "engine.block" in names
        assert "machine.distribute" in names

    def test_no_trace_flag_writes_nothing(self, tmp_path):
        code, _ = run("verify", "--loop", "L1")
        assert code == 0
        assert list(tmp_path.iterdir()) == []


class TestMetricsFlags:
    def test_metrics_prints_prometheus_text(self):
        code, text = run("verify", "--loop", "L1", "--metrics")
        assert code == 0
        assert "# TYPE runtime_remote_accesses gauge" in text
        assert "runtime_remote_accesses 0" in text
        assert "# TYPE verify_runs counter" in text

    def test_metrics_out_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        code, _ = run("verify", "--loop", "L1", "--metrics-out", str(path))
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["runtime.remote_accesses"]["value"] == 0
        assert doc["verify.runs"]["value"] == 1

    def test_metrics_out_text(self, tmp_path):
        path = tmp_path / "metrics.prom"
        code, _ = run("verify", "--loop", "L1", "--metrics-out", str(path))
        assert code == 0
        assert "runtime_remote_accesses 0" in path.read_text()

    def test_report_metrics_include_all_three_systems(self, tmp_path):
        path = tmp_path / "m.json"
        code, _ = run("report", "--loop", "L1", "-p", "4",
                      "--metrics-out", str(path))
        assert code == 0
        doc = json.loads(path.read_text())
        # pipeline (Instrumentation), runtime (ParallelResult),
        # machine (MachineStats) all land in one registry
        assert any(k.startswith("pipeline.pass.seconds.") for k in doc)
        assert "runtime.remote_accesses" in doc
        assert "machine.makespan" in doc

    def test_metrics_scoped_per_invocation(self, tmp_path):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        run("verify", "--loop", "L1", "--metrics-out", str(p1))
        run("verify", "--loop", "L1", "--metrics-out", str(p2))
        d1 = json.loads(p1.read_text())
        d2 = json.loads(p2.read_text())
        # fresh registry per command: counters do not leak across runs
        assert d1["verify.runs"]["value"] == 1
        assert d2["verify.runs"]["value"] == 1


class TestEventsFlag:
    def test_event_log_lines_parse(self, tmp_path):
        path = tmp_path / "events.jsonl"
        code, _ = run("verify", "--loop", "L1", "--events", str(path))
        assert code == 0
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert lines
        assert all(ln["type"] in ("span", "event") for ln in lines)
        assert any(ln["name"] == "cli.verify" for ln in lines)


class TestObservabilityReportSection:
    def test_report_renders_registry(self):
        code, text = run("report", "--loop", "L1", "-p", "4", "--metrics")
        assert code == 0
        assert "=== observability ===" in text
        assert "gauge runtime.remote_accesses: 0" in text
        assert "=== simulated machine (p=4) ===" in text
        assert "communication-free: True" in text
