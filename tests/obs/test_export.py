"""Exporters and the in-tree Chrome-trace schema check."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    event_log_lines,
    metrics_json,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_event_log,
    write_metrics,
)
from repro.obs.schema import main as schema_main


def traced():
    t = Tracer()
    with t.span("outer", category="pipeline", n=1):
        with t.span("inner", category="engine") as sp:
            sp.set(blocks=4)
        t.event("decision", category="cache", outcome="hit")
    return t


class TestChromeTrace:
    def test_span_becomes_complete_event(self):
        doc = chrome_trace(traced())
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ph"] == "X" and inner["ph"] == "X"
        assert outer["cat"] == "pipeline"
        assert inner["args"]["blocks"] == 4
        assert "parent_span" in inner["args"]      # nested under outer
        assert "parent_span" not in outer["args"]  # root span
        assert inner["ts"] >= outer["ts"]
        assert doc["displayTimeUnit"] == "ms"

    def test_instant_event(self):
        doc = chrome_trace(traced())
        (evt,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert evt["name"] == "decision"
        assert evt["cat"] == "cache.event"
        assert evt["args"]["outcome"] == "hit"

    def test_error_lands_in_args(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("bad"):
                raise RuntimeError("x")
        doc = chrome_trace(t)
        (bad,) = [e for e in doc["traceEvents"] if e["name"] == "bad"]
        assert bad["args"]["error"] == "RuntimeError: x"

    def test_roundtrip_validates(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced(), str(path))
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

    def test_metadata_names_lanes(self):
        t = traced()
        doc = chrome_trace(t)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta, "expected process_name/thread_name metadata events"
        # metadata leads the stream so viewers label lanes up front
        assert doc["traceEvents"][0]["ph"] == "M"
        procs = {e["args"]["name"] for e in meta
                 if e["name"] == "process_name"}
        assert procs == {"repro"}
        threads = [e for e in meta if e["name"] == "thread_name"]
        assert threads and all(e["cat"] == "__metadata" and e["ts"] == 0
                               for e in meta)
        # every span/event lane has a thread_name on the same pid/tid
        lanes = {(e["pid"], e["tid"]) for e in doc["traceEvents"]
                 if e["ph"] in ("X", "i")}
        named = {(e["pid"], e["tid"]) for e in threads}
        assert lanes <= named

    def test_metadata_validates_and_worker_lanes_are_named(self):
        t = Tracer()
        with t.span("parent"):
            pass
        # simulate a merged worker span on a foreign pid
        t.spans[0].pid = t.pid + 1
        doc = chrome_trace(t)
        assert validate_chrome_trace(doc) == []
        procs = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert f"repro worker {t.pid + 1}" in procs


class TestSchemaCheck:
    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) != []

    def test_rejects_bad_phase(self):
        doc = {"traceEvents": [{"name": "a", "cat": "c", "ph": "Z",
                                "ts": 0, "pid": 1, "tid": 1}]}
        assert any("ph" in e for e in validate_chrome_trace(doc))

    def test_rejects_complete_event_without_duration(self):
        doc = {"traceEvents": [{"name": "a", "cat": "c", "ph": "X",
                                "ts": 0, "pid": 1, "tid": 1}]}
        assert validate_chrome_trace(doc) != []

    def test_rejects_negative_timestamp(self):
        doc = {"traceEvents": [{"name": "a", "cat": "c", "ph": "i",
                                "ts": -1, "pid": 1, "tid": 1}]}
        assert validate_chrome_trace(doc) != []

    def test_cli_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        write_chrome_trace(traced(), str(good))
        assert schema_main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "X"}]}')
        assert schema_main([str(bad)]) == 1
        assert schema_main([]) == 2
        capsys.readouterr()


class TestMetricsExport:
    def registry(self):
        reg = MetricsRegistry()
        reg.inc("cache.hit", 3)
        reg.set("runtime.remote_accesses", 0)
        reg.observe("pipeline.pass.seconds.partition", 0.004)
        return reg

    def test_prometheus_text(self):
        text = prometheus_text(self.registry())
        assert "# TYPE cache_hit counter" in text
        assert "cache_hit 3" in text
        assert "runtime_remote_accesses 0" in text
        assert 'pipeline_pass_seconds_partition_bucket{le="+Inf"} 1' in text
        assert "pipeline_pass_seconds_partition_count 1" in text

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        reg.observe("h", 1e-5)
        reg.observe("h", 1.0)
        text = prometheus_text(reg)
        assert 'h_bucket{le="+Inf"} 2' in text
        assert 'h_bucket{le="1"} 2' in text
        assert 'h_bucket{le="0.0001"} 1' in text

    def test_prometheus_summary_quantiles(self):
        text = prometheus_text(self.registry())
        assert 'pipeline_pass_seconds_partition{quantile="0.5"} 0.004' in text
        assert 'pipeline_pass_seconds_partition{quantile="0.95"} 0.004' in text
        assert 'pipeline_pass_seconds_partition{quantile="0.99"} 0.004' in text

    def test_prometheus_empty_histogram_has_no_quantiles(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        text = prometheus_text(reg)
        assert "h_count 0" in text
        assert "quantile=" not in text

    def test_metrics_json_keeps_dotted_names(self):
        doc = json.loads(metrics_json(self.registry()))
        assert doc["cache.hit"]["value"] == 3

    def test_metrics_json_includes_quantiles(self):
        doc = json.loads(metrics_json(self.registry()))
        h = doc["pipeline.pass.seconds.partition"]
        assert h["p50"] == pytest.approx(0.004)
        assert h["p95"] == pytest.approx(0.004)
        assert h["p99"] == pytest.approx(0.004)

    def test_write_metrics_picks_format_by_extension(self, tmp_path):
        reg = self.registry()
        jpath = tmp_path / "m.json"
        tpath = tmp_path / "m.prom"
        write_metrics(reg, str(jpath))
        write_metrics(reg, str(tpath))
        assert json.loads(jpath.read_text())["cache.hit"]["value"] == 3
        assert "cache_hit 3" in tpath.read_text()


class TestEventLog:
    def test_lines_are_json_and_time_ordered(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_event_log(traced(), str(path))
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert len(lines) == 3  # two spans + one event
        types = {ln["type"] for ln in lines}
        assert types == {"span", "event"}
        stamps = [ln.get("start_us", ln.get("ts_us")) for ln in lines]
        assert stamps == sorted(stamps)

    def test_span_error_field(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("bad"):
                raise ValueError("boom")
        (line,) = list(event_log_lines(t))
        assert json.loads(line)["error"] == "ValueError: boom"
