"""Metrics registry: counter/gauge/histogram semantics and scoping."""

import math

import pytest

from repro.obs import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    use_registry,
)


class TestCounter:
    def test_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        assert reg.value("c") == 5

    def test_rejects_decrease(self):
        c = Counter(name="c")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_holds_last_observation(self):
        reg = MetricsRegistry()
        reg.set("g", 10)
        reg.set("g", 3)
        assert reg.value("g") == 3

    def test_inc_moves_both_ways(self):
        g = Gauge(name="g")
        g.inc(5)
        g.inc(-2)
        assert g.value == 3


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        reg = MetricsRegistry()
        for v in (0.001, 0.01, 0.1):
            reg.observe("h", v)
        h = reg.get("h")
        assert h.count == 3
        assert h.total == pytest.approx(0.111)
        assert h.min == 0.001 and h.max == 0.1
        assert h.mean == pytest.approx(0.037)

    def test_bucket_placement(self):
        h = Histogram(name="h")
        h.observe(5e-4)     # le=1e-3 bucket
        h.observe(1e12)     # beyond every bound -> +inf bucket
        idx = h.buckets.index(1e-3)
        assert h.counts[idx] == 1
        assert h.counts[-1] == 1

    def test_empty_histogram(self):
        h = Histogram(name="h")
        assert h.count == 0 and h.mean == 0.0
        assert h.min == math.inf and h.max == -math.inf


class TestRegistry:
    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.inc("m")
        with pytest.raises(TypeError):
            reg.set("m", 1)
        with pytest.raises(TypeError):
            reg.observe("m", 1)

    def test_value_default_for_missing(self):
        reg = MetricsRegistry()
        assert reg.value("absent") == 0
        assert reg.value("absent", default=-1) == -1

    def test_names_sorted_and_len_contains(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.set("a", 1)
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "zzz" not in reg
        assert len(reg) == 2

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set("g", 1.5)
        reg.observe("h", 0.25)
        snap = reg.snapshot()
        assert snap["c"] == {"kind": "counter", "value": 2}
        assert snap["g"] == {"kind": "gauge", "value": 1.5}
        assert snap["h"]["kind"] == "histogram"
        assert snap["h"]["count"] == 1
        assert snap["h"]["sum"] == 0.25

    def test_snapshot_empty_histogram_bounds_are_null(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        snap = reg.snapshot()
        assert snap["h"]["min"] is None and snap["h"]["max"] is None

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.clear()
        assert len(reg) == 0


class TestScoping:
    def test_default_is_the_process_registry(self):
        assert current_registry() is METRICS

    def test_use_registry_scopes_and_restores(self):
        reg = MetricsRegistry()
        with use_registry(reg) as active:
            assert active is reg
            current_registry().inc("scoped")
        assert reg.value("scoped") == 1
        assert current_registry() is METRICS
