"""Metrics registry: counter/gauge/histogram semantics and scoping."""

import math

import pytest

from repro.obs import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    use_registry,
)


class TestCounter:
    def test_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        assert reg.value("c") == 5

    def test_rejects_decrease(self):
        c = Counter(name="c")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_holds_last_observation(self):
        reg = MetricsRegistry()
        reg.set("g", 10)
        reg.set("g", 3)
        assert reg.value("g") == 3

    def test_inc_moves_both_ways(self):
        g = Gauge(name="g")
        g.inc(5)
        g.inc(-2)
        assert g.value == 3


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        reg = MetricsRegistry()
        for v in (0.001, 0.01, 0.1):
            reg.observe("h", v)
        h = reg.get("h")
        assert h.count == 3
        assert h.total == pytest.approx(0.111)
        assert h.min == 0.001 and h.max == 0.1
        assert h.mean == pytest.approx(0.037)

    def test_bucket_placement(self):
        h = Histogram(name="h")
        h.observe(5e-4)     # le=1e-3 bucket
        h.observe(1e12)     # beyond every bound -> +inf bucket
        idx = h.buckets.index(1e-3)
        assert h.counts[idx] == 1
        assert h.counts[-1] == 1

    def test_empty_histogram(self):
        h = Histogram(name="h")
        assert h.count == 0 and h.mean == 0.0
        assert h.min == math.inf and h.max == -math.inf


class TestQuantiles:
    def test_extremes_are_exact(self):
        h = Histogram(name="h")
        for v in (0.002, 0.040, 0.800):
            h.observe(v)
        assert h.quantile(0.0) == pytest.approx(0.002)
        assert h.quantile(1.0) == pytest.approx(0.800)

    def test_single_observation_every_quantile(self):
        h = Histogram(name="h")
        h.observe(0.5)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.quantile(q) == pytest.approx(0.5)

    def test_estimates_stay_inside_observed_range(self):
        h = Histogram(name="h")
        for v in (0.003, 0.007, 0.013, 0.9, 4.2):
            h.observe(v)
        for q in (0.25, 0.5, 0.75, 0.9, 0.95, 0.99):
            assert h.min <= h.quantile(q) <= h.max

    def test_median_lands_in_the_right_bucket(self):
        h = Histogram(name="h")
        # 9 small values, 1 large: p50 must stay small, p99 large
        for _ in range(9):
            h.observe(0.002)
        h.observe(5.0)
        assert h.quantile(0.5) <= 0.01
        assert h.quantile(0.99) > 1.0

    def test_monotone_in_q(self):
        h = Histogram(name="h")
        for i in range(100):
            h.observe(0.001 * (i + 1))
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.95, 0.99)]
        assert qs == sorted(qs)

    def test_empty_histogram_is_zero(self):
        assert Histogram(name="h").quantile(0.5) == 0.0

    def test_out_of_range_q_rejected(self):
        h = Histogram(name="h")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_merge_preserves_quantile_mass(self):
        a, b = Histogram(name="h"), Histogram(name="h")
        for _ in range(9):
            a.observe(0.002)
        b.observe(5.0)
        a.merge(b)
        assert a.count == 10
        assert a.quantile(0.5) <= 0.01
        assert a.quantile(1.0) == pytest.approx(5.0)

    def test_merge_rejects_bucket_mismatch(self):
        a = Histogram(name="h")
        b = Histogram(name="h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_snapshot_includes_quantiles(self):
        reg = MetricsRegistry()
        for v in (0.1, 0.2, 0.3):
            reg.observe("h", v)
        snap = reg.snapshot()["h"]
        assert {"p50", "p95", "p99"} <= set(snap)
        assert 0.1 <= snap["p50"] <= 0.3
        reg2 = MetricsRegistry()
        reg2.histogram("empty")
        assert reg2.snapshot()["empty"]["p50"] is None


class TestNearestRankQuantiles:
    """Small samples answer quantiles exactly, not bucket-interpolated."""

    def test_small_sample_is_exact_nearest_rank(self):
        h = Histogram(name="h")
        for v in (0.010, 0.020, 0.030, 0.040):
            h.observe(v)
        assert h.exact
        # nearest-rank: rank = ceil(q * n), 1-indexed into sorted samples
        assert h.quantile(0.5) == pytest.approx(0.020)
        assert h.quantile(0.75) == pytest.approx(0.030)
        assert h.quantile(0.95) == pytest.approx(0.040)
        assert h.quantile(0.25) == pytest.approx(0.010)

    def test_exact_value_needs_no_interpolation(self):
        h = Histogram(name="h")
        # both land in the same log bucket; interpolation would answer a
        # made-up midpoint, nearest-rank answers an observed value
        h.observe(0.0011)
        h.observe(0.0019)
        assert h.quantile(0.5) == pytest.approx(0.0011)
        assert h.quantile(1.0) == pytest.approx(0.0019)

    def test_overflowing_sample_cap_falls_back_to_buckets(self):
        from repro.obs.metrics import SAMPLE_CAP

        h = Histogram(name="h")
        for i in range(SAMPLE_CAP + 10):
            h.observe(0.001 * (i + 1))
        assert not h.exact
        assert len(h.samples) == SAMPLE_CAP
        # the bucket estimate still brackets the true median
        assert h.min <= h.quantile(0.5) <= h.max

    def test_snapshot_reports_quantile_method(self):
        reg = MetricsRegistry()
        reg.observe("small", 0.2)
        snap = reg.snapshot()
        assert snap["small"]["quantile_method"] == "exact"
        assert snap["small"]["count"] == 1
        from repro.obs.metrics import SAMPLE_CAP

        for i in range(SAMPLE_CAP + 1):
            reg.observe("big", float(i + 1))
        assert reg.snapshot()["big"]["quantile_method"] == "bucket-interpolated"

    def test_merge_keeps_exactness_when_reservoirs_fit(self):
        a, b = Histogram(name="h"), Histogram(name="h")
        for v in (0.01, 0.02):
            a.observe(v)
        for v in (0.03, 0.04):
            b.observe(v)
        a.merge(b)
        assert a.exact
        assert a.quantile(0.5) == pytest.approx(0.02)
        assert a.quantile(1.0) == pytest.approx(0.04)

    def test_merge_truncation_disables_exactness_consistently(self):
        from repro.obs.metrics import SAMPLE_CAP

        a, b = Histogram(name="h"), Histogram(name="h")
        for i in range(SAMPLE_CAP):
            a.observe(0.001 * (i + 1))
        for i in range(SAMPLE_CAP):
            b.observe(0.001 * (i + 1))
        a.merge(b)
        # count > cap >= len(samples): must not claim exactness
        assert a.count == 2 * SAMPLE_CAP
        assert len(a.samples) == SAMPLE_CAP
        assert not a.exact


class TestRegistry:
    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.inc("m")
        with pytest.raises(TypeError):
            reg.set("m", 1)
        with pytest.raises(TypeError):
            reg.observe("m", 1)

    def test_value_default_for_missing(self):
        reg = MetricsRegistry()
        assert reg.value("absent") == 0
        assert reg.value("absent", default=-1) == -1

    def test_names_sorted_and_len_contains(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.set("a", 1)
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "zzz" not in reg
        assert len(reg) == 2

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set("g", 1.5)
        reg.observe("h", 0.25)
        snap = reg.snapshot()
        assert snap["c"] == {"kind": "counter", "value": 2}
        assert snap["g"] == {"kind": "gauge", "value": 1.5}
        assert snap["h"]["kind"] == "histogram"
        assert snap["h"]["count"] == 1
        assert snap["h"]["sum"] == 0.25

    def test_snapshot_empty_histogram_bounds_are_null(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        snap = reg.snapshot()
        assert snap["h"]["min"] is None and snap["h"]["max"] is None

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.clear()
        assert len(reg) == 0


class TestScoping:
    def test_default_is_the_process_registry(self):
        assert current_registry() is METRICS

    def test_use_registry_scopes_and_restores(self):
        reg = MetricsRegistry()
        with use_registry(reg) as active:
            assert active is reg
            current_registry().inc("scoped")
        assert reg.value("scoped") == 1
        assert current_registry() is METRICS
