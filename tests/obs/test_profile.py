"""The sampling profiler: classification, exports, live sampling."""

import threading
import time

from repro.obs.profile import (
    BUCKETS,
    SAMPLER_TID,
    SamplingProfiler,
    classify_stack,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_chrome_trace

SEP = __import__("os").sep


def _repro(path):
    return f"{SEP}site{SEP}repro{SEP}{path}"


class TestClassification:
    def test_innermost_subsystem_wins(self):
        stack = [(_repro(f"runtime{SEP}scheduler{SEP}core.py"), "_loop"),
                 (_repro(f"runtime{SEP}blockstore{SEP}store.py"), "collect")]
        assert classify_stack(stack) == "blockstore"

    def test_pipeline_frames(self):
        assert classify_stack(
            [(_repro(f"pipeline{SEP}passes.py"), "run")]) == "pipeline"
        assert classify_stack(
            [(_repro(f"analysis{SEP}refs.py"), "extract")]) == "pipeline"
        assert classify_stack(
            [(_repro(f"core{SEP}plan.py"), "build_plan")]) == "pipeline"

    def test_engine_vs_kernel_leaf(self):
        eng = [(_repro(f"runtime{SEP}engine{SEP}compiled.py"), "run_blocks")]
        assert classify_stack(eng) == "engine"
        assert classify_stack(
            eng + [("<repro-kernel:abc>", "kernel_0")]) == "engine.kernel"

    def test_scheduler_wait_split(self):
        sched = (_repro(f"runtime{SEP}scheduler{SEP}core.py"), "_loop")
        parked = (f"{SEP}lib{SEP}python{SEP}threading.py", "wait")
        assert classify_stack([sched]) == "scheduler"
        assert classify_stack([sched, parked]) == "scheduler.wait"

    def test_non_repro_stack_is_other(self):
        assert classify_stack(
            [(f"{SEP}lib{SEP}json{SEP}encoder.py", "encode")]) == "other"

    def test_bucket_order_covers_all(self):
        assert set(BUCKETS) >= {"pipeline", "engine", "engine.kernel",
                                "scheduler", "scheduler.wait", "blockstore",
                                "other"}


def _busy(stop):
    x = 0
    while not stop.is_set():
        x += 1
    return x


class TestLiveSampling:
    def _profiled_burn(self, seconds=0.25):
        stop = threading.Event()
        worker = threading.Thread(target=_busy, args=(stop,))
        prof = SamplingProfiler(interval_s=0.002)
        worker.start()
        try:
            with prof:
                time.sleep(seconds)
        finally:
            stop.set()
            worker.join()
        return prof

    def test_collects_samples_from_other_threads(self):
        prof = self._profiled_burn()
        assert prof.sample_count > 0
        assert sum(prof.buckets.values()) == prof.sample_count
        assert prof.wall_s > 0

    def test_collapsed_format(self):
        prof = self._profiled_burn()
        lines = prof.collapsed().strip().splitlines()
        assert lines
        for ln in lines:
            stack, _, count = ln.rpartition(" ")
            assert stack and int(count) > 0
            assert ";" in stack or stack  # frame;frame;... count

    def test_write_collapsed(self, tmp_path):
        prof = self._profiled_burn(0.1)
        path = tmp_path / "prof.txt"
        prof.write_collapsed(str(path))
        assert path.read_text() == prof.collapsed()

    def test_chrome_events_have_sampler_track(self):
        prof = self._profiled_burn(0.1)
        events = prof.chrome_events(pid=77)
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "sampler"
        instants = [e for e in events if e["ph"] == "i"]
        assert instants
        assert all(e["tid"] == SAMPLER_TID and e["pid"] == 77
                   for e in events)
        assert all(e["cat"].startswith("sample.") for e in instants)
        # mergeable into a schema-valid trace document
        doc = {"traceEvents": events, "displayTimeUnit": "ms"}
        assert validate_chrome_trace(doc) == []

    def test_report_and_bucket_seconds(self):
        prof = self._profiled_burn(0.1)
        text = prof.report()
        assert "bucket" in text and "total" in text
        est = prof.bucket_seconds()
        assert all(v >= 0 for v in est.values())
        assert sum(est.values()) > 0

    def test_publish_sets_metrics(self):
        prof = self._profiled_burn(0.1)
        reg = MetricsRegistry()
        prof.publish(reg)
        assert reg.value("profile.samples") == prof.sample_count
        total = sum(reg.value(f"profile.samples.{b}")
                    for b in prof.buckets)
        assert total == prof.sample_count

    def test_empty_report_is_graceful(self):
        prof = SamplingProfiler()
        assert "(no samples collected)" in prof.report()
        assert prof.collapsed() == ""
        assert prof.stop() is prof  # stop before start is a no-op
