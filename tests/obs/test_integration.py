"""End-to-end observability: spans and metrics from real runs.

Covers the issue's acceptance criteria directly: the exported
``runtime.remote_accesses`` metric equals
``ParallelResult.remote_accesses`` exactly, and one traced
compile-execute-simulate run yields pipeline, engine, cache and machine
spans.
"""

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.obs import MetricsRegistry, Tracer, use_registry, use_tracer
from repro.pipeline import PLAN_CACHE, PipelineConfig, run_pipeline
from repro.runtime.machine_run import run_on_machine
from repro.runtime.parallel import run_parallel
from repro.runtime.verify import verify_plan


class TestMetricsFromRuns:
    def test_remote_accesses_metric_is_exact(self):
        plan = build_plan(catalog.l1())
        reg = MetricsRegistry()
        with use_registry(reg):
            result = run_parallel(plan)
        assert reg.value("runtime.remote_accesses") == result.remote_accesses
        assert (reg.value("runtime.executed_iterations")
                == result.executed_iterations)
        assert reg.value("runtime.blocks") == len(plan.blocks)
        assert reg.value("runtime.runs") == 1
        assert reg.value(f"runtime.engine.runs.{result.backend}") == 1

    def test_gauges_reflect_last_run_counters_accumulate(self):
        plan = build_plan(catalog.l1())
        reg = MetricsRegistry()
        with use_registry(reg):
            run_parallel(plan)
            result = run_parallel(plan)
        assert reg.value("runtime.runs") == 2
        assert reg.value("runtime.remote_accesses") == result.remote_accesses

    def test_verify_publishes(self):
        plan = build_plan(catalog.l1())
        reg = MetricsRegistry()
        with use_registry(reg):
            report = verify_plan(plan)
        assert report.ok
        assert reg.value("verify.runs") == 1
        assert reg.value("verify.ok") == 1
        assert reg.value("verify.mismatches") == 0

    def test_machine_stats_absorbed(self):
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        reg = MetricsRegistry()
        with use_registry(reg):
            mrun = run_on_machine(plan, p=4, verify=False)
        st = mrun.stats
        assert reg.value("machine.makespan") == st.makespan
        assert reg.value("machine.messages") == st.messages
        assert reg.value("machine.remote_accesses") == st.remote_accesses
        assert (reg.value("machine.total_iterations")
                == st.total_iterations)

    def test_pipeline_timings_absorbed(self):
        PLAN_CACHE.clear()
        reg = MetricsRegistry()
        with use_registry(reg):
            run_pipeline(catalog.l1(), PipelineConfig(), upto="partition")
        h = reg.get("pipeline.pass.seconds.partition")
        assert h is not None and h.count == 1
        assert reg.value("cache.miss") == 1


class TestSpansFromRuns:
    def test_parallel_run_spans(self):
        plan = build_plan(catalog.l1())
        tracer = Tracer()
        with use_tracer(tracer):
            run_parallel(plan)
        (rb,) = tracer.find("engine.run_blocks")
        assert rb.attributes["backend"] == "interp"
        blocks = tracer.find("engine.block")
        assert len(blocks) == len(plan.blocks)
        assert all("remote_accesses" in b.attributes for b in blocks)
        assert all("statements" in b.attributes for b in blocks)
        (alloc,) = tracer.find("runtime.allocate")
        assert alloc.attributes["words"] > 0

    def test_machine_run_spans(self):
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        tracer = Tracer()
        with use_tracer(tracer):
            run_on_machine(plan, p=4)
        names = {s.name for s in tracer.find(category="machine")}
        assert {"machine.run", "machine.distribute", "machine.execute",
                "machine.merge", "machine.verify"} <= names
        (run,) = tracer.find("machine.run")
        assert run.attributes["remote_accesses"] == 0
        assert run.attributes["makespan"] > 0

    def test_cache_lookup_spans(self):
        PLAN_CACHE.clear()
        tracer = Tracer()
        with use_tracer(tracer):
            build_plan(catalog.l1())
            build_plan(catalog.l1())
        lookups = tracer.find("cache.lookup", category="cache")
        outcomes = [s.attributes["outcome"] for s in lookups]
        assert "miss" in outcomes and "hit" in outcomes

    def test_pipeline_pass_spans_via_hooks(self):
        from repro.obs.hooks import TracingHooks
        from repro.pipeline.instrument import Instrumentation, use_metrics

        PLAN_CACHE.clear()
        tracer = Tracer()
        instr = Instrumentation()
        instr.add_hooks(TracingHooks(tracer))
        with use_metrics(instr), use_tracer(tracer):
            run_pipeline(catalog.l1(), PipelineConfig(), upto="partition")
        passes = tracer.find(category="pipeline")
        names = {s.name for s in passes}
        assert "pass:extract-refs" in names
        assert "pass:partition" in names
        assert all(s.duration_ns >= 0 for s in passes)
