"""Every example script must run to completion (they are user-facing docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

# matmul_study regenerates the full Table I grid (M up to 256); it works
# but takes ~20s, so it gets its own slow marker via a reduced check.
FAST_EXAMPLES = [e for e in EXAMPLES if e != "matmul_study.py"]


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    proc = run_example(name)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_inventory():
    """The README-advertised examples all exist."""
    expected = {
        "quickstart.py", "matmul_study.py", "redundancy_elimination.py",
        "transform_and_map.py", "signal_workloads.py",
        "strategy_selection.py", "blas_kernels.py", "paper_walkthrough.py",
    }
    assert expected <= set(EXAMPLES)


def test_matmul_study_importable():
    """The slow example at least has sound structure (functions import)."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "matmul_study", EXAMPLES_DIR / "matmul_study.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)  # module level only defines main()
    assert callable(mod.main)
