"""The naive chunking baseline and the motivation comparison."""

import pytest

from repro.baseline import compare_with_commfree, naive_partition
from repro.core import Strategy, build_plan
from repro.lang import catalog, parse
from repro.machine.cost import TRANSPUTER, CostModel


class TestNaivePartition:
    def test_chunks_partition_space(self, l1):
        res = naive_partition(l1, 4)
        all_pts = [it for c in res.chunks for it in c]
        assert len(all_pts) == 16
        assert len(set(all_pts)) == 16
        sizes = [len(c) for c in res.chunks]
        assert max(sizes) - min(sizes) <= 1  # balanced chunking

    def test_uneven_split(self):
        res = naive_partition(catalog.l1(3), 4)  # 9 iterations over 4
        assert [len(c) for c in res.chunks] == [3, 2, 2, 2]

    def test_l1_chunking_pays_communication(self, l1):
        """The diagonal flow of L1 crosses outer-index slabs."""
        res = naive_partition(l1, 4)
        assert res.remote_accesses > 0
        assert res.cross_block_flows > 0
        assert not res.communication_free

    def test_independent_loop_still_local(self):
        """Truly independent iterations: any chunking stays local."""
        res = naive_partition(catalog.independent(4), 4)
        assert res.remote_reads == 0 and res.remote_writes == 0
        assert res.communication_free

    def test_shared_read_data_counted(self):
        # every iteration reads X[1]: 3 of 4 chunks access it remotely
        nest = parse("for i = 1 to 4 { A[i] = X[1] + 1; }")
        res = naive_partition(nest, 4)
        assert res.remote_reads == 3

    def test_cost_positive_when_remote(self, l1):
        res = naive_partition(l1, 4)
        assert res.cost(TRANSPUTER) > 0
        assert res.cost(TRANSPUTER) == pytest.approx(
            res.remote_accesses * (TRANSPUTER.t_start + TRANSPUTER.t_comm))

    def test_single_processor_all_local(self, l1):
        res = naive_partition(l1, 1)
        assert res.communication_free


class TestMotivationComparison:
    def test_l1_naive_overhead_dominates(self):
        """The paper's point: on a Transputer, naive chunking of L1 pays
        more in messages than the whole per-processor compute."""
        cmp = compare_with_commfree(catalog.l1(8), p=4)
        assert cmp.commfree_remote == 0
        assert cmp.naive.remote_accesses > 0
        assert cmp.comm_to_compute_ratio > 1.0

    def test_l4_wavefront(self):
        cmp = compare_with_commfree(catalog.l4(), p=4,
                                    strategy=Strategy.NONDUPLICATE)
        assert cmp.naive.remote_accesses > 0
        assert cmp.commfree_blocks == 37

    def test_independent_no_overhead(self):
        cmp = compare_with_commfree(catalog.independent(4), p=4)
        assert cmp.naive_comm_time == 0.0
        assert cmp.comm_to_compute_ratio == 0.0
