"""The Ramanujam-Sadayappan hyperplane baseline and the comparison claims."""

import pytest

from repro.baseline import hyperplane_partition
from repro.core import Strategy, build_plan
from repro.lang import catalog, parse
from repro.ratlinalg import RatVec


class TestApplicability:
    def test_l1_not_forall(self):
        res = hyperplane_partition(catalog.l1())
        assert not res.applicable
        assert "For-all" in res.reason
        assert res.degree_of_parallelism == 1

    def test_l3_not_forall(self):
        assert not hyperplane_partition(catalog.l3()).applicable

    def test_l5_not_forall(self):
        # the C accumulation carries a flow dependence along k
        assert not hyperplane_partition(catalog.l5()).applicable

    def test_independent_applicable(self):
        res = hyperplane_partition(catalog.independent())
        assert res.applicable
        assert res.normal is not None

    def test_forall_with_full_sharing_space(self):
        # For-all loop where every iteration reads the same element:
        # sharing space is full -> no communication-free hyperplane
        nest = parse("for i = 1 to 4 { for j = 1 to 4 { A[i, j] = S[0, 0]; } }")
        res = hyperplane_partition(nest)
        assert not res.applicable
        assert "hyperplane" in res.reason


class TestPartitionQuality:
    def test_independent_hyperplane_blocks(self):
        res = hyperplane_partition(catalog.independent(4))
        assert res.applicable
        assert res.num_blocks == 4  # one hyperplane family: 4 values

    def test_blocks_are_communication_free(self):
        res = hyperplane_partition(catalog.independent(4))
        # same-element accesses stay within one hyperplane (trivially: no
        # sharing in INDEP); check partition structure instead
        total = sum(len(v) for v in res.blocks.values())
        assert total == 16

    def test_readonly_sharing_respected(self):
        # A[i,j] = B[i] : iterations sharing B[i] must share a hyperplane
        nest = parse("for i = 1 to 4 { for j = 1 to 4 { A[i, j] = B[i]; } }")
        res = hyperplane_partition(nest)
        assert res.applicable
        for group in res.blocks.values():
            pass
        # q must be orthogonal to the sharing direction (0,1)
        assert res.normal.dot(RatVec([0, 1])) == 0


class TestComparisonClaims:
    """Section III.A: more parallelism than R&S when dim(Psi) < n-1."""

    def test_chen_sheu_strictly_better_on_independent(self):
        ours = build_plan(catalog.independent(4))
        theirs = hyperplane_partition(catalog.independent(4))
        assert ours.num_blocks == 16
        assert theirs.num_blocks == 4
        assert ours.num_blocks > theirs.degree_of_parallelism

    def test_chen_sheu_handles_non_forall(self):
        ours = build_plan(catalog.l1())
        theirs = hyperplane_partition(catalog.l1())
        assert not theirs.applicable
        assert ours.num_blocks == 7

    def test_duplicate_strategy_beats_baseline_on_l2(self):
        ours = build_plan(catalog.l2(), Strategy.DUPLICATE)
        theirs = hyperplane_partition(catalog.l2())
        assert ours.num_blocks == 16
        assert theirs.degree_of_parallelism <= 1  # not a For-all loop

    def test_never_worse_on_forall_loops(self):
        for fn in (catalog.independent,):
            ours = build_plan(fn())
            theirs = hyperplane_partition(fn())
            if theirs.applicable:
                assert ours.num_blocks >= theirs.num_blocks
