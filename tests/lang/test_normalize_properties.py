"""Property test: stepped loops are semantically equivalent to their
manually re-indexed normalized counterparts."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import extract_references
from repro.lang import IterationSpace, parse
from repro.runtime import make_arrays, run_sequential


@given(lo=st.integers(-3, 3), span=st.integers(0, 9), step=st.integers(1, 4),
       off=st.integers(-2, 2))
@settings(max_examples=60, deadline=None)
def test_stepped_equals_manual_reindex(lo, span, step, off):
    hi = lo + span
    stepped = parse(
        f"for i = {lo} to {hi} step {step} "
        f"{{ A[i] = B[i + {off}] + A[i - {step}]; }}")
    trips = max(0, (hi - lo) // step + 1)
    manual = parse(
        f"for k = 1 to {trips} {{ "
        f"A[{step}*k + {lo - step}] = "
        f"B[{step}*k + {lo - step + off}] + A[{step}*k + {lo - 2 * step}]; }}")

    assert IterationSpace(stepped).size() == trips

    if trips == 0:
        return
    m1 = extract_references(stepped)
    m2 = extract_references(manual)
    a1 = make_arrays(m1)
    a2 = {n: ds.copy() for n, ds in make_arrays(m2).items()}
    # align initial values by coordinate (the two models compute the same
    # footprints since they touch the same elements)
    for n in a1:
        assert a1[n].lo == a2[n].lo and a1[n].hi == a2[n].hi
    run_sequential(stepped, a1)
    run_sequential(manual, a2)
    for n in a1:
        assert a1[n] == a2[n]


@given(lo=st.integers(-2, 2), hi=st.integers(3, 8), step=st.integers(2, 3))
@settings(max_examples=40, deadline=None)
def test_stepped_iteration_values(lo, hi, step):
    """The normalized nest touches exactly {lo, lo+step, ...} <= hi."""
    nest = parse(f"for i = {lo} to {hi} step {step} {{ A[i] = 1; }}")
    model = extract_references(nest)
    info = model.arrays["A"]
    touched = sorted(info.element_at(it, info.references[0].offset)[0]
                     for it in model.space.iterate())
    assert touched == list(range(lo, hi + 1, step))
