"""Pretty-printer round-trip tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import catalog, parse, to_source
from repro.lang.printer import expr_to_source, stmt_to_source


class TestRoundTrip:
    def test_all_catalog_loops(self):
        for name, fn in catalog.ALL_LOOPS.items():
            nest = fn()
            back = parse(to_source(nest), name=nest.name)
            assert back.indices == nest.indices, name
            assert back.statements == nest.statements, name
            assert back.lowers == nest.lowers and back.uppers == nest.uppers, name

    def test_precedence_preserved(self):
        nest = parse("for i = 1 to 2 { A[i] = (1 + 2) * 3 - 4 / (5 - 1); }")
        again = parse(to_source(nest))
        assert again.statements == nest.statements

    def test_left_associative_minus(self):
        nest = parse("for i = 1 to 2 { A[i] = 1 - (2 - 3); }")
        again = parse(to_source(nest))
        assert again.statements == nest.statements

    def test_unary_in_product(self):
        nest = parse("for i = 1 to 2 { A[i] = -B[i] * 2; }")
        again = parse(to_source(nest))
        assert again.statements == nest.statements

    def test_label_rendered(self):
        nest = parse("for i = 1 to 2 { S1: A[i] = 0; }")
        assert "S1: A[i] = 0;" in to_source(nest)


# -- random expression round-trip ------------------------------------------

def exprs(depth=3):
    leaves = st.one_of(
        st.integers(0, 9).map(lambda v: f"{v}"),
        st.sampled_from(["i", "j", "B[i, j]", "C[i - 1, j + 2]"]),
    )

    def combine(children):
        a, b = children
        op = st.sampled_from(["+", "-", "*", "/"])
        return op.map(lambda o: f"({a} {o} {b})")

    return st.recursive(
        leaves,
        lambda inner: st.tuples(inner, inner).flatmap(combine),
        max_leaves=8,
    )


@given(exprs())
@settings(max_examples=60, deadline=None)
def test_random_expression_roundtrip(expr_src):
    src = f"for i = 1 to 2 {{ for j = 1 to 2 {{ A[i, j] = {expr_src}; }} }}"
    nest = parse(src)
    again = parse(to_source(nest))
    assert again.statements == nest.statements
