"""Multi-nest program file parsing."""

import pytest

from repro.lang import ParseError, parse_multi


class TestParseMulti:
    SRC = """
        # phase 1: smooth
        for i = 1 to 4 { for j = 1 to 4 {
          U[i, j] = U[i - 1, j - 1] + F[i, j];
        } }

        # phase 2: consume
        for i = 1 to 4 { for j = 1 to 4 {
          V[i, j] = U[i, j] * 2;
        } }
    """

    def test_two_nests(self):
        nests = parse_multi(self.SRC)
        assert len(nests) == 2
        assert nests[0].name == "PHASE1"
        assert nests[1].name == "PHASE2"
        assert nests[0].array_names() == ["U", "F"]
        assert nests[1].array_names() == ["V", "U"]

    def test_custom_prefix(self):
        nests = parse_multi(self.SRC, name_prefix="STEP")
        assert nests[0].name == "STEP1"

    def test_single_nest(self):
        nests = parse_multi("for i = 1 to 2 { A[i] = 0; }")
        assert len(nests) == 1

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_multi("   # nothing here\n")

    def test_garbage_between_loops_rejected(self):
        with pytest.raises(ParseError):
            parse_multi("for i = 1 to 2 { A[i] = 0; } junk")

    def test_program_integration(self):
        from repro.machine.cost import CostModel
        from repro.program import Program, plan_program, verify_program

        nests = parse_multi(self.SRC)
        pplan = plan_program(Program(nests=nests), p=4,
                             cost=CostModel(1e-3, 1e-6, 1e-7))
        assert verify_program(pplan).ok


class TestProgramCli:
    def test_program_command(self, tmp_path):
        import io

        from repro.cli import main

        f = tmp_path / "prog.cf"
        f.write_text(TestParseMulti.SRC)
        out = io.StringIO()
        code = main(["program", str(f), "-p", "4"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "2 phases" in text
        assert "phase-parallel == sequential: True" in text

    def test_program_duplicate_flag(self, tmp_path):
        import io

        from repro.cli import main

        f = tmp_path / "prog.cf"
        f.write_text(TestParseMulti.SRC)
        out = io.StringIO()
        code = main(["program", str(f), "-p", "4", "--duplicate"], out=out)
        assert code == 0
