"""Affine-expression extraction."""

from fractions import Fraction

import pytest

from repro.lang import NotAffineError, affine_of, parse
from repro.lang.affine import AffineExpr
from repro.lang.ast import ArrayRef, BinOp, Const, Name, UnaryOp


IDX = ("i", "j")


def ae(expr):
    return affine_of(expr, IDX)


class TestExtraction:
    def test_constant(self):
        a = ae(Const(5))
        assert a.is_constant() and a.const == 5

    def test_index(self):
        a = ae(Name("i"))
        assert a.coeffs == (1, 0) and a.const == 0

    def test_linear_combination(self):
        # 2*i - j + 3
        expr = BinOp("+", BinOp("-", BinOp("*", Const(2), Name("i")), Name("j")),
                     Const(3))
        a = ae(expr)
        assert a.coeffs == (2, -1) and a.const == 3

    def test_index_times_constant_right(self):
        a = ae(BinOp("*", Name("j"), Const(4)))
        assert a.coeffs == (0, 4)

    def test_unary_minus(self):
        a = ae(UnaryOp("-", Name("i")))
        assert a.coeffs == (-1, 0)

    def test_division_by_constant(self):
        a = ae(BinOp("/", Name("i"), Const(2)))
        assert a.coeffs == (Fraction(1, 2), 0)
        assert not a.is_integral()

    def test_nested_parenthesized(self):
        # (i + j) * 2 - (j - 1)
        expr = BinOp("-", BinOp("*", BinOp("+", Name("i"), Name("j")), Const(2)),
                     BinOp("-", Name("j"), Const(1)))
        a = ae(expr)
        assert a.coeffs == (2, 1) and a.const == 1


class TestRejection:
    def test_free_scalar(self):
        with pytest.raises(NotAffineError):
            ae(Name("N"))

    def test_product_of_indices(self):
        with pytest.raises(NotAffineError):
            ae(BinOp("*", Name("i"), Name("j")))

    def test_division_by_index(self):
        with pytest.raises(NotAffineError):
            ae(BinOp("/", Const(1), Name("i")))

    def test_division_by_zero(self):
        with pytest.raises(NotAffineError):
            ae(BinOp("/", Name("i"), Const(0)))

    def test_array_ref(self):
        with pytest.raises(NotAffineError):
            ae(ArrayRef("A", (Name("i"),)))


class TestEvaluation:
    def test_eval_env(self):
        a = ae(BinOp("+", BinOp("*", Const(2), Name("i")), Name("j")))
        assert a.eval({"i": 3, "j": 4}) == 10

    def test_eval_point(self):
        a = ae(BinOp("-", Name("j"), Const(1)))
        assert a.eval_point((5, 2)) == 1

    def test_prefix_dependency(self):
        a = ae(Name("i"))
        assert a.depends_only_on_prefix(1)
        b = ae(Name("j"))
        assert not b.depends_only_on_prefix(1)
        assert b.depends_only_on_prefix(2)

    def test_coeff_vector(self):
        a = ae(BinOp("+", Name("i"), Name("j")))
        assert a.coeff_vector() == (1, 1)


class TestArithmetic:
    def test_add_sub_scale_neg(self):
        a = AffineExpr.index(IDX, "i")
        b = AffineExpr.constant(IDX, 3)
        s = a + b
        assert s.coeffs == (1, 0) and s.const == 3
        assert (s - b).coeffs == (1, 0) and (s - b).const == 0
        assert (-s).const == -3
        assert s.scale(2).const == 6

    def test_mixed_index_tuples_rejected(self):
        a = AffineExpr.index(("i",), "i")
        b = AffineExpr.index(("i", "j"), "i")
        with pytest.raises(ValueError):
            _ = a + b

    def test_unknown_index(self):
        with pytest.raises(NotAffineError):
            AffineExpr.index(IDX, "k")

    def test_render(self):
        a = ae(BinOp("-", BinOp("*", Const(2), Name("i")), Const(1)))
        assert a.render() == "2*i - 1"
        assert AffineExpr.constant(IDX, 0).render() == "0"


class TestFromParsedSource:
    def test_l1_subscripts(self):
        nest = parse("for i = 1 to 4 { for j = 1 to 4 { A[2*i, j - 1] = 0; } }")
        lhs = nest.statements[0].lhs
        a0 = affine_of(lhs.subscripts[0], nest.indices)
        a1 = affine_of(lhs.subscripts[1], nest.indices)
        assert a0.coeffs == (2, 0) and a0.const == 0
        assert a1.coeffs == (0, 1) and a1.const == -1
