"""Tokenizer tests."""

import pytest

from repro.lang import LexError, TokenType, tokenize


def kinds(src):
    return [t.type for t in tokenize(src)]


class TestTokenize:
    def test_keywords_vs_idents(self):
        ts = tokenize("for to fortune")
        assert [t.type for t in ts[:3]] == [TokenType.FOR, TokenType.TO,
                                            TokenType.IDENT]
        assert ts[2].text == "fortune"

    def test_numbers(self):
        ts = tokenize("123 4")
        assert ts[0].type == TokenType.INT and ts[0].text == "123"
        assert ts[1].text == "4"

    def test_operators_and_delimiters(self):
        assert kinds("= + - * / ( ) [ ] { } , ; :")[:-1] == [
            TokenType.ASSIGN, TokenType.PLUS, TokenType.MINUS, TokenType.STAR,
            TokenType.SLASH, TokenType.LPAREN, TokenType.RPAREN,
            TokenType.LBRACKET, TokenType.RBRACKET, TokenType.LBRACE,
            TokenType.RBRACE, TokenType.COMMA, TokenType.SEMI, TokenType.COLON,
        ]

    def test_eof_always_last(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("x")[-1].type is TokenType.EOF

    def test_comments_skipped(self):
        ts = tokenize("x # a comment with for/to\ny")
        assert [t.text for t in ts[:-1]] == ["x", "y"]

    def test_line_and_col_tracking(self):
        ts = tokenize("a\n  b")
        assert (ts[0].line, ts[0].col) == (1, 1)
        assert (ts[1].line, ts[1].col) == (2, 3)

    def test_underscored_identifiers(self):
        ts = tokenize("_x a_1")
        assert ts[0].text == "_x" and ts[1].text == "a_1"

    def test_unknown_char(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_no_spaces_needed(self):
        ts = tokenize("A[2*i,j]=C[i,j]*7;")
        texts = [t.text for t in ts[:-1]]
        assert texts == ["A", "[", "2", "*", "i", ",", "j", "]", "=", "C", "[",
                         "i", ",", "j", "]", "*", "7", ";"]
