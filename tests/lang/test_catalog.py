"""Catalog loops: structural sanity of the paper's examples."""

import pytest

from repro.lang import IterationSpace, catalog


class TestPaperLoops:
    def test_l1_shape(self):
        nest = catalog.l1()
        assert nest.name == "L1"
        assert nest.indices == ("i", "j")
        assert len(nest.statements) == 2
        assert nest.array_names() == ["A", "C", "B"]

    def test_l2_shape(self):
        nest = catalog.l2()
        assert sorted(nest.array_names()) == ["A", "B"]

    def test_l3_shape(self):
        nest = catalog.l3()
        assert nest.array_names() == ["A"]

    def test_l4_is_3_nested(self):
        nest = catalog.l4()
        assert nest.depth == 3
        assert IterationSpace(nest).size() == 64

    def test_l5_is_matmul(self):
        nest = catalog.l5(8)
        assert nest.depth == 3
        assert sorted(nest.array_names()) == ["A", "B", "C"]
        assert IterationSpace(nest).size() == 512

    def test_parameterized_sizes(self):
        assert IterationSpace(catalog.l1(6)).size() == 36
        assert IterationSpace(catalog.l5(2)).size() == 8

    def test_l3_sub_has_scalars(self):
        nest = catalog.l3_sub()
        assert nest.scalar_names() == {"D", "F", "G", "K"}

    def test_all_loops_parse_fresh(self):
        for name, fn in catalog.ALL_LOOPS.items():
            a, b = fn(), fn()
            assert a is not b
            assert a.statements == b.statements

    def test_registry_consistency(self):
        assert set(catalog.PAPER_LOOPS) <= set(catalog.ALL_LOOPS)
        assert set(catalog.PAPER_LOOPS) == {"L1", "L2", "L3", "L4", "L5"}

    def test_extra_workloads(self):
        assert IterationSpace(catalog.convolution(8, 3)).size() == 24
        assert IterationSpace(catalog.dft(4)).size() == 16
        assert not IterationSpace(catalog.triangular()).is_rectangular()
