"""Parser tests: grammar, model-shape validation, error reporting."""

import pytest

from repro.lang import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    LoopNest,
    Name,
    ParseError,
    UnaryOp,
    parse,
)


class TestBasicParsing:
    def test_single_loop(self):
        nest = parse("for i = 1 to 4 { A[i] = 0; }")
        assert nest.indices == ("i",)
        assert nest.depth == 1
        assert len(nest.statements) == 1

    def test_nested(self):
        nest = parse("""
            for i = 1 to 4 {
              for j = 1 to 4 {
                A[i, j] = B[i, j] + 1;
              }
            }
        """)
        assert nest.indices == ("i", "j")

    def test_labels(self):
        nest = parse("for i = 1 to 2 { S9: A[i] = 1; A[i] = 2; }")
        assert nest.statements[0].label == "S9"
        assert nest.statements[1].label == ""
        assert nest.statement_label(1) == "S2"

    def test_multiple_statements(self):
        nest = parse("""
            for i = 1 to 2 {
              A[i] = 1;
              B[i] = A[i - 1];
              C[i] = A[i] * B[i];
            }
        """)
        assert len(nest.statements) == 3

    def test_expression_structure(self):
        nest = parse("for i = 1 to 2 { A[i] = B[i] * 2 + 3; }")
        rhs = nest.statements[0].rhs
        assert isinstance(rhs, BinOp) and rhs.op == "+"
        assert isinstance(rhs.left, BinOp) and rhs.left.op == "*"

    def test_precedence(self):
        nest = parse("for i = 1 to 2 { A[i] = 1 + 2 * 3; }")
        rhs = nest.statements[0].rhs
        assert rhs.op == "+"
        assert isinstance(rhs.right, BinOp) and rhs.right.op == "*"

    def test_parentheses(self):
        nest = parse("for i = 1 to 2 { A[i] = (1 + 2) * 3; }")
        rhs = nest.statements[0].rhs
        assert rhs.op == "*"

    def test_unary_minus(self):
        nest = parse("for i = 1 to 2 { A[i] = -B[i]; }")
        assert isinstance(nest.statements[0].rhs, UnaryOp)

    def test_affine_bounds(self):
        nest = parse("for i = 1 to 5 { for j = i to 2*i + 1 { A[i,j] = 0; } }")
        assert nest.depth == 2

    def test_scalar_names_in_rhs(self):
        nest = parse("for i = 1 to 2 { A[i] = B[i] / D; }")
        assert nest.scalar_names() == {"D"}

    def test_name_attached(self):
        nest = parse("for i = 1 to 2 { A[i] = 0; }", name="X")
        assert nest.name == "X"


class TestModelValidation:
    def test_scalar_lhs_rejected(self):
        with pytest.raises(ParseError, match="array reference"):
            parse("for i = 1 to 2 { x = 1; }")

    def test_empty_body_rejected(self):
        with pytest.raises(ParseError):
            parse("for i = 1 to 2 { }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("for i = 1 to 2 { A[i] = 1 }")

    def test_bound_with_non_enclosing_index(self):
        with pytest.raises(ParseError, match="non-enclosing"):
            parse("for i = 1 to j { for j = 1 to 4 { A[i,j] = 0; } }")

    def test_non_affine_bound(self):
        with pytest.raises(ParseError, match="not affine"):
            parse("for i = 1 to 4 { for j = 1 to i*i { A[i,j] = 0; } }")

    def test_fractional_bound_coefficient(self):
        with pytest.raises(ParseError, match="non-integer"):
            parse("for i = 1 to 4 { for j = 1 to i/2 { A[i,j] = 0; } }")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("for i = 1 to 2 { A[i] = 1; } extra")

    def test_missing_for(self):
        with pytest.raises(ParseError, match="for"):
            parse("A[1] = 2;")

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError):
            parse("for i = 1 to 2 { for i = 1 to 2 { A[i] = 0; } }")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            parse("for i = 1 to 2 { S1: A[i] = 0; S1: B[i] = 0; }")

    def test_statements_between_loops_rejected(self):
        # imperfect nests are outside the model
        with pytest.raises(ParseError):
            parse("""
                for i = 1 to 2 {
                  A[i] = 0;
                  for j = 1 to 2 { B[i, j] = 0; }
                }
            """)


class TestAstHelpers:
    def test_array_names_order(self):
        nest = parse("for i = 1 to 2 { A[i] = C[i]; B[i] = A[i]; }")
        assert nest.array_names() == ["A", "C", "B"]

    def test_reads_and_writes(self):
        nest = parse("for i = 1 to 2 { A[i] = B[i] + C[i - 1]; }")
        stmt = nest.statements[0]
        assert stmt.writes().array == "A"
        assert [r.array for r in stmt.reads()] == ["B", "C"]

    def test_with_statements(self):
        nest = parse("for i = 1 to 2 { A[i] = 1; B[i] = 2; }")
        reduced = nest.with_statements([nest.statements[0]])
        assert len(reduced.statements) == 1
        assert reduced.indices == nest.indices
