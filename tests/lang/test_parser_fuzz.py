"""Parser robustness: arbitrary input must fail cleanly, never crash."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import LexError, ParseError, parse
from repro.lang.normalize import NormalizationError


ACCEPTABLE = (ParseError, LexError, NormalizationError, ValueError)


@given(st.text(max_size=200))
@settings(max_examples=150, deadline=None)
def test_arbitrary_text_never_crashes(text):
    try:
        parse(text)
    except ACCEPTABLE:
        pass  # clean rejection is the contract


@given(st.lists(st.sampled_from(
    ["for", "to", "step", "i", "j", "A", "B", "=", "+", "-", "*", "/",
     "(", ")", "[", "]", "{", "}", ",", ";", ":", "1", "4", "17"]),
    max_size=40))
@settings(max_examples=150, deadline=None)
def test_token_soup_never_crashes(tokens):
    try:
        parse(" ".join(tokens))
    except ACCEPTABLE:
        pass


@given(st.text(alphabet="forint aij=+-*/()[]{};:0123456789 \n", max_size=120))
@settings(max_examples=100, deadline=None)
def test_near_miss_sources_never_crash(text):
    try:
        nest = parse(text)
    except ACCEPTABLE:
        return
    # if it parsed, it must be a well-formed normalized nest
    assert nest.depth >= 1
    assert nest.statements
