"""Iteration-space queries."""

import pytest

from repro.lang import IterationSpace, catalog, parse
from repro.ratlinalg import RatVec
from fractions import Fraction


class TestRectangular:
    def test_size_and_enumeration(self, l1):
        sp = IterationSpace(l1)
        assert sp.is_rectangular()
        assert sp.size() == 16
        pts = list(sp.iterate())
        assert len(pts) == 16
        assert pts == sorted(pts)  # lexicographic
        assert pts[0] == (1, 1) and pts[-1] == (4, 4)

    def test_contains(self, l1):
        sp = IterationSpace(l1)
        assert (1, 1) in sp and (4, 4) in sp
        assert (0, 1) not in sp and (5, 1) not in sp
        assert (1,) not in sp

    def test_fractional_not_contained(self, l1):
        sp = IterationSpace(l1)
        assert RatVec([Fraction(3, 2), 1]) not in sp

    def test_bounding_and_difference_box(self, l1):
        sp = IterationSpace(l1)
        assert sp.bounding_box() == ((1, 1), (4, 4))
        assert sp.difference_box() == ((-3, -3), (3, 3))

    def test_pair_exists(self, l1):
        sp = IterationSpace(l1)
        assert sp.pair_exists(RatVec([3, 3]))
        assert sp.pair_exists(RatVec([-3, 0]))
        assert not sp.pair_exists(RatVec([4, 0]))
        assert not sp.pair_exists(RatVec([Fraction(1, 2), 0]))

    def test_3d(self, l4):
        sp = IterationSpace(l4)
        assert sp.size() == 64
        assert sp.bounding_box() == ((1, 1, 1), (4, 4, 4))


class TestAffineBounded:
    def test_triangular_enumeration(self):
        sp = IterationSpace(catalog.triangular(4))
        pts = list(sp.iterate())
        assert pts == [(i, j) for i in range(1, 5) for j in range(1, i + 1)]
        assert sp.size() == 10
        assert not sp.is_rectangular()

    def test_triangular_contains(self):
        sp = IterationSpace(catalog.triangular(4))
        assert (3, 3) in sp
        assert (3, 4) not in sp

    def test_triangular_bounding_box(self):
        sp = IterationSpace(catalog.triangular(4))
        assert sp.bounding_box() == ((1, 1), (4, 4))

    def test_triangular_pair_exists_exact(self):
        sp = IterationSpace(catalog.triangular(4))
        # (0,3): needs (i,j) and (i,j+3) both valid: (4,1)->(4,4) works
        assert sp.pair_exists(RatVec([0, 3]))
        # (-3,3): (4,1)->(1,4) invalid since j<=i; no pair at all
        assert not sp.pair_exists(RatVec([-3, 3]))

    def test_lower_bound_affine(self):
        nest = parse("for i = 1 to 3 { for j = i to 3 { A[i,j] = 0; } }")
        sp = IterationSpace(nest)
        assert list(sp.iterate()) == [(1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (3, 3)]

    def test_empty_space(self):
        nest = parse("for i = 3 to 1 { A[i] = 0; }")
        sp = IterationSpace(nest)
        assert sp.size() == 0
        assert list(sp.iterate()) == []

    def test_bounds_at(self):
        sp = IterationSpace(catalog.triangular(5))
        assert sp.bounds_at((), 0) == (1, 5)
        assert sp.bounds_at((3,), 1) == (1, 3)
