"""Loop normalization: step removal and re-indexing."""

import pytest

from repro.analysis import extract_references
from repro.lang import IterationSpace, ParseError, parse
from repro.lang.ast import Const, Name
from repro.lang.normalize import (
    NormalizationError,
    RawLoopLevel,
    normalize_steps,
    substitute,
)
from repro.runtime import make_arrays, run_sequential


class TestSubstitute:
    def test_name_replaced(self):
        e = parse("for i = 1 to 2 { A[i] = B[i + 1] * i; }").statements[0].rhs
        out = substitute(e, {"i": Const(5)})
        names = set(out.names())
        assert "i" not in names

    def test_untouched_names_kept(self):
        e = parse("for i = 1 to 2 { A[i] = B[i] + D; }").statements[0].rhs
        out = substitute(e, {"i": Name("x")})
        assert set(out.names()) == {"x", "D"}


class TestSteppedParsing:
    def test_trip_count(self):
        nest = parse("for i = 1 to 10 step 3 { A[i] = 0; }")
        # i' in 1..4; i = 1 + (i'-1)*3 hits 1,4,7,10
        assert IterationSpace(nest).size() == 4
        info = extract_references(nest).arrays["A"]
        elems = sorted(info.element_at((ip,), info.references[0].offset)
                       for ip in range(1, 5))
        assert elems == [(1,), (4,), (7,), (10,)]

    def test_stepped_lower_offset(self):
        nest = parse("for i = 2 to 9 step 2 { A[i] = 0; }")
        info = extract_references(nest).arrays["A"]
        elems = sorted(info.element_at((ip,), info.references[0].offset)
                       for ip in range(1, 5))
        assert elems == [(2,), (4,), (6,), (8,)]

    def test_semantics_equivalent(self):
        stepped = parse("for i = 1 to 7 step 2 { A[i] = A[i - 2] + 1; }")
        manual = parse("for k = 1 to 4 { A[2*k - 1] = A[2*k - 3] + 1; }")
        a1 = make_arrays(extract_references(stepped),
                         init=lambda n: (lambda c: 0.0))
        a2 = {"A": a1["A"].copy()}
        run_sequential(stepped, a1)
        run_sequential(manual, a2)
        assert a1["A"].data.tolist() == a2["A"].data.tolist()

    def test_nested_step_with_dependent_inner(self):
        nest = parse("""
            for i = 1 to 8 step 4 {
              for j = 1 to i {
                T[i, j] = 0;
              }
            }
        """)
        # outer hits i=1,5 -> inner bound becomes 1 + (i'-1)*4
        sp = IterationSpace(nest)
        assert sp.size() == 1 + 5

    def test_empty_stepped_loop(self):
        nest = parse("for i = 5 to 4 step 2 { A[i] = 0; }")
        assert IterationSpace(nest).size() == 0

    def test_step_one_noop(self):
        a = parse("for i = 2 to 5 { A[i] = 0; }")
        b = parse("for i = 2 to 5 step 1 { A[i] = 0; }")
        assert a.statements == b.statements
        assert a.lowers == b.lowers and a.uppers == b.uppers


class TestRejection:
    def test_zero_step(self):
        with pytest.raises(ParseError, match="step 0"):
            parse("for i = 1 to 4 step 0 { A[i] = 0; }")

    def test_negative_step(self):
        with pytest.raises(ParseError, match="negative step"):
            parse("for i = 4 to 1 step -1 { A[i] = 0; }")

    def test_affine_bounds_with_step(self):
        with pytest.raises(ParseError, match="not affine"):
            parse("""
                for i = 1 to 8 {
                  for j = 1 to i step 2 { A[i, j] = 0; }
                }
            """)


class TestDirectApi:
    def test_normalize_steps_direct(self):
        from repro.lang import builder as b

        levels = [RawLoopLevel("i", Const(0), Const(9), 3)]
        stmts = [b.assign(b.ref("A", "i"), 1)]
        nest = normalize_steps(levels, stmts, name="N")
        assert nest.name == "N"
        assert IterationSpace(nest).size() == 4  # 0,3,6,9

    def test_pipeline_on_stepped_loop(self):
        """A stepped loop flows through partitioning + verification."""
        from repro.core import build_plan
        from repro.runtime import verify_plan

        nest = parse("""
            for i = 1 to 8 step 2 {
              for j = 1 to 4 {
                U[i, j] = U[i, j - 1] + F[i, j];
              }
            }
        """)
        plan = build_plan(nest)
        assert plan.num_blocks == 4  # the 4 odd rows are independent
        verify_plan(plan).raise_on_failure()
