"""Programmatic builder API."""

import pytest

from repro.lang import builder as b
from repro.lang import catalog, to_source, parse


class TestBuilder:
    def test_l1_equivalent(self):
        nest = b.nest(
            b.loop("i", 1, 4),
            b.loop("j", 1, 4),
            body=[
                b.assign(b.ref("A", b.lin((2, "i")), b.lin("j")),
                         b.mul(b.ref("C", "i", "j"), 7), label="S1"),
                b.assign(b.ref("B", "j", b.lin("i", const=1)),
                         b.add(b.ref("A", b.lin((2, "i"), const=-2),
                                     b.lin("j", const=-1)),
                               b.ref("C", b.lin("i", const=-1),
                                     b.lin("j", const=-1))), label="S2"),
            ],
            name="L1",
        )
        assert nest.statements == catalog.l1().statements
        assert nest.indices == catalog.l1().indices

    def test_lin_variants(self):
        e = b.lin((2, "i"), (-1, "j"), const=3)
        src = f"for i = 1 to 2 {{ for j = 1 to 2 {{ A[{_render(e)}] = 0; }} }}"
        nest = parse(src)
        from repro.lang.affine import affine_of
        a = affine_of(nest.statements[0].lhs.subscripts[0], nest.indices)
        assert a.coeffs == (2, -1) and a.const == 3

    def test_lin_empty_is_zero(self):
        from repro.lang.ast import Const
        assert b.lin() == Const(0)

    def test_ops(self):
        expr = b.div(b.sub(b.neg("x"), 1), 2)
        assert "x" in {n for n in expr.names()}

    def test_coerce_rejects_junk(self):
        with pytest.raises(TypeError):
            b.add(1.5, "x")

    def test_roundtrip_through_printer(self):
        nest = b.nest(b.loop("k", 1, 3),
                      body=[b.assign(b.ref("Y", "k"),
                                     b.add(b.ref("Y", b.lin("k", const=-1)), 1))])
        again = parse(to_source(nest))
        assert again.statements == nest.statements

    def test_affine_upper_bound(self):
        nest = b.nest(b.loop("i", 1, 5), b.loop("j", 1, b.lin("i")),
                      body=[b.assign(b.ref("T", "i", "j"), 0)])
        from repro.lang import IterationSpace
        assert IterationSpace(nest).size() == 15


def _render(expr):
    from repro.lang.printer import expr_to_source
    return expr_to_source(expr)
