"""Interconnect topologies and routing distances."""

import pytest

from repro.machine import (
    CompleteTopology,
    HOST,
    Mesh2D,
    RingTopology,
    StarTopology,
)


class TestMesh2D:
    def test_structure(self):
        m = Mesh2D(4, 4)
        assert m.num_nodes == 16
        assert m.coords(5) == (1, 1)
        assert m.node_at(1, 1) == 5

    def test_manhattan_hops(self):
        m = Mesh2D(4, 4)
        assert m.hops(0, 15) == 6  # (0,0) -> (3,3)
        assert m.hops(0, 3) == 3
        assert m.hops(5, 5) == 0

    def test_host_attached_to_corner(self):
        m = Mesh2D(4, 4)
        assert m.hops(HOST, 0) == 1
        assert m.hops(HOST, 15) == 7
        assert m.diameter_from(HOST) == 7

    def test_rows_and_cols(self):
        m = Mesh2D(3, 3)
        assert m.row_nodes(1) == [3, 4, 5]
        assert m.col_nodes(2) == [2, 5, 8]

    def test_node_at_bounds(self):
        with pytest.raises(IndexError):
            Mesh2D(2, 2).node_at(2, 0)

    def test_neighbors(self):
        m = Mesh2D(3, 3)
        assert m.neighbors(4) == [1, 3, 5, 7]  # center of 3x3
        assert HOST in m.neighbors(0)

    def test_single_node_mesh(self):
        m = Mesh2D(1, 1)
        assert m.hops(HOST, 0) == 1


class TestChainLength:
    def test_row_chain_from_host(self):
        m = Mesh2D(4, 4)
        # host -> node 0 -> 1 -> 2 -> 3: 4 hops total
        assert m.chain_length(HOST, m.row_nodes(0)) == 4

    def test_column_chain(self):
        m = Mesh2D(4, 4)
        # host -> 0 -> 4 -> 8 -> 12
        assert m.chain_length(HOST, m.col_nodes(0)) == 4

    def test_far_row(self):
        m = Mesh2D(4, 4)
        # host -> (3 rows down) + 3 across = 1+3 + 3 = 7
        assert m.chain_length(HOST, m.row_nodes(3)) == 7

    def test_src_excluded(self):
        m = Mesh2D(2, 2)
        assert m.chain_length(0, [0]) == 0
        assert m.chain_length(0, [0, 1]) == 1


class TestOtherTopologies:
    def test_ring(self):
        r = RingTopology(6)
        assert r.hops(0, 3) == 3
        assert r.hops(0, 5) == 1  # wrap-around

    def test_single_node_ring(self):
        assert RingTopology(1).num_nodes == 1

    def test_star(self):
        s = StarTopology(5)
        assert s.hops(1, 2) == 2
        assert s.hops(0, 4) == 1

    def test_complete(self):
        c = CompleteTopology(5)
        assert all(c.hops(a, b) == 1 for a in range(5) for b in range(5) if a != b)

    def test_diameter_from(self):
        assert RingTopology(8).diameter_from(0) == 4
        assert CompleteTopology(4).diameter_from(2) == 1
