"""Hypercube and torus topologies."""

import pytest

from repro.machine import HOST, Hypercube, Mesh2D, Torus2D


class TestHypercube:
    def test_structure(self):
        h = Hypercube(3)
        assert h.num_nodes == 8
        # each node has dim neighbors (+host for node 0)
        assert len(h.neighbors(5)) == 3

    def test_hamming_distance(self):
        h = Hypercube(4)
        assert h.hops(0b0000, 0b1111) == 4
        assert h.hops(0b0101, 0b0110) == 2
        assert h.hops(3, 3) == 0

    def test_diameter(self):
        assert Hypercube(4).diameter_from(0) == 4
        assert Hypercube(0).num_nodes == 1

    def test_host_attached(self):
        h = Hypercube(2)
        assert h.hops(HOST, 0) == 1
        assert h.hops(HOST, 3) == 3

    def test_negative_dim(self):
        with pytest.raises(ValueError):
            Hypercube(-1)

    def test_beats_mesh_diameter(self):
        # 16 nodes: hypercube diameter 4 vs mesh 6
        assert Hypercube(4).diameter_from(0) < Mesh2D(4, 4).hops(0, 15)


class TestTorus2D:
    def test_wraparound(self):
        t = Torus2D(4, 4)
        assert t.hops(0, 3) == 1   # row wrap
        assert t.hops(0, 12) == 1  # column wrap
        assert t.hops(0, 15) == 2

    def test_diameter_half_of_mesh(self):
        t = Torus2D(4, 4)
        m = Mesh2D(4, 4)
        assert t.diameter_from(0) < m.diameter_from(0)

    def test_degenerate_small(self):
        t = Torus2D(1, 4)
        assert t.num_nodes == 4
        assert t.hops(0, 3) == 1

    def test_coords(self):
        t = Torus2D(3, 4)
        assert t.coords(7) == (1, 3)


class TestTopologySensitivity:
    """Broadcast cost tracks the diameter across interconnects."""

    def test_broadcast_ranking(self):
        from repro.machine import Multicomputer, UNIT_COSTS

        costs = {}
        for name, topo in (("mesh", Mesh2D(4, 4)),
                           ("torus", Torus2D(4, 4)),
                           ("hypercube", Hypercube(4))):
            mc = Multicomputer(topo, cost=UNIT_COSTS)
            costs[name] = mc.network.broadcast(HOST, 100)
        assert costs["hypercube"] <= costs["torus"] < costs["mesh"]
