"""The assembled Multicomputer and its statistics."""

import pytest

from repro.machine import HOST, Mesh2D, Multicomputer, UNIT_COSTS


class TestConstruction:
    def test_mesh_constructor(self):
        mc = Multicomputer.mesh(4, 4, cost=UNIT_COSTS)
        assert mc.num_processors == 16
        assert mc.processor(5).pid == 5

    def test_processor_memories_independent(self):
        mc = Multicomputer.mesh(2, 2, cost=UNIT_COSTS)
        mc.processor(0).memory.allocate("A", [(1,)])
        assert not mc.processor(1).memory.holds("A", (1,))


class TestAccounting:
    def test_compute_charging(self):
        mc = Multicomputer.mesh(2, 2, cost=UNIT_COSTS)
        mc.processor(0).charge_iterations(10)
        mc.processor(1).charge_iterations(4)
        st = mc.stats()
        assert st.max_compute_time == 10.0
        assert st.total_iterations == 14

    def test_makespan_distribution_plus_compute(self):
        mc = Multicomputer.mesh(2, 2, cost=UNIT_COSTS)
        mc.network.send(HOST, 0, 9)  # 1 + 9 = 10
        mc.processor(0).charge_iterations(5)
        assert mc.makespan() == pytest.approx(15.0)

    def test_stats_fields(self):
        mc = Multicomputer.mesh(2, 2, cost=UNIT_COSTS)
        mc.network.send(HOST, 0, 3)
        mc.processor(0).memory.allocate("A", [(0,), (1,)])
        st = mc.stats()
        assert st.messages == 1
        assert st.words_sent == 3
        assert st.memory_words[0] == 2
        assert st.remote_accesses == 0

    def test_remote_access_counted(self):
        mc = Multicomputer.mesh(2, 2, cost=UNIT_COSTS)
        mc.processor(2).memory.strict = False
        mc.processor(2).memory.load("X", (0,))
        assert mc.stats().remote_accesses == 1

    def test_reset(self):
        mc = Multicomputer.mesh(2, 2, cost=UNIT_COSTS)
        mc.network.send(HOST, 0, 3)
        mc.processor(0).charge_iterations(5)
        mc.reset()
        st = mc.stats()
        assert st.distribution_time == 0.0
        assert st.max_compute_time == 0.0
        assert st.total_iterations == 0

    def test_finish_time(self):
        mc = Multicomputer.mesh(2, 2, cost=UNIT_COSTS)
        p = mc.processor(0)
        p.recv_time = 3.0
        p.charge_iterations(4)
        assert p.finish_time == pytest.approx(7.0)
