"""JSON export of message traces and machine statistics."""

import json

from repro.machine import HOST, Multicomputer, UNIT_COSTS


class TestMessageJson:
    def test_message_to_dict_roundtrips_through_json(self):
        mc = Multicomputer.mesh(2, 2, cost=UNIT_COSTS)
        mc.network.send(HOST, 0, 5, tag="A")
        mc.network.multicast(HOST, [1, 2], 3, tag="B")
        text = mc.network.log.to_json()
        data = json.loads(text)
        assert len(data) == 2
        assert data[0] == {"kind": "send", "src": HOST, "dsts": [0],
                           "words": 5, "hops": 1, "time": data[0]["time"],
                           "tag": "A"}
        assert data[1]["kind"] == "multicast"
        assert data[1]["dsts"] == [1, 2]

    def test_indent_option(self):
        mc = Multicomputer.mesh(2, 2, cost=UNIT_COSTS)
        mc.network.broadcast(HOST, 1)
        assert "\n" in mc.network.log.to_json(indent=2)

    def test_empty_log(self):
        mc = Multicomputer.mesh(2, 2, cost=UNIT_COSTS)
        assert json.loads(mc.network.log.to_json()) == []


class TestStatsJson:
    def test_stats_to_dict(self):
        mc = Multicomputer.mesh(2, 2, cost=UNIT_COSTS)
        mc.network.send(HOST, 0, 5)
        mc.processor(0).charge_iterations(7)
        mc.processor(0).memory.allocate("A", [(1,)])
        d = mc.stats().to_dict()
        assert d["messages"] == 1
        assert d["total_iterations"] == 7
        assert d["memory_words"][0] == 1
        assert d["makespan"] == d["distribution_time"] + d["max_compute_time"]
        json.dumps(d)  # fully serializable
