"""Network primitives: cost accounting and logs."""

import pytest

from repro.machine import CostModel, HOST, Mesh2D, Network, UNIT_COSTS
from repro.machine.cost import TRANSPUTER


def net(p=16, cost=UNIT_COSTS):
    import math

    side = int(math.isqrt(p))
    return Network(topology=Mesh2D(side, side), cost=cost)


class TestCostModel:
    def test_compute(self):
        assert TRANSPUTER.compute(1000) == pytest.approx(1000 * 9.6e-6)

    def test_pipelined(self):
        c = CostModel(t_comp=0, t_start=10, t_comm=2)
        assert c.pipelined(100, 1) == 10 + 100 * 2
        assert c.pipelined(100, 5) == 10 + 104 * 2
        assert c.pipelined(0, 3) == 0.0

    def test_store_and_forward(self):
        c = CostModel(t_comp=0, t_start=10, t_comm=2)
        assert c.store_and_forward(100, 5) == 10 + 5 * 100 * 2
        assert c.store_and_forward(100, 0) == 10 + 100 * 2  # hops floor 1


class TestSend:
    def test_cost_and_log(self):
        n = net()
        t = n.send(HOST, 0, 50)
        assert t == 1 + (50 + 1 - 1) * 1  # hops(HOST,0)=1
        assert n.log.count == 1
        assert n.log.messages[0].kind == "send"
        assert n.elapsed == t

    def test_hop_term(self):
        n = net()
        t_near = n.send(HOST, 0, 10)
        t_far = n.send(HOST, 15, 10)
        assert t_far - t_near == 6  # 6 extra hops, pipelined

    def test_zero_words_free(self):
        n = net()
        assert n.send(HOST, 0, 0) == 0.0
        assert n.log.count == 0


class TestMulticast:
    def test_chain_cost(self):
        n = net()
        mesh = n.topology
        t = n.multicast(HOST, mesh.row_nodes(0), 100)
        # pipelined over a 4-hop chain
        assert t == 1 + (100 + 4 - 1) * 1

    def test_dedup_and_sort(self):
        n = net()
        n.multicast(HOST, [2, 1, 1, 0], 10)
        assert n.log.messages[0].dsts == (0, 1, 2)

    def test_empty_dsts(self):
        n = net()
        assert n.multicast(HOST, [], 10) == 0.0


class TestBroadcast:
    def test_diameter_cost(self):
        n = net()
        t = n.broadcast(HOST, 100)
        assert t == 1 + 7 * 100 * 1  # store-and-forward along diameter 7

    def test_broadcast_reaches_all(self):
        n = net()
        n.broadcast(HOST, 1)
        assert n.log.messages[0].dsts == tuple(range(16))


class TestAccounting:
    def test_serialization(self):
        n = net()
        t1 = n.send(HOST, 0, 10)
        t2 = n.send(HOST, 1, 10)
        assert n.elapsed == pytest.approx(t1 + t2)

    def test_totals(self):
        n = net()
        n.send(HOST, 0, 10)
        n.multicast(HOST, [1, 2], 5)
        assert n.log.total_words == 15
        assert n.log.count == 2
        assert len(n.log.by_kind("send")) == 1

    def test_reset(self):
        n = net()
        n.send(HOST, 0, 10)
        n.reset()
        assert n.elapsed == 0.0 and n.log.count == 0

    def test_message_validation(self):
        from repro.machine.message import Message

        with pytest.raises(ValueError):
            Message(kind="teleport", src=0, dsts=(1,), words=1, hops=1, time=0.0)
        with pytest.raises(ValueError):
            Message(kind="send", src=0, dsts=(1,), words=-1, hops=1, time=0.0)
