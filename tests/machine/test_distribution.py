"""Host-to-node distribution schedules."""

import pytest

from repro.machine import Multicomputer, UNIT_COSTS
from repro.machine.distribution import (
    broadcast_array,
    multicast_groups,
    scatter_slices,
)


def machine():
    return Multicomputer.mesh(2, 2, cost=UNIT_COSTS)


class TestScatter:
    def test_disjoint_pieces_land_locally(self):
        mc = machine()
        sched = scatter_slices(mc, "A", {0: [(0, 0)], 1: [(0, 1), (1, 1)]},
                               init=lambda c: sum(c))
        assert mc.processor(0).memory.load("A", (0, 0)) == 0.0
        assert mc.processor(1).memory.load("A", (1, 1)) == 2.0
        assert not mc.processor(0).memory.holds("A", (0, 1))
        assert len(sched.ops) == 2
        assert sched.ops[0].kind == "scatter"

    def test_empty_piece_skipped(self):
        mc = machine()
        sched = scatter_slices(mc, "A", {0: [], 1: [(1,)]})
        assert len(sched.ops) == 1

    def test_time_serialized(self):
        mc = machine()
        sched = scatter_slices(mc, "A", {0: [(0,)], 1: [(1,)]})
        assert mc.network.elapsed == pytest.approx(sched.total_time)

    def test_arrival_times_monotone(self):
        mc = machine()
        scatter_slices(mc, "A", {0: [(0,)], 1: [(1,)], 2: [(2,)]})
        r = [mc.processor(p).recv_time for p in range(3)]
        assert r[0] < r[1] < r[2]


class TestMulticast:
    def test_groups_share_elements(self):
        mc = machine()
        sched = multicast_groups(
            mc, "B", [([0, 1], [(0,), (1,)]), ([2, 3], [(2,)])],
            init=lambda c: c[0] * 2.0)
        for pid in (0, 1):
            assert mc.processor(pid).memory.load("B", (1,)) == 2.0
        assert mc.processor(2).memory.load("B", (2,)) == 4.0
        assert not mc.processor(2).memory.holds("B", (0,))
        assert [op.kind for op in sched.ops] == ["multicast", "multicast"]

    def test_total_words_counts_copies(self):
        mc = machine()
        sched = multicast_groups(mc, "B", [([0, 1, 2], [(0,), (1,)])])
        assert sched.total_words == 6  # 2 words x 3 destinations


class TestBroadcast:
    def test_everyone_gets_everything(self):
        mc = machine()
        broadcast_array(mc, "C", [(0,), (1,), (2,)], init=lambda c: 1.0)
        for pid in range(4):
            for x in range(3):
                assert mc.processor(pid).memory.load("C", (x,)) == 1.0

    def test_single_message(self):
        mc = machine()
        sched = broadcast_array(mc, "C", [(0,)])
        assert len(sched.ops) == 1
        assert mc.network.log.messages[0].kind == "broadcast"

    def test_empty_noop(self):
        mc = machine()
        sched = broadcast_array(mc, "C", [])
        assert sched.ops == [] and mc.network.elapsed == 0.0


class TestSchedule:
    def test_by_array(self):
        mc = machine()
        sched = scatter_slices(mc, "A", {0: [(0,)]})
        broadcast_array(mc, "B", [(0,)], schedule=sched)
        assert len(sched.by_array("A")) == 1
        assert len(sched.by_array("B")) == 1
        assert sched.total_time == pytest.approx(mc.network.elapsed)
