"""Local memories and the strict remote-access discipline."""

import pytest

from repro.machine import LocalMemory, RemoteAccessError


class TestAllocation:
    def test_allocate_and_count(self):
        m = LocalMemory(pid=0)
        n = m.allocate("A", [(1, 1), (1, 2)])
        assert n == 2
        assert m.words() == 2
        assert m.holds("A", (1, 1))
        assert not m.holds("A", (9, 9))
        assert not m.holds("B", (1, 1))

    def test_allocate_idempotent_words(self):
        m = LocalMemory(pid=0)
        m.allocate("A", [(1,)])
        n = m.allocate("A", [(1,), (2,)])
        assert n == 1  # only (2,) was new
        assert m.words() == 2

    def test_init_function(self):
        m = LocalMemory(pid=0)
        m.allocate("A", [(2,), (3,)], init=lambda c: c[0] * 10)
        assert m.load("A", (2,)) == 20.0
        assert m.load("A", (3,)) == 30.0

    def test_default_zero(self):
        m = LocalMemory(pid=0)
        m.allocate("A", [(0,)])
        assert m.load("A", (0,)) == 0.0


class TestAccessDiscipline:
    def test_load_store_counters(self):
        m = LocalMemory(pid=0)
        m.allocate("A", [(1,)])
        m.store("A", (1,), 5.0)
        assert m.load("A", (1,)) == 5.0
        assert m.reads == 1 and m.writes == 1

    def test_remote_load_raises(self):
        m = LocalMemory(pid=3)
        with pytest.raises(RemoteAccessError) as e:
            m.load("A", (1,))
        assert e.value.pid == 3
        assert m.remote_attempts == 1

    def test_remote_store_raises(self):
        m = LocalMemory(pid=0)
        m.allocate("A", [(1,)])
        with pytest.raises(RemoteAccessError):
            m.store("A", (2,), 1.0)

    def test_non_strict_mode_counts_without_raising(self):
        m = LocalMemory(pid=0, strict=False)
        assert m.load("A", (1,)) == 0.0
        m.store("A", (1,), 2.0)
        assert m.remote_attempts == 2

    def test_coords_normalized(self):
        m = LocalMemory(pid=0)
        m.allocate("A", [(1, 2)])
        from fractions import Fraction

        m.store("A", (Fraction(1), Fraction(2)), 7.0)
        assert m.load("A", (1, 2)) == 7.0


class TestRemoteSplit:
    def test_remote_load_counts_as_read_attempt(self):
        m = LocalMemory(pid=0, strict=False)
        m.load("A", (1,))
        assert (m.remote_attempts, m.remote_read_attempts,
                m.remote_write_attempts) == (1, 1, 0)

    def test_remote_store_counts_as_write_attempt(self):
        m = LocalMemory(pid=0, strict=False)
        m.store("A", (1,), 1.0)
        assert (m.remote_attempts, m.remote_read_attempts,
                m.remote_write_attempts) == (1, 0, 1)

    def test_error_carries_direction(self):
        m = LocalMemory(pid=0)
        with pytest.raises(RemoteAccessError) as e:
            m.load("A", (1,))
        assert e.value.is_write is False
        with pytest.raises(RemoteAccessError) as e:
            m.store("A", (1,), 1.0)
        assert e.value.is_write is True

    def test_note_remote_without_direction_keeps_split_untouched(self):
        m = LocalMemory(pid=0)
        m.note_remote()
        assert (m.remote_attempts, m.remote_read_attempts,
                m.remote_write_attempts) == (1, 0, 0)

    def test_split_sums_to_combined_under_mixed_traffic(self):
        m = LocalMemory(pid=0, strict=False)
        for _ in range(3):
            m.load("A", (9,))
        for _ in range(2):
            m.store("A", (9,), 0.0)
        assert m.remote_attempts == 5
        assert m.remote_read_attempts + m.remote_write_attempts == 5
