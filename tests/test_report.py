"""The one-call compiler report."""

import io

import pytest

from repro.cli import main
from repro.lang import catalog
from repro.machine.cost import CostModel
from repro.report import compile_report

CHEAP = CostModel(t_comp=1e-3, t_start=1e-6, t_comm=1e-7)


class TestCompileReport:
    def test_l1_report_contents(self):
        rep = compile_report(catalog.l1(), p=4, cost=CHEAP)
        text = rep.render()
        assert "input loop" in text
        assert "reference analysis" in text
        assert "strategy comparison" in text
        assert "parallel form" in text
        assert "SPMD form" in text
        assert "digraph" in text
        assert "OK" in text

    def test_selected_plan_verified(self):
        rep = compile_report(catalog.l1(), p=4, cost=CHEAP)
        assert rep.verification is not None and rep.verification.ok
        assert rep.plan.num_blocks == 7

    def test_l3_elimination_in_report(self):
        rep = compile_report(catalog.l3(), p=4, cost=CHEAP)
        text = rep.render()
        assert "redundancy analysis" in text
        assert "4/16" in text

    def test_no_verify_mode(self):
        rep = compile_report(catalog.l2(), p=4, cost=CHEAP, verify=False)
        assert rep.verification is None
        assert "verification" not in dict(rep.sections)

    def test_no_elimination_mode(self):
        rep = compile_report(catalog.l1(), p=4, cost=CHEAP,
                             consider_elimination=False)
        assert "redundancy analysis" not in dict(rep.sections)

    def test_scalars_forwarded(self, scalars):
        rep = compile_report(catalog.l3_sub(), p=4, cost=CHEAP,
                             scalars=scalars)
        assert rep.verification is not None and rep.verification.ok


class TestReportCli:
    def run(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_report_command(self):
        code, text = self.run("report", "--loop", "L1", "-p", "4")
        assert code == 0
        assert "strategy comparison" in text and "OK" in text

    def test_report_with_scalars(self):
        code, text = self.run("report", "--loop", "L3sub", "-p", "4",
                              "--scalars", "D=2,F=3,G=1.5,K=0.5")
        assert code == 0

    def test_report_no_eliminate(self):
        code, text = self.run("report", "--loop", "L1", "-p", "4",
                              "--no-eliminate")
        assert code == 0
        assert "redundancy analysis" not in text
