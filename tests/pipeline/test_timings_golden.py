"""Golden format for the --timings table (deterministic ordering)."""

import io

from repro.cli import main
from repro.pipeline.instrument import Instrumentation


def build_instr():
    instr = Instrumentation()
    instr.record("beta", 0.002)
    instr.record("alpha", 0.004)
    instr.record("gamma", 0.002)   # ties with beta on total seconds
    instr.count("cache.miss")
    instr.count("cache.miss.new-fingerprint")
    instr.count("cache.hit", 2)
    return instr


GOLDEN = """\
pass                    calls  total(ms)   mean(ms)
alpha                       1      4.000      4.000
beta                        1      2.000      2.000
gamma                       1      2.000      2.000
total                              8.000
counter cache.hit: 2
counter cache.miss: 1
counter cache.miss.new-fingerprint: 1"""


class TestGoldenTable:
    def test_exact_format(self):
        table = build_instr().timing_table()
        got = [ln.rstrip() for ln in table.splitlines()]
        assert got == GOLDEN.splitlines()

    def test_sorted_by_total_then_name(self):
        instr = Instrumentation()
        instr.record("zz", 0.001)
        instr.record("aa", 0.001)
        instr.record("mm", 0.005)
        lines = instr.timing_table().splitlines()
        names = [ln.split()[0] for ln in lines[1:4]]
        assert names == ["mm", "aa", "zz"]   # time desc, then name asc

    def test_stable_across_recordings_order(self):
        a, b = Instrumentation(), Instrumentation()
        for name, sec in (("p1", 0.01), ("p2", 0.02), ("p3", 0.01)):
            a.record(name, sec)
        for name, sec in (("p3", 0.01), ("p1", 0.01), ("p2", 0.02)):
            b.record(name, sec)
        assert a.timing_table() == b.timing_table()

    def test_empty_table_placeholder(self):
        table = Instrumentation().timing_table()
        assert "(no passes recorded)" in table


class TestCliTimings:
    def test_repeat_invocations_identical_structure(self):
        from repro.pipeline import PLAN_CACHE

        def structure(text):
            # strip the timing digits; keep names, calls, counters
            lines = text.splitlines()
            keep = []
            for ln in lines:
                if ln.startswith("counter ") or "(no passes" in ln:
                    keep.append(ln)
                elif ln and not ln[0].isspace():
                    keep.append(ln.split()[0])
            return keep

        PLAN_CACHE.clear()
        out1 = io.StringIO()
        main(["partition", "--loop", "L4", "--timings"], out=out1)
        PLAN_CACHE.clear()
        out2 = io.StringIO()
        main(["partition", "--loop", "L4", "--timings"], out=out2)
        s1 = structure(out1.getvalue())
        s2 = structure(out2.getvalue())
        assert s1 == s2
        assert "counter cache.miss.new-fingerprint: 1" in s1
