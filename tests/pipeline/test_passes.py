"""Pass manager mechanics: ordering, prefixes, injection, scheduling."""

import pytest

from repro.lang import catalog
from repro.pipeline import (
    PassManager,
    PipelineConfig,
    PipelineContext,
    default_manager,
    run_pipeline,
)
from repro.pipeline.passes import (
    Pass,
    PassOrderError,
    PipelineError,
    STANDARD_PASSES,
    UnknownPassError,
)


STANDARD_NAMES = ["extract-refs", "eliminate-redundancy", "choose-space",
                  "partition", "transform", "map", "verify"]


class TestRegistry:
    def test_standard_order(self):
        assert default_manager().names() == STANDARD_NAMES

    def test_register_duplicate_name_rejected(self):
        m = default_manager()
        with pytest.raises(ValueError, match="already registered"):
            m.register(STANDARD_PASSES[0])

    def test_unknown_pass(self):
        with pytest.raises(UnknownPassError):
            default_manager().pass_index("no-such-pass")

    def test_register_before_and_after_exclusive(self):
        m = default_manager()
        p = Pass(name="x", inputs=(), outputs=("x",), run=lambda ctx: None)
        with pytest.raises(ValueError, match="at most one"):
            m.register(p, before="partition", after="extract-refs")

    def test_ordering_validated_on_register(self):
        """A pass may not be placed before the passes feeding it."""
        m = default_manager()
        needs_plan = Pass(name="needs-plan", inputs=("plan",),
                          outputs=("late",), run=lambda ctx: None)
        with pytest.raises(PassOrderError, match="needs-plan"):
            m.register(needs_plan, before="extract-refs")

    def test_register_before_named_pass(self):
        m = default_manager()
        seen = []
        m.register(Pass(name="peek", inputs=("model",), outputs=("peek",),
                        run=lambda ctx: (seen.append(True),
                                         ctx.put("peek", True))),
                   before="choose-space")
        assert m.names().index("peek") == m.names().index("choose-space") - 1


class TestPrefix:
    def test_upto_partition_stops_early(self, l1):
        ctx = run_pipeline(l1, PipelineConfig(use_cache=False),
                           upto="partition")
        assert ctx.completed[-1] == "partition"
        assert not ctx.has("tnest") and not ctx.has("grid")

    def test_upto_transform(self, l4):
        ctx = run_pipeline(l4, PipelineConfig(use_cache=False),
                           upto="transform")
        assert ctx.has("tnest") and not ctx.has("grid")

    def test_demand_driven_verify_skips_mapping(self, l1):
        """verify needs only the plan; transform/map stay out of the run."""
        ctx = run_pipeline(l1, PipelineConfig(use_cache=False), upto="verify")
        assert ctx.verification.ok
        assert "transform" not in ctx.completed
        assert "map" not in ctx.completed

    def test_map_requires_processors(self, l4):
        with pytest.raises(PipelineError, match="processors"):
            run_pipeline(l4, PipelineConfig(use_cache=False), upto="map")

    def test_map_with_processors(self, l4):
        ctx = run_pipeline(l4, PipelineConfig(processors=4, use_cache=False),
                           upto="map")
        assert ctx.grid.size == 4
        assert ctx.assignment is not None


class TestInjectionAndReplacement:
    def test_injected_model_skips_extraction(self, l1):
        from repro.analysis import extract_references

        model = extract_references(l1)
        ctx = run_pipeline(l1, PipelineConfig(use_cache=False),
                           upto="partition", model=model)
        assert ctx.plan.model is model
        assert "extract-refs" not in ctx.completed

    def test_replace_pass(self, l1):
        """A swapped implementation runs in place of the original."""
        m = default_manager()
        calls = []

        def spy_extract(ctx):
            calls.append(ctx.nest.name)
            STANDARD_PASSES[0].run(ctx)

        m.replace("extract-refs",
                  Pass(name="extract-refs", inputs=("nest",),
                       outputs=("model",), run=spy_extract))
        ctx = run_pipeline(l1, PipelineConfig(use_cache=False),
                           upto="partition", manager=m)
        assert calls == [l1.name]
        assert ctx.plan.num_blocks == 7

    def test_replace_keeps_validation(self):
        m = default_manager()
        bad = Pass(name="choose-space", inputs=("breakdown",),
                   outputs=("breakdown",), run=lambda ctx: None)
        with pytest.raises(PassOrderError):
            m.replace("choose-space", bad)

    def test_clone_is_independent(self):
        m = default_manager()
        c = m.clone()
        c.register(Pass(name="extra", inputs=(), outputs=("extra",),
                        run=lambda ctx: ctx.put("extra", 1)))
        assert "extra" in c.names() and "extra" not in m.names()


class TestContext:
    def test_require_missing_artifact(self, l1):
        ctx = PipelineContext(nest=l1, config=PipelineConfig())
        with pytest.raises(KeyError, match="not available"):
            ctx.require("plan")

    def test_completed_records_run_order(self, l1):
        ctx = run_pipeline(l1, PipelineConfig(use_cache=False),
                           upto="partition")
        assert ctx.completed == ["extract-refs", "eliminate-redundancy",
                                 "choose-space", "partition"]
