"""Plan cache: fingerprints, LRU behaviour, disk store, isolation."""

import pytest

from repro.lang import catalog, parse
from repro.lang.fingerprint import fingerprint_nest, plan_cache_key
from repro.pipeline import PipelineConfig, PlanCache, run_pipeline
from repro.pipeline.instrument import Instrumentation


SRC = """
for i = 1 to 4 {
  for j = 1 to 4 {
    S1: A[2*i, j] = C[i, j] * 7;
    S2: B[j, i + 1] = A[2*i - 2, j - 1] + C[i - 1, j - 1];
  }
}
"""


class TestFingerprint:
    def test_stable_across_parses(self):
        assert fingerprint_nest(parse(SRC)) == fingerprint_nest(parse(SRC))

    def test_invariant_under_index_renaming(self):
        renamed = SRC.replace("i", "x").replace("j", "y")
        assert fingerprint_nest(parse(SRC)) == fingerprint_nest(parse(renamed))

    def test_sensitive_to_coefficients(self):
        changed = SRC.replace("A[2*i, j]", "A[3*i, j]")
        assert fingerprint_nest(parse(SRC)) != fingerprint_nest(parse(changed))

    def test_sensitive_to_bounds(self):
        changed = SRC.replace("i = 1 to 4", "i = 1 to 5")
        assert fingerprint_nest(parse(SRC)) != fingerprint_nest(parse(changed))

    def test_sensitive_to_array_names(self):
        changed = SRC.replace("C[", "D[")
        assert fingerprint_nest(parse(SRC)) != fingerprint_nest(parse(changed))

    def test_key_includes_strategy_flags(self):
        nest = parse(SRC)
        base = plan_cache_key(nest, "nonduplicate")
        assert plan_cache_key(nest, "duplicate") != base
        assert plan_cache_key(nest, "nonduplicate",
                              eliminate_redundant=True) != base
        assert plan_cache_key(nest, "duplicate",
                              duplicate_arrays={"B"}) \
            != plan_cache_key(nest, "duplicate")


class TestCacheServedPlans:
    def test_hit_equals_fresh(self, l1):
        cache = PlanCache(maxsize=8)
        config = PipelineConfig()
        fresh = run_pipeline(l1, config, cache=cache).plan
        served = run_pipeline(catalog.l1(), config, cache=cache).plan
        assert cache.hits == 1 and cache.misses == 1
        assert served.summary() == fresh.summary()
        assert [b.iterations for b in served.blocks] \
            == [b.iterations for b in fresh.blocks]
        assert served.data_blocks.keys() == fresh.data_blocks.keys()

    def test_hit_rebinds_nest_and_model(self, l1):
        from repro.analysis import extract_references

        cache = PlanCache(maxsize=8)
        run_pipeline(l1, PipelineConfig(), cache=cache)
        other, model = catalog.l1(), extract_references(catalog.l1())
        plan = run_pipeline(other, PipelineConfig(), cache=cache,
                            model=model).plan
        assert plan.nest is other and plan.model is model

    def test_counters_reach_instrumentation(self, l1):
        cache = PlanCache(maxsize=8)
        instr = Instrumentation()
        run_pipeline(l1, PipelineConfig(), cache=cache,
                     instrumentation=instr)
        run_pipeline(l1, PipelineConfig(), cache=cache,
                     instrumentation=instr)
        assert instr.counter("cache.miss") == 1
        assert instr.counter("cache.hit") == 1
        assert cache.hit_rate == 0.5

    def test_distinct_configs_do_not_collide(self, l2):
        cache = PlanCache(maxsize=8)
        seq = run_pipeline(l2, PipelineConfig(), cache=cache).plan
        par = run_pipeline(l2, PipelineConfig.from_flags(duplicate=True),
                           cache=cache).plan
        assert cache.hits == 0 and cache.misses == 2
        assert (seq.num_blocks, par.num_blocks) == (1, 16)

    def test_served_plan_mutation_cannot_poison_cache(self, l1):
        """Corrupting a served plan must not leak into later hits."""
        from repro.core.partition import DataBlock

        cache = PlanCache(maxsize=8)
        victim = run_pipeline(l1, PipelineConfig(), cache=cache).plan
        db0 = victim.data_blocks["A"][0]
        victim.data_blocks["A"][0] = DataBlock(
            array="A", block_index=0, elements=frozenset())
        served = run_pipeline(catalog.l1(), PipelineConfig(),
                              cache=cache).plan
        assert served.data_blocks["A"][0].elements == db0.elements


class TestEvictionAndDisk:
    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        loops = [catalog.l1(), catalog.l2(), catalog.l3()]
        for nest in loops:
            run_pipeline(nest, PipelineConfig(), cache=cache)
        assert len(cache) == 2
        assert cache.evictions == 1
        # l1 (least recently used) was evicted; l3 is still resident
        assert PlanCache.key_for(loops[0], PipelineConfig()) not in cache
        assert PlanCache.key_for(loops[2], PipelineConfig()) in cache

    def test_min_size(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_disk_store_roundtrip(self, tmp_path, l1):
        writer = PlanCache(maxsize=8, directory=str(tmp_path))
        fresh = run_pipeline(l1, PipelineConfig(), cache=writer).plan
        assert list(tmp_path.glob("*.plan"))

        reader = PlanCache(maxsize=8, directory=str(tmp_path))
        served = run_pipeline(catalog.l1(), PipelineConfig(),
                              cache=reader).plan
        assert reader.hits == 1 and reader.misses == 0
        assert served.summary() == fresh.summary()

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path, l1):
        writer = PlanCache(maxsize=8, directory=str(tmp_path))
        run_pipeline(l1, PipelineConfig(), cache=writer)
        for p in tmp_path.glob("*.plan"):
            p.write_bytes(b"not a pickle")
        reader = PlanCache(maxsize=8, directory=str(tmp_path))
        plan = run_pipeline(catalog.l1(), PipelineConfig(),
                            cache=reader).plan
        assert reader.misses == 1
        assert plan.num_blocks == 7


class TestFacade:
    def test_build_plan_uses_global_cache(self, l3):
        from repro.core import build_plan
        from repro.pipeline import PLAN_CACHE

        before = PLAN_CACHE.hits
        a = build_plan(l3)
        b = build_plan(catalog.l3())
        assert PLAN_CACHE.hits > before
        assert a.summary() == b.summary()

    def test_build_plan_opt_out(self, l3):
        from repro.core import build_plan
        from repro.pipeline import PLAN_CACHE

        hits = PLAN_CACHE.hits
        build_plan(l3, use_cache=False)
        assert PLAN_CACHE.hits == hits
