"""Structured diagnostics: emission by passes, rendering, CLI surfacing."""

import pytest

from repro.lang import catalog, parse
from repro.pipeline import (
    Diagnostic,
    DiagnosticBag,
    PipelineConfig,
    PlanCache,
    Severity,
    run_pipeline,
)
from repro.pipeline import diagnostics as diag


class TestBag:
    def test_render_format(self):
        d = Diagnostic(Severity.WARNING, "degenerate-psi", "all sequential",
                       loc="L2")
        assert d.render() == "warning[degenerate-psi] at L2: all sequential"

    def test_render_without_loc(self):
        d = Diagnostic(Severity.NOTE, "x", "msg")
        assert d.render() == "note[x]: msg"

    def test_queries(self):
        bag = DiagnosticBag()
        bag.note("a", "first")
        bag.warning("b", "second")
        assert len(bag) == 2 and bool(bag)
        assert [d.code for d in bag.at_least(Severity.WARNING)] == ["b"]
        assert bag.with_code("a")[0].message == "first"
        assert not bag.has_errors()
        bag.error("c", "third")
        assert bag.has_errors()
        assert max(d.severity for d in bag) is Severity.ERROR


class TestPassEmission:
    def test_degenerate_psi_for_sequential_l2(self, l2):
        ctx = run_pipeline(l2, PipelineConfig(use_cache=False))
        warnings = ctx.diagnostics.with_code(diag.DEGENERATE_PSI)
        assert len(warnings) == 1
        assert warnings[0].severity is Severity.WARNING
        assert warnings[0].loc == "L2"
        assert "duplicate strategy" in warnings[0].message

    def test_fully_parallel_note_for_duplicated_l2(self, l2):
        ctx = run_pipeline(l2, PipelineConfig.from_flags(duplicate=True),
                           upto="partition")
        assert not ctx.diagnostics.with_code(diag.DEGENERATE_PSI)
        notes = ctx.diagnostics.with_code(diag.FULLY_PARALLEL)
        assert len(notes) == 1
        assert ctx.plan.num_blocks == 16

    def test_redundancy_found_for_l3(self, l3):
        config = PipelineConfig.from_flags(duplicate=True, eliminate=True)
        ctx = run_pipeline(l3, config, upto="partition")
        notes = ctx.diagnostics.with_code(diag.REDUNDANCY_FOUND)
        assert len(notes) == 1
        assert "12 of 32" in notes[0].message

    def test_no_redundancy_note(self, l1):
        config = PipelineConfig.from_flags(eliminate=True)
        ctx = run_pipeline(l1, config, upto="partition")
        assert len(ctx.diagnostics.with_code(diag.NO_REDUNDANCY)) == 1
        assert not ctx.diagnostics.with_code(diag.REDUNDANCY_FOUND)

    def test_partial_duplication_note(self, l3):
        """L3's A is only partially duplicable under the duplicate strategy."""
        ctx = run_pipeline(l3, PipelineConfig.from_flags(duplicate=True),
                           upto="partition")
        notes = ctx.diagnostics.with_code(diag.PARTIAL_DUPLICATION)
        assert any("array A" in d.message for d in notes)

    def test_nonuniform_reference_error(self):
        from repro.analysis.references import NonUniformReferenceError

        nest = parse("for i = 1 to 4 { A[i * i] = 1; }")
        with pytest.raises(NonUniformReferenceError):
            run_pipeline(nest, PipelineConfig(use_cache=False))

    def test_diagnostics_replayed_on_cache_hit(self, l2):
        cache = PlanCache(maxsize=4)
        fresh = run_pipeline(l2, PipelineConfig(), cache=cache)
        served = run_pipeline(catalog.l2(), PipelineConfig(), cache=cache)
        assert cache.hits == 1
        assert served.diagnostics.records == fresh.diagnostics.records


class TestCliRendering:
    def test_warning_goes_to_stderr_not_stdout(self, capsys):
        import io

        from repro.cli import main

        out = io.StringIO()
        assert main(["partition", "--loop", "L2"], out=out) == 0
        err = capsys.readouterr().err
        assert "warning[degenerate-psi] at L2" in err
        assert "degenerate-psi" not in out.getvalue()

    def test_quiet_when_no_diagnostics(self, capsys):
        import io

        from repro.cli import main

        out = io.StringIO()
        assert main(["partition", "--loop", "L1"], out=out) == 0
        assert capsys.readouterr().err == ""
