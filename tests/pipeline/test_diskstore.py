"""DiskStore: the shared lock/manifest/evict skeleton both caches use."""

import json
import multiprocessing
import pickle

import pytest

from repro.pipeline.diskstore import DiskStore


class TestManifest:
    def test_empty_store_reads_empty_manifest(self, tmp_path):
        st = DiskStore(tmp_path / "cache")
        m = st.read_manifest()
        assert m == {"version": 1, "clock": 0, "entries": {}}

    def test_manifest_round_trips(self, tmp_path):
        st = DiskStore(tmp_path)
        m = st.read_manifest()
        st.record(m, "k1", 10, tag="t")
        st.write_manifest(m)
        back = st.read_manifest()
        assert back["entries"]["k1"] == {"bytes": 10, "used": 1, "tag": "t"}

    def test_corrupt_manifest_reads_as_empty(self, tmp_path):
        st = DiskStore(tmp_path)
        (tmp_path / "manifest.json").write_text("{nope")
        assert st.read_manifest()["entries"] == {}
        (tmp_path / "manifest.json").write_text(json.dumps({"version": 9}))
        assert st.read_manifest()["entries"] == {}

    def test_touch_marks_most_recently_used(self, tmp_path):
        st = DiskStore(tmp_path)
        m = st.read_manifest()
        st.record(m, "a", 1)
        st.record(m, "b", 1)
        st.touch(m, "a")
        assert m["entries"]["a"]["used"] > m["entries"]["b"]["used"]


class TestPayloads:
    def test_write_read_round_trip(self, tmp_path):
        st = DiskStore(tmp_path)
        st.write_file("k.bin", b"payload")
        assert st.read_file("k.bin") == b"payload"

    def test_writes_are_atomic_no_temp_left(self, tmp_path):
        st = DiskStore(tmp_path)
        st.write_file("k.bin", b"payload")
        leftovers = [p.name for p in tmp_path.iterdir()
                     if ".tmp." in p.name]
        assert leftovers == []

    def test_remove_tolerates_missing(self, tmp_path):
        st = DiskStore(tmp_path)
        st.write_file("k.py", b"x")
        st.remove("k", (".py", ".bin"))
        assert not (tmp_path / "k.py").exists()


class TestEviction:
    def test_evicts_lru_past_cap(self, tmp_path):
        st = DiskStore(tmp_path, cap_bytes=25)
        m = st.read_manifest()
        for key in ("old", "mid", "new"):
            st.write_file(f"{key}.bin", b"0123456789")
            st.record(m, key, 10)
        st.touch(m, "old")  # old becomes most recently used
        evicted = st.evict_lru(m, (".bin",))
        assert evicted == ["mid"]
        assert not (tmp_path / "mid.bin").exists()
        assert (tmp_path / "old.bin").exists()

    def test_protected_key_survives_even_oversized(self, tmp_path):
        st = DiskStore(tmp_path, cap_bytes=5)
        m = st.read_manifest()
        st.write_file("big.bin", b"0123456789")
        st.record(m, "big", 10)
        evicted = st.evict_lru(m, (".bin",), protect=("big",))
        assert evicted == []
        assert (tmp_path / "big.bin").exists()

    def test_no_cap_never_evicts(self, tmp_path):
        st = DiskStore(tmp_path)
        m = st.read_manifest()
        st.record(m, "k", 1 << 40)
        assert st.evict_lru(m, (".bin",)) == []


def _hammer(root, idx):
    st = DiskStore(root, cap_bytes=1 << 20)
    for rep in range(20):
        key = f"w{idx}-{rep % 5}"
        with st.locked():
            m = st.read_manifest()
            st.write_file(f"{key}.bin", pickle.dumps((idx, rep)))
            st.record(m, key, 64)
            st.write_manifest(m)
        with st.locked():
            m = st.read_manifest()
            if key in m["entries"]:
                st.touch(m, key)
                pickle.loads(st.read_file(f"{key}.bin"))
                st.write_manifest(m)


class TestConcurrency:
    def test_concurrent_processes_never_tear_the_manifest(self, tmp_path):
        """Multiple processes hammering one store leave a valid
        manifest whose entries all have readable payloads."""
        root = tmp_path / "shared"
        procs = [multiprocessing.Process(target=_hammer, args=(root, i))
                 for i in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        st = DiskStore(root)
        m = st.read_manifest()
        assert m["version"] == 1
        assert len(m["entries"]) == 20  # 4 writers x 5 distinct keys
        for key in m["entries"]:
            pickle.loads(st.read_file(f"{key}.bin"))
