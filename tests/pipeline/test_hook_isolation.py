"""A raising PipelineHooks implementation must never abort the build."""

import pytest

from repro.lang import catalog
from repro.pipeline import PipelineConfig, run_pipeline
from repro.pipeline.diagnostics import HOOK_ERROR
from repro.pipeline.instrument import (
    HOOK_ERROR_COUNTER,
    Instrumentation,
    PipelineHooks,
    use_metrics,
)


class ExplodingHooks(PipelineHooks):
    """Raises from every callback."""

    def on_pass_start(self, name, ctx):
        raise RuntimeError("start boom")

    def on_pass_end(self, name, ctx, seconds):
        raise ValueError("end boom")

    def on_diagnostic(self, diag):
        raise KeyError("diag boom")


class RecordingHooks(PipelineHooks):
    def __init__(self):
        self.passes = []

    def on_pass_end(self, name, ctx, seconds):
        self.passes.append(name)


@pytest.fixture
def fresh_cache():
    # cold cache so every pass (and thus every hook) actually fires
    from repro.pipeline import PLAN_CACHE

    PLAN_CACHE.clear()


class TestHookIsolation:
    def test_build_completes_despite_raising_hooks(self, fresh_cache):
        instr = Instrumentation()
        instr.add_hooks(ExplodingHooks())
        with use_metrics(instr):
            ctx = run_pipeline(catalog.l1(), PipelineConfig(),
                               upto="partition")
        assert ctx.plan is not None
        assert ctx.plan.num_blocks == 7

    def test_errors_counted_and_recorded(self, fresh_cache):
        instr = Instrumentation()
        instr.add_hooks(ExplodingHooks())
        with use_metrics(instr):
            run_pipeline(catalog.l1(), PipelineConfig(), upto="partition")
        # one start + one end failure per executed pass, at minimum
        assert instr.counter(HOOK_ERROR_COUNTER) >= 2
        assert any(method == "on_pass_start"
                   for _, method, _ in instr.hook_errors)
        assert any("RuntimeError: start boom" in err
                   for _, _, err in instr.hook_errors)

    def test_hook_error_diagnostic_emitted(self, fresh_cache):
        instr = Instrumentation()
        instr.add_hooks(ExplodingHooks())
        with use_metrics(instr):
            ctx = run_pipeline(catalog.l1(), PipelineConfig(),
                               upto="partition")
        codes = [d.code for d in ctx.diagnostics]
        assert HOOK_ERROR in codes
        (diag,) = [d for d in ctx.diagnostics
                   if d.code == HOOK_ERROR][:1]
        assert "ExplodingHooks" in diag.message
        assert "build continues" in diag.message

    def test_healthy_hooks_still_fire_alongside_broken_ones(self, fresh_cache):
        instr = Instrumentation()
        rec = RecordingHooks()
        instr.add_hooks(ExplodingHooks())
        instr.add_hooks(rec)
        with use_metrics(instr):
            run_pipeline(catalog.l1(), PipelineConfig(), upto="partition")
        assert "extract-refs" in rec.passes
        assert "partition" in rec.passes

    def test_broken_on_diagnostic_does_not_recurse(self, fresh_cache):
        # the hook-error diagnostic is appended directly, so a broken
        # on_diagnostic cannot re-trigger itself through the fan-out
        from repro.core import Strategy

        instr = Instrumentation()
        instr.add_hooks(ExplodingHooks())
        with use_metrics(instr):
            ctx = run_pipeline(
                catalog.l2(),
                PipelineConfig(strategy=Strategy.DUPLICATE,
                               duplicate_arrays=frozenset("A")),
                upto="partition")
        assert ctx.plan is not None
        assert instr.counter(HOOK_ERROR_COUNTER) < 100

    def test_reset_clears_hook_errors(self):
        instr = Instrumentation()
        instr.add_hooks(ExplodingHooks())
        instr.fire_pass_start("x", None)
        assert instr.hook_errors
        instr.reset()
        assert instr.hook_errors == []
        assert instr.counter(HOOK_ERROR_COUNTER) == 0
