"""Pipeline-vs-hand-sequenced parity on the paper's catalog loops.

The pass pipeline (and the ``build_plan`` facade over it) must produce
exactly the plan the directly-sequenced Section II-III primitives give:
same summary text, same iteration blocks, same data blocks -- for every
catalog loop under every strategy the paper exercises.
"""

import pytest

from repro.analysis import analyze_redundancy, extract_references
from repro.core import Strategy, build_plan, partitioning_space
from repro.core.partition import (
    all_data_partitions,
    block_index_map,
    iteration_partition,
)
from repro.core.plan import PartitionPlan
from repro.lang import catalog
from repro.pipeline import PipelineConfig, run_pipeline


# (loop factory, strategy, duplicate_arrays, eliminate) -- the paper's cases
CASES = [
    ("L1", catalog.l1, Strategy.NONDUPLICATE, None, False),
    ("L2", catalog.l2, Strategy.NONDUPLICATE, None, False),
    ("L2'", catalog.l2, Strategy.DUPLICATE, None, False),
    ("L3", catalog.l3, Strategy.NONDUPLICATE, None, False),
    ("L3+elim", catalog.l3, Strategy.DUPLICATE, None, True),
    ("L4", catalog.l4, Strategy.NONDUPLICATE, None, False),
    ("L5", catalog.l5, Strategy.NONDUPLICATE, None, False),
    ("L5'", catalog.l5, Strategy.DUPLICATE, {"B"}, False),
    ("L5''", catalog.l5, Strategy.DUPLICATE, None, False),
]


def hand_sequenced(nest, strategy, duplicate_arrays, eliminate):
    """The seed's build_plan body, inlined step by step."""
    model = extract_references(nest)
    redundancy = analyze_redundancy(model) if eliminate else None
    breakdown = partitioning_space(
        model, strategy=strategy, duplicate_arrays=duplicate_arrays,
        eliminate_redundant=eliminate, redundancy=redundancy)
    blocks = iteration_partition(model.space, breakdown.psi)
    live = redundancy.live if redundancy is not None else None
    data_blocks = all_data_partitions(model, blocks, live=live)
    return PartitionPlan(nest=nest, model=model, breakdown=breakdown,
                         blocks=blocks, data_blocks=data_blocks,
                         _block_of=block_index_map(blocks))


def assert_same_plan(a, b):
    assert a.summary() == b.summary()
    assert a.psi == b.psi
    assert [blk.iterations for blk in a.blocks] \
        == [blk.iterations for blk in b.blocks]
    assert a.data_blocks.keys() == b.data_blocks.keys()
    for name in a.data_blocks:
        assert [db.elements for db in a.data_blocks[name]] \
            == [db.elements for db in b.data_blocks[name]]
    assert a.live == b.live


@pytest.mark.parametrize("label,factory,strategy,dup,elim",
                         CASES, ids=[c[0] for c in CASES])
class TestParity:
    def test_pipeline_matches_hand_sequence(self, label, factory, strategy,
                                            dup, elim):
        nest = factory()
        expected = hand_sequenced(factory(), strategy, dup, elim)
        config = PipelineConfig(
            strategy=strategy,
            duplicate_arrays=frozenset(dup) if dup is not None else None,
            eliminate_redundant=elim,
            use_cache=False)
        assert_same_plan(run_pipeline(nest, config, upto="partition").plan,
                         expected)

    def test_facade_matches_hand_sequence(self, label, factory, strategy,
                                          dup, elim):
        expected = hand_sequenced(factory(), strategy, dup, elim)
        got = build_plan(factory(), strategy, duplicate_arrays=dup,
                         eliminate_redundant=elim, use_cache=False)
        assert_same_plan(got, expected)

    def test_cache_served_matches_hand_sequence(self, label, factory,
                                                strategy, dup, elim):
        """Even a cache hit must be indistinguishable from a fresh build."""
        from repro.pipeline import PlanCache

        cache = PlanCache(maxsize=8)
        expected = hand_sequenced(factory(), strategy, dup, elim)
        config = PipelineConfig(
            strategy=strategy,
            duplicate_arrays=frozenset(dup) if dup is not None else None,
            eliminate_redundant=elim)
        run_pipeline(factory(), config, cache=cache)
        served = run_pipeline(factory(), config, cache=cache).plan
        assert cache.hits == 1
        assert_same_plan(served, expected)
