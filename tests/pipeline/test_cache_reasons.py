"""clcache-style miss-reason breakdown on the plan cache."""

from repro.lang import catalog
from repro.pipeline import PipelineConfig, MissReason
from repro.pipeline.cache import PlanCache
from repro.pipeline.instrument import Instrumentation


def key(nest, **cfg):
    return PlanCache.key_for(nest, PipelineConfig(**cfg))


class TestClassification:
    def test_first_lookup_is_new_fingerprint(self):
        cache = PlanCache()
        assert cache.get(key(catalog.l1())) is None
        assert cache.miss_reasons[MissReason.NEW_FINGERPRINT] == 1
        assert cache.miss_reasons[MissReason.OPTIONS_CHANGE] == 0
        assert cache.miss_reasons[MissReason.EVICTED] == 0

    def test_same_nest_different_options_is_options_change(self):
        from repro.core import Strategy, build_plan

        cache = PlanCache()
        k_plain = key(catalog.l2())
        cache.get(k_plain)
        cache.put(k_plain, build_plan(catalog.l2()))
        k_dup = key(catalog.l2(), strategy=Strategy.DUPLICATE)
        assert cache.get(k_dup) is None
        assert cache.miss_reasons[MissReason.NEW_FINGERPRINT] == 1
        assert cache.miss_reasons[MissReason.OPTIONS_CHANGE] == 1

    def test_lru_drop_is_evicted(self):
        from repro.core import build_plan

        cache = PlanCache(maxsize=1)
        k1 = key(catalog.l1())
        k2 = key(catalog.l2())
        cache.get(k1)
        cache.put(k1, build_plan(catalog.l1()))
        cache.get(k2)
        cache.put(k2, build_plan(catalog.l2()))  # evicts k1
        assert cache.evictions == 1
        assert cache.get(k1) is None
        assert cache.miss_reasons[MissReason.EVICTED] == 1

    def test_reput_after_eviction_clears_the_mark(self):
        from repro.core import build_plan

        cache = PlanCache(maxsize=1)
        k1, k2 = key(catalog.l1()), key(catalog.l2())
        cache.put(k1, build_plan(catalog.l1()))
        cache.put(k2, build_plan(catalog.l2()))  # evicts k1
        cache.put(k1, build_plan(catalog.l1()))  # back in
        assert cache.get(k1) is not None

    def test_clear_resets_breakdown(self):
        cache = PlanCache()
        cache.get(key(catalog.l1()))
        cache.clear()
        assert cache.miss_reasons == {r: 0 for r in MissReason.ALL}
        assert cache.get(key(catalog.l1())) is None
        assert cache.miss_reasons[MissReason.NEW_FINGERPRINT] == 1


class TestCounterSurfacing:
    def test_reason_counters_reach_instrumentation(self):
        instr = Instrumentation()
        cache = PlanCache()
        cache.get(key(catalog.l1()), instrumentation=instr)
        assert instr.counter("cache.miss") == 1
        assert instr.counter(f"cache.miss.{MissReason.NEW_FINGERPRINT}") == 1

    def test_reason_counters_reach_registry_without_instrumentation(self):
        from repro.obs import MetricsRegistry, use_registry

        reg = MetricsRegistry()
        cache = PlanCache()
        with use_registry(reg):
            cache.get(key(catalog.l1()))
        assert reg.value("cache.miss") == 1
        assert reg.value(f"cache.miss.{MissReason.NEW_FINGERPRINT}") == 1

    def test_reasons_partition_total_misses(self):
        from repro.core import Strategy, build_plan

        cache = PlanCache(maxsize=1)
        cache.get(key(catalog.l1()))
        cache.put(key(catalog.l1()), build_plan(catalog.l1()))
        cache.get(key(catalog.l1(), strategy=Strategy.DUPLICATE))
        cache.put(key(catalog.l2()), build_plan(catalog.l2()))
        cache.get(key(catalog.l1()))           # evicted by the l2 put
        assert sum(cache.miss_reasons.values()) == cache.misses


class TestTimingsSurface:
    def test_miss_reason_counter_in_timings_table(self):
        import io

        from repro.cli import main
        from repro.pipeline import PLAN_CACHE

        PLAN_CACHE.clear()
        out = io.StringIO()
        code = main(["partition", "--loop", "L4", "--timings"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "counter cache.miss: 1" in text
        assert "counter cache.miss.new-fingerprint: 1" in text
