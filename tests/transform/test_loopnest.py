"""Transformed-nest enumeration: bijection, ordering, block structure."""

import itertools

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog, parse
from repro.ratlinalg import Subspace
from repro.transform import transform_nest


def tnest_for(nest, **plan_kwargs):
    plan = build_plan(nest, **plan_kwargs)
    return plan, transform_nest(nest, plan.psi)


class TestL4:
    def test_forall_domain_matches_paper(self, l4):
        _, t = tnest_for(l4)
        blocks = list(t.iterate_blocks())
        assert len(blocks) == 37

    def test_total_iterations(self, l4):
        _, t = tnest_for(l4)
        assert sum(t.block_sizes().values()) == 64

    def test_bijection(self, l4):
        _, t = tnest_for(l4)
        got = sorted(t.all_iterations())
        assert got == sorted(itertools.product(range(1, 5), repeat=3))

    def test_blocks_agree_with_partition(self, l4):
        plan, t = tnest_for(l4)
        for blk in t.iterate_blocks():
            its = list(t.iterations_of_block(blk))
            if not its:
                continue
            plan_ids = {plan.block_of(it) for it in its}
            assert len(plan_ids) == 1
            # the plan block with this id has exactly these iterations
            assert set(plan.blocks[plan_ids.pop()].iterations) == set(its)

    def test_intra_block_lexicographic(self, l4):
        _, t = tnest_for(l4)
        for blk in t.iterate_blocks():
            its = list(t.iterations_of_block(blk))
            assert its == sorted(its)

    def test_max_block_size(self, l4):
        _, t = tnest_for(l4)
        assert max(t.block_sizes().values()) == 4


class TestVariousSpaces:
    @pytest.mark.parametrize("fn,kwargs,expected_blocks", [
        (catalog.l1, dict(), 7),
        (catalog.l2, dict(strategy=Strategy.DUPLICATE), 16),
        (catalog.l5, dict(strategy=Strategy.DUPLICATE), 16),
        (catalog.l5, dict(strategy=Strategy.DUPLICATE,
                          duplicate_arrays={"B"}), 4),
    ])
    def test_block_counts(self, fn, kwargs, expected_blocks):
        nest = fn()
        plan, t = tnest_for(nest, **kwargs)
        nonempty = [b for b, n in t.block_sizes().items() if n]
        assert len(nonempty) == expected_blocks

    @pytest.mark.parametrize("fn,kwargs", [
        (catalog.l1, dict()),
        (catalog.l2, dict(strategy=Strategy.DUPLICATE)),
        (catalog.l3, dict(strategy=Strategy.DUPLICATE, eliminate_redundant=True)),
        (catalog.l5, dict(strategy=Strategy.DUPLICATE)),
        (catalog.stencil2d, dict()),
        (catalog.triangular, dict()),
    ])
    def test_bijection_everywhere(self, fn, kwargs):
        nest = fn()
        plan, t = tnest_for(nest, **kwargs)
        got = sorted(t.all_iterations())
        assert got == sorted(plan.model.space.points())

    def test_sequential_plan_single_block(self, l5):
        plan, t = tnest_for(l5)
        assert t.k == 0
        blocks = list(t.iterate_blocks())
        assert blocks == [()]
        assert sum(1 for _ in t.iterations_of_block(())) == 64

    def test_fully_parallel_plan(self, l2):
        plan, t = tnest_for(l2, strategy=Strategy.DUPLICATE)
        assert t.k == 2 and t.g == 0
        for blk in t.iterate_blocks():
            assert sum(1 for _ in t.iterations_of_block(blk)) == 1


class TestNonUnimodular:
    def test_gap_skipping(self):
        """Psi = span{(2,-1)}: |det M| = 2, half the inner points are gaps."""
        nest = parse("for i = 1 to 4 { for j = 1 to 4 { A[i, j] = 0; } }")
        t = transform_nest(nest, Subspace(2, [[2, -1]]))
        got = sorted(t.all_iterations())
        assert got == sorted(itertools.product(range(1, 5), repeat=2))

    def test_triangular_affine_bounds(self):
        nest = catalog.triangular(5)
        t = transform_nest(nest, Subspace(2, [[1, 0]]))
        got = sorted(t.all_iterations())
        expected = [(i, j) for i in range(1, 6) for j in range(1, i + 1)]
        assert got == sorted(expected)


class TestExtendedStatements:
    def test_extended_cover_non_inner_positions(self, l4):
        _, t = tnest_for(l4)
        inner = set(t.basis.inner_positions)
        assert set(t.extended) == set(range(3)) - inner

    def test_extended_values_correct(self, l4):
        _, t = tnest_for(l4)
        for blk in t.iterate_blocks():
            for it in t.iterations_of_block(blk):
                x = [int(v) for v in t.basis.new_coords(it)]
                for pos, form in t.extended.items():
                    assert form.eval(x) == it[pos]
