"""Transformation validation API."""

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog, parse
from repro.ratlinalg import Subspace
from repro.transform import transform_nest, validate_transform
from repro.transform.loopnest import TransformedNest


class TestValidTransforms:
    @pytest.mark.parametrize("fn,kwargs", [
        (catalog.l1, dict()),
        (catalog.l2, dict(strategy=Strategy.DUPLICATE)),
        (catalog.l4, dict()),
        (catalog.l5, dict(strategy=Strategy.DUPLICATE)),
        (catalog.triangular, dict()),
    ])
    def test_all_obligations_hold(self, fn, kwargs):
        nest = fn()
        plan = build_plan(nest, **kwargs)
        t = transform_nest(nest, plan.psi)
        v = validate_transform(t, plan)
        assert v.ok
        v.raise_on_failure()

    def test_non_unimodular_still_valid(self):
        nest = parse("for i = 1 to 4 { for j = 1 to 4 { A[i, j] = 1; } }")
        t = transform_nest(nest, Subspace(2, [[2, -1]]))
        assert validate_transform(t).ok

    def test_without_plan(self):
        nest = catalog.l4()
        plan = build_plan(nest)
        t = transform_nest(nest, plan.psi)
        v = validate_transform(t)
        assert v.bijective and v.lexicographic and v.blocks_consistent


class TestBrokenTransforms:
    def test_missing_iterations_detected(self):
        nest = catalog.l1()
        plan = build_plan(nest)
        t = transform_nest(nest, plan.psi)
        # sabotage: clamp the inner upper bound
        from repro.ratlinalg.fm import AffineForm, LoopBound
        from fractions import Fraction

        inner = t.bounds[-1]
        clipped = LoopBound(
            var_index=inner.var_index,
            lowers=inner.lowers,
            uppers=[AffineForm(tuple([Fraction(0)] * len(t.var_names)),
                               Fraction(1))],  # upper = 1
        )
        bad = TransformedNest(nest=t.nest, basis=t.basis,
                              bounds=t.bounds[:-1] + [clipped],
                              extended=t.extended)
        v = validate_transform(bad, plan)
        assert not v.bijective
        assert v.missing
        with pytest.raises(AssertionError, match="missing"):
            v.raise_on_failure()

    def test_split_blocks_detected(self):
        """A transform built from a DIFFERENT (finer) space than the plan
        splits the plan's blocks."""
        nest = catalog.l1()
        plan = build_plan(nest)                       # Psi = span{(1,1)}
        t = transform_nest(nest, Subspace.zero(2))    # singleton blocks
        v = validate_transform(t, plan)
        assert v.bijective          # still a bijection
        assert not v.blocks_consistent
        assert v.split_blocks
