"""Golden-master pseudocode: the paper's transformed-loop listings pinned."""

import pathlib

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.mapping import shape_grid
from repro.transform import to_pseudocode, to_spmd_pseudocode, transform_nest

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "golden"


def _l4():
    nest = catalog.l4()
    plan = build_plan(nest)
    return transform_nest(nest, plan.psi)


def _l5pp():
    nest = catalog.l5()
    plan = build_plan(nest, Strategy.DUPLICATE)
    return transform_nest(nest, plan.psi)


CASES = {
    "l4_prime_pseudocode": lambda: to_pseudocode(_l4()),
    "l4_prime_spmd": lambda: to_spmd_pseudocode(_l4(), shape_grid(4, 2)),
    "l5_doubleprime_pseudocode": lambda: to_pseudocode(_l5pp()),
    "l5_doubleprime_spmd": lambda: to_spmd_pseudocode(_l5pp(),
                                                      shape_grid(16, 2)),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_pseudocode_matches_golden(name):
    expected = (GOLDEN_DIR / f"{name}.txt").read_text()
    assert CASES[name]() + "\n" == expected


class TestListingStructure:
    """Structural facts of the paper's listings, independent of goldens."""

    def test_l5pp_stepped_foralls(self):
        text = to_spmd_pseudocode(_l5pp(), shape_grid(16, 2))
        assert text.count("step 4") == 2      # p1 = p2 = 4
        assert "E1: i := ip ;" in text        # extended statements
        assert "E2: j := jp ;" in text
        assert "for k = 1 to 4" in text       # the sequential reduction

    def test_l4_two_foralls_one_for(self):
        text = to_pseudocode(_l4())
        assert text.count("forall") == 4      # 2 headers + 2 end-forall
        assert text.count("\n      E") == 2   # two extended statements
