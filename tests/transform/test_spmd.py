"""SPMD per-processor code generation (the paper's stepped-forall listings)."""

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.mapping import shape_grid
from repro.runtime import make_arrays, run_sequential
from repro.transform import (
    compile_spmd,
    iterations_of_processor,
    to_spmd_pseudocode,
    to_spmd_python_source,
    transform_nest,
)


def setup(fn=catalog.l4, p=4, **plan_kwargs):
    nest = fn()
    plan = build_plan(nest, **plan_kwargs)
    t = transform_nest(nest, plan.psi)
    grid = shape_grid(p, t.k)
    return nest, plan, t, grid


class TestIterationsOfProcessor:
    def test_partition_of_space(self):
        nest, plan, t, grid = setup()
        seen = []
        for proc in grid.coords():
            seen.extend(iterations_of_processor(t, grid, proc))
        assert sorted(seen) == sorted(plan.model.space.points())
        assert len(seen) == len(set(seen))

    def test_fig10_loads(self):
        nest, plan, t, grid = setup()
        loads = {proc: sum(1 for _ in iterations_of_processor(t, grid, proc))
                 for proc in grid.coords()}
        assert loads == {(0, 0): 16, (0, 1): 16, (1, 0): 16, (1, 1): 16}

    def test_arity_check(self):
        nest, plan, t, grid = setup()
        with pytest.raises(ValueError):
            list(iterations_of_processor(t, grid, (0,)))


class TestPseudocode:
    def test_paper_l4_shape(self):
        nest, plan, t, grid = setup()
        text = to_spmd_pseudocode(t, grid)
        assert "step 2" in text          # p1 = p2 = 2
        assert "mod 2" in text
        assert text.count("forall") >= 2
        assert "E1:" in text

    def test_l5_doubleprime_shape(self):
        nest, plan, t, grid = setup(catalog.l5, p=16,
                                    strategy=Strategy.DUPLICATE)
        text = to_spmd_pseudocode(t, grid)
        assert "step 4" in text  # 4x4 grid over the (i,j) forall


class TestGeneratedCode:
    def _run_all_processors(self, fn=catalog.l4, p=4, **plan_kwargs):
        nest, plan, t, grid = setup(fn, p, **plan_kwargs)
        run_pe = compile_spmd(t, grid)
        arrays = make_arrays(plan.model)

        class View:
            def __init__(self, ds):
                self.ds = ds

            def __getitem__(self, c):
                return self.ds[c]

            def __setitem__(self, c, v):
                self.ds[c] = v

        got = {n: a.copy() for n, a in arrays.items()}
        views = {n: View(a) for n, a in got.items()}
        for proc in grid.coords():
            run_pe(proc, views, {})
        expected = {n: a.copy() for n, a in arrays.items()}
        run_sequential(nest, expected)
        return got, expected

    def test_l4_all_processors_equal_sequential(self):
        got, expected = self._run_all_processors()
        for n in expected:
            assert got[n] == expected[n]

    def test_l1_on_two_processors(self):
        got, expected = self._run_all_processors(catalog.l1, p=2)
        for n in expected:
            assert got[n] == expected[n]

    def test_source_compiles_and_has_start_formula(self):
        nest, plan, t, grid = setup()
        src = to_spmd_python_source(t, grid)
        compile(src, "<spmd>", "exec")
        assert "% 2" in src and "range(" in src
        assert "def run_pe(proc, arrays, scalars=None):" in src

    def test_single_processor_runs_everything(self):
        nest, plan, t, _ = setup()
        grid = shape_grid(1, t.k)
        count = sum(1 for _ in iterations_of_processor(t, grid, (0, 0)))
        assert count == 64
