"""Change-of-variables basis construction (Section IV)."""

import pytest

from repro.ratlinalg import RatMat, RatVec, Subspace
from repro.transform import build_transform_basis


class TestL4Basis:
    """Example 4: Psi = span{(1,-1,1)}, k=2, g=1."""

    def setup_method(self):
        self.basis = build_transform_basis(
            Subspace(3, [[1, -1, 1]]), ["i1", "i2", "i3"])

    def test_dimensions(self):
        assert self.basis.k == 2 and self.basis.g == 1
        assert self.basis.n == 3

    def test_q_rows_span_kernel(self):
        normal = RatVec([1, -1, 1])
        for q in self.basis.q_rows:
            assert q.dot(normal) == 0
            assert q.is_integral()
            from repro.ratlinalg.matrix import vec_gcd

            assert vec_gcd(list(q)) == 1

    def test_pivots_increasing(self):
        assert self.basis.pivot_cols == sorted(self.basis.pivot_cols)

    def test_inner_index_choice(self):
        # smallest original index independent of the kernel rows: i1
        assert self.basis.inner_positions == [0]
        assert self.basis.inner_names == ["i1"]

    def test_m_invertible_and_consistent(self):
        assert abs(self.basis.det) >= 1
        m, minv = self.basis.m, self.basis.m_inv
        assert m @ minv == RatMat.identity(3)

    def test_block_coords_constant_on_psi_cosets(self):
        i1 = RatVec([1, 1, 1])
        i2 = i1 + RatVec([1, -1, 1])  # same block
        assert self.basis.block_coords(i1) == self.basis.block_coords(i2)
        i3 = i1 + RatVec([1, 0, 0])  # different block
        assert self.basis.block_coords(i1) != self.basis.block_coords(i3)

    def test_roundtrip(self):
        for it in [(1, 1, 1), (2, 3, 4), (4, 4, 4)]:
            x = self.basis.new_coords(it)
            back = self.basis.original_iteration(x)
            assert back == RatVec(list(it))

    def test_names(self):
        assert len(self.basis.outer_names) == 2
        assert all(n.endswith("p") for n in self.basis.outer_names)


class TestDegenerateCases:
    def test_full_psi_no_forall(self):
        b = build_transform_basis(Subspace.full(2), ["i", "j"])
        assert b.k == 0 and b.g == 2
        assert b.inner_positions == [0, 1]
        assert b.m == RatMat.identity(2)

    def test_zero_psi_all_forall(self):
        b = build_transform_basis(Subspace.zero(2), ["i", "j"])
        assert b.k == 2 and b.g == 0

    def test_l1_psi(self):
        b = build_transform_basis(Subspace(2, [[1, 1]]), ["i", "j"])
        assert b.k == 1 and b.g == 1
        # kernel of span{(1,1)} is span{(1,-1)}
        assert b.q_rows[0] in (RatVec([1, -1]), RatVec([-1, 1]))

    def test_name_collision_avoided(self):
        b = build_transform_basis(Subspace(2, [[1, 1]]), ["i", "ip"])
        assert len(set(b.outer_names) | {"i", "ip"}) == len(b.outer_names) + 2

    def test_wrong_name_count(self):
        with pytest.raises(ValueError):
            build_transform_basis(Subspace(2, [[1, 1]]), ["i"])

    def test_non_unimodular_detected(self):
        # Psi = span{(2,-1)}: kernel row (1,2); M = [[1,2],[1,0]], det -2
        b = build_transform_basis(Subspace(2, [[2, -1]]), ["i", "j"])
        assert abs(b.det) == 2
