"""Code generation: pseudocode and executable Python."""

import itertools

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog, parse
from repro.ratlinalg import Subspace
from repro.runtime import make_arrays, run_sequential
from repro.transform import compile_nest, to_pseudocode, transform_nest
from repro.transform.codegen import to_python_source


class DictArrays(dict):
    """Tuple-indexed auto-zero arrays for generated code."""

    def __missing__(self, key):
        return 0.0


def run_generated(nest, psi, scalars=None):
    t = transform_nest(nest, psi)
    fn = compile_nest(t)
    plan_model = build_plan(nest).model

    initial = make_arrays(plan_model)

    class View:
        def __init__(self, ds):
            self.ds = ds

        def __getitem__(self, c):
            return self.ds[c]

        def __setitem__(self, c, v):
            self.ds[c] = v

    got = {n: a.copy() for n, a in initial.items()}
    fn({n: View(a) for n, a in got.items()}, scalars or {})
    expected = {n: a.copy() for n, a in initial.items()}
    run_sequential(nest, expected, scalars=scalars)
    return got, expected


class TestPseudocode:
    def test_l4_structure(self, l4):
        plan = build_plan(l4)
        t = transform_nest(l4, plan.psi)
        text = to_pseudocode(t)
        assert text.count("forall") == 2 + 2  # two headers + two end-forall
        assert "for i1 =" in text
        assert "E1:" in text and "E2:" in text
        assert "end-forall" in text

    def test_sequential_no_forall(self, l5):
        plan = build_plan(l5)
        t = transform_nest(l5, plan.psi)
        text = to_pseudocode(t)
        assert "forall" not in text

    def test_statements_included(self, l1):
        plan = build_plan(l1)
        t = transform_nest(l1, plan.psi)
        text = to_pseudocode(t)
        assert "S1:" in text and "S2:" in text


class TestPythonSource:
    def test_source_compiles(self, l4):
        plan = build_plan(l4)
        t = transform_nest(l4, plan.psi)
        src = to_python_source(t, "f")
        compile(src, "<test>", "exec")
        assert "def f(arrays, scalars=None):" in src

    def test_divisibility_guard_when_non_unimodular(self):
        nest = parse("for i = 1 to 4 { for j = 1 to 4 { A[i, j] = 1; } }")
        t = transform_nest(nest, Subspace(2, [[2, -1]]))
        src = to_python_source(t)
        assert "% 2: continue" in src or "% 2:" in src

    def test_no_guard_when_unimodular(self, l4):
        plan = build_plan(l4)
        t = transform_nest(l4, plan.psi)
        assert "continue" not in to_python_source(t)


class TestExecutionEquivalence:
    @pytest.mark.parametrize("fn,kwargs", [
        (catalog.l1, dict()),
        (catalog.l4, dict()),
        (catalog.stencil2d, dict()),
    ])
    def test_generated_equals_sequential(self, fn, kwargs):
        nest = fn()
        plan = build_plan(nest, **kwargs)
        got, expected = run_generated(nest, plan.psi)
        for name in expected:
            assert got[name] == expected[name], name

    def test_generated_equals_sequential_l5(self):
        nest = catalog.l5(3)
        plan = build_plan(nest, Strategy.DUPLICATE)
        got, expected = run_generated(nest, plan.psi)
        assert got["C"] == expected["C"]

    def test_non_unimodular_execution(self):
        nest = parse("""
            for i = 1 to 4 { for j = 1 to 4 {
              A[i, j] = B[i, j] * 2;
            } }
        """)
        got, expected = run_generated(nest, Subspace(2, [[2, -1]]))
        assert got["A"] == expected["A"]

    def test_triangular_execution(self):
        nest = catalog.triangular(5)
        plan = build_plan(nest)
        got, expected = run_generated(nest, plan.psi)
        assert got["T"] == expected["T"]

    def test_scalars_passed_through(self):
        nest = parse("for i = 1 to 3 { A[i] = B[i] / D; }")
        plan = build_plan(nest)
        got, expected = run_generated(nest, plan.psi, scalars={"D": 4.0})
        assert got["A"] == expected["A"]
