"""Reference spaces (Definitions 4-5, minimal variants)."""

from fractions import Fraction

from repro.analysis import analyze_redundancy, extract_references
from repro.core import (
    minimal_reduced_reference_space,
    minimal_reference_space,
    reduced_reference_space,
    reference_space,
)
from repro.lang import catalog, parse
from repro.ratlinalg import RatVec, Subspace


def spaces_of(nest):
    model = extract_references(nest)
    return model, {
        name: reference_space(info, model.space)
        for name, info in model.arrays.items()
    }


class TestReferenceSpace:
    def test_l1(self, l1):
        model, spaces = spaces_of(l1)
        assert spaces["A"] == Subspace(2, [[1, 1]])
        assert spaces["C"] == Subspace(2, [[1, 1]])
        assert spaces["B"].is_zero()

    def test_l2(self, l2):
        model, spaces = spaces_of(l2)
        # Psi_A = span{(1,-1), (1/2,1/2)} = whole plane
        assert spaces["A"].is_full()
        # Psi_B = span(φ): condition (2) fails (t = (1/2,1) not integral)
        assert spaces["B"].is_zero()

    def test_l5(self, l5):
        model, spaces = spaces_of(l5)
        assert spaces["A"] == Subspace(3, [[0, 1, 0]])
        assert spaces["B"] == Subspace(3, [[1, 0, 0]])
        assert spaces["C"] == Subspace(3, [[0, 0, 1]])

    def test_condition2_range_filter(self):
        # offset difference 10 > extent: kernel-only reference space
        nest = parse("for i = 1 to 4 { A[i] = A[i - 10]; }")
        model = extract_references(nest)
        s = reference_space(model.arrays["A"], model.space)
        assert s.is_zero()

    def test_condition2_parity_filter(self, l1):
        # L1's A: H t = (2,1) needs t=(1,1) -- fine; but with stride-2 on
        # both dims and odd offset no integer solution exists:
        nest = parse("for i = 1 to 4 { A[2*i] = A[2*i - 3]; }")
        model = extract_references(nest)
        s = reference_space(model.arrays["A"], model.space)
        assert s.is_zero()

    def test_kernel_always_included(self):
        nest = parse("for i = 1 to 3 { for j = 1 to 3 { A[i] = A[i] + 1; } }")
        model = extract_references(nest)
        s = reference_space(model.arrays["A"], model.space)
        assert RatVec([0, 1]) in s and s.dim == 1


class TestReducedReferenceSpace:
    def test_fully_duplicable_reduces_to_zero(self, l2):
        model = extract_references(l2)
        assert reduced_reference_space(model.arrays["A"], model.space).is_zero()
        assert reduced_reference_space(model.arrays["B"], model.space).is_zero()

    def test_l5_partial(self, l5):
        model = extract_references(l5)
        assert reduced_reference_space(model.arrays["A"], model.space).is_zero()
        assert reduced_reference_space(model.arrays["B"], model.space).is_zero()
        c = reduced_reference_space(model.arrays["C"], model.space)
        assert c == Subspace(3, [[0, 0, 1]])

    def test_l1_flow_kept(self, l1):
        model = extract_references(l1)
        a = reduced_reference_space(model.arrays["A"], model.space)
        assert a == Subspace(2, [[1, 1]])
        # C is read-only -> fully duplicable
        assert reduced_reference_space(model.arrays["C"], model.space).is_zero()

    def test_reduced_subspace_of_full(self):
        for fn in (catalog.l1, catalog.l2, catalog.l3, catalog.l5):
            model = extract_references(fn())
            for info in model.arrays.values():
                red = reduced_reference_space(info, model.space)
                full = reference_space(info, model.space)
                assert red.is_subspace_of(full)


class TestMinimalSpaces:
    def test_l3_minimal(self, l3):
        model = extract_references(l3)
        red = analyze_redundancy(model)
        m = minimal_reference_space(model.arrays["A"], red)
        assert m == Subspace(2, [[1, 0], [1, -1]])
        mr = minimal_reduced_reference_space(model.arrays["A"], red)
        assert mr == Subspace(2, [[1, 0]])

    def test_minimal_subspace_of_unminimized(self, l3):
        model = extract_references(l3)
        red = analyze_redundancy(model)
        info = model.arrays["A"]
        assert minimal_reference_space(info, red).is_subspace_of(
            reference_space(info, model.space))
        assert minimal_reduced_reference_space(info, red).is_subspace_of(
            reduced_reference_space(info, model.space))

    def test_no_redundancy_matches_full(self, l1):
        # "Suppose there does not exist any redundant computation...
        # then the partitioning spaces of Thms 1 and 2 are minimum."
        model = extract_references(l1)
        red = analyze_redundancy(model)
        info = model.arrays["A"]
        assert minimal_reference_space(info, red) == reference_space(
            info, model.space)

    def test_singular_h_keeps_kernel(self, l5):
        model = extract_references(l5)
        red = analyze_redundancy(model)
        mr = minimal_reduced_reference_space(model.arrays["C"], red)
        assert RatVec([0, 0, 1]) in mr  # the Ker(H_C) flow direction
