"""Partitioning-space provenance (the opt-report)."""

import pytest

from repro.analysis import extract_references
from repro.core import Strategy, partitioning_space
from repro.core.provenance import (
    Contribution,
    explain_partitioning_space,
    render_contributions,
)
from repro.lang import catalog


class TestNonDuplicateProvenance:
    def test_l1_contributions(self):
        model = extract_references(catalog.l1())
        contribs = explain_partitioning_space(model)
        by_array = {}
        for c in contribs:
            by_array.setdefault(c.array, []).append(c)
        # A and C contribute their DRV solutions; B contributes nothing
        assert any(c.origin == "drv" for c in by_array["A"])
        assert any(c.origin == "drv" for c in by_array["C"])
        assert "B" not in by_array
        drv_a = next(c for c in by_array["A"] if c.origin == "drv")
        assert "r=(2, 1)" in drv_a.detail
        assert tuple(int(x) for x in drv_a.vector) == (1, 1)

    def test_l5_kernels_only(self):
        model = extract_references(catalog.l5())
        contribs = explain_partitioning_space(model)
        assert all(c.origin == "kernel" for c in contribs)
        dirs = {(c.array, tuple(int(x) for x in c.vector)) for c in contribs}
        assert ("A", (0, 1, 0)) in dirs
        assert ("B", (1, 0, 0)) in dirs
        assert ("C", (0, 0, 1)) in dirs

    def test_contributions_span_psi(self):
        """Sanity: the listed vectors span exactly the strategy's Psi."""
        from repro.ratlinalg import Subspace

        for fn, kwargs in [
            (catalog.l1, dict()),
            (catalog.l2, dict(strategy=Strategy.DUPLICATE)),
            (catalog.l5, dict(strategy=Strategy.DUPLICATE)),
            (catalog.l3, dict(strategy=Strategy.DUPLICATE,
                              eliminate_redundant=True)),
        ]:
            model = extract_references(fn())
            contribs = explain_partitioning_space(model, **kwargs)
            psi = partitioning_space(model, **kwargs).psi
            spanned = Subspace(model.nest.depth,
                               [list(c.vector) for c in contribs])
            assert spanned == psi, fn


class TestDuplicateProvenance:
    def test_l2_empty(self):
        model = extract_references(catalog.l2())
        contribs = explain_partitioning_space(model, Strategy.DUPLICATE)
        assert contribs == []

    def test_l5_flow_on_c(self):
        model = extract_references(catalog.l5())
        contribs = explain_partitioning_space(model, Strategy.DUPLICATE)
        assert all(c.array == "C" for c in contribs)
        assert any(c.origin == "flow" or c.origin == "kernel"
                   for c in contribs)


class TestMinimalProvenance:
    def test_l3_useful_edges_named(self):
        model = extract_references(catalog.l3())
        contribs = explain_partitioning_space(
            model, Strategy.DUPLICATE, eliminate_redundant=True)
        useful = [c for c in contribs if c.origin == "useful"]
        assert len(useful) == 1
        assert "flow" in useful[0].detail
        assert tuple(int(x) for x in useful[0].vector) == (1, 0)


class TestRendering:
    def test_render_with_psi(self):
        model = extract_references(catalog.l1())
        contribs = explain_partitioning_space(model)
        psi = partitioning_space(model).psi
        text = render_contributions(contribs, psi)
        assert "data-referenced vector" in text
        assert "forall dimension" in text

    def test_render_empty(self):
        text = render_contributions([])
        assert "span(phi)" in text
