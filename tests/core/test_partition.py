"""Iteration and data partitions (Definitions 2-3)."""

from repro.analysis import analyze_redundancy, extract_references
from repro.core import Strategy, data_partition, iteration_partition
from repro.core.partition import all_data_partitions, block_index_map
from repro.lang import IterationSpace, catalog, parse
from repro.ratlinalg import RatVec, Subspace


class TestIterationPartition:
    def test_l1_seven_blocks(self, l1):
        space = IterationSpace(l1)
        blocks = iteration_partition(space, Subspace(2, [[1, 1]]))
        assert len(blocks) == 7
        assert [b.base_point for b in blocks] == [
            (1, 1), (1, 2), (1, 3), (1, 4), (2, 1), (3, 1), (4, 1)]
        assert [len(b) for b in blocks] == [4, 3, 2, 1, 3, 2, 1]

    def test_block_b5_matches_paper(self, l1):
        # paper: B5 = {b5 + a(1,1)}, b5 = (2,1)
        space = IterationSpace(l1)
        blocks = iteration_partition(space, Subspace(2, [[1, 1]]))
        b5 = blocks[4]
        assert b5.base_point == (2, 1)
        assert b5.iterations == ((2, 1), (3, 2), (4, 3))

    def test_zero_dim_gives_singletons(self, l1):
        space = IterationSpace(l1)
        blocks = iteration_partition(space, Subspace.zero(2))
        assert len(blocks) == 16
        assert all(len(b) == 1 for b in blocks)

    def test_full_dim_gives_single_block(self, l1):
        space = IterationSpace(l1)
        blocks = iteration_partition(space, Subspace.full(2))
        assert len(blocks) == 1 and len(blocks[0]) == 16

    def test_partition_property(self, l4):
        space = IterationSpace(l4)
        blocks = iteration_partition(space, Subspace(3, [[1, -1, 1]]))
        seen = [it for b in blocks for it in b.iterations]
        assert sorted(seen) == sorted(space.points())
        assert len(seen) == len(set(seen))

    def test_iterations_lex_sorted_within_block(self, l4):
        space = IterationSpace(l4)
        for b in iteration_partition(space, Subspace(3, [[1, -1, 1]])):
            assert list(b.iterations) == sorted(b.iterations)
            assert b.base_point == b.iterations[0]

    def test_fractional_direction(self, l2):
        # span{(1/2,1/2)} groups like span{(1,1)}
        space = IterationSpace(l2)
        from fractions import Fraction

        blocks_frac = iteration_partition(
            space, Subspace(2, [[Fraction(1, 2), Fraction(1, 2)]]))
        blocks_int = iteration_partition(space, Subspace(2, [[1, 1]]))
        assert [b.iterations for b in blocks_frac] == \
               [b.iterations for b in blocks_int]

    def test_dimension_mismatch(self, l1):
        space = IterationSpace(l1)
        try:
            iteration_partition(space, Subspace(3, [[1, 1, 1]]))
            assert False, "expected ValueError"
        except ValueError:
            pass

    def test_block_index_map(self, l1):
        space = IterationSpace(l1)
        blocks = iteration_partition(space, Subspace(2, [[1, 1]]))
        idx = block_index_map(blocks)
        assert idx[(1, 1)] == 0 and idx[(2, 2)] == 0
        assert idx[(2, 1)] == 4

    def test_triangular_space(self):
        space = IterationSpace(catalog.triangular(4))
        blocks = iteration_partition(space, Subspace(2, [[1, 0]]))
        # blocks by j: j=1..4
        assert len(blocks) == 4
        assert blocks[0].iterations == ((1, 1), (2, 1), (3, 1), (4, 1))
        assert blocks[3].iterations == ((4, 4),)


class TestDataPartition:
    def test_l1_array_a_blocks(self, l1):
        model = extract_references(l1)
        blocks = iteration_partition(model.space, Subspace(2, [[1, 1]]))
        dblocks = data_partition(model, blocks, "A")
        # block 0 = diagonal (1,1)..(4,4): touches A[2i,j] and A[2i-2,j-1]
        b0 = dblocks[0].elements
        assert ("A", ) or True
        assert (2, 1) in b0 and (0, 0) in b0 and (8, 4) in b0
        # disjointness under the non-duplicate space
        all_elems = [e for db in dblocks for e in db.elements]
        assert len(all_elems) == len(set(all_elems))

    def test_element_counts_cover_accesses(self, l1):
        model = extract_references(l1)
        blocks = iteration_partition(model.space, Subspace(2, [[1, 1]]))
        for name in ("A", "B", "C"):
            dblocks = data_partition(model, blocks, name)
            info = model.arrays[name]
            accessed = {
                info.element_at(it, ref.offset)
                for it in model.space.iterate() for ref in info.references
            }
            got = {e for db in dblocks for e in db.elements}
            assert got == accessed

    def test_duplicate_strategy_replicates(self, l5):
        model = extract_references(l5)
        blocks = iteration_partition(model.space, Subspace(3, [[0, 0, 1]]))
        dblocks = data_partition(model, blocks, "A")
        # every (i,j) block needs the whole row A[i, 1:M]
        counts = {}
        for db in dblocks:
            for e in db.elements:
                counts[e] = counts.get(e, 0) + 1
        m = 4
        assert all(c == m for c in counts.values())  # each element in M blocks

    def test_live_restriction(self, l3):
        model = extract_references(l3)
        red = analyze_redundancy(model)
        blocks = iteration_partition(model.space, Subspace(2, [[1, 0]]))
        unrestricted = data_partition(model, blocks, "A")
        restricted = data_partition(model, blocks, "A", live=red.live)
        for u, r in zip(unrestricted, restricted):
            assert r.elements <= u.elements
        # S1's write elements A[i,j] for j<4 are accessed only by
        # redundant computations... A[i,3] is still read by r1? A[i-1,j-1]
        # reads A[i,3] at (i+1,4) which is live (S1 live at j=4).
        # But A[i,1] for example: read at (i+1,2) by live S1? S1 at j=2 is
        # redundant; its other reader S2(i-1,3) is live. Check simply that
        # restriction dropped something overall:
        total_u = sum(len(u.elements) for u in unrestricted)
        total_r = sum(len(r.elements) for r in restricted)
        assert total_r < total_u

    def test_all_data_partitions(self, l1):
        model = extract_references(l1)
        blocks = iteration_partition(model.space, Subspace(2, [[1, 1]]))
        d = all_data_partitions(model, blocks)
        assert set(d) == {"A", "B", "C"}
        assert all(len(v) == len(blocks) for v in d.values())
