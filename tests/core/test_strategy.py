"""Strategy selection and combined partitioning spaces (Theorems 1-4)."""

import pytest

from repro.analysis import extract_references
from repro.core import Strategy, partitioning_space
from repro.lang import catalog
from repro.ratlinalg import RatVec, Subspace


class TestTheorem1:
    def test_l1(self, l1):
        b = partitioning_space(extract_references(l1))
        assert b.psi == Subspace(2, [[1, 1]])
        assert b.dim == 1 and b.parallel_dims == 1
        assert not b.is_fully_sequential()

    def test_l2_sequential(self, l2):
        b = partitioning_space(extract_references(l2))
        assert b.is_fully_sequential()

    def test_l5_sequential(self, l5):
        b = partitioning_space(extract_references(l5))
        assert b.is_fully_sequential()
        assert b.parallel_dims == 0


class TestTheorem2:
    def test_l2_fully_parallel(self, l2):
        b = partitioning_space(extract_references(l2), Strategy.DUPLICATE)
        assert b.is_fully_parallel()
        assert b.parallel_dims == 2
        assert b.duplicated_arrays == frozenset({"A", "B"})

    def test_l5_all_duplicated(self, l5):
        b = partitioning_space(extract_references(l5), Strategy.DUPLICATE)
        assert b.psi == Subspace(3, [[0, 0, 1]])
        assert b.parallel_dims == 2

    def test_l1_duplicate_no_gain(self, l1):
        nd = partitioning_space(extract_references(l1))
        d = partitioning_space(extract_references(l1), Strategy.DUPLICATE)
        assert nd.psi == d.psi  # paper: L1 gains nothing from duplication


class TestSelectiveDuplication:
    def test_l5_duplicate_b_only(self, l5):
        b = partitioning_space(extract_references(l5), Strategy.DUPLICATE,
                               duplicate_arrays={"B"})
        assert b.psi == Subspace(3, [[0, 1, 0], [0, 0, 1]])
        assert b.parallel_dims == 1

    def test_l5_duplicate_a_only_symmetric(self, l5):
        b = partitioning_space(extract_references(l5), Strategy.DUPLICATE,
                               duplicate_arrays={"A"})
        assert b.psi == Subspace(3, [[1, 0, 0], [0, 0, 1]])
        assert b.parallel_dims == 1

    def test_unknown_array_rejected(self, l5):
        with pytest.raises(ValueError, match="unknown arrays"):
            partitioning_space(extract_references(l5), Strategy.DUPLICATE,
                               duplicate_arrays={"Z"})

    def test_duplicates_need_duplicate_strategy(self, l5):
        with pytest.raises(ValueError, match="requires Strategy.DUPLICATE"):
            partitioning_space(extract_references(l5), Strategy.NONDUPLICATE,
                               duplicate_arrays={"B"})

    def test_empty_duplicate_set_equals_nondup(self, l5):
        b = partitioning_space(extract_references(l5), Strategy.DUPLICATE,
                               duplicate_arrays=set())
        nd = partitioning_space(extract_references(l5))
        assert b.psi == nd.psi


class TestTheorems3And4:
    def test_l3_minimal_nondup_still_sequential(self, l3):
        b = partitioning_space(extract_references(l3),
                               eliminate_redundant=True)
        assert b.is_fully_sequential()

    def test_l3_minimal_dup_parallel(self, l3):
        b = partitioning_space(extract_references(l3), Strategy.DUPLICATE,
                               eliminate_redundant=True)
        assert b.psi == Subspace(2, [[1, 0]])
        assert b.parallel_dims == 1

    def test_l3_dup_without_elimination_sequential(self, l3):
        b = partitioning_space(extract_references(l3), Strategy.DUPLICATE)
        assert b.psi == Subspace(2, [[1, 0], [1, 1]])
        assert b.is_fully_sequential()

    def test_redundancy_reused(self, l3):
        from repro.analysis import analyze_redundancy

        model = extract_references(l3)
        red = analyze_redundancy(model)
        b = partitioning_space(model, Strategy.DUPLICATE,
                               eliminate_redundant=True, redundancy=red)
        assert b.redundancy is red

    def test_minimal_subspace_relation(self):
        """Psi^min ⊆ Psi and Psi^min^r ⊆ Psi^r on every catalog loop."""
        for name, fn in catalog.ALL_LOOPS.items():
            model = extract_references(fn())
            full = partitioning_space(model)
            mini = partitioning_space(model, eliminate_redundant=True)
            assert mini.psi.is_subspace_of(full.psi), name
            fullr = partitioning_space(model, Strategy.DUPLICATE)
            minir = partitioning_space(model, Strategy.DUPLICATE,
                                       eliminate_redundant=True)
            assert minir.psi.is_subspace_of(fullr.psi), name
            # duplication never hurts parallelism
            assert fullr.psi.is_subspace_of(full.psi), name


class TestBreakdownDiagnostics:
    def test_per_array_recorded(self, l1):
        b = partitioning_space(extract_references(l1))
        assert set(b.per_array) == {"A", "B", "C"}
        assert b.per_array["B"].is_zero()

    def test_l4(self, l4):
        b = partitioning_space(extract_references(l4))
        assert b.psi == Subspace(3, [[1, -1, 1]])
        assert b.parallel_dims == 2
