"""Every claim the paper makes about L1-L5, pinned in one place.

This is the reproduction's ground-truth test: each section of the paper
that states a concrete analysis result for a concrete loop is asserted
here against the pipeline's output.
"""

import pytest

from repro.analysis import extract_references
from repro.baseline import hyperplane_partition
from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.ratlinalg import RatVec, Subspace


class TestSectionII:
    """Example 1: reference functions and data-referenced vectors."""

    def test_l1_uniformly_generated(self):
        model = extract_references(catalog.l1())
        assert set(model.arrays) == {"A", "B", "C"}

    def test_l1_drvs(self):
        from repro.analysis import data_referenced_vectors

        model = extract_references(catalog.l1())
        assert [tuple(d.vector) for d in
                data_referenced_vectors(model.arrays["A"])] == [(2, 1)]
        assert [tuple(d.vector) for d in
                data_referenced_vectors(model.arrays["C"])] == [(1, 1)]


class TestSectionIIIA:
    """Non-duplicate partitioning (Theorem 1)."""

    def test_l1_partitioning_space(self):
        plan = build_plan(catalog.l1())
        assert plan.psi == Subspace(2, [[1, 1]])
        assert plan.num_blocks == 7

    def test_l1_seven_data_blocks_each_array(self):
        plan = build_plan(catalog.l1())
        for name in ("A", "B", "C"):
            nonempty = [db for db in plan.data_blocks[name] if len(db)]
            assert len(nonempty) == 7

    def test_l2_reference_spaces(self):
        from repro.core import reference_space

        model = extract_references(catalog.l2())
        assert reference_space(model.arrays["A"], model.space).is_full()
        assert reference_space(model.arrays["B"], model.space).is_zero()

    def test_l2_nondup_sequential(self):
        assert build_plan(catalog.l2()).num_blocks == 1

    def test_more_parallelism_than_rs_on_l1(self):
        """L1 is not a For-all loop: R&S cannot handle it; we get 7 blocks."""
        baseline = hyperplane_partition(catalog.l1())
        assert not baseline.applicable
        assert build_plan(catalog.l1()).num_blocks == 7


class TestSectionIIIB:
    """Duplicate-data partitioning (Theorem 2)."""

    def test_l1_duplication_changes_nothing(self):
        nd = build_plan(catalog.l1())
        d = build_plan(catalog.l1(), Strategy.DUPLICATE)
        assert nd.psi == d.psi
        assert [b.iterations for b in nd.blocks] == [b.iterations for b in d.blocks]

    def test_l2_fully_duplicable_arrays(self):
        from repro.analysis import is_fully_duplicable

        model = extract_references(catalog.l2())
        assert is_fully_duplicable(model.arrays["A"], model.space)
        assert is_fully_duplicable(model.arrays["B"], model.space)

    def test_l2_duplicate_fully_parallel(self):
        plan = build_plan(catalog.l2(), Strategy.DUPLICATE)
        assert plan.psi.is_zero()
        assert plan.num_blocks == 16  # one block per iteration (Fig. 5)

    def test_l2_fig4_block_assignment(self):
        """Fig. 4: data blocks B^A_{i,j} and B^B_{i,j} per iteration."""
        plan = build_plan(catalog.l2(), Strategy.DUPLICATE)
        blk = plan.block_of((1, 1))
        a_elems = plan.data_blocks["A"][blk].elements
        assert a_elems == {(2, 2), (1, 2), (1, 1)}
        b_elems = plan.data_blocks["B"][blk].elements
        assert b_elems == {(2, 1), (1, 0)}


class TestSectionIIIC:
    """Redundancy elimination and minimal spaces (Theorems 3-4)."""

    def test_l3_n_sets(self):
        from repro.analysis import analyze_redundancy

        red = analyze_redundancy(extract_references(catalog.l3()))
        assert red.n_set(0) == {(i, 4) for i in range(1, 5)}
        assert len(red.n_set(1)) == 16

    def test_l3_minimal_spaces(self):
        p_min = build_plan(catalog.l3(), eliminate_redundant=True)
        assert p_min.psi == Subspace(2, [[1, 0], [1, -1]])
        p_minr = build_plan(catalog.l3(), Strategy.DUPLICATE,
                            eliminate_redundant=True)
        assert p_minr.psi == Subspace(2, [[1, 0]])
        assert p_minr.num_blocks == 4

    def test_l3_without_elimination_sequential_even_duplicated(self):
        plan = build_plan(catalog.l3(), Strategy.DUPLICATE)
        assert plan.psi == Subspace(2, [[1, 0], [1, 1]])
        assert plan.num_blocks == 1


class TestSectionIV:
    """Transformation, mapping, matmul strategies."""

    def test_l4_partitioning_space(self):
        plan = build_plan(catalog.l4())
        assert plan.psi == Subspace(3, [[1, -1, 1]])

    def test_l4_block_count_and_max(self):
        plan = build_plan(catalog.l4())
        assert plan.num_blocks == 37  # the 37 forall points of Fig. 10
        assert max(len(b) for b in plan.blocks) == 4

    def test_l5_reference_spaces(self):
        from repro.core import reference_space

        model = extract_references(catalog.l5())
        assert reference_space(model.arrays["A"], model.space) == \
            Subspace(3, [[0, 1, 0]])
        assert reference_space(model.arrays["B"], model.space) == \
            Subspace(3, [[1, 0, 0]])
        assert reference_space(model.arrays["C"], model.space) == \
            Subspace(3, [[0, 0, 1]])

    def test_l5_strategies(self):
        seq = build_plan(catalog.l5())
        assert seq.num_blocks == 1
        dup_b = build_plan(catalog.l5(), Strategy.DUPLICATE,
                           duplicate_arrays={"B"})
        assert dup_b.psi == Subspace(3, [[0, 1, 0], [0, 0, 1]])
        assert dup_b.num_blocks == 4  # 1-D forall over i (L5')
        dup_ab = build_plan(catalog.l5(), Strategy.DUPLICATE)
        assert dup_ab.psi == Subspace(3, [[0, 0, 1]])
        assert dup_ab.num_blocks == 16  # 2-D forall over (i,j) (L5'')

    def test_l5_whole_b_replicated_in_l5prime(self):
        plan = build_plan(catalog.l5(), Strategy.DUPLICATE,
                          duplicate_arrays={"B"})
        m = 4
        for db in plan.data_blocks["B"]:
            assert len(db.elements) == m * m  # every block holds ALL of B
