"""PartitionPlan orchestration and static checks."""

import pytest

from repro.core import Strategy, build_plan
from repro.core.plan import (
    check_all,
    check_data_blocks_disjoint,
    check_no_interblock_flow,
    check_partition_covers_space,
)
from repro.lang import catalog


class TestBuildPlan:
    def test_plan_fields(self, l1):
        plan = build_plan(l1)
        assert plan.num_blocks == 7
        assert plan.degree_of_parallelism == 7
        assert plan.strategy is Strategy.NONDUPLICATE
        assert plan.live is None

    def test_block_of(self, l1):
        plan = build_plan(l1)
        assert plan.block_of((1, 1)) == plan.block_of((3, 3))
        assert plan.block_of((1, 1)) != plan.block_of((2, 1))

    def test_owners_of_element_nondup_unique(self, l1):
        plan = build_plan(l1)
        owners = plan.owners_of_element("A", (2, 1))
        assert len(owners) == 1

    def test_owners_of_element_duplicated(self, l5):
        plan = build_plan(l5, Strategy.DUPLICATE)
        owners = plan.owners_of_element("B", (1, 1))
        assert len(owners) == 4  # one per i-block at fixed j

    def test_replication_factors(self, l5):
        plan = build_plan(l5, Strategy.DUPLICATE, duplicate_arrays={"B"})
        assert plan.replication_factor("B") == pytest.approx(4.0)
        assert plan.replication_factor("A") == pytest.approx(1.0)
        assert plan.replication_factor("C") == pytest.approx(1.0)

    def test_executes_respects_liveness(self, l3):
        plan = build_plan(l3, Strategy.DUPLICATE, eliminate_redundant=True)
        assert not plan.executes(0, (1, 1))   # redundant S1
        assert plan.executes(0, (1, 4))
        assert plan.executes(1, (1, 1))

    def test_executes_all_without_elimination(self, l3):
        plan = build_plan(l3)
        assert plan.executes(0, (1, 1))

    def test_summary_text(self, l1):
        s = build_plan(l1).summary()
        assert "blocks: 7" in s
        assert "Psi_A" in s and "nonduplicate" in s

    def test_model_reuse(self, l1):
        from repro.analysis import extract_references

        model = extract_references(l1)
        plan = build_plan(l1, model=model)
        assert plan.model is model


class TestStaticChecks:
    @pytest.mark.parametrize("fn,kwargs", [
        (catalog.l1, dict()),
        (catalog.l1, dict(strategy=Strategy.DUPLICATE)),
        (catalog.l2, dict(strategy=Strategy.DUPLICATE)),
        (catalog.l3, dict(strategy=Strategy.DUPLICATE, eliminate_redundant=True)),
        (catalog.l4, dict()),
        (catalog.l5, dict(strategy=Strategy.DUPLICATE)),
        (catalog.l5, dict(strategy=Strategy.DUPLICATE, duplicate_arrays={"B"})),
        (catalog.triangular, dict()),
        (catalog.convolution, dict(strategy=Strategy.DUPLICATE)),
    ])
    def test_all_checks_pass(self, fn, kwargs):
        check_all(build_plan(fn(), **kwargs))

    def test_cover_check_detects_duplication(self, l1):
        plan = build_plan(l1)
        # corrupt: duplicate an iteration across blocks
        from repro.core.partition import IterationBlock

        b0 = plan.blocks[0]
        plan.blocks[1] = IterationBlock(
            index=1, base_point=plan.blocks[1].base_point,
            iterations=plan.blocks[1].iterations + (b0.iterations[0],))
        with pytest.raises(AssertionError, match="two blocks"):
            check_partition_covers_space(plan)

    def test_disjoint_check_detects_sharing(self, l1):
        plan = build_plan(l1)
        from repro.core.partition import DataBlock

        shared = next(iter(plan.data_blocks["A"][0].elements))
        plan.data_blocks["A"][1] = DataBlock(
            array="A", block_index=1,
            elements=plan.data_blocks["A"][1].elements | {shared})
        with pytest.raises(AssertionError, match="non-duplicate"):
            check_data_blocks_disjoint(plan)

    def test_flow_check_detects_bad_partition(self, l1):
        # Partition L1 along (1,0): cuts the flow dependence (1,1)
        from repro.analysis import extract_references
        from repro.core.partition import (all_data_partitions, block_index_map,
                                          iteration_partition)
        from repro.core.plan import PartitionPlan
        from repro.core.strategy import partitioning_space
        from repro.ratlinalg import Subspace

        model = extract_references(l1)
        bad_psi = Subspace(2, [[1, 0]])
        breakdown = partitioning_space(model)
        breakdown.psi = bad_psi
        blocks = iteration_partition(model.space, bad_psi)
        plan = PartitionPlan(
            nest=l1, model=model, breakdown=breakdown, blocks=blocks,
            data_blocks=all_data_partitions(model, blocks),
            _block_of=block_index_map(blocks),
        )
        with pytest.raises(AssertionError, match="crosses blocks"):
            check_no_interblock_flow(plan)

    def test_duplicate_sharing_allowed(self, l5):
        plan = build_plan(l5, Strategy.DUPLICATE)
        # B is shared across blocks but duplicated: disjointness check
        # must not complain about duplicated arrays
        check_data_blocks_disjoint(plan)
