"""Multi-loop program composition."""

import pytest

from repro.core import Strategy
from repro.lang import catalog, parse
from repro.machine.cost import CostModel
from repro.program import (
    Program,
    plan_program,
    run_program_sequential,
    verify_program,
)

CHEAP = CostModel(t_comp=1e-3, t_start=1e-6, t_comm=1e-7)


def two_phase():
    p1 = parse("""
      for i = 1 to 4 { for j = 1 to 4 {
        U[i, j] = U[i - 1, j - 1] + F[i, j];
      } }
    """, name="P1")
    p2 = parse("""
      for i = 1 to 4 { for j = 1 to 4 {
        V[i, j] = U[i, j] * 2;
      } }
    """, name="P2")
    return Program(nests=[p1, p2], name="two-phase")


class TestProgramModel:
    def test_array_names_union(self):
        prog = two_phase()
        assert set(prog.array_names()) == {"U", "F", "V"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Program(nests=[])

    def test_make_arrays_covers_all_phases(self):
        prog = two_phase()
        arrays = prog.make_arrays()
        assert (0, 0) in arrays["U"]   # P1 reads U[i-1,j-1]
        assert (4, 4) in arrays["V"]

    def test_rank_conflict_rejected(self):
        p1 = parse("for i = 1 to 2 { A[i] = 0; }")
        p2 = parse("for i = 1 to 2 { A[i, i] = 0; }")
        with pytest.raises(ValueError, match="different ranks"):
            Program(nests=[p1, p2]).make_arrays()


class TestPlanProgram:
    def test_phases_planned(self):
        pp = plan_program(two_phase(), p=4, cost=CHEAP)
        assert len(pp.phases) == 2
        assert len(pp.reallocations) == 1
        assert pp.phases[0].plan.num_blocks == 7
        assert pp.phases[1].plan.num_blocks == 16

    def test_fixed_strategy(self):
        pp = plan_program(two_phase(), p=4, cost=CHEAP,
                          strategy=Strategy.NONDUPLICATE)
        assert pp.phases[1].plan.strategy is Strategy.NONDUPLICATE

    def test_makespan_composition(self):
        pp = plan_program(two_phase(), p=4, cost=CHEAP)
        assert pp.makespan == pytest.approx(
            pp.total_distribution + pp.total_compute + pp.total_reallocation)

    def test_summary(self):
        text = plan_program(two_phase(), p=4, cost=CHEAP).summary()
        assert "2 phases" in text and "realloc" in text


class TestReallocation:
    def test_layout_change_detected(self):
        pp = plan_program(two_phase(), p=4, cost=CHEAP)
        r = pp.reallocations[0]
        assert r.moved_words > 0
        assert 0.0 <= r.locality < 1.0
        assert r.time > 0

    def test_identical_phases_no_movement(self):
        src = """
          for i = 1 to 4 { for j = 1 to 4 {
            U[i, j] = U[i - 1, j - 1] + F[i, j];
          } }
        """
        prog = Program(nests=[parse(src, name="A"), parse(src, name="B")])
        pp = plan_program(prog, p=4, cost=CHEAP,
                          strategy=Strategy.NONDUPLICATE)
        r = pp.reallocations[0]
        assert r.moved_words == 0
        assert r.locality == 1.0

    def test_disjoint_arrays_no_movement(self):
        p1 = parse("for i = 1 to 4 { A[i] = 1; }")
        p2 = parse("for i = 1 to 4 { B[i] = 2; }")
        pp = plan_program(Program(nests=[p1, p2]), p=2, cost=CHEAP)
        assert pp.reallocations[0].moved_words == 0


class TestProgramExecution:
    def test_two_phase_verifies(self):
        pp = plan_program(two_phase(), p=4, cost=CHEAP)
        assert verify_program(pp).ok

    def test_matmul_then_scale(self):
        mm = catalog.l5(3)
        scale = parse("""
          for i = 1 to 3 { for j = 1 to 3 {
            C[i, j] = C[i, j] / 2;
          } }
        """, name="SCALE")
        pp = plan_program(Program(nests=[mm, scale]), p=4, cost=CHEAP)
        assert verify_program(pp).ok

    def test_three_phases_chained_flow(self):
        p1 = parse("for i = 1 to 5 { A[i] = X[i] * 2; }")
        p2 = parse("for i = 1 to 5 { B[i] = A[i] + 1; }")
        p3 = parse("for i = 1 to 5 { A[i] = B[i] * B[i]; }")
        pp = plan_program(Program(nests=[p1, p2, p3]), p=2, cost=CHEAP)
        assert len(pp.reallocations) == 2
        assert verify_program(pp).ok

    def test_sequential_runner(self):
        prog = two_phase()
        arrays = prog.make_arrays(init=lambda n: (lambda c: 1.0))
        run_program_sequential(prog, arrays)
        # U[1,1] = U[0,0] + F[1,1] = 2; V[1,1] = 4
        assert arrays["V"][(1, 1)] == 4.0

    def test_duplicate_phases_verify(self):
        p1 = parse("""
          for i = 1 to 4 { for j = 1 to 4 {
            S[i, j] = W[i, j] * 3;
          } }
        """)
        p2 = parse("""
          for i = 1 to 4 { for j = 1 to 4 {
            T[j, i] = S[i, j] + 1;
          } }
        """)
        pp = plan_program(Program(nests=[p1, p2]), p=4, cost=CHEAP,
                          strategy=Strategy.DUPLICATE)
        assert verify_program(pp).ok
