"""The README's code blocks must actually work."""

from repro import Strategy, build_plan, catalog, parse, verify_plan


class TestReadmeQuickstart:
    def test_quickstart_block(self):
        nest = parse("""
            for i = 1 to 4 {
              for j = 1 to 4 {
                S1: A[2*i, j] = C[i, j] * 7;
                S2: B[j, i + 1] = A[2*i - 2, j - 1] + C[i - 1, j - 1];
              }
            }
        """)
        plan = build_plan(nest, Strategy.NONDUPLICATE)
        assert "span{(1, 1)}" in plan.summary()
        report = verify_plan(plan)
        assert report.communication_free
        assert report.equal

    def test_strategy_block(self):
        assert build_plan(catalog.l2(), Strategy.DUPLICATE).num_blocks == 16
        assert build_plan(catalog.l3(), Strategy.DUPLICATE,
                          eliminate_redundant=True).num_blocks == 4
        assert build_plan(catalog.l5(), Strategy.DUPLICATE,
                          duplicate_arrays={"B"}).num_blocks == 4

    def test_transform_block(self):
        from repro import (assign_blocks, shape_grid, to_pseudocode,
                           transform_nest)

        nest = catalog.l4()
        plan = build_plan(nest)
        t = transform_nest(nest, plan.psi)
        text = to_pseudocode(t)
        assert "forall" in text
        grid = shape_grid(4, t.k)
        assignment = assign_blocks(t, grid)
        assert all(v == 16 for v in assignment.loads().values())

    def test_module_docstring_block(self):
        import repro

        assert "Quickstart" in (repro.__doc__ or "")
        assert repro.__version__
