"""ScopeStack: per-thread ambient scoping for the serving layer."""

import threading

from repro.ctxstack import ScopeStack, scope_stack


class TestScopeStack:
    def test_top_returns_base_then_scoped(self):
        stack = ScopeStack("base")
        assert stack.top() == "base"
        with stack.scoped("inner"):
            assert stack.top() == "inner"
            with stack.scoped("innermost"):
                assert stack.top() == "innermost"
            assert stack.top() == "inner"
        assert stack.top() == "base"

    def test_empty_stack_default(self):
        stack = ScopeStack()
        assert stack.top() is None
        assert stack.top("fallback") == "fallback"
        assert stack.depth() == 0

    def test_depth_counts_scoped_entries_only(self):
        stack = ScopeStack("base")
        assert stack.depth() == 0
        with stack.scoped(None):
            # an explicit None is a real entry (chaos-disable semantics)
            assert stack.depth() == 1
            assert stack.top("unused") is None

    def test_pop_is_identity_matched(self):
        stack = ScopeStack()
        sentinel = object()
        with stack.scoped(sentinel):
            assert stack.top() is sentinel
        assert stack.depth() == 0

    def test_factory(self):
        stack = scope_stack(1, 2)
        assert stack.top() == 2
        assert stack.depth() == 0


class TestThreadIsolation:
    def test_worker_threads_start_from_base(self):
        """A scope pushed on one thread is invisible to another -- each
        daemon worker thread sees the process defaults."""
        stack = ScopeStack("base")
        seen = {}

        def worker():
            seen["worker"] = stack.top()
            with stack.scoped("worker-scope"):
                seen["worker-scoped"] = stack.top()

        with stack.scoped("main-scope"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert stack.top() == "main-scope"
        assert seen["worker"] == "base"
        assert seen["worker-scoped"] == "worker-scope"

    def test_concurrent_threads_do_not_interleave(self):
        stack = ScopeStack()
        barrier = threading.Barrier(4)
        errors = []

        def worker(idx):
            try:
                barrier.wait(timeout=10)
                for rep in range(50):
                    with stack.scoped((idx, rep)):
                        assert stack.top() == (idx, rep)
                assert stack.depth() == 0
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_ambient_registries_are_thread_isolated(self):
        """The real consumers: a registry scoped on a serve worker
        thread never leaks into a sibling request thread."""
        from repro.obs.metrics import (METRICS, MetricsRegistry,
                                       current_registry, use_registry)

        ready = threading.Barrier(2)
        release = threading.Event()
        observed = {}

        def scoping_worker():
            private = MetricsRegistry()
            with use_registry(private):
                ready.wait(timeout=10)
                release.wait(timeout=10)
                observed["scoped"] = current_registry() is private

        def plain_worker():
            ready.wait(timeout=10)
            observed["plain"] = current_registry() is METRICS
            release.set()

        threads = [threading.Thread(target=scoping_worker),
                   threading.Thread(target=plain_worker)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert observed == {"scoped": True, "plain": True}
