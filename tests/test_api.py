"""The repro.api facade: Session, RunOptions, and the Summary protocol."""

import pytest

from repro import RunOptions, Session
from repro.api import Summary, _coerce_nest
from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.lang.ast import LoopNest
from repro.runtime.scheduler import FaultPlan

L1_SOURCE = """
for i = 1 to 6 {
  for j = 1 to 6 {
    A[i, j] = B[i, j] + 1;
  }
}
"""


class TestRunOptions:
    def test_defaults(self):
        opts = RunOptions()
        assert opts.backend is None
        assert opts.chaos is None
        assert opts.trace is False

    def test_chaos_spec_is_normalized_at_build_time(self):
        opts = RunOptions(chaos="crash-prob=0.2,seed=7")
        assert isinstance(opts.chaos, FaultPlan)
        assert opts.chaos.crash_prob == 0.2
        with pytest.raises(ValueError):
            RunOptions(chaos="bogus-key=1")

    def test_with_makes_an_updated_copy(self):
        opts = RunOptions(backend="interp")
        other = opts.with_(backend="compiled", trace=True)
        assert opts.backend == "interp" and opts.trace is False
        assert other.backend == "compiled" and other.trace is True


class TestCoerceNest:
    def test_catalog_name_is_case_insensitive(self):
        assert isinstance(_coerce_nest("L1"), LoopNest)
        assert isinstance(_coerce_nest("l3sub"), LoopNest)
        assert isinstance(_coerce_nest("conv"), LoopNest)

    def test_source_text_is_parsed(self):
        nest = _coerce_nest(L1_SOURCE)
        assert isinstance(nest, LoopNest)

    def test_nest_passes_through(self):
        nest = catalog.l2()
        assert _coerce_nest(nest) is nest

    def test_garbage_raises(self):
        with pytest.raises(TypeError):
            _coerce_nest(42)


class TestSession:
    def test_five_line_pipeline(self):
        # the acceptance snippet: plan -> run -> verify -> audit
        s = Session("L2", strategy="duplicate")
        s.plan()
        result = s.run(backend="multiprocess")
        assert s.verify().ok and s.audit().ok
        assert result.ok

    def test_plan_is_cached(self):
        s = Session("L1")
        assert s.plan() is s.plan()

    def test_options_merge_with_explicit_kwargs(self):
        base = RunOptions(backend="interp")
        s = Session("L1", options=base, backend="compiled", trace=True)
        assert s.options.backend == "compiled"
        assert s.options.trace is True
        assert s.tracer.enabled

    def test_run_sequential_returns_final_arrays(self):
        s = Session("L1", strategy="duplicate")
        arrays = s.run_sequential()
        assert set(arrays) == set(s.plan().model.arrays)

    def test_chaos_session_records_retries(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        s = Session("L2", strategy="duplicate", chaos="crash-prob=0.4,seed=11")
        res = s.run(backend="multiprocess")
        assert res.ok
        assert res.scheduler.retries > 0
        snap = s.metrics()
        assert snap["scheduler.retries"]["value"] == res.scheduler.retries

    def test_trace_scopes_spans_into_the_session_tracer(self):
        s = Session("L1", trace=True)
        s.run(backend="interp")
        assert any(sp.name for sp in s.tracer.spans)

    def test_machine_run(self):
        s = Session("L1", strategy="duplicate")
        mrun = s.machine(p=4)
        assert mrun.ok
        assert mrun.communication_free


class TestSummaryProtocol:
    def test_all_result_types_speak_summary(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        s = Session("L2", strategy="duplicate")
        results = [
            s.run(backend="multiprocess"),
            s.verify(),
            s.audit(),
            s.machine(p=4),
        ]
        for r in results:
            assert isinstance(r, Summary), type(r).__name__
            assert r.ok is True
            assert isinstance(r.summary(), str) and r.summary()
            json = r.to_json()
            assert isinstance(json, dict) and json

    def test_scheduler_result_serializes_through_parallel_result(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        s = Session("L2", strategy="duplicate", chaos="crash-prob=0.3,seed=1")
        doc = s.run(backend="multiprocess").to_json()
        assert doc["scheduler"]["mode"] == "dynamic"
        assert doc["scheduler"]["recovered"] is True


class TestLegacyEntryPoints:
    def test_legacy_calls_still_work_unchanged(self):
        from repro.runtime import run_parallel, verify_plan

        plan = build_plan(catalog.l1(), strategy=Strategy.DUPLICATE)
        res = run_parallel(plan)
        assert res.remote_accesses == 0
        report = verify_plan(plan)
        assert report.equal and report.ok

    def test_top_level_reexports(self):
        import repro

        assert repro.Session is Session
        assert repro.RunOptions is RunOptions
