"""The runtime selftest must pass and report every claim."""

import io

from repro.cli import main
from repro.selftest import _claims, run_selftest


class TestSelftest:
    def test_all_claims_pass(self):
        out = io.StringIO()
        failures = run_selftest(out=out)
        assert failures == 0
        text = out.getvalue()
        assert "FAIL" not in text and "ERROR" not in text

    def test_claim_inventory(self):
        claims = _claims()
        assert len(claims) >= 15
        sections = {c.section for c in claims}
        assert sections == {"II", "III.A", "III.B", "III.C", "IV"}

    def test_cli_command(self):
        out = io.StringIO()
        code = main(["selftest"], out=out)
        assert code == 0
        assert "claims reproduced" in out.getvalue()

    def test_failure_reported(self, monkeypatch):
        """A broken claim yields a nonzero failure count, not a crash."""
        import repro.selftest as st

        real = st._claims

        def broken():
            claims = real()
            claims[0] = st.Claim("II", "intentionally false", lambda: False)
            claims[1] = st.Claim("II", "intentionally crashing",
                                 lambda: 1 / 0)
            return claims

        monkeypatch.setattr(st, "_claims", broken)
        out = io.StringIO()
        failures = st.run_selftest(out=out)
        assert failures == 2
        text = out.getvalue()
        assert "[FAIL]" in text and "[ERROR]" in text
