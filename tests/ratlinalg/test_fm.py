"""Fourier-Motzkin elimination and loop-bound synthesis."""

from fractions import Fraction

import pytest

from repro.ratlinalg import FMSystem, Ineq, bounds_for_order, eliminate
from repro.ratlinalg.fm import AffineForm, enumerate_integer_points


def box_system(bounds):
    """System for lo_i <= x_i <= hi_i."""
    n = len(bounds)
    s = FMSystem(n)
    for i, (lo, hi) in enumerate(bounds):
        s.add_lower(i, lo)
        s.add_upper(i, hi)
    return s


class TestIneq:
    def test_eval_and_holds(self):
        q = Ineq.make([1, -1], 0)  # x - y >= 0
        assert q.holds([3, 2])
        assert not q.holds([2, 3])
        assert q.eval([5, 1]) == 4

    def test_normalized(self):
        q = Ineq.make([2, 4], 6).normalized()
        assert q.coeffs == (1, 2) and q.const == 3

    def test_is_constant(self):
        assert Ineq.make([0, 0], 5).is_constant()
        assert not Ineq.make([1, 0], 5).is_constant()


class TestEliminate:
    def test_box_projection(self):
        s = box_system([(1, 4), (1, 4)])
        proj = eliminate(s, 1)
        # projection keeps x_0 in [1,4]
        assert proj.satisfied_by([1, 999])
        assert proj.satisfied_by([4, -999])
        assert not proj.satisfied_by([5, 0])

    def test_diagonal_constraint(self):
        # x + y <= 4, x >= 1, y >= 1 : eliminating y gives x <= 3
        s = box_system([(1, 10), (1, 10)])
        s.add([-1, -1], 4)
        proj = eliminate(s, 1)
        assert proj.satisfied_by([3, 0])
        assert not proj.satisfied_by([4, 0])

    def test_infeasible_detection(self):
        s = FMSystem(1)
        s.add_lower(0, 5)
        s.add_upper(0, 3)
        proj = eliminate(s, 0)
        assert proj.is_trivially_infeasible()


class TestBoundsForOrder:
    def test_rectangular(self):
        s = box_system([(1, 4), (2, 5)])
        bounds = bounds_for_order(s, [0, 1])
        assert bounds[0].range_for([]) == range(1, 5)
        assert bounds[1].range_for([3]) == range(2, 6)

    def test_triangular(self):
        # 1 <= x <= 4, 1 <= y <= x
        s = FMSystem(2)
        s.add_lower(0, 1)
        s.add_upper(0, 4)
        s.add_lower(1, 1)
        s.add([1, -1], 0)  # x - y >= 0
        bounds = bounds_for_order(s, [0, 1])
        assert bounds[1].range_for([3]) == range(1, 4)
        assert bounds[0].range_for([]) == range(1, 5)

    def test_reversed_order(self):
        # same triangle iterated y-outermost
        s = FMSystem(2)
        s.add_lower(0, 1)
        s.add_upper(0, 4)
        s.add_lower(1, 1)
        s.add([1, -1], 0)
        bounds = bounds_for_order(s, [1, 0])
        # y ranges 1..4; for fixed y, x ranges y..4
        assert bounds[0].range_for([]) == range(1, 5)
        assert bounds[1].range_for([2]) == range(2, 5)

    def test_fractional_tightening(self):
        # 2x <= 7, x >= 0 -> x in [0, 3]
        s = FMSystem(1)
        s.add_lower(0, 0)
        s.add([-2], 7)
        bounds = bounds_for_order(s, [0])
        assert bounds[0].range_for([]) == range(0, 4)

    def test_unbounded_raises(self):
        s = FMSystem(1)
        s.add_lower(0, 0)
        with pytest.raises(ValueError):
            bounds_for_order(s, [0])

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            bounds_for_order(box_system([(0, 1)]), [0, 1])

    def test_infeasible_yields_empty_ranges(self):
        s = FMSystem(2)
        s.add_lower(0, 5)
        s.add_upper(0, 3)
        s.add_lower(1, 0)
        s.add_upper(1, 1)
        bounds = bounds_for_order(s, [0, 1])
        assert len(bounds[0].range_for([])) == 0


class TestEnumerateIntegerPoints:
    def test_box(self):
        pts = {tuple(int(x) for x in p)
               for p in enumerate_integer_points(box_system([(1, 2), (1, 3)]))}
        assert pts == {(x, y) for x in (1, 2) for y in (1, 2, 3)}

    def test_triangle_exact(self):
        s = FMSystem(2)
        s.add_lower(0, 1)
        s.add_upper(0, 3)
        s.add_lower(1, 1)
        s.add([1, -1], 0)
        pts = {tuple(int(x) for x in p) for p in enumerate_integer_points(s)}
        assert pts == {(x, y) for x in (1, 2, 3) for y in range(1, x + 1)}

    def test_points_satisfy_all_constraints(self):
        s = box_system([(0, 5), (0, 5)])
        s.add([-1, -2], 7)  # x + 2y <= 7
        for p in enumerate_integer_points(s):
            assert s.satisfied_by(list(p))

    def test_lexicographic_order(self):
        s = box_system([(1, 3), (1, 3)])
        pts = [tuple(int(x) for x in p) for p in enumerate_integer_points(s)]
        assert pts == sorted(pts)


class TestAffineForm:
    def test_eval(self):
        f = AffineForm((Fraction(1), Fraction(-2)), Fraction(3))
        assert f.eval([4, 1]) == 5

    def test_render(self):
        f = AffineForm((Fraction(1), Fraction(-1)), Fraction(8))
        assert f.render(["a", "b"]) == "a - b + 8"
        g = AffineForm((Fraction(0), Fraction(0)), Fraction(-3))
        assert g.render(["a", "b"]) == "-3"
        h = AffineForm((Fraction(1, 2), Fraction(0)), Fraction(0))
        assert "1/2" in h.render(["a", "b"])
