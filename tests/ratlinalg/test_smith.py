"""Smith normal form and Diophantine systems."""

from fractions import Fraction

import pytest

from repro.ratlinalg import RatMat, RatVec, smith_normal_form, solve_diophantine


def check_snf(m: RatMat):
    u, d, v = smith_normal_form(m)
    # decomposition holds
    assert u @ m @ v == d
    # unimodular transforms
    assert abs(u.det()) == 1
    assert abs(v.det()) == 1
    # diagonal with divisibility chain
    for i in range(d.nrows):
        for j in range(d.ncols):
            if i != j:
                assert d[i, j] == 0
    diag = [d[i, i] for i in range(min(d.nrows, d.ncols))]
    for a, b in zip(diag, diag[1:]):
        if a != 0:
            assert b % a == 0
        else:
            assert b == 0
    # nonnegative diagonal
    assert all(x >= 0 for x in diag)
    return diag


class TestSmithNormalForm:
    def test_identity(self):
        assert check_snf(RatMat.identity(3)) == [1, 1, 1]

    def test_diagonal_reordering(self):
        assert check_snf(RatMat([[2, 0], [0, 1]])) == [1, 2]

    def test_singular(self):
        diag = check_snf(RatMat([[1, 1], [1, 1]]))
        assert diag == [1, 0]

    def test_wide(self):
        check_snf(RatMat([[2, 4, 4]]))

    def test_tall(self):
        check_snf(RatMat([[2], [4], [6]]))

    def test_classic_example(self):
        diag = check_snf(RatMat([[2, 4, 4], [-6, 6, 12], [10, 4, 16]]))
        assert diag == [2, 2, 156]

    def test_zero_matrix(self):
        assert check_snf(RatMat([[0, 0], [0, 0]])) == [0, 0]

    def test_negative_entries(self):
        check_snf(RatMat([[-3, 1], [7, -2]]))

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError):
            smith_normal_form(RatMat([[Fraction(1, 2)]]))


class TestSolveDiophantine:
    def test_no_integer_solution(self):
        # 2x = 1 unsolvable over Z (the L1 array-A parity obstruction)
        assert solve_diophantine(RatMat([[2, 0], [0, 1]]), RatVec([1, 1])) is None

    def test_even_rhs_solvable(self):
        sol = solve_diophantine(RatMat([[2, 0], [0, 1]]), RatVec([2, 1]))
        assert sol is not None
        assert sol.particular == (1, 1)
        assert sol.dim == 0

    def test_singular_lattice(self):
        # paper Example 2: H_A t = (1,1) -> integer solutions (1,0)+k(-1,1)
        a = RatMat([[1, 1], [1, 1]])
        sol = solve_diophantine(a, RatVec([1, 1]))
        assert sol is not None and sol.dim == 1
        assert a @ sol.particular == RatVec([1, 1])
        b = sol.lattice_basis[0]
        assert (a @ b).is_zero()
        for k in (-3, 2):
            t = sol.particular + b * k
            assert t.is_integral()
            assert a @ t == RatVec([1, 1])

    def test_inconsistent_rational(self):
        assert solve_diophantine(RatMat([[1, 1], [1, 1]]), RatVec([1, 2])) is None

    def test_fractional_rhs(self):
        assert solve_diophantine(RatMat([[1, 0]]), RatVec([Fraction(1, 2)])) is None

    def test_gcd_condition(self):
        # 6x + 10y = r solvable over Z iff gcd(6,10)=2 divides r
        a = RatMat([[6, 10]])
        assert solve_diophantine(a, RatVec([3])) is None
        sol = solve_diophantine(a, RatVec([4]))
        assert sol is not None
        assert 6 * sol.particular[0] + 10 * sol.particular[1] == 4
        assert sol.dim == 1

    def test_zero_rhs_gives_kernel_lattice(self):
        a = RatMat([[1, -1, 1]])
        sol = solve_diophantine(a, RatVec([0]))
        assert sol is not None
        assert sol.particular == (0, 0, 0)
        assert sol.dim == 2
        for b in sol.lattice_basis:
            assert (a @ b).is_zero() and b.is_integral()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve_diophantine(RatMat([[1, 0]]), RatVec([1, 2]))
