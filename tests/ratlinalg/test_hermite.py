"""Hermite normal form and canonical lattice bases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ratlinalg import RatMat, RatVec
from repro.ratlinalg.hermite import hermite_normal_form, lattice_canonical_basis


def check_hnf(m: RatMat):
    h, u = hermite_normal_form(m)
    assert m @ u == h
    assert abs(u.det()) == 1
    # column structure: pivots strictly descend... (rows of first nonzero
    # strictly increase with column), zero columns trail
    pivots = []
    seen_zero = False
    for j in range(h.ncols):
        col = [h[i, j] for i in range(h.nrows)]
        nz = [i for i, x in enumerate(col) if x != 0]
        if not nz:
            seen_zero = True
            continue
        assert not seen_zero, "zero column before a nonzero one"
        pivots.append((nz[0], j))
        assert col[nz[0]] > 0
    rows = [r for r, _ in pivots]
    assert rows == sorted(rows) and len(set(rows)) == len(rows)
    # reduction: entries left of a pivot in its row lie in [0, pivot)
    for r, j in pivots:
        for jj in range(j):
            assert 0 <= h[r, jj] < h[r, j]
    return h, u


class TestHNF:
    def test_identity(self):
        h, u = check_hnf(RatMat.identity(3))
        assert h == RatMat.identity(3)

    def test_simple(self):
        check_hnf(RatMat([[2, 4], [1, 3]]))

    def test_singular(self):
        h, _ = check_hnf(RatMat([[1, 2], [2, 4]]))
        # rank 1: one nonzero column
        nonzero = sum(1 for j in range(2)
                      if any(h[i, j] != 0 for i in range(2)))
        assert nonzero == 1

    def test_wide_and_tall(self):
        check_hnf(RatMat([[4, 6, 10]]))
        check_hnf(RatMat([[4], [6], [10]]))

    def test_gcd_in_pivot(self):
        h, _ = check_hnf(RatMat([[6, 10]]))
        assert h[0, 0] == 2  # gcd(6,10)

    def test_non_integer_rejected(self):
        from fractions import Fraction

        with pytest.raises(ValueError):
            hermite_normal_form(RatMat([[Fraction(1, 2)]]))

    @given(st.lists(st.lists(st.integers(-5, 5), min_size=3, max_size=3),
                    min_size=1, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_random(self, rows):
        check_hnf(RatMat(rows))


class TestCanonicalBasis:
    def test_same_lattice_same_basis(self):
        b1 = lattice_canonical_basis([RatVec([1, 0]), RatVec([0, 1])])
        b2 = lattice_canonical_basis([RatVec([1, 1]), RatVec([0, 1])])
        assert b1 == b2  # both generate Z^2

    def test_different_lattices_differ(self):
        b1 = lattice_canonical_basis([RatVec([2, 0]), RatVec([0, 2])])
        b2 = lattice_canonical_basis([RatVec([1, 0]), RatVec([0, 1])])
        assert b1 != b2

    def test_redundant_generators_collapse(self):
        b1 = lattice_canonical_basis([RatVec([1, 2])])
        b2 = lattice_canonical_basis([RatVec([1, 2]), RatVec([2, 4]),
                                      RatVec([-3, -6])])
        assert b1 == b2 and len(b2) == 1

    def test_empty(self):
        assert lattice_canonical_basis([]) == []
        assert lattice_canonical_basis([RatVec([0, 0])]) == []

    def test_sublattice_of_kernel(self):
        """SNF integer-kernel basis canonicalizes consistently."""
        from repro.ratlinalg import integer_kernel_basis

        m = RatMat([[1, 1], [1, 1]])
        basis = integer_kernel_basis(m)
        canon = lattice_canonical_basis(basis)
        assert len(canon) == 1
        assert (m @ canon[0]).is_zero()
