"""Subspace algebra: spans, membership, unions, complements, coset keys."""

from fractions import Fraction

import pytest

from repro.ratlinalg import RatMat, RatVec, Subspace


class TestConstruction:
    def test_zero_subspace(self):
        s = Subspace.zero(3)
        assert s.dim == 0 and s.is_zero() and not s.is_full()

    def test_full(self):
        s = Subspace.full(2)
        assert s.dim == 2 and s.is_full()

    def test_dedup_dependent_vectors(self):
        s = Subspace(2, [[1, 1], [2, 2], [3, 3]])
        assert s.dim == 1

    def test_zero_vectors_ignored(self):
        assert Subspace(2, [[0, 0]]).dim == 0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Subspace(2, [[1, 2, 3]])

    def test_canonical_equality(self):
        # same subspace from different generators
        a = Subspace(2, [[1, 1]])
        b = Subspace(2, [[Fraction(1, 2), Fraction(1, 2)]])
        c = Subspace(2, [[-3, -3]])
        assert a == b == c
        assert hash(a) == hash(b)

    def test_kernel_of(self):
        s = Subspace.kernel_of(RatMat([[1, 1], [1, 1]]))
        assert s.dim == 1
        assert RatVec([1, -1]) in s


class TestMembership:
    def test_contains(self):
        s = Subspace(3, [[1, 0, 0], [0, 1, 0]])
        assert RatVec([2, 3, 0]) in s
        assert RatVec([0, 0, 1]) not in s
        assert RatVec([0, 0, 0]) in s

    def test_contains_fractional(self):
        s = Subspace(2, [[1, 1]])
        assert RatVec([Fraction(1, 2), Fraction(1, 2)]) in s

    def test_wrong_length(self):
        assert RatVec([1, 2, 3]) not in Subspace(2, [[1, 0]])


class TestAlgebra:
    def test_union_span(self):
        a = Subspace(2, [[1, 0]])
        b = Subspace(2, [[0, 1]])
        assert (a | b).is_full()
        assert (a | a) == a

    def test_union_theorem1_l1(self):
        # Psi = span({(1,1)} ∪ {(1,1)} ∪ φ) = span{(1,1)}
        psi_a = Subspace(2, [[1, 1]])
        psi_c = Subspace(2, [[1, 1]])
        psi_b = Subspace.zero(2)
        psi = psi_a | psi_c | psi_b
        assert psi.dim == 1 and RatVec([1, 1]) in psi

    def test_with_vectors(self):
        s = Subspace.zero(3).with_vectors([[1, 0, 0]])
        assert s.dim == 1

    def test_is_subspace_of(self):
        a = Subspace(3, [[1, 0, 0]])
        b = Subspace(3, [[1, 0, 0], [0, 1, 0]])
        assert a.is_subspace_of(b)
        assert not b.is_subspace_of(a)
        assert Subspace.zero(3).is_subspace_of(a)

    def test_intersect(self):
        a = Subspace(3, [[1, 0, 0], [0, 1, 0]])
        b = Subspace(3, [[0, 1, 0], [0, 0, 1]])
        inter = a.intersect(b)
        assert inter.dim == 1 and RatVec([0, 1, 0]) in inter


class TestComplementsAndProjections:
    def test_orthogonal_complement_dims(self):
        s = Subspace(3, [[1, -1, 1]])
        comp = s.orthogonal_complement()
        assert comp.dim == 2
        for v in comp.basis():
            assert v.dot(RatVec([1, -1, 1])) == 0

    def test_complement_of_zero_and_full(self):
        assert Subspace.zero(2).orthogonal_complement().is_full()
        assert Subspace.full(2).orthogonal_complement().is_zero()

    def test_double_complement(self):
        s = Subspace(3, [[1, 2, 3], [0, 1, 1]])
        assert s.orthogonal_complement().orthogonal_complement() == s

    def test_projection_matrix_idempotent(self):
        s = Subspace(2, [[1, 1]])
        p = s.projection_matrix()
        assert p @ p == p
        assert p @ RatVec([1, 1]) == RatVec([1, 1])
        assert (p @ RatVec([1, -1])).is_zero()

    def test_complement_projection(self):
        s = Subspace(2, [[1, 1]])
        q = s.complement_projection_matrix()
        assert (q @ RatVec([1, 1])).is_zero()

    def test_coset_key_partition_criterion(self):
        s = Subspace(2, [[1, 1]])
        k = s.coset_key
        assert k(RatVec([1, 1])) == k(RatVec([3, 3]))
        assert k(RatVec([1, 2])) == k(RatVec([2, 3]))
        assert k(RatVec([1, 1])) != k(RatVec([1, 2]))

    def test_coset_key_zero_subspace_identity(self):
        s = Subspace.zero(2)
        assert s.coset_key(RatVec([3, 4])) == (3, 4)

    def test_coset_key_full_subspace_single_class(self):
        s = Subspace.full(2)
        assert s.coset_key(RatVec([3, 4])) == s.coset_key(RatVec([-7, 0]))
