"""Rational system solving."""

from fractions import Fraction

import pytest

from repro.ratlinalg import RatMat, RatVec, solve_full, solve_particular


class TestSolveParticular:
    def test_unique_solution(self):
        a = RatMat([[2, 0], [0, 1]])
        t = solve_particular(a, RatVec([2, 1]))
        assert t == (1, 1)

    def test_paper_l2_fractional_solution(self):
        # H_B t = (1,1) has the unique solution (1/2, 1)  (Example 2)
        a = RatMat([[2, 0], [0, 1]])
        t = solve_particular(a, RatVec([1, 1]))
        assert t == (Fraction(1, 2), 1)

    def test_paper_l2_singular_consistent(self):
        # H_A t = (1,1): the paper picks (1/2, 1/2); any particular works
        a = RatMat([[1, 1], [1, 1]])
        t = solve_particular(a, RatVec([1, 1]))
        assert t is not None
        assert a @ t == RatVec([1, 1])

    def test_inconsistent(self):
        # H_A t = (0,-1) has no solution (paper: "no data dependence
        # between A[i+j-1,i+j-1] and A[i+j-1,i+j]")
        a = RatMat([[1, 1], [1, 1]])
        assert solve_particular(a, RatVec([0, -1])) is None

    def test_wide_system(self):
        a = RatMat([[1, 2, 3]])
        t = solve_particular(a, RatVec([6]))
        assert t is not None and a @ t == RatVec([6])

    def test_tall_system_consistent(self):
        a = RatMat([[1, 0], [0, 1], [1, 1]])
        t = solve_particular(a, RatVec([1, 2, 3]))
        assert t == (1, 2)

    def test_tall_system_inconsistent(self):
        a = RatMat([[1, 0], [0, 1], [1, 1]])
        assert solve_particular(a, RatVec([1, 2, 4])) is None

    def test_rhs_length_mismatch(self):
        with pytest.raises(ValueError):
            solve_particular(RatMat([[1, 0]]), RatVec([1, 2]))

    def test_zero_rhs_returns_zero(self):
        a = RatMat([[1, 1], [1, 1]])
        assert solve_particular(a, RatVec([0, 0])) == (0, 0)


class TestSolveFull:
    def test_solution_set_structure(self):
        a = RatMat([[1, 1], [1, 1]])
        res = solve_full(a, RatVec([2, 2]))
        assert res is not None
        t0, kernel = res
        assert a @ t0 == RatVec([2, 2])
        assert len(kernel) == 1
        # every t0 + c*k solves the system
        for c in (-2, 1, 5):
            t = t0 + kernel[0] * c
            assert a @ t == RatVec([2, 2])

    def test_inconsistent_returns_none(self):
        assert solve_full(RatMat([[1, 1], [1, 1]]), RatVec([1, 2])) is None

    def test_unique(self):
        res = solve_full(RatMat.identity(2), RatVec([5, 7]))
        assert res is not None
        t0, kernel = res
        assert t0 == (5, 7) and kernel == []
