"""RREF, rank, nullspace, integer echelon."""

from fractions import Fraction

from repro.ratlinalg import RatMat, RatVec, nullspace, rank, row_echelon_int, rref


class TestRref:
    def test_identity_fixed_point(self):
        m = RatMat.identity(3)
        r, pivots = rref(m)
        assert r == m and pivots == [0, 1, 2]

    def test_simple(self):
        r, pivots = rref(RatMat([[2, 4], [1, 2]]))
        assert r == RatMat([[1, 2], [0, 0]])
        assert pivots == [0]

    def test_pivot_skips_zero_column(self):
        r, pivots = rref(RatMat([[0, 3, 6], [0, 1, 2]]))
        assert pivots == [1]
        assert r.row(0) == (0, 1, 2)

    def test_rank(self):
        assert rank(RatMat([[1, 1], [1, 1]])) == 1
        assert rank(RatMat([[1, 0], [0, 1]])) == 2
        assert rank(RatMat([[0, 0], [0, 0]])) == 0
        assert rank(RatMat([[1, 2, 3], [4, 5, 6]])) == 2


class TestNullspace:
    def test_l2_array_a(self):
        # paper Example 2: Ker(H_A) = span{(1,-1)}
        basis = nullspace(RatMat([[1, 1], [1, 1]]))
        assert len(basis) == 1
        v = basis[0]
        assert v == (-1, 1) or v == (1, -1)

    def test_trivial_kernel(self):
        assert nullspace(RatMat([[2, 0], [0, 1]])) == []

    def test_full_kernel(self):
        basis = nullspace(RatMat([[0, 0], [0, 0]]))
        assert len(basis) == 2

    def test_l5_arrays(self):
        # paper Section IV: Ker of matmul reference matrices
        h_a = RatMat([[1, 0, 0], [0, 0, 1]])   # A[i,k]
        h_b = RatMat([[0, 0, 1], [0, 1, 0]])   # B[k,j]
        h_c = RatMat([[1, 0, 0], [0, 1, 0]])   # C[i,j]
        assert nullspace(h_a) == [RatVec([0, 1, 0])]
        assert nullspace(h_b) == [RatVec([1, 0, 0])]
        assert nullspace(h_c) == [RatVec([0, 0, 1])]

    def test_members_satisfy_equation(self):
        m = RatMat([[1, 2, 3], [2, 4, 6]])
        for v in nullspace(m):
            assert (m @ v).is_zero()
            assert v.is_integral()  # primitive scaling

    def test_wide_matrix(self):
        m = RatMat([[1, -1, 1]])  # L4's Psi normal
        basis = nullspace(m)
        assert len(basis) == 2
        for v in basis:
            assert (m @ v).is_zero()


class TestRowEchelonInt:
    def test_already_echelon(self):
        rows = [RatVec([1, 1, 0]), RatVec([0, 1, 1])]
        ech, pivots, origin = row_echelon_int(rows)
        assert pivots == [0, 1]
        assert origin == [0, 1]

    def test_needs_elimination(self):
        # paper Example 4: Q = {(1,1,0), (-1,0,1)}; echelon pivots 0 and 1,
        # second echelon row derived from the second original row.
        rows = [RatVec([1, 1, 0]), RatVec([-1, 0, 1])]
        ech, pivots, origin = row_echelon_int(rows)
        assert pivots == [0, 1]
        assert origin == [0, 1]
        assert ech[1] == (0, 1, 1)

    def test_reordering(self):
        rows = [RatVec([0, 1]), RatVec([1, 0])]
        ech, pivots, origin = row_echelon_int(rows)
        assert pivots == [0, 1]
        assert origin == [1, 0]  # row 1 supplied the first pivot

    def test_empty(self):
        assert row_echelon_int([]) == ([], [], [])

    def test_pivot_positions_strictly_increase(self):
        rows = [RatVec([2, 1, 3]), RatVec([4, 2, 7]), RatVec([0, 5, 1])]
        ech, pivots, origin = row_echelon_int(rows)
        assert pivots == sorted(pivots)
        assert len(set(pivots)) == len(pivots)
        for row, p in zip(ech, pivots):
            assert all(row[j] == 0 for j in range(p))
            assert row[p] != 0
