"""Property-based tests of the exact linear-algebra substrate."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ratlinalg import (
    FMSystem,
    IntLattice,
    RatMat,
    RatVec,
    Subspace,
    integer_kernel_basis,
    nullspace,
    rank,
    rref,
    smith_normal_form,
    solve_diophantine,
    solve_particular,
)
from repro.ratlinalg.fm import enumerate_integer_points

small_int = st.integers(min_value=-6, max_value=6)


def matrices(max_rows=3, max_cols=3):
    return st.integers(1, max_rows).flatmap(
        lambda r: st.integers(1, max_cols).flatmap(
            lambda c: st.lists(
                st.lists(small_int, min_size=c, max_size=c),
                min_size=r, max_size=r,
            )
        )
    ).map(RatMat)


def vectors(n):
    return st.lists(small_int, min_size=n, max_size=n).map(RatVec)


@given(matrices())
@settings(max_examples=60, deadline=None)
def test_rref_idempotent_and_rank_consistent(m):
    r, pivots = rref(m)
    r2, pivots2 = rref(r)
    assert r2 == r and pivots2 == pivots
    assert rank(m) == len(pivots)


@given(matrices())
@settings(max_examples=60, deadline=None)
def test_nullspace_vectors_annihilate(m):
    basis = nullspace(m)
    assert len(basis) == m.ncols - rank(m)
    for v in basis:
        assert (m @ v).is_zero()
        assert v.is_integral()


@given(matrices())
@settings(max_examples=50, deadline=None)
def test_smith_decomposition(m):
    u, d, v = smith_normal_form(m)
    assert u @ m @ v == d
    assert abs(u.det()) == 1 and abs(v.det()) == 1
    diag = [d[i, i] for i in range(min(d.nrows, d.ncols))]
    for a, b in zip(diag, diag[1:]):
        assert (a == 0 and b == 0) or (a != 0 and b % a == 0)


@given(matrices(max_rows=3, max_cols=3).flatmap(
    lambda m: st.tuples(st.just(m), vectors(m.ncols))))
@settings(max_examples=60, deadline=None)
def test_diophantine_consistent_with_construction(mx):
    """A t computed from a random integer t must be dioph-solvable back."""
    m, t = mx
    r = m @ t
    sol = solve_diophantine(m, r)
    assert sol is not None
    assert m @ sol.particular == r
    for b in sol.lattice_basis:
        assert (m @ b).is_zero()
    # the known solution t lies on the returned lattice
    lat = IntLattice(list(sol.lattice_basis), sol.particular)
    assert t in lat


@given(matrices(max_rows=3, max_cols=3).flatmap(
    lambda m: st.tuples(st.just(m), vectors(m.nrows))))
@settings(max_examples=60, deadline=None)
def test_particular_solution_solves(mx):
    m, rhs = mx
    t = solve_particular(m, rhs)
    if t is not None:
        assert m @ t == rhs
    else:
        # rational inconsistency implies integer inconsistency
        assert solve_diophantine(m, rhs) is None


@given(st.lists(st.lists(small_int, min_size=3, max_size=3),
                min_size=0, max_size=3))
@settings(max_examples=60, deadline=None)
def test_subspace_double_complement(rows):
    s = Subspace(3, rows)
    assert s.orthogonal_complement().orthogonal_complement() == s
    assert s.dim + s.orthogonal_complement().dim == 3


@given(st.lists(st.lists(small_int, min_size=3, max_size=3),
                min_size=1, max_size=2),
       st.lists(small_int, min_size=3, max_size=3),
       st.lists(small_int, min_size=3, max_size=3))
@settings(max_examples=60, deadline=None)
def test_coset_key_iff_difference_in_span(rows, a, b):
    s = Subspace(3, rows)
    va, vb = RatVec(a), RatVec(b)
    same = s.coset_key(va) == s.coset_key(vb)
    assert same == ((va - vb) in s)


@given(matrices(max_rows=2, max_cols=3))
@settings(max_examples=40, deadline=None)
def test_integer_kernel_basis_annihilates(m):
    for b in integer_kernel_basis(m):
        assert b.is_integral()
        assert (m @ b).is_zero()


@given(st.lists(st.tuples(st.integers(-3, 3), st.integers(-3, 3)),
                min_size=2, max_size=2))
@settings(max_examples=40, deadline=None)
def test_fm_enumeration_matches_brute_force(bounds):
    """FM-driven enumeration == brute-force scan over a random box + cut."""
    norm = [(min(a, b), max(a, b)) for a, b in bounds]
    s = FMSystem(2)
    for i, (lo, hi) in enumerate(norm):
        s.add_lower(i, lo)
        s.add_upper(i, hi)
    s.add([-1, -1], 2)  # x + y <= 2
    got = {tuple(int(x) for x in p) for p in enumerate_integer_points(s)}
    expected = {
        (x, y)
        for x in range(norm[0][0], norm[0][1] + 1)
        for y in range(norm[1][0], norm[1][1] + 1)
        if x + y <= 2
    }
    assert got == expected


@given(st.lists(small_int, min_size=2, max_size=2),
       st.lists(st.tuples(st.integers(-4, 4), st.integers(-4, 4)),
                min_size=2, max_size=2))
@settings(max_examples=40, deadline=None)
def test_lattice_box_enumeration_complete(offset, deltas):
    """Every enumerated point is in box and on lattice; spot-check completeness."""
    basis = [RatVec([1, 0]), RatVec([0, 2])]
    lat = IntLattice(basis, RatVec(offset))
    lo = [min(a, b) for a, b in zip(*[(d[0], d[1]) for d in deltas])] if False else None
    lo = [-4, -4]
    hi = [4, 4]
    pts = {tuple(int(x) for x in p) for p in lat.points_in_box(lo, hi)}
    brute = {
        (offset[0] + c1, offset[1] + 2 * c2)
        for c1 in range(-12, 13)
        for c2 in range(-12, 13)
        if lo[0] <= offset[0] + c1 <= hi[0] and lo[1] <= offset[1] + 2 * c2 <= hi[1]
    }
    assert pts == brute
