"""Unit tests for RatVec / RatMat exact arithmetic."""

from fractions import Fraction

import pytest

from repro.ratlinalg import RatMat, RatVec, as_fraction, frac_gcd, vec_gcd


class TestAsFraction:
    def test_int(self):
        assert as_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        assert as_fraction(Fraction(1, 2)) == Fraction(1, 2)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(0.5)


class TestFracGcd:
    def test_integers(self):
        assert frac_gcd(Fraction(4), Fraction(6)) == 2

    def test_rationals(self):
        g = frac_gcd(Fraction(1, 2), Fraction(1, 3))
        assert (Fraction(1, 2) / g).denominator == 1
        assert (Fraction(1, 3) / g).denominator == 1
        assert g == Fraction(1, 6)

    def test_zero_zero(self):
        assert frac_gcd(Fraction(0), Fraction(0)) == 0

    def test_vec_gcd(self):
        assert vec_gcd([2, 4, 6]) == 2
        assert vec_gcd([0, 0]) == 0
        assert vec_gcd([Fraction(1, 2), Fraction(3, 2)]) == Fraction(1, 2)


class TestRatVec:
    def test_construction_and_equality(self):
        v = RatVec([1, 2, 3])
        assert len(v) == 3
        assert v == (1, 2, 3)
        assert v == RatVec([1, 2, 3])

    def test_hashable(self):
        assert len({RatVec([1, 2]), RatVec([1, 2]), RatVec([2, 1])}) == 2

    def test_arithmetic(self):
        a, b = RatVec([1, 2]), RatVec([3, 4])
        assert a + b == RatVec([4, 6])
        assert b - a == RatVec([2, 2])
        assert -a == RatVec([-1, -2])
        assert a * 2 == RatVec([2, 4])
        assert 2 * a == RatVec([2, 4])
        assert a.dot(b) == 11

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            RatVec([1]) + RatVec([1, 2])

    def test_unit(self):
        assert RatVec.unit(3, 1) == (0, 1, 0)
        with pytest.raises(IndexError):
            RatVec.unit(2, 5)

    def test_zero_and_is_zero(self):
        assert RatVec.zero(2).is_zero()
        assert not RatVec([0, 1]).is_zero()

    def test_integrality(self):
        assert RatVec([1, 2]).is_integral()
        assert not RatVec([Fraction(1, 2), 1]).is_integral()
        assert RatVec([1, 2]).to_ints() == (1, 2)
        with pytest.raises(ValueError):
            RatVec([Fraction(1, 2)]).to_ints()

    def test_primitive(self):
        assert RatVec([2, 4]).primitive() == (1, 2)
        assert RatVec([Fraction(1, 2), Fraction(1, 2)]).primitive() == (1, 1)
        assert RatVec([0, 0]).primitive() == (0, 0)
        # sign of the leading entry is preserved
        assert RatVec([-2, 4]).primitive() == (-1, 2)

    def test_lex_sign(self):
        assert RatVec([0, 1]).lex_sign() == 1
        assert RatVec([0, -1, 5]).lex_sign() == -1
        assert RatVec([0, 0]).lex_sign() == 0

    def test_slice(self):
        v = RatVec([1, 2, 3, 4])
        assert v[1:3] == RatVec([2, 3])
        assert v[0] == 1


class TestRatMat:
    def test_shape_and_indexing(self):
        m = RatMat([[1, 2], [3, 4], [5, 6]])
        assert m.shape == (3, 2)
        assert m[2, 1] == 6
        assert m.row(0) == (1, 2)
        assert m.col(1) == (2, 4, 6)

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            RatMat([[1, 2], [3]])

    def test_identity_and_diag(self):
        assert RatMat.identity(2) == RatMat([[1, 0], [0, 1]])
        assert RatMat.diag([2, 3]) == RatMat([[2, 0], [0, 3]])

    def test_matmul_vector(self):
        m = RatMat([[2, 0], [0, 1]])
        assert m @ RatVec([3, 4]) == (6, 4)

    def test_matmul_matrix(self):
        a = RatMat([[1, 2], [3, 4]])
        b = RatMat([[0, 1], [1, 0]])
        assert a @ b == RatMat([[2, 1], [4, 3]])

    def test_matmul_shape_error(self):
        with pytest.raises(ValueError):
            RatMat([[1, 2]]) @ RatVec([1, 2, 3])

    def test_transpose(self):
        m = RatMat([[1, 2, 3], [4, 5, 6]])
        assert m.T == RatMat([[1, 4], [2, 5], [3, 6]])
        assert m.T.T == m

    def test_stacking(self):
        a = RatMat([[1, 2]])
        b = RatMat([[3, 4]])
        assert a.vstack(b) == RatMat([[1, 2], [3, 4]])
        assert a.hstack(b) == RatMat([[1, 2, 3, 4]])

    def test_det(self):
        assert RatMat([[1, 2], [3, 4]]).det() == -2
        assert RatMat([[1, 1], [1, 1]]).det() == 0
        assert RatMat([[1, 1, 0], [-1, 0, 1], [1, 0, 0]]).det() == 1

    def test_det_non_square(self):
        with pytest.raises(ValueError):
            RatMat([[1, 2]]).det()

    def test_inverse(self):
        m = RatMat([[2, 1], [1, 1]])
        assert m @ m.inverse() == RatMat.identity(2)
        assert m.inverse() @ m == RatMat.identity(2)

    def test_inverse_singular(self):
        with pytest.raises(ZeroDivisionError):
            RatMat([[1, 1], [1, 1]]).inverse()

    def test_inverse_fractional(self):
        m = RatMat([[1, 2], [1, 0]])
        inv = m.inverse()
        assert inv[0, 0] == 0 and inv[0, 1] == 1
        assert inv[1, 0] == Fraction(1, 2)

    def test_is_integral_to_int_rows(self):
        assert RatMat([[1, 2]]).to_int_rows() == [[1, 2]]
        with pytest.raises(ValueError):
            RatMat([[Fraction(1, 2)]]).to_int_rows()

    def test_add_sub_scale(self):
        a = RatMat([[1, 2], [3, 4]])
        assert (a + a).scale(Fraction(1, 2)) == a
        assert a - a == RatMat.zeros(2, 2)
        assert (-a) == a.scale(-1)

    def test_submatrix(self):
        m = RatMat([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert m.submatrix([0, 2], [1, 2]) == RatMat([[2, 3], [8, 9]])
