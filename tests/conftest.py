"""Shared fixtures: the paper's loops and standard scalar bindings."""

import pytest

from repro.lang import catalog


@pytest.fixture(autouse=True)
def _isolated_blackbox_dir(tmp_path_factory, monkeypatch):
    """Keep flight-recorder dumps out of the repo: tests that exercise
    failure paths (chaos non-recovery, CLI errors) dump blackboxes, and
    without this they land in the cwd.  Deliberately not the test's own
    ``tmp_path`` -- tests assert on its contents."""
    d = tmp_path_factory.mktemp("blackbox")
    monkeypatch.setenv("REPRO_BLACKBOX_DIR", str(d))


@pytest.fixture
def l1():
    return catalog.l1()


@pytest.fixture
def l2():
    return catalog.l2()


@pytest.fixture
def l3():
    return catalog.l3()


@pytest.fixture
def l4():
    return catalog.l4()


@pytest.fixture
def l5():
    return catalog.l5()


@pytest.fixture
def scalars():
    """Bindings for every free scalar appearing in the catalog loops."""
    return {"D": 2.0, "F": 3.0, "G": 1.5, "K": 0.5}
