"""The CLI exit-code contract.

Every failing subcommand must exit non-zero AND print a one-line
``repro: <reason>`` to stderr, so shell pipelines (and CI) can gate on
``$?`` without parsing stdout.  Success keeps stderr quiet.
"""

import io
import os
import subprocess
import sys

import pytest

from repro.cli import main


def run(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def _stderr_reason(capsys):
    err = capsys.readouterr().err
    lines = [l for l in err.splitlines() if l.startswith("repro: ")]
    return lines


class TestExitCodes:
    def test_verify_success_is_zero_and_quiet(self, capsys):
        code, text = run("verify", "--loop", "L1")
        assert code == 0
        assert "OK" in text
        assert _stderr_reason(capsys) == []

    def test_audit_violation_is_nonzero_with_reason(self, capsys):
        code, _ = run("audit", "--loop", "L2", "--duplicate",
                      "--inject-violation", "--static")
        assert code == 1
        (line,) = _stderr_reason(capsys)
        assert line.startswith("repro: audit violation:")

    def test_audit_clean_is_zero(self, capsys):
        code, _ = run("audit", "--loop", "L2", "--duplicate", "--static")
        assert code == 0
        assert _stderr_reason(capsys) == []

    def test_perf_check_below_absurd_floor_is_nonzero(self, tmp_path,
                                                      capsys):
        code, text = run("perf", "--n", "6", "--repeats", "1",
                         "--history", str(tmp_path / "h.jsonl"),
                         "--baseline", str(tmp_path / "nope.json"),
                         "--floor", "compiled=999999", "--check")
        assert code == 1
        assert "perf regression" in text
        (line,) = _stderr_reason(capsys)
        assert line.startswith("repro: perf below floor:")

    def test_chaos_recovery_is_zero(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        code, text = run("chaos", "--matmul", "6",
                         "--crash-prob", "0.3", "--seed", "1")
        assert code == 0
        assert "bit-identical" in text
        assert _stderr_reason(capsys) == []

    def test_chaos_on_violating_plan_is_nonzero(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        code, _ = run("chaos", "--matmul", "6", "--crash-prob", "0.3",
                      "--seed", "1", "--inject-violation")
        assert code == 1
        (line,) = _stderr_reason(capsys)
        assert line.startswith("repro: ")

    def test_chaos_non_recovery_is_nonzero(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_MP_WORKERS", "1")
        monkeypatch.setenv("REPRO_SCHED_ATTEMPTS", "2")
        code, _ = run("chaos", "--matmul", "4",
                      "--chaos", "crash-prob=1,shield-final=0,seed=1")
        assert code == 1
        (line,) = _stderr_reason(capsys)
        assert line.startswith("repro: chaos non-recovery:")

    def test_verify_chaos_flag_still_verifies(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        code, text = run("verify", "--loop", "L2", "--duplicate",
                         "--backend", "multiprocess",
                         "--chaos", "crash-prob=0.3,seed=1")
        assert code == 0
        assert "OK" in text


class TestShellContract:
    """$? visible to a real shell, end to end."""

    @pytest.fixture()
    def env(self):
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        env["REPRO_MP_WORKERS"] = "2"
        return env

    def _shell(self, cmd, env):
        proc = subprocess.run(
            ["sh", "-c", cmd + "; echo rc=$?"],
            capture_output=True, text=True, env=env, timeout=300)
        return proc

    def test_verify_ok_in_shell(self, env):
        proc = self._shell(
            f"{sys.executable} -m repro verify --loop L1 >/dev/null 2>&1",
            env)
        assert proc.stdout.strip().endswith("rc=0")

    def test_audit_violation_in_shell(self, env):
        proc = self._shell(
            f"{sys.executable} -m repro audit --loop L2 --duplicate "
            "--inject-violation --static >/dev/null", env)
        assert proc.stdout.strip().endswith("rc=1")
        assert "repro: audit violation:" in proc.stderr

    def test_closed_pipe_is_quiet(self, env, tmp_path):
        # `repro ... | head` closes our stdout early: no traceback,
        # no blackbox dump
        env = dict(env, REPRO_BLACKBOX_DIR=str(tmp_path))
        proc = self._shell(
            f"cd {tmp_path} && {sys.executable} -m repro report "
            "--loop L1 -p 4 | head -1", env)
        assert proc.stdout.strip().endswith("rc=0")   # head's status
        assert "Traceback" not in proc.stderr
        assert not list(tmp_path.glob("repro-blackbox-*.json"))


class _ClosedPipe(io.StringIO):
    def write(self, s):
        raise BrokenPipeError


class TestBrokenPipe:
    def test_broken_pipe_is_sigpipe_exit_without_blackbox(self, tmp_path,
                                                          monkeypatch):
        monkeypatch.setenv("REPRO_BLACKBOX_DIR", str(tmp_path))
        code = main(["verify", "--loop", "L1"], out=_ClosedPipe())
        assert code == 141   # conventional 128+SIGPIPE
        assert not list(tmp_path.glob("repro-blackbox-*.json"))
