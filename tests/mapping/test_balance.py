"""Workload balance metrics."""

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.mapping import assign_blocks, shape_grid, workload_stats
from repro.mapping.balance import WorkloadStats
from repro.transform import transform_nest


class TestWorkloadStats:
    def test_perfect_balance(self):
        s = WorkloadStats(loads={(0,): 4, (1,): 4})
        assert s.total == 8
        assert s.imbalance == 1.0
        assert s.efficiency == 1.0

    def test_imbalanced(self):
        s = WorkloadStats(loads={(0,): 6, (1,): 2})
        assert s.max_load == 6 and s.min_load == 2
        assert s.imbalance == pytest.approx(1.5)
        assert s.efficiency == pytest.approx(8 / 12)

    def test_empty(self):
        s = WorkloadStats(loads={})
        assert s.total == 0 and s.imbalance == 1.0

    def test_summary_format(self):
        s = WorkloadStats(loads={(0,): 3, (1,): 1})
        out = s.summary()
        assert "p=2" in out and "total=4" in out


class TestEndToEndBalance:
    def test_l4_perfectly_balanced_on_4(self):
        nest = catalog.l4()
        plan = build_plan(nest)
        t = transform_nest(nest, plan.psi)
        stats = workload_stats(assign_blocks(t, shape_grid(4, t.k)))
        assert stats.imbalance == 1.0
        assert stats.total == 64

    def test_l5_dup_balanced(self):
        nest = catalog.l5(4)
        plan = build_plan(nest, Strategy.DUPLICATE)
        t = transform_nest(nest, plan.psi)
        stats = workload_stats(assign_blocks(t, shape_grid(4, t.k)))
        assert stats.imbalance == 1.0  # M multiple of sqrt(p)

    def test_l1_near_balance_claim(self):
        """Neighboring-blocks-similar-size: cyclic beats contiguous."""
        nest = catalog.l1(8)
        plan = build_plan(nest)
        t = transform_nest(nest, plan.psi)
        grid = shape_grid(3, t.k)
        cyclic = workload_stats(assign_blocks(t, grid))
        # contiguous split of the 15 diagonal blocks for comparison
        pts = sorted(t.iterate_blocks())
        weights = {pt: sum(1 for _ in t.iterations_of_block(pt)) for pt in pts}
        chunk = (len(pts) + 2) // 3
        contiguous = {}
        for g in range(3):
            contiguous[(g,)] = sum(
                weights[pt] for pt in pts[g * chunk:(g + 1) * chunk])
        contiguous_stats = WorkloadStats(loads=contiguous)
        assert cyclic.imbalance <= contiguous_stats.imbalance
        assert cyclic.total == contiguous_stats.total == 64
