"""Processor grid shaping (the paper's p_i rule)."""

import pytest

from repro.mapping import ProcessorGrid, shape_grid
from repro.mapping.grid import _integer_kth_root


class TestKthRoot:
    def test_exact_roots(self):
        assert _integer_kth_root(16, 2) == 4
        assert _integer_kth_root(27, 3) == 3
        assert _integer_kth_root(1, 5) == 1

    def test_floor_behaviour(self):
        assert _integer_kth_root(17, 2) == 4
        assert _integer_kth_root(15, 2) == 3
        assert _integer_kth_root(63, 3) == 3

    def test_large_no_float_error(self):
        # 10**15 is a classic float-rounding trap
        assert _integer_kth_root(10 ** 15, 3) == 10 ** 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            _integer_kth_root(0, 2)


class TestShapeGrid:
    def test_paper_square(self):
        assert shape_grid(16, 2).dims == (4, 4)
        assert shape_grid(4, 2).dims == (2, 2)

    def test_one_dimensional(self):
        assert shape_grid(16, 1).dims == (16,)

    def test_k0_degenerate(self):
        g = shape_grid(8, 0)
        assert g.dims == () and g.size == 1

    def test_non_perfect_square(self):
        # p=10, k=2: floor(sqrt(10)) = 3 -> 3 x floor(10/3) = 3x3
        assert shape_grid(10, 2).dims == (3, 3)

    def test_three_dims(self):
        assert shape_grid(27, 3).dims == (3, 3, 3)
        assert shape_grid(30, 3).dims == (3, 3, 3)

    def test_size_never_exceeds_p(self):
        for p in range(1, 40):
            for k in range(1, 4):
                assert shape_grid(p, k).size <= p


class TestProcessorGrid:
    def test_coords_enumeration(self):
        g = ProcessorGrid((2, 3))
        cs = list(g.coords())
        assert len(cs) == 6
        assert cs[0] == (0, 0) and cs[-1] == (1, 2)

    def test_linear_id_roundtrip(self):
        g = ProcessorGrid((3, 4))
        for c in g.coords():
            assert g.from_linear(g.linear_id(c)) == c

    def test_linear_id_bounds(self):
        g = ProcessorGrid((2, 2))
        with pytest.raises(IndexError):
            g.linear_id((2, 0))
        with pytest.raises(IndexError):
            g.from_linear(4)

    def test_degenerate_grid(self):
        g = ProcessorGrid(())
        assert g.size == 1
        assert list(g.coords()) == [()]
        assert g.linear_id(()) == 0
