"""Cyclic (mod-based) block-to-processor assignment."""

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.mapping import assign_blocks, shape_grid
from repro.mapping.cyclic import CyclicAssignment, owner_of_point
from repro.mapping.grid import ProcessorGrid
from repro.transform import transform_nest


def l4_assignment(p=4):
    nest = catalog.l4()
    plan = build_plan(nest)
    t = transform_nest(nest, plan.psi)
    grid = shape_grid(p, t.k)
    return t, grid, assign_blocks(t, grid)


class TestOwnerOfPoint:
    def test_mod_rule(self):
        g = ProcessorGrid((2, 2))
        assert owner_of_point((2, 0), g) == (0, 0)
        assert owner_of_point((3, 1), g) == (1, 1)
        assert owner_of_point((5, -3), g) == (1, 1)  # negatives wrap

    def test_arity_check(self):
        with pytest.raises(ValueError):
            owner_of_point((1,), ProcessorGrid((2, 2)))


class TestPaperStartFormula:
    def test_start_value_congruent(self):
        g = ProcessorGrid((2, 2))
        a = CyclicAssignment(grid=g)
        # l' + (a - (l' mod p)) mod p  is the first value >= l' that is
        # congruent to a (mod p)
        for lower in (-3, 0, 2, 7):
            for proc in (0, 1):
                s = a.start_value(lower, 0, proc)
                assert s >= lower
                assert s % 2 == proc
                assert s - lower < 2


class TestL4Fig10:
    def test_every_processor_16_iterations(self):
        _, grid, assignment = l4_assignment(4)
        loads = assignment.loads()
        assert loads == {(0, 0): 16, (0, 1): 16, (1, 0): 16, (1, 1): 16}

    def test_owner_consistency(self):
        t, grid, assignment = l4_assignment(4)
        for proc, pts in assignment.points_of.items():
            for pt in pts:
                assert assignment.owner(pt) == proc

    def test_all_points_assigned_once(self):
        t, grid, assignment = l4_assignment(4)
        pts = [pt for lst in assignment.points_of.values() for pt in lst]
        assert sorted(pts) == sorted(t.iterate_blocks())

    def test_owner_id_linearization(self):
        _, grid, assignment = l4_assignment(4)
        pt = next(iter(assignment.weights))
        assert assignment.owner_id(pt) == grid.linear_id(assignment.owner(pt))


class TestMismatchsAndEdges:
    def test_grid_rank_mismatch(self):
        nest = catalog.l4()
        plan = build_plan(nest)
        t = transform_nest(nest, plan.psi)
        with pytest.raises(ValueError, match="grid rank"):
            assign_blocks(t, shape_grid(4, 1))

    def test_single_processor(self):
        t, grid, assignment = (lambda: l4_assignment(1))()
        assert assignment.loads()[(1, 1)] if (1, 1) in assignment.loads() else True
        g = shape_grid(1, 2)
        a = assign_blocks(t, g)
        assert a.loads()[(0, 0)] == 64

    def test_explicit_points(self):
        nest = catalog.l1()
        plan = build_plan(nest)
        t = transform_nest(nest, plan.psi)
        grid = shape_grid(2, t.k)
        a = assign_blocks(t, grid, points=[(0,), (1,)])
        assert set(a.weights) == {(0,), (1,)}

    def test_more_blocks_than_processors(self):
        nest = catalog.l1()
        plan = build_plan(nest)
        t = transform_nest(nest, plan.psi)
        grid = shape_grid(2, t.k)
        a = assign_blocks(t, grid)
        total = sum(a.loads().values())
        assert total == 16
        assert len(a.loads()) == 2
