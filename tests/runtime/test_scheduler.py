"""The dynamic block scheduler: faults, leases, recovery, timelines."""

import os

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.machine.memory import RemoteAccessError
from repro.obs.audit import inject_violation
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import Tracer, use_tracer
from repro.runtime.parallel import run_parallel
from repro.runtime.scheduler import (
    CHAOS_ENV_VAR,
    FaultPlan,
    RetryPolicy,
    SchedulerError,
    current_fault_plan,
    default_batch_size,
    render_timeline,
    use_fault_plan,
)
from repro.runtime.scheduler.faults import CRASH, DROP, SLOW


class TestFaultPlan:
    def test_inactive_by_default(self):
        assert not FaultPlan().active
        assert FaultPlan().decision(0, 0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_prob=1.5)
        with pytest.raises(ValueError):
            FaultPlan(slow_ms=-1)

    def test_draw_is_deterministic_and_uniformish(self):
        fp = FaultPlan(seed=42)
        assert fp.draw(3, 1) == fp.draw(3, 1)
        assert fp.draw(3, 1) != fp.draw(3, 2)
        assert fp.draw(3, 1) != FaultPlan(seed=43).draw(3, 1)
        draws = [fp.draw(u, a) for u in range(50) for a in range(4)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.3 < sum(draws) / len(draws) < 0.7

    def test_decision_classifies_exclusively(self):
        fp = FaultPlan(crash_prob=0.3, drop_prob=0.3, slow_prob=0.4, seed=1)
        seen = {fp.decision(u, a) for u in range(40) for a in range(3)}
        assert seen <= {CRASH, DROP, SLOW}
        assert CRASH in seen and DROP in seen and SLOW in seen
        # certainty at the extremes
        assert FaultPlan(crash_prob=1.0).decision(7, 0) == CRASH
        assert FaultPlan(drop_prob=1.0).decision(7, 0) == DROP

    def test_parse_round_trip(self):
        fp = FaultPlan.parse("crash-prob=0.2,slow_ms=30,seed=7,"
                             "slow-blocks=2:5")
        assert fp.crash_prob == 0.2
        assert fp.slow_ms == 30
        assert fp.slow_blocks == (2, 3, 4)
        assert FaultPlan.parse(fp.describe()) == fp

    def test_parse_edge_cases(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None
        fp = FaultPlan(crash_prob=0.5)
        assert FaultPlan.parse(fp) is fp
        with pytest.raises(ValueError):
            FaultPlan.parse("bogus-key=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash-prob")

    def test_scoping_and_env(self, monkeypatch):
        assert current_fault_plan() is None
        monkeypatch.setenv(CHAOS_ENV_VAR, "crash-prob=0.1")
        assert current_fault_plan().crash_prob == 0.1
        with use_fault_plan("drop-prob=0.5") as fp:
            assert current_fault_plan() is fp
            assert fp.drop_prob == 0.5
            with use_fault_plan(None):
                # an explicit inner None disables chaos, beating the env
                assert current_fault_plan() is None
        assert current_fault_plan().crash_prob == 0.1


class TestPolicyAndBatching:
    def test_backoff_is_capped_exponential(self):
        p = RetryPolicy(backoff_base_s=0.02, backoff_cap_s=0.1)
        assert p.backoff(1) == 0.02
        assert p.backoff(2) == 0.04
        assert p.backoff(10) == 0.1

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED_ATTEMPTS", "7")
        monkeypatch.setenv("REPRO_SCHED_TIMEOUT", "none")
        p = RetryPolicy.from_env()
        assert p.max_attempts == 7
        assert p.lease_timeout_s is None

    def test_default_batch_sizes(self, monkeypatch):
        # static: one contiguous chunk per worker (the old split)
        assert default_batch_size(64, 4, "static") == 16
        # dynamic: ~4 units per worker so the queue can rebalance
        assert default_batch_size(64, 4, "dynamic") == 4
        assert default_batch_size(3, 8, "dynamic") == 1
        monkeypatch.setenv("REPRO_SCHED_BATCH", "5")
        assert default_batch_size(64, 4, "dynamic") == 5


def _plan():
    return build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)


def _run(plan, chaos=None, **env):
    """A multiprocess run with a scoped registry; returns (result, reg)."""
    registry = MetricsRegistry()
    with use_registry(registry), use_fault_plan(chaos):
        result = run_parallel(plan, backend="multiprocess")
    return result, registry


class TestScheduledRun:
    def test_clean_run_has_one_lease_per_unit(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        res, reg = _run(_plan())
        sres = res.scheduler
        assert sres is not None and sres.ok
        assert len(sres.leases) == sres.units
        assert sres.retries == 0 and sres.respawns == 0
        assert all(r.outcome == "ok" for r in sres.leases)
        assert reg.value("scheduler.leases") == sres.units
        assert res.ok and "ok" in res.summary()
        assert res.to_json()["scheduler"]["mode"] == "dynamic"

    def test_static_mode_is_the_old_chunking(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        monkeypatch.setenv("REPRO_SCHED", "static")
        res, _ = _run(_plan())
        sres = res.scheduler
        assert sres.mode == "static"
        assert sres.units == 2          # one chunk per worker
        assert len(sres.leases) == 2

    def test_crash_recovery_is_counted_and_correct(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        plan = _plan()
        golden = run_parallel(plan, backend="interp")
        res, reg = _run(plan, chaos="crash-prob=0.4,seed=11")
        sres = res.scheduler
        assert sres.recovered
        assert sres.crashes > 0 and sres.respawns > 0 and sres.retries > 0
        assert reg.value("scheduler.retries") == sres.retries
        assert reg.value("scheduler.respawns") == sres.respawns
        assert res.write_stamps == golden.write_stamps
        assert res.executed_iterations == golden.executed_iterations

    def test_dropped_results_are_retried(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        res, reg = _run(_plan(), chaos="drop-prob=1,seed=0")
        sres = res.scheduler
        assert sres.recovered
        assert sres.dropped > 0
        # drop-prob=1 with the shielded final attempt: every unit drops
        # on every attempt but the last
        assert sres.dropped == sres.units * 3
        assert reg.value("scheduler.dropped") == sres.dropped

    def test_expired_leases_are_stolen(self, monkeypatch):
        from repro.runtime.scheduler import BlockScheduler

        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        plan = _plan()
        golden = run_parallel(plan, backend="interp")

        # drive the scheduler directly so the policy is controllable
        from repro.machine.memory import LocalMemory
        from repro.runtime.arrays import make_arrays
        from repro.runtime.parallel import ParallelResult

        initial = make_arrays(plan.model)

        memories = {}
        for b in plan.blocks:
            mem = LocalMemory(pid=b.index, strict=True)
            for name, dblocks in plan.data_blocks.items():
                src = initial[name]
                mem.allocate(name, dblocks[b.index].elements,
                             init=lambda c, s=src: s[c])
            memories[b.index] = mem
        result = ParallelResult(plan=plan, memories=memories,
                                block_to_pid={b.index: b.index
                                              for b in plan.blocks})
        sched = BlockScheduler(
            plan, memories, {}, workers=2,
            faults=FaultPlan(slow_prob=1.0, slow_ms=200, seed=5),
            policy=RetryPolicy(max_attempts=4, lease_timeout_s=0.03,
                               backoff_base_s=0.001, backoff_cap_s=0.005),
        )
        registry = MetricsRegistry()
        with use_registry(registry):
            sres = sched.run(result)
        assert sres.recovered
        assert sres.leases_expired > 0
        assert sres.blocks_stolen > 0
        assert registry.value("scheduler.leases_expired") \
            == sres.leases_expired
        assert result.write_stamps == golden.write_stamps

    def test_non_recovery_raises_scheduler_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "1")
        monkeypatch.setenv("REPRO_SCHED_ATTEMPTS", "2")
        with pytest.raises(SchedulerError):
            _run(_plan(), chaos="crash-prob=1,shield-final=0")

    def test_unsafe_retry_raises_remote_access_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "1")
        plan = inject_violation(_plan())
        with pytest.raises(RemoteAccessError):
            _run(plan, chaos="crash-prob=1,seed=2")

    def test_worker_lanes_hang_off_the_scheduler_span(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        tracer = Tracer(enabled=True)
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry), \
                use_fault_plan("crash-prob=0.5,seed=4"):
            run_parallel(_plan(), backend="multiprocess")
        (sched,) = [s for s in tracer.spans if s.name == "scheduler.run"]
        worker_roots = [s for s in tracer.spans
                        if s.pid is not None
                        and s.parent_id == sched.span_id]
        assert worker_roots
        retries = [e for e in tracer.events if e.name == "scheduler.retry"]
        assert retries


class TestTimeline:
    def test_render_timeline(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        res, _ = _run(_plan(), chaos="crash-prob=0.4,seed=11")
        text = render_timeline(res.scheduler)
        assert "scheduler[dynamic]" in text
        assert "outcome" in text and "glyphs" in text
        assert "X" in text      # at least one crash glyph with this seed
        assert "#" in text      # and completed leases

    def test_empty_timeline_is_just_the_summary(self):
        from repro.runtime.scheduler import SchedulerResult

        sres = SchedulerResult(mode="dynamic", units=0, blocks=0,
                               workers=1, batch=1)
        assert render_timeline(sres) == sres.summary()
