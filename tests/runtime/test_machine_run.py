"""The unified machine run: distribution + execution + stats in one call."""

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.machine import Multicomputer, Mesh2D, UNIT_COSTS
from repro.machine.cost import CostModel
from repro.runtime import run_on_machine

CHEAP = CostModel(t_comp=1e-3, t_start=1e-6, t_comm=1e-7)


class TestRunOnMachine:
    def test_l1_exact_and_communication_free(self, l1):
        run = run_on_machine(build_plan(l1), p=4, cost=CHEAP)
        assert run.exact
        assert run.communication_free
        assert run.stats.messages > 0          # the initial distribution
        assert run.makespan > 0

    def test_compute_charged_to_processors(self, l1):
        run = run_on_machine(build_plan(l1), p=4, cost=CHEAP)
        total_iters = sum(p.iterations for p in run.machine.processors)
        assert total_iters == 16

    def test_distribution_grouping_l5pp(self):
        plan = build_plan(catalog.l5(4), Strategy.DUPLICATE)
        run = run_on_machine(plan, p=16, cost=CHEAP)
        kinds = {m.kind for m in run.machine.network.log.messages}
        # shared A-rows / B-columns travel as multicasts, C as sends
        assert "multicast" in kinds and "send" in kinds
        assert run.exact

    def test_broadcast_when_all_share(self):
        plan = build_plan(catalog.l5(4), Strategy.DUPLICATE,
                          duplicate_arrays={"B"})
        run = run_on_machine(plan, p=4, cost=CHEAP)
        kinds = [m.kind for m in run.machine.network.log.messages]
        assert "broadcast" in kinds  # whole B to everybody (the L5' pattern)

    def test_redundancy_reduces_charged_compute(self, l3):
        full = run_on_machine(build_plan(l3, Strategy.DUPLICATE), p=1,
                              cost=UNIT_COSTS)
        mini = run_on_machine(
            build_plan(l3, Strategy.DUPLICATE, eliminate_redundant=True),
            p=1, cost=UNIT_COSTS)
        assert mini.stats.max_compute_time < full.stats.max_compute_time
        assert mini.exact

    def test_custom_machine(self, l1):
        mc = Multicomputer(Mesh2D(2, 2), cost=CHEAP)
        run = run_on_machine(build_plan(l1), p=4, machine=mc, cost=CHEAP)
        assert run.machine is mc

    def test_machine_too_small(self, l1):
        mc = Multicomputer(Mesh2D(1, 2), cost=CHEAP)
        with pytest.raises(ValueError, match="needs"):
            run_on_machine(build_plan(l1), p=4, machine=mc)

    def test_sequential_plan_single_node(self, l5):
        run = run_on_machine(build_plan(l5), p=4, cost=CHEAP)
        # k = 0: the degenerate grid puts everything on one node
        assert run.machine.num_processors == 1
        assert run.exact

    def test_makespan_additivity(self, l1):
        run = run_on_machine(build_plan(l1), p=4, cost=CHEAP)
        st = run.stats
        assert run.makespan == pytest.approx(
            st.distribution_time + st.max_compute_time)

    def test_scalars(self, scalars):
        plan = build_plan(catalog.l3_sub())
        run = run_on_machine(plan, p=2, cost=CHEAP, scalars=scalars)
        assert run.exact

    def test_no_verify_mode(self, l1):
        run = run_on_machine(build_plan(l1), p=4, cost=CHEAP, verify=False)
        assert run.exact  # default True when not checked
        assert run.merged  # still merged
