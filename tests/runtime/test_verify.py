"""End-to-end verification across every strategy on every catalog loop."""

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.runtime import verify_plan

SCALARS = {"D": 2.0, "F": 3.0, "G": 1.5, "K": 0.5}

CASES = [
    ("L1-nondup", catalog.l1, dict()),
    ("L1-dup", catalog.l1, dict(strategy=Strategy.DUPLICATE)),
    ("L2-nondup", catalog.l2, dict()),
    ("L2-dup", catalog.l2, dict(strategy=Strategy.DUPLICATE)),
    ("L3-nondup", catalog.l3, dict()),
    ("L3-min-nondup", catalog.l3, dict(eliminate_redundant=True)),
    ("L3-min-dup", catalog.l3, dict(strategy=Strategy.DUPLICATE,
                                    eliminate_redundant=True)),
    ("L3sub-min-dup", catalog.l3_sub, dict(strategy=Strategy.DUPLICATE,
                                           eliminate_redundant=True)),
    ("L4-nondup", catalog.l4, dict()),
    ("L5-dup", catalog.l5, dict(strategy=Strategy.DUPLICATE)),
    ("L5-dupB", catalog.l5, dict(strategy=Strategy.DUPLICATE,
                                 duplicate_arrays={"B"})),
    ("L5-dupA", catalog.l5, dict(strategy=Strategy.DUPLICATE,
                                 duplicate_arrays={"A"})),
    ("CONV-dup", catalog.convolution, dict(strategy=Strategy.DUPLICATE)),
    ("DFT-dup", catalog.dft, dict(strategy=Strategy.DUPLICATE)),
    ("STENCIL2D-nondup", catalog.stencil2d, dict()),
    ("TRI-nondup", catalog.triangular, dict()),
    ("INDEP-nondup", catalog.independent, dict()),
    ("INDEP-min-dup", catalog.independent, dict(strategy=Strategy.DUPLICATE,
                                                eliminate_redundant=True)),
]


@pytest.mark.parametrize("name,fn,kwargs", CASES, ids=[c[0] for c in CASES])
def test_parallel_equals_sequential_and_communication_free(name, fn, kwargs):
    plan = build_plan(fn(), **kwargs)
    report = verify_plan(plan, scalars=SCALARS)
    assert report.communication_free, f"{name}: {report.remote_accesses} remote"
    assert report.equal, f"{name}: {report.mismatches[:3]}"
    report.raise_on_failure()


class TestReport:
    def test_report_fields(self, l1):
        report = verify_plan(build_plan(l1))
        assert report.num_blocks == 7
        assert report.executed_iterations == 16
        assert report.skipped_computations == 0
        assert report.ok

    def test_raise_on_failure_passes_through(self, l1):
        report = verify_plan(build_plan(l1))
        assert report.raise_on_failure() is report

    def test_failure_raises(self, l1):
        report = verify_plan(build_plan(l1))
        report.mismatches.append(("A", (0, 0), 1.0, 2.0))
        report.equal = False
        with pytest.raises(AssertionError, match="differs"):
            report.raise_on_failure()

    def test_custom_block_mapping(self, l1):
        plan = build_plan(l1)
        mapping = {b.index: 0 for b in plan.blocks}  # everything on PE0
        report = verify_plan(plan, block_to_pid=mapping)
        assert report.ok

    def test_scaled_instances(self):
        for n in (2, 3, 5, 6):
            plan = build_plan(catalog.l1(n))
            assert verify_plan(plan).ok
