"""The codegen tier's cache and dispatch machinery.

Parity (bit-identical arrays, stamps, counters, sabotage errors) is
pinned in ``test_engine_parity.py``; this file covers what is *new*
with the codegen tier:

- the on-disk kernel cache: roundtrip, LRU eviction under the byte
  cap, corruption tolerated as misses, stale interpreter tags, the
  disable knob, and two processes hammering one directory;
- the warm-process promise: a second process running the same plan
  serves its kernel from disk with *zero* emit/compile spans;
- the ``auto`` engine's size/geometry-aware choice (and its counter);
- chaos determinism when the blockstore workers run codegen store
  kernels attached by cache key through the descriptor lease.
"""

import json
import marshal
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.obs.history import matmul_nest
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.runtime import make_arrays, merge_copies, run_parallel
from repro.runtime import numpy_compat as npc
from repro.runtime.blockstore import shm_available
from repro.runtime.engine import auto as auto_mod
from repro.runtime.engine.auto import choose_backend
from repro.runtime.engine.codegen import diskcache
from repro.runtime.engine.codegen.diskcache import (
    DiskKernelCache,
    get_disk_cache,
)
from repro.runtime.engine.multiproc import MultiprocessEngine
from repro.runtime.engine.vectorized import supports_plan

SCALARS = {"D": 2.0, "F": 3.0, "G": 1.5, "K": 0.5}


def _codeobj(src):
    return compile(src, "<test>", "exec")


# ---------------------------------------------------------------------------
# the on-disk cache, poked directly
# ---------------------------------------------------------------------------

class TestDiskCache:
    def test_store_then_load_roundtrips_the_code_object(self, tmp_path):
        reg = MetricsRegistry()
        cache = DiskKernelCache(tmp_path, cap_bytes=1 << 20)
        src = "def f(x):\n    return x + 1\n"
        blob = marshal.dumps(_codeobj(src))
        with use_registry(reg):
            cache.store("k1", src, blob)
            code, got_src = cache.load("k1")
        assert got_src == src
        ns: dict = {}
        exec(code, ns)
        assert ns["f"](2) == 3
        assert reg.value("cache.disk.store") == 1
        assert reg.value("cache.disk.hit") == 1
        assert reg.value("cache.disk.bytes") == len(src.encode()) + len(blob)

    def test_unknown_key_is_a_new_key_miss(self, tmp_path):
        reg = MetricsRegistry()
        cache = DiskKernelCache(tmp_path, cap_bytes=1 << 20)
        with use_registry(reg):
            assert cache.load("nope") == (None, None)
        assert reg.value("cache.disk.miss.new-key") == 1
        assert reg.value("cache.disk.hit") == 0

    def test_lru_eviction_under_the_byte_cap(self, tmp_path):
        # each entry is 60 (src) + 40 (bin) = 100 bytes; cap 220 holds
        # two.  Touching "a" makes "b" the LRU victim when "c" lands.
        reg = MetricsRegistry()
        cache = DiskKernelCache(tmp_path, cap_bytes=220)
        with use_registry(reg):
            cache.store("a", "x" * 60, b"y" * 40)
            cache.store("b", "x" * 60, b"y" * 40)
            cache.load("a")
            cache.store("c", "x" * 60, b"y" * 40)
        assert reg.value("cache.disk.evict") == 1
        assert not (tmp_path / "b.py").exists()
        assert not (tmp_path / "b.bin").exists()
        with use_registry(reg):
            assert cache.load("b") == (None, None)
            assert cache.load("a")[1] == "x" * 60
            assert cache.load("c")[1] == "x" * 60

    def test_corrupt_manifest_degrades_to_an_empty_cache(self, tmp_path):
        reg = MetricsRegistry()
        cache = DiskKernelCache(tmp_path, cap_bytes=1 << 20)
        with use_registry(reg):
            cache.store("k1", "x = 1\n", b"junk")
        (tmp_path / "manifest.json").write_text("{not json")
        with use_registry(reg):
            assert cache.load("k1") == (None, None)
            # the cache keeps working: a fresh store rebuilds the manifest
            cache.store("k2", "x = 2\n", b"junk")
            assert cache.load("k2")[1] == "x = 2\n"
        assert reg.value("cache.disk.miss.new-key") == 1

    def test_missing_payload_is_a_corrupt_miss(self, tmp_path):
        reg = MetricsRegistry()
        cache = DiskKernelCache(tmp_path, cap_bytes=1 << 20)
        with use_registry(reg):
            cache.store("k1", "x = 1\n", b"junk")
            (tmp_path / "k1.py").unlink()
            assert cache.load("k1") == (None, None)
            # the entry was dropped, not left to fail forever
            assert cache.load("k1") == (None, None)
        assert reg.value("cache.disk.miss.corrupt") == 1
        assert reg.value("cache.disk.miss.new-key") == 1

    def test_stale_interpreter_tag_returns_source_only(self, tmp_path):
        reg = MetricsRegistry()
        cache = DiskKernelCache(tmp_path, cap_bytes=1 << 20)
        src = "x = 1\n"
        with use_registry(reg):
            cache.store("k1", src, marshal.dumps(_codeobj(src)))
        mpath = tmp_path / "manifest.json"
        m = json.loads(mpath.read_text())
        m["entries"]["k1"]["tag"] = "other-interpreter"
        mpath.write_text(json.dumps(m))
        with use_registry(reg):
            code, got_src = cache.load("k1")
        assert code is None and got_src == src
        assert reg.value("cache.disk.stale-tag") == 1
        assert reg.value("cache.disk.hit") == 1

    def test_disable_knob_and_dir_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv(diskcache.DISABLE_ENV_VAR, "0")
        assert get_disk_cache() is None
        monkeypatch.delenv(diskcache.DISABLE_ENV_VAR)
        monkeypatch.setenv(diskcache.DIR_ENV_VAR, str(tmp_path / "cg"))
        cache = get_disk_cache()
        assert cache is not None and cache.root == tmp_path / "cg"

    def test_multiproc_skips_store_codegen_without_persistence(
            self, monkeypatch):
        # a spawn-fresh worker would re-emit per process without the
        # disk tier, so the parent must not set a codegen key at all
        monkeypatch.setenv(diskcache.DISABLE_ENV_VAR, "0")
        plan = build_plan(matmul_nest(4), strategy=Strategy.DUPLICATE)
        assert MultiprocessEngine._codegen_key(plan, {}) is None

    def test_multiproc_prepares_a_store_kernel_key(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.delenv(diskcache.DISABLE_ENV_VAR, raising=False)
        monkeypatch.setenv(diskcache.DIR_ENV_VAR, str(tmp_path))
        plan = build_plan(matmul_nest(4), strategy=Strategy.DUPLICATE)
        key = MultiprocessEngine._codegen_key(plan, {})
        assert isinstance(key, str) and key


# ---------------------------------------------------------------------------
# multi-process behavior: warm starts and concurrent writers
# ---------------------------------------------------------------------------

def _child_env(tmp_path, **extra):
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CODEGEN_CACHE_DIR"] = str(tmp_path)
    env.pop(diskcache.DISABLE_ENV_VAR, None)
    env.update(extra)
    return env


_WARM_CHILD = """
import json
from repro.core import Strategy, build_plan
from repro.obs.history import matmul_nest
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import Tracer, use_tracer
from repro.runtime import make_arrays, run_parallel

plan = build_plan(matmul_nest(6), strategy=Strategy.DUPLICATE)
reg = MetricsRegistry()
tracer = Tracer()
with use_registry(reg), use_tracer(tracer):
    run_parallel(plan, initial=make_arrays(plan.model), scalars={},
                 backend="codegen")
spans = [s.name for s in tracer.spans
         if s.name in ("engine.codegen.emit", "engine.codegen.compile")]
print(json.dumps({
    "hit": reg.value("cache.disk.hit"),
    "store": reg.value("cache.disk.store"),
    "emitted": reg.value("engine.codegen.emitted"),
    "hot_spans": len(spans),
    "delegated": reg.value("engine.codegen.delegated"),
}))
"""


def _run_child(code, env, *args):
    proc = subprocess.run([sys.executable, "-c", code, *args],
                          capture_output=True, text=True, timeout=180,
                          env=env, cwd=str(Path(repro.__file__).parents[2]))
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_second_process_serves_kernels_from_disk(tmp_path):
    """The warm-process promise: cold emits + persists, warm unmarshals
    -- a disk hit and zero emit/compile spans in the second process."""
    env = _child_env(tmp_path)
    cold = json.loads(_run_child(_WARM_CHILD, env))
    assert cold["delegated"] == 0
    assert cold["emitted"] >= 1
    assert cold["store"] >= 1
    warm = json.loads(_run_child(_WARM_CHILD, env))
    assert warm["delegated"] == 0
    assert warm["hit"] >= 1
    assert warm["emitted"] == 0
    assert warm["hot_spans"] == 0


_HAMMER_CHILD = """
import sys
from pathlib import Path
from repro.runtime.engine.codegen.diskcache import DiskKernelCache

cache = DiskKernelCache(Path(sys.argv[1]), cap_bytes=2048)
for i in range(60):
    key = "k%d" % (i % 10)
    cache.store(key, "x = %d\\n" % i, b"\\x00" * 120)
    code, src = cache.load(key)
    assert src is not None, key
print("ok")
"""


def test_two_processes_hammer_one_cache_dir(tmp_path):
    """Concurrent store/load/evict churn from two processes must never
    tear the manifest or strand payload files (flock serialization)."""
    env = _child_env(tmp_path)
    procs = [subprocess.Popen(
        [sys.executable, "-c", _HAMMER_CHILD, str(tmp_path)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
        for _ in range(2)]
    for p in procs:
        out, err = p.communicate(timeout=180)
        assert p.returncode == 0, err
        assert out.strip() == "ok"
    m = json.loads((tmp_path / "manifest.json").read_text())
    assert m["version"] == 1
    for key in m["entries"]:
        assert (tmp_path / f"{key}.py").exists(), key


# ---------------------------------------------------------------------------
# the auto engine's choice
# ---------------------------------------------------------------------------

class TestAutoChoice:
    def test_small_plan_runs_on_codegen_and_counts_the_choice(self):
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        initial = make_arrays(plan.model)
        reg = MetricsRegistry()
        with use_registry(reg):
            res = run_parallel(plan, initial=initial, scalars=SCALARS,
                               backend="auto")
        assert res.backend == "codegen"
        assert reg.value("engine.auto.choice.codegen") == 1

    @pytest.mark.skipif(not npc.have_numpy(), reason="numpy not available")
    def test_vectorizable_midsize_prefers_vectorized(self, monkeypatch):
        monkeypatch.setenv(auto_mod.SMALL_ENV_VAR, "0")
        plan = build_plan(catalog.l3())
        assert supports_plan(plan)
        assert choose_backend(plan)[0] == "vectorized"

    def test_numpy_free_midsize_stays_on_codegen(self, monkeypatch):
        monkeypatch.setattr(npc, "np", None)
        monkeypatch.setenv(auto_mod.SMALL_ENV_VAR, "0")
        monkeypatch.setenv(auto_mod.FANOUT_ENV_VAR, str(10 ** 9))
        plan = build_plan(catalog.l3())
        name, reason = choose_backend(plan)
        assert name == "codegen"
        assert "mid-sized" in reason

    def test_fanout_sized_plan_fans_out(self, monkeypatch):
        if (os.cpu_count() or 1) < 2 \
                or not MultiprocessEngine.is_available():
            pytest.skip("needs >= 2 cores and the multiprocess tier")
        monkeypatch.setattr(npc, "np", None)
        monkeypatch.setenv(auto_mod.SMALL_ENV_VAR, "0")
        monkeypatch.setenv(auto_mod.FANOUT_ENV_VAR, "1")
        plan = build_plan(catalog.l3())
        assert len(plan.blocks) > 1
        assert choose_backend(plan)[0] == "multiprocess"


# ---------------------------------------------------------------------------
# chaos determinism with codegen store kernels in the workers
# ---------------------------------------------------------------------------

@pytest.mark.skipif(not shm_available(),
                    reason="shared-memory store unavailable")
def test_chaos_bit_identical_with_codegen_store_kernels(tmp_path,
                                                        monkeypatch):
    """Crashing workers mid-run must not dent bit-identity when the
    leases carry a codegen key: respawned workers re-attach the kernel
    from the shared on-disk cache and republish identical bytes."""
    monkeypatch.setenv("REPRO_MP_WORKERS", "2")
    monkeypatch.delenv(diskcache.DISABLE_ENV_VAR, raising=False)
    monkeypatch.setenv(diskcache.DIR_ENV_VAR, str(tmp_path))
    plan = build_plan(catalog.dft(), strategy=Strategy.DUPLICATE)
    initial = make_arrays(plan.model)
    golden = run_parallel(plan, initial=initial, scalars=SCALARS,
                          backend="interp")
    gm = merge_copies(golden, initial)
    reg = MetricsRegistry()
    initial2 = make_arrays(plan.model)
    with use_registry(reg):
        got = run_parallel(plan, initial=initial2, scalars=SCALARS,
                           backend="multiprocess",
                           chaos="crash-prob=0.3,seed=8")
    m = merge_copies(got, initial2)
    assert set(m) == set(gm)
    for name in gm:
        assert m[name] == gm[name], name
    assert got.write_stamps == golden.write_stamps
    assert got.executed_iterations == golden.executed_iterations
    assert got.skipped_computations == golden.skipped_computations
    assert got.remote_accesses == 0
    # the workers actually ran the specialized kernel, not the fallback
    assert reg.value("engine.codegen.store_kernels") > 0
