"""Engine resolution: fallback chains, availability errors, precedence."""

import pytest

from repro.runtime.engine import (
    BackendUnavailable,
    available_backends,
    get_engine,
    resolve_engine,
)
from repro.runtime.engine.base import BACKEND_ENV_VAR, DEFAULT_BACKEND
from repro.runtime.engine.compiled import CompiledEngine
from repro.runtime.engine.interp import InterpreterEngine
from repro.runtime.engine.multiproc import MultiprocessEngine
from repro.runtime.engine.vectorized import VectorizedEngine


class TestFallbackChains:
    def test_declared_chain_terminates_at_interp(self):
        seen = set()
        engine = get_engine("multiprocess")
        while engine.fallback is not None:
            assert engine.name not in seen, "fallback cycle"
            seen.add(engine.name)
            engine = get_engine(engine.fallback)
        assert engine.name == "interp"

    def test_unavailable_tier_degrades_to_fallback(self, monkeypatch):
        monkeypatch.setattr(VectorizedEngine, "is_available",
                            classmethod(lambda cls: False))
        assert resolve_engine("vectorized").name == "compiled"

    def test_two_unavailable_tiers_degrade_twice(self, monkeypatch):
        monkeypatch.setattr(MultiprocessEngine, "is_available",
                            classmethod(lambda cls: False))
        monkeypatch.setattr(CompiledEngine, "is_available",
                            classmethod(lambda cls: False))
        assert resolve_engine("multiprocess").name == "interp"

    def test_available_tier_resolves_to_itself(self):
        assert resolve_engine("compiled").name == "compiled"

    def test_resolution_is_traced(self, monkeypatch):
        from repro.obs import Tracer, use_tracer

        monkeypatch.setattr(VectorizedEngine, "is_available",
                            classmethod(lambda cls: False))
        tracer = Tracer()
        with use_tracer(tracer):
            resolve_engine("vectorized")
        (s,) = tracer.find("engine.resolve")
        assert s.attributes["requested"] == "vectorized"
        assert s.attributes["resolved"] == "compiled"
        assert s.attributes["fallback_hops"] == 1


class TestBackendUnavailable:
    def test_unknown_backend_raises(self):
        with pytest.raises(BackendUnavailable, match="unknown backend"):
            resolve_engine("quantum")

    def test_dead_end_chain_raises(self, monkeypatch):
        monkeypatch.setattr(InterpreterEngine, "is_available",
                            classmethod(lambda cls: False))
        with pytest.raises(BackendUnavailable, match="no.*fallback"):
            resolve_engine("interp")

    def test_error_propagates_through_run_sequential(self, monkeypatch):
        from repro.lang import catalog
        from repro.runtime.seq import run_sequential

        monkeypatch.setattr(InterpreterEngine, "is_available",
                            classmethod(lambda cls: False))
        with pytest.raises(BackendUnavailable):
            run_sequential(catalog.l1(), {})

    def test_error_propagates_through_run_parallel(self, monkeypatch):
        from repro.core import build_plan
        from repro.lang import catalog
        from repro.runtime.parallel import run_parallel

        monkeypatch.setattr(InterpreterEngine, "is_available",
                            classmethod(lambda cls: False))
        with pytest.raises(BackendUnavailable):
            run_parallel(build_plan(catalog.l1()), backend="interp")

    def test_unavailable_backends_not_listed(self, monkeypatch):
        monkeypatch.setattr(MultiprocessEngine, "is_available",
                            classmethod(lambda cls: False))
        assert "multiprocess" not in available_backends()
        assert "interp" in available_backends()


class TestPrecedence:
    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "compiled")
        assert resolve_engine("interp").name == "interp"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "compiled")
        assert resolve_engine().name == "compiled"
        assert resolve_engine(None).name == "compiled"

    def test_default_when_nothing_chooses(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_engine().name == DEFAULT_BACKEND

    def test_run_parallel_backend_kwarg_beats_env(self, monkeypatch):
        from repro.core import build_plan
        from repro.lang import catalog
        from repro.runtime.parallel import run_parallel

        monkeypatch.setenv(BACKEND_ENV_VAR, "interp")
        result = run_parallel(build_plan(catalog.l1()), backend="compiled")
        assert result.backend == "compiled"

    def test_run_parallel_env_applies_without_kwarg(self, monkeypatch):
        from repro.core import build_plan
        from repro.lang import catalog
        from repro.runtime.parallel import run_parallel

        monkeypatch.setenv(BACKEND_ENV_VAR, "compiled")
        result = run_parallel(build_plan(catalog.l1()))
        assert result.backend == "compiled"

    def test_aliases_resolve_to_canonical(self):
        assert resolve_engine("mp").name in ("multiprocess", "compiled",
                                             "interp")
        assert get_engine("pool").name == "multiprocess"


class TestConcurrentRegistryLoad:
    def test_fresh_process_concurrent_first_resolutions(self):
        """A burst of first-ever get_engine() calls across threads (a
        fresh serving daemon's first request burst) must never observe
        a half-populated registry: _load_backends flips its flag only
        after every tier module is imported, under a lock."""
        import subprocess
        import sys

        script = (
            "import concurrent.futures\n"
            "from repro.runtime.engine.base import get_engine\n"
            "names = ['interp', 'compiled', 'codegen', 'vectorized',\n"
            "         'multiprocess', 'auto'] * 4\n"
            "with concurrent.futures.ThreadPoolExecutor(8) as pool:\n"
            "    engines = list(pool.map(get_engine, names))\n"
            "print(len(engines))\n"
        )
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "24"
