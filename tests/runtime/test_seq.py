"""The sequential interpreter (golden model)."""

import pytest

from repro.analysis import extract_references
from repro.lang import catalog, parse
from repro.runtime import make_arrays, run_sequential
from repro.runtime.seq import eval_expr, subscript_coords
from repro.lang.ast import BinOp, Const, Name, UnaryOp


class TestEvalExpr:
    def test_arithmetic(self):
        env, sc = {"i": 3}, {"D": 2.0}
        read = lambda a, c: 10.0
        e = BinOp("+", BinOp("*", Name("i"), Const(4)), Name("D"))
        assert eval_expr(e, env, sc, read) == 14.0

    def test_division_true(self):
        e = BinOp("/", Const(7), Const(2))
        assert eval_expr(e, {}, {}, lambda a, c: 0) == 3.5

    def test_unary(self):
        e = UnaryOp("-", Const(3))
        assert eval_expr(e, {}, {}, lambda a, c: 0) == -3.0

    def test_array_read_coords(self):
        seen = {}

        def read(a, c):
            seen[a] = c
            return 1.0

        nest = parse("for i = 1 to 2 { X[1] = A[2*i - 1]; }")
        eval_expr(nest.statements[0].rhs, {"i": 2}, {}, read)
        assert seen["A"] == (3,)

    def test_unbound_name_raises(self):
        with pytest.raises(KeyError, match="unbound name"):
            eval_expr(Name("zzz"), {}, {}, lambda a, c: 0)

    def test_subscript_coords(self):
        nest = parse("for i = 1 to 2 { A[i + 1, 2*i] = 0; }")
        assert subscript_coords(nest.statements[0].lhs, {"i": 3}) == (4, 6)


class TestRunSequential:
    def test_simple_accumulation(self):
        nest = parse("for i = 1 to 4 { S[1] = S[1] + 1; }")
        model = extract_references(nest)
        arrays = make_arrays(model, init=lambda n: (lambda c: 0.0))
        run_sequential(nest, arrays)
        assert arrays["S"][(1,)] == 4.0

    def test_matmul_against_numpy(self):
        import numpy as np

        m = 4
        nest = catalog.l5(m)
        model = extract_references(nest)
        arrays = make_arrays(model)
        a0 = np.array([[arrays["A"][(i, k)] for k in range(1, m + 1)]
                       for i in range(1, m + 1)])
        b0 = np.array([[arrays["B"][(k, j)] for j in range(1, m + 1)]
                       for k in range(1, m + 1)])
        c0 = np.array([[arrays["C"][(i, j)] for j in range(1, m + 1)]
                       for i in range(1, m + 1)])
        run_sequential(nest, arrays)
        got = np.array([[arrays["C"][(i, j)] for j in range(1, m + 1)]
                        for i in range(1, m + 1)])
        assert np.allclose(got, c0 + a0 @ b0)

    def test_lexicographic_dependency_order(self):
        # prefix-sum style recurrence: order matters
        nest = parse("for i = 1 to 5 { P[i] = P[i - 1] + 1; }")
        model = extract_references(nest)
        arrays = make_arrays(model, init=lambda n: (lambda c: 0.0))
        run_sequential(nest, arrays)
        assert [arrays["P"][(i,)] for i in range(6)] == [0, 1, 2, 3, 4, 5]

    def test_statement_order_within_iteration(self):
        nest = parse("""
            for i = 1 to 3 {
              A[i] = 10;
              B[i] = A[i] * 2;
            }
        """)
        model = extract_references(nest)
        arrays = make_arrays(model, init=lambda n: (lambda c: -1.0))
        run_sequential(nest, arrays)
        assert all(arrays["B"][(i,)] == 20.0 for i in range(1, 4))

    def test_scalars(self, scalars):
        nest = catalog.l3_sub()
        model = extract_references(nest)
        arrays = make_arrays(model)
        run_sequential(nest, arrays, scalars=scalars)
        # S4': B[i, j-1] = G*5 - K = 7.0 wherever not overwritten later
        assert arrays["B"][(1, 0)] == 1.5 * 5 - 0.5

    def test_missing_scalar_raises(self):
        nest = catalog.l3_sub()
        model = extract_references(nest)
        arrays = make_arrays(model)
        with pytest.raises(KeyError):
            run_sequential(nest, arrays, scalars={})

    def test_triangular_space(self):
        nest = catalog.triangular(4)
        model = extract_references(nest)
        arrays = make_arrays(model, init=lambda n: (lambda c: 1.0))
        run_sequential(nest, arrays)
        # T[i,j] = T[i-1,j] + V[i,j]; column j accumulates i-j+1 ones + base
        assert arrays["T"][(4, 1)] == 1.0 + 4  # base 1 + four additions
