"""The shared-memory block store: layout, round-trip parity, lifecycle.

The leak assertions snapshot ``/dev/shm`` before and after so the tests
stay correct if an outer session (another plan still alive) holds its
own segments.
"""

import pickle

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.machine.memory import LocalMemory
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.runtime import make_arrays, merge_copies, run_parallel
from repro.runtime.blockstore import (
    SharedBlockStore,
    layout_for,
    release_plan_segment,
    shm_available,
)
from repro.runtime.blockstore.layout import build_layout

SCALARS = {"D": 2.0, "F": 3.0, "G": 1.5, "K": 0.5}

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared memory store unavailable")


def _segments():
    from pathlib import Path

    shm = Path("/dev/shm")
    if not shm.is_dir():  # pragma: no cover - non-POSIX
        return set()
    return {p.name for p in shm.iterdir() if p.name.startswith("repro-")}


def _alloc(plan, initial):
    memories = {}
    for b in plan.blocks:
        mem = LocalMemory(pid=b.index, strict=True)
        for name, dblocks in plan.data_blocks.items():
            src = initial[name]
            mem.allocate(name, dblocks[b.index].elements,
                         init=lambda c, s=src: s[c])
        memories[b.index] = mem
    return memories


class TestLayout:
    def test_layout_is_deterministic(self):
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        a, b = build_layout(plan), build_layout(plan)
        assert a.regions == b.regions
        assert a.order == b.order
        assert a.total_words == b.total_words

    def test_canonical_element_order_is_sorted(self):
        # frozenset iteration order varies across processes (hash
        # randomization); the layout must not depend on it
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        layout = build_layout(plan)
        for key, order in layout.order.items():
            assert list(order) == sorted(order), key

    def test_regions_tile_the_buffer_exactly(self):
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        layout = build_layout(plan)
        spans = sorted(layout.regions.values())
        end = 0
        for off, cnt in spans:
            assert off == end
            end += cnt
        assert end == layout.total_words

    def test_layout_for_caches_per_plan(self):
        plan = build_plan(catalog.l1())
        assert layout_for(plan) is layout_for(plan)


@needs_shm
class TestSharedBlockStore:
    def test_descriptor_is_tiny(self):
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        initial = make_arrays(plan.model)
        store = SharedBlockStore(plan, _alloc(plan, initial))
        try:
            desc = store.descriptor()
            # the whole point: a lease payload of segment names, not a
            # multi-KB plan + memories pickle
            assert len(pickle.dumps(desc)) < 512
        finally:
            store.close()
            release_plan_segment(plan)

    def test_close_unlinks_run_segments(self):
        before = _segments()
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        initial = make_arrays(plan.model)
        store = SharedBlockStore(plan, _alloc(plan, initial))
        # plan + seed + values + stamps + control
        assert len(_segments() - before) == 5
        store.close()
        store.close()  # idempotent
        leftover = _segments() - before
        # only the plan segment survives (cached for the next run)
        assert len(leftover) == 1 and next(iter(leftover)).startswith(
            "repro-plan-")
        release_plan_segment(plan)
        release_plan_segment(plan)  # idempotent
        assert _segments() - before == set()

    def test_multiprocess_run_leaves_no_segments(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        before = _segments()
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        initial = make_arrays(plan.model)
        reg = MetricsRegistry()
        with use_registry(reg):
            res = run_parallel(plan, initial=initial, scalars=SCALARS,
                               backend="multiprocess")
        assert res.ok
        assert reg.value("engine.shm.stores") == 1
        leftover = _segments() - before
        assert all(n.startswith("repro-plan-") for n in leftover)
        release_plan_segment(plan)
        assert _segments() - before == set()

    def test_store_run_matches_by_value_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        initial = make_arrays(plan.model)

        res_shm = run_parallel(plan, initial=initial, scalars=SCALARS,
                               backend="multiprocess")
        merged_shm = merge_copies(res_shm, initial)
        assert res_shm.merge_data is not None

        monkeypatch.setenv("REPRO_NO_SHM", "1")
        reg = MetricsRegistry()
        with use_registry(reg):
            res_val = run_parallel(plan, initial=initial, scalars=SCALARS,
                                   backend="multiprocess")
        merged_val = merge_copies(res_val, initial)
        assert res_val.merge_data is None
        assert reg.value("engine.shm.stores") == 0

        assert res_shm.write_stamps == res_val.write_stamps
        assert res_shm.executed_iterations == res_val.executed_iterations
        for name in merged_val:
            assert merged_shm[name] == merged_val[name], name
        release_plan_segment(plan)

    def test_chaos_run_leaves_no_segments(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        before = _segments()
        plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
        initial = make_arrays(plan.model)
        res = run_parallel(plan, initial=initial, scalars=SCALARS,
                           backend="multiprocess",
                           chaos="crash-prob=0.3,seed=1")
        assert res.ok and res.scheduler.ok
        release_plan_segment(plan)
        assert _segments() - before == set()


class TestSingleBlockFastPath:
    def test_single_block_runs_in_process(self):
        plan = build_plan(catalog.l3(), eliminate_redundant=True)
        assert len(plan.blocks) == 1
        initial = make_arrays(plan.model)
        reg = MetricsRegistry()
        with use_registry(reg):
            res = run_parallel(plan, initial=initial,
                               backend="multiprocess")
        assert res.ok
        assert res.backend == "multiprocess"
        # counted as the expected fast path, not a degradation
        assert reg.value("engine.multiproc.single_block") == 1
        assert reg.value("engine.multiproc.degraded") == 0
        # no pool, no store
        assert reg.value("engine.pool.spawns") == 0
        assert reg.value("engine.shm.stores") == 0
