"""Chaos determinism: faulty runs must be bit-identical to clean ones.

The whole point of the recovery design is that Theorems 1-4 make a
block re-run idempotent: every block touches a disjoint slice of every
array, so replaying a lost lease cannot disturb any other block's
data.  These tests inject crashes, drops and delays and then demand
*bit-identical* merged arrays, write stamps and iteration counters
against the interpreter golden run -- on multiple seeds and fault
rates, so recovery paths (respawn, re-lease, steal) are all exercised.

Timeline shape (lease ordering, collateral kills) is deliberately NOT
asserted: it depends on OS scheduling.  Only the *data* is pinned.
"""

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.machine.memory import RemoteAccessError
from repro.obs.audit import inject_violation
from repro.obs.history import matmul_nest
from repro.runtime import make_arrays, merge_copies, run_parallel
from repro.runtime.scheduler import FaultPlan

SCALARS = {"D": 2.0, "F": 3.0, "G": 1.5, "K": 0.5}


def _golden(plan, backend="interp"):
    initial = make_arrays(plan.model)
    res = run_parallel(plan, initial=initial, scalars=SCALARS,
                       backend=backend)
    return res, merge_copies(res, initial)


def _chaotic(plan, chaos):
    initial = make_arrays(plan.model)
    res = run_parallel(plan, initial=initial, scalars=SCALARS,
                       backend="multiprocess", chaos=chaos)
    return res, merge_copies(res, initial)


def _assert_identical(golden, golden_merged, got, got_merged):
    assert set(got_merged) == set(golden_merged)
    for name in golden_merged:
        assert got_merged[name] == golden_merged[name], name
    assert got.write_stamps == golden.write_stamps
    assert got.executed_iterations == golden.executed_iterations
    assert got.skipped_computations == golden.skipped_computations
    assert got.remote_accesses == 0


CHAOS_GRID = [
    pytest.param("crash-prob=0.3,seed=1", id="crash-s1"),
    pytest.param("crash-prob=0.3,seed=2", id="crash-s2"),
    pytest.param("crash-prob=0.15,drop-prob=0.15,seed=3", id="mixed-s3"),
    pytest.param("drop-prob=0.5,seed=4", id="drop-s4"),
    pytest.param("slow-prob=0.5,slow-ms=20,seed=5", id="slow-s5"),
]


@pytest.mark.parametrize("chaos", CHAOS_GRID)
def test_l2_duplicate_is_bit_identical_under_chaos(chaos, monkeypatch):
    monkeypatch.setenv("REPRO_MP_WORKERS", "2")
    plan = build_plan(catalog.l2(), strategy=Strategy.DUPLICATE)
    golden, gm = _golden(plan)
    got, m = _chaotic(plan, chaos)
    _assert_identical(golden, gm, got, m)
    assert got.scheduler is not None and got.scheduler.ok


@pytest.mark.parametrize("chaos", ["crash-prob=0.3,seed=1",
                                   "drop-prob=0.4,seed=9"])
def test_matmul_is_bit_identical_under_chaos(chaos, monkeypatch):
    monkeypatch.setenv("REPRO_MP_WORKERS", "2")
    plan = build_plan(matmul_nest(6), strategy=Strategy.DUPLICATE)
    golden, gm = _golden(plan)
    got, m = _chaotic(plan, chaos)
    _assert_identical(golden, gm, got, m)
    assert got.scheduler.retries > 0 or got.scheduler.crashes > 0


def test_chaos_matches_compiled_golden_too(monkeypatch):
    # interp and compiled agree; chaos must agree with both
    monkeypatch.setenv("REPRO_MP_WORKERS", "2")
    plan = build_plan(catalog.l5(), strategy=Strategy.DUPLICATE)
    _, interp_m = _golden(plan, backend="interp")
    _, compiled_m = _golden(plan, backend="compiled")
    _, chaos_m = _chaotic(plan, "crash-prob=0.25,seed=6")
    for name in interp_m:
        assert interp_m[name] == compiled_m[name] == chaos_m[name]


def test_faultplan_object_is_accepted_directly(monkeypatch):
    monkeypatch.setenv("REPRO_MP_WORKERS", "2")
    plan = build_plan(catalog.l1(), strategy=Strategy.DUPLICATE)
    golden, gm = _golden(plan)
    got, m = _chaotic(plan, FaultPlan(crash_prob=0.3, seed=8))
    _assert_identical(golden, gm, got, m)


def test_violating_plan_still_aborts_under_chaos(monkeypatch):
    # negative control: chaos recovery must NOT mask the communication
    # audit -- a sabotaged plan aborts exactly as it does without chaos
    monkeypatch.setenv("REPRO_MP_WORKERS", "2")
    plan = inject_violation(
        build_plan(catalog.l2(), strategy=Strategy.DUPLICATE))
    with pytest.raises(RemoteAccessError):
        run_parallel(plan, scalars=SCALARS, backend="multiprocess",
                     chaos="crash-prob=0.3,seed=1")
