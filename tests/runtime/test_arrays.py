"""DataSpace storage and footprint computation."""

import pytest

from repro.analysis import extract_references
from repro.lang import catalog, parse
from repro.runtime import DataSpace, array_footprints, default_init, make_arrays


class TestDataSpace:
    def test_offset_indexing(self):
        ds = DataSpace("A", (0, 2), (4, 5))
        ds[(0, 2)] = 1.5
        ds[(4, 5)] = 2.5
        assert ds[(0, 2)] == 1.5
        assert ds[(4, 5)] == 2.5

    def test_negative_origins(self):
        ds = DataSpace("A", (-3,), (3,))
        ds[(-3,)] = 9.0
        assert ds[(-3,)] == 9.0

    def test_out_of_bounds(self):
        ds = DataSpace("A", (1,), (4,))
        with pytest.raises(IndexError):
            _ = ds[(0,)]
        with pytest.raises(IndexError):
            ds[(5,)] = 1.0
        with pytest.raises(IndexError):
            _ = ds[(1, 1)]

    def test_contains(self):
        ds = DataSpace("A", (0, 0), (2, 2))
        assert (1, 1) in ds and (3, 0) not in ds

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            DataSpace("A", (2,), (1,))

    def test_fill_copy_equality(self):
        ds = DataSpace("A", (0,), (3,)).fill_with(lambda c: c[0] * 2.0)
        cp = ds.copy()
        assert ds == cp
        cp[(0,)] = 99.0
        assert ds != cp
        assert ds.allclose(ds)

    def test_coords_iter_covers_all(self):
        ds = DataSpace("A", (1, 1), (2, 3))
        assert len(list(ds.coords_iter())) == 6


class TestFootprints:
    def test_l1_matches_paper_ranges(self, l1):
        fp = array_footprints(extract_references(l1))
        # paper Fig. 1: A[0:8,0:4], B[1:4,2:5], C[0:4,0:4]
        assert fp["A"] == ((0, 0), (8, 4))
        assert fp["B"] == ((1, 2), (4, 5))
        assert fp["C"] == ((0, 0), (4, 4))

    def test_l2_ranges(self, l2):
        fp = array_footprints(extract_references(l2))
        # paper Fig. 4: A[1:8,1:8], B[1:8,0:4]
        assert fp["A"] == ((1, 1), (8, 8))
        assert fp["B"] == ((1, 0), (8, 4))

    def test_footprint_covers_every_access(self):
        nest = parse("for i = 1 to 5 { A[3 - i] = B[2*i + 1]; }")
        model = extract_references(nest)
        fp = array_footprints(model)
        for name in ("A", "B"):
            lo, hi = fp[name]
            info = model.arrays[name]
            for it in model.space.iterate():
                for ref in info.references:
                    (x,) = info.element_at(it, ref.offset)
                    assert lo[0] <= x <= hi[0]


class TestMakeArrays:
    def test_all_arrays_allocated(self, l1):
        arrays = make_arrays(extract_references(l1))
        assert set(arrays) == {"A", "B", "C"}
        assert (0, 0) in arrays["A"]

    def test_default_init_deterministic_and_distinct(self):
        f = default_init("A")
        g = default_init("A")
        assert f((1, 2)) == g((1, 2))
        assert f((1, 2)) != f((2, 1))
        assert default_init("B")((1, 2)) != f((1, 2))

    def test_custom_init(self, l1):
        arrays = make_arrays(extract_references(l1),
                             init=lambda name: (lambda c: 42.0))
        assert arrays["C"][(1, 1)] == 42.0


class TestLinearIndex:
    """Vectorized flat offsets with origin subtraction -- what the
    merge fast path scatters through."""

    def _np(self):
        from repro.runtime import numpy_compat as npc

        if npc.np is None:
            pytest.skip("numpy backing unavailable")
        return npc.np

    def test_matches_scalar_indexing_with_offset_origins(self):
        np = self._np()
        ds = DataSpace("A", (2, -3), (5, 1))
        coords = [(2, -3), (5, 1), (3, 0), (2, 1), (5, -3)]
        lin = ds.linear_index(np.array(coords, dtype=np.int64))
        for c, flat in zip(coords, lin.tolist()):
            ds[c] = 42.0
            assert float(ds.data.reshape(-1)[flat]) == 42.0
            ds[c] = 0.0

    def test_block_boundary_corners(self):
        np = self._np()
        # the first/last elements of a region must land on the first/
        # last flat slots -- an off-by-one here corrupts every block
        # boundary in the merge scatter
        ds = DataSpace("A", (-2,), (2,))
        lin = ds.linear_index(np.array([[-2], [2]], dtype=np.int64))
        assert lin.tolist() == [0, ds.data.shape[0] - 1]

    def test_out_of_bounds_raises(self):
        np = self._np()
        ds = DataSpace("A", (1, 1), (4, 4))
        with pytest.raises(IndexError):
            ds.linear_index(np.array([[0, 1]], dtype=np.int64))
        with pytest.raises(IndexError):
            ds.linear_index(np.array([[1, 5]], dtype=np.int64))

    def test_rank_mismatch_raises(self):
        np = self._np()
        ds = DataSpace("A", (0, 0), (3, 3))
        with pytest.raises(IndexError):
            ds.linear_index(np.array([[1]], dtype=np.int64))

    def test_requires_numpy(self, monkeypatch):
        from repro.runtime import numpy_compat as npc

        ds = DataSpace("A", (0,), (3,))
        monkeypatch.setattr(npc, "np", None)
        with pytest.raises(RuntimeError):
            ds.linear_index([(0,)])
