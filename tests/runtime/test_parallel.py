"""The parallel executor."""

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.machine.memory import RemoteAccessError
from repro.runtime import make_arrays, run_parallel


class TestExecution:
    def test_one_processor_per_block(self, l1):
        plan = build_plan(l1)
        res = run_parallel(plan)
        assert set(res.memories) == set(range(7))
        assert res.executed_iterations == 16
        assert res.remote_accesses == 0

    def test_loads_per_block(self, l1):
        plan = build_plan(l1)
        res = run_parallel(plan)
        assert sorted(res.loads().values(), reverse=True) == [4, 3, 3, 2, 2, 1, 1]

    def test_custom_block_mapping(self, l1):
        plan = build_plan(l1)
        mapping = {b.index: b.index % 2 for b in plan.blocks}
        res = run_parallel(plan, block_to_pid=mapping)
        assert set(res.block_to_pid.values()) == {0, 1}
        assert set(res.loads()) == {0, 1}
        assert sum(res.loads().values()) == 16
        # regions stay per-block even when sharing a processor
        assert set(res.memories) == set(range(7))
        assert res.memory_words_by_pid().keys() == {0, 1}

    def test_write_stamps_recorded(self, l1):
        plan = build_plan(l1)
        res = run_parallel(plan)
        # every executed write leaves a stamp
        assert len(res.write_stamps) > 0
        blocks = {blk for (blk, _, _) in res.write_stamps}
        assert blocks <= set(range(7))

    def test_skips_redundant(self, l3):
        plan = build_plan(l3, Strategy.DUPLICATE, eliminate_redundant=True)
        res = run_parallel(plan)
        assert res.skipped_computations == 12
        # only the executed S1 instances write A[:,4]
        stamped = {(a, c) for (_, a, c) in res.write_stamps}
        assert ("A", (1, 4)) in stamped

    def test_duplicate_copies_are_private(self, l5):
        plan = build_plan(l5, Strategy.DUPLICATE)
        initial = make_arrays(plan.model)
        res = run_parallel(plan, initial=initial)
        # B[1,1] is replicated into the 4 blocks that need k=1, j=1
        holders = [blk for blk, mem in res.memories.items()
                   if mem.holds("B", (1, 1))]
        assert len(holders) == 4

    def test_remote_access_raises_on_bad_plan(self, l1):
        """Sabotage the mapping: two blocks with a shared flow dependence
        cannot run on different memories without communication."""
        plan = build_plan(l1)
        # shrink block 0's data: steal an element it wrote
        from repro.core.partition import DataBlock

        db0 = plan.data_blocks["A"][0]
        victim = next(iter(db0.elements))
        plan.data_blocks["A"][0] = DataBlock(
            array="A", block_index=0,
            elements=frozenset(e for e in db0.elements if e != victim))
        with pytest.raises(RemoteAccessError):
            run_parallel(plan)

    def test_scalars_used(self, scalars):
        plan = build_plan(catalog.l3_sub())
        res = run_parallel(plan, scalars=scalars)
        assert res.remote_accesses == 0

    def test_executed_plus_skipped_consistent(self, l3):
        plan = build_plan(l3, Strategy.DUPLICATE, eliminate_redundant=True)
        res = run_parallel(plan)
        nstmts = 2
        size = plan.model.space.size()
        executed_comps = sum(
            1 for b in plan.blocks for it in b.iterations
            for k in range(nstmts) if plan.executes(k, it))
        assert executed_comps + res.skipped_computations == size * nstmts
