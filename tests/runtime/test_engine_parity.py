"""Backend parity: every engine must be bit-identical to the interpreter.

The interpreter is the golden model; the compiled, vectorized and
multiprocess tiers are only admissible because they produce the *same
bits*: merged arrays, write stamps, counters, and even the first
:class:`~repro.machine.memory.RemoteAccessError` a sabotaged plan
raises.  These tests pin all of that, across every catalog nest and
strategy mix (including redundancy elimination and duplicate-data
plans), with and without numpy.
"""

import dataclasses

import pytest

from repro.analysis import extract_references
from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.machine.memory import RemoteAccessError
from repro.runtime import (
    make_arrays,
    merge_copies,
    run_parallel,
    run_sequential,
)
from repro.runtime import numpy_compat as npc
from repro.runtime.engine import (
    available_backends,
    backend_names,
    get_engine,
    resolve_engine,
)
from repro.runtime.engine.compiled import compile_block_kernel
from repro.runtime.engine.vectorized import supports_plan

SCALARS = {"D": 2.0, "F": 3.0, "G": 1.5, "K": 0.5}

BACKENDS = ["compiled", "vectorized", "multiprocess", "codegen"]

CASES = [
    ("L1-nondup", catalog.l1, dict()),
    ("L1-dup", catalog.l1, dict(strategy=Strategy.DUPLICATE)),
    ("L2-nondup", catalog.l2, dict()),
    ("L2-dup", catalog.l2, dict(strategy=Strategy.DUPLICATE)),
    ("L3-nondup", catalog.l3, dict()),
    ("L3-min-nondup", catalog.l3, dict(eliminate_redundant=True)),
    ("L3-min-dup", catalog.l3, dict(strategy=Strategy.DUPLICATE,
                                    eliminate_redundant=True)),
    ("L3sub-min-dup", catalog.l3_sub, dict(strategy=Strategy.DUPLICATE,
                                           eliminate_redundant=True)),
    ("L4-nondup", catalog.l4, dict()),
    ("L5-dup", catalog.l5, dict(strategy=Strategy.DUPLICATE)),
    ("L5-dupA", catalog.l5, dict(strategy=Strategy.DUPLICATE,
                                 duplicate_arrays={"A"})),
    ("CONV-dup", catalog.convolution, dict(strategy=Strategy.DUPLICATE)),
    ("DFT-dup", catalog.dft, dict(strategy=Strategy.DUPLICATE)),
    ("STENCIL2D-nondup", catalog.stencil2d, dict()),
    ("TRI-nondup", catalog.triangular, dict()),
    ("INDEP-min-dup", catalog.independent, dict(strategy=Strategy.DUPLICATE,
                                                eliminate_redundant=True)),
]


def _run(plan, backend):
    initial = make_arrays(plan.model)
    result = run_parallel(plan, initial=initial, scalars=SCALARS,
                          backend=backend)
    return result, merge_copies(result, initial)


def _counters(result):
    return {
        "executed": result.executed_iterations,
        "skipped": result.skipped_computations,
        "remote": result.remote_accesses,
        "mems": {
            blk: (m.reads, m.writes, m.words())
            for blk, m in sorted(result.memories.items())
        },
    }


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name,fn,kwargs", CASES, ids=[c[0] for c in CASES])
def test_backend_matches_interpreter(name, fn, kwargs, backend):
    plan = build_plan(fn(), **kwargs)
    golden, golden_merged = _run(plan, "interp")
    got, got_merged = _run(plan, backend)
    assert got.backend == resolve_engine(backend).name
    # bit-identical merged arrays, identical write stamps, same counters
    assert got_merged == golden_merged
    assert got.write_stamps == golden.write_stamps
    assert _counters(got) == _counters(golden)


@pytest.mark.parametrize("backend", ["interp", "auto"] + BACKENDS)
def test_run_sequential_parity(backend):
    nest = catalog.l3_sub()
    model = extract_references(nest)
    golden = run_sequential(nest, make_arrays(model), scalars=SCALARS)
    got = run_sequential(nest, make_arrays(model), scalars=SCALARS,
                         backend=backend)
    assert set(got) == set(golden)
    for name in golden:
        assert got[name] == golden[name]


def _sabotage(plan):
    """Drop one held element of the first written array's block 0."""
    written = {s.lhs.array for s in plan.nest.statements}
    name = sorted(written)[0]
    dblocks = list(plan.data_blocks[name])
    db0 = dblocks[0]
    victim = sorted(db0.elements)[0]
    dblocks[0] = dataclasses.replace(
        db0, elements=frozenset(e for e in db0.elements if e != victim))
    data_blocks = dict(plan.data_blocks)
    data_blocks[name] = dblocks
    return dataclasses.replace(plan, data_blocks=data_blocks)


def test_sabotaged_plan_raises_identical_remote_access():
    bad = _sabotage(build_plan(catalog.l1()))
    raised = {}
    for backend in ["interp"] + BACKENDS:
        with pytest.raises(RemoteAccessError) as exc:
            run_parallel(bad, backend=backend)
        e = exc.value
        raised[backend] = (e.pid, e.array, e.coords, str(e))
    want = raised["interp"]
    for backend in BACKENDS:
        assert raised[backend] == want, backend


def test_non_strict_runs_use_interpreter():
    bad = _sabotage(build_plan(catalog.l1()))
    for backend in BACKENDS:
        result = run_parallel(bad, strict=False, backend=backend)
        assert result.backend == "interp"
        assert result.remote_accesses > 0


class TestWithoutNumpy:
    """The whole engine stack degrades gracefully on a numpy-free box."""

    @pytest.fixture(autouse=True)
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(npc, "np", None)

    def test_vectorized_unavailable_and_resolution_degrades(self):
        assert "vectorized" not in available_backends()
        assert resolve_engine("vectorized").name == "compiled"
        # auto is a real engine now; its *choice* skips vectorized
        from repro.runtime.engine.auto import choose_backend

        assert resolve_engine("auto").name == "auto"
        plan = build_plan(catalog.l3())
        assert choose_backend(plan)[0] == "codegen"

    def test_parity_still_holds(self):
        plan = build_plan(catalog.l3(), strategy=Strategy.DUPLICATE,
                          eliminate_redundant=True)
        golden, golden_merged = _run(plan, "interp")
        got, got_merged = _run(plan, "vectorized")  # degrades to compiled
        assert got.backend == "compiled"
        assert got_merged == golden_merged
        assert got.write_stamps == golden.write_stamps
        assert _counters(got) == _counters(golden)


class TestCompiledKernels:
    def test_kernel_cache_reuses_compiled_closures(self):
        nest = catalog.l1()
        k1 = compile_block_kernel(nest, {}, False, None)
        k2 = compile_block_kernel(nest, {}, False, None)
        assert k1 is k2

    def test_unbound_scalar_matches_interpreter_error(self):
        nest = catalog.l3_sub()  # needs D/F/G/K bound
        model = extract_references(nest)
        with pytest.raises(KeyError) as interp_exc:
            run_sequential(nest, make_arrays(model), backend="interp")
        with pytest.raises(KeyError) as compiled_exc:
            run_sequential(nest, make_arrays(model), backend="compiled")
        assert str(compiled_exc.value) == str(interp_exc.value)


def test_registry_names_and_order():
    # order depends on which backend module was imported first, so only
    # the membership is pinned
    assert set(backend_names()) == \
        {"interp", "compiled", "vectorized", "multiprocess", "codegen",
         "auto"}
    assert get_engine("jit").name == "compiled"
    assert get_engine("numpy").name == "vectorized"
    assert get_engine("mp").name == "multiprocess"
    assert get_engine("cg").name == "codegen"
    for name in available_backends():
        assert get_engine(name).is_available()


def test_vectorized_supports_duplicate_readonly_but_not_written_replicas():
    dup = build_plan(catalog.l5(), strategy=Strategy.DUPLICATE,
                     duplicate_arrays={"A"})
    assert supports_plan(dup)
