"""WorkerPool lifecycle and the Session-scoped persistent pool."""

import pytest

from repro.api import Session
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.runtime.pool import WorkerPool, current_pool, use_pool


class TestWorkerPool:
    def test_acquire_reuses_live_executor(self):
        pool = WorkerPool()
        reg = MetricsRegistry()
        try:
            with use_registry(reg):
                ex1 = pool.acquire(2)
                ex2 = pool.acquire(2)
                ex3 = pool.acquire(1)  # smaller fits the live executor
            assert ex1 is ex2 is ex3
            assert pool.generation == 1
            assert reg.value("engine.pool.spawns") == 1
            assert reg.value("engine.pool.reuses") == 2
        finally:
            pool.shutdown()

    def test_acquire_grows_by_respawning(self):
        pool = WorkerPool()
        try:
            ex1 = pool.acquire(1)
            ex2 = pool.acquire(2)
            assert ex1 is not ex2
            assert pool.generation == 2
            assert pool.workers == 2
        finally:
            pool.shutdown()

    def test_shutdown_leaves_pool_usable(self):
        pool = WorkerPool()
        try:
            pool.acquire(1)
            pool.shutdown()
            assert pool.workers == 0
            ex = pool.acquire(1)
            assert ex is not None
            assert pool.generation == 2
        finally:
            pool.shutdown()

    def test_use_pool_scopes_innermost_wins(self):
        assert current_pool() is None
        outer, inner = WorkerPool("outer"), WorkerPool("inner")
        with use_pool(outer):
            assert current_pool() is outer
            with use_pool(inner):
                assert current_pool() is inner
            assert current_pool() is outer
        assert current_pool() is None


class TestSessionPool:
    def test_pool_persists_across_runs(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        s = Session("L2", strategy="duplicate", backend="multiprocess")
        try:
            r1 = s.run()
            r2 = s.run()
            assert r1.ok and r2.ok
            # one spawn, then reuse: the second run found warm workers
            assert s.pool.generation == 1
            assert s.registry.value("engine.pool.spawns") == 1
            assert s.registry.value("engine.pool.reuses") >= 1
        finally:
            s.close()

    def test_close_is_idempotent_and_runs_still_work(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        s = Session("L2", strategy="duplicate", backend="multiprocess")
        assert s.run().ok
        s.close()
        s.close()
        assert s.pool.workers == 0
        # a closed session still runs (ephemeral pool per run)
        assert s.run().ok
        assert s.pool.workers == 0

    def test_context_manager_closes(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        with Session("L2", strategy="duplicate",
                     backend="multiprocess") as s:
            assert s.run().ok
        assert s.pool.workers == 0
