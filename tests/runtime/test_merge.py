"""Last-writer merge of replicated copies."""

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog, parse
from repro.runtime import make_arrays, merge_copies, run_parallel, run_sequential


def merged_result(nest, **plan_kwargs):
    plan = build_plan(nest, **plan_kwargs)
    initial = make_arrays(plan.model)
    res = run_parallel(plan, initial=initial)
    return plan, initial, merge_copies(res, initial)


class TestMerge:
    def test_unwritten_elements_keep_initial(self, l1):
        plan, initial, merged = merged_result(l1)
        # A[0,0] is only ever read
        assert merged["A"][(0, 0)] == initial["A"][(0, 0)]

    def test_written_elements_updated(self, l1):
        plan, initial, merged = merged_result(l1)
        expected = {n: a.copy() for n, a in initial.items()}
        run_sequential(l1, expected)
        for name in merged:
            assert merged[name] == expected[name]

    def test_output_dependence_order_respected(self):
        """Two blocks write the same element; the later (sequential)
        writer must win in the merge."""
        # L2 duplicate: A[i+j,i+j] written by every iteration on the
        # same anti-diagonal, each its own block.
        nest = catalog.l2()
        plan, initial, merged = merged_result(nest, strategy=Strategy.DUPLICATE)
        expected = {n: a.copy() for n, a in initial.items()}
        run_sequential(nest, expected)
        assert merged["A"] == expected["A"]
        assert merged["B"] == expected["B"]

    def test_merge_with_redundancy_elimination(self, l3):
        plan, initial, merged = merged_result(
            l3, strategy=Strategy.DUPLICATE, eliminate_redundant=True)
        expected = {n: a.copy() for n, a in initial.items()}
        run_sequential(l3, expected)
        assert merged["A"] == expected["A"]

    def test_merge_does_not_mutate_inputs(self, l1):
        plan = build_plan(l1)
        initial = make_arrays(plan.model)
        snapshot = {n: a.copy() for n, a in initial.items()}
        res = run_parallel(plan, initial=initial)
        merge_copies(res, initial)
        for name in initial:
            assert initial[name] == snapshot[name]


class TestTieBreaking:
    """Write stamps are globally unique in real runs, but both merge
    paths pin first-writer-wins on (synthetic) equal stamps so they can
    never diverge."""

    def _numpy(self):
        from repro.runtime import numpy_compat as npc

        if npc.np is None:
            pytest.skip("numpy backing unavailable")
        return npc.np

    def _fixture(self):
        from types import SimpleNamespace

        from repro.runtime import DataSpace
        from repro.runtime.parallel import ParallelResult

        initial = {"A": DataSpace("A", (0,), (3,), fill=0.0)}
        memories = {
            0: SimpleNamespace(values={"A": {(1,): 5.0}}),
            1: SimpleNamespace(values={"A": {(1,): 9.0}}),
        }
        result = ParallelResult(plan=None, memories=memories,
                                block_to_pid={0: 0, 1: 1})
        return initial, result

    def test_dict_path_keeps_first_seen_on_equal_stamps(self):
        initial, result = self._fixture()
        result.write_stamps = {(0, "A", (1,)): 7, (1, "A", (1,)): 7}
        merged = merge_copies(result, initial)
        assert merged["A"][(1,)] == 5.0

    def test_dict_path_higher_stamp_still_wins(self):
        initial, result = self._fixture()
        result.write_stamps = {(0, "A", (1,)): 7, (1, "A", (1,)): 8}
        merged = merge_copies(result, initial)
        assert merged["A"][(1,)] == 9.0

    def test_view_path_matches_dict_path_on_ties(self):
        np = self._numpy()
        initial, result = self._fixture()
        # same element twice with equal stamps: the first entry wins,
        # exactly like the dict path's first-seen-wins
        result.merge_data = {"A": (
            np.array([[1], [1]], dtype=np.int64),
            np.array([7, 7], dtype=np.int64),
            np.array([5.0, 9.0]))}
        merged = merge_copies(result, initial)
        assert merged["A"][(1,)] == 5.0

    def test_view_path_higher_stamp_wins_regardless_of_entry_order(self):
        np = self._numpy()
        initial, result = self._fixture()
        result.merge_data = {"A": (
            np.array([[1], [1]], dtype=np.int64),
            np.array([8, 7], dtype=np.int64),
            np.array([9.0, 5.0]))}
        merged = merge_copies(result, initial)
        assert merged["A"][(1,)] == 9.0

    def test_view_path_matches_dict_path_on_real_run(self, monkeypatch):
        from repro.runtime.blockstore import shm_available

        self._numpy()
        if not shm_available():
            pytest.skip("shared memory store unavailable")
        monkeypatch.setenv("REPRO_MP_WORKERS", "2")
        nest = catalog.l2()
        plan = build_plan(nest, strategy=Strategy.DUPLICATE)
        initial = make_arrays(plan.model)
        res = run_parallel(plan, initial=initial, backend="multiprocess")
        assert res.merge_data is not None
        via_views = merge_copies(res, initial)
        res.merge_data = None  # force the dict path on identical data
        via_dicts = merge_copies(res, initial)
        for name in via_dicts:
            assert via_views[name] == via_dicts[name], name
