"""Last-writer merge of replicated copies."""

from repro.core import Strategy, build_plan
from repro.lang import catalog, parse
from repro.runtime import make_arrays, merge_copies, run_parallel, run_sequential


def merged_result(nest, **plan_kwargs):
    plan = build_plan(nest, **plan_kwargs)
    initial = make_arrays(plan.model)
    res = run_parallel(plan, initial=initial)
    return plan, initial, merge_copies(res, initial)


class TestMerge:
    def test_unwritten_elements_keep_initial(self, l1):
        plan, initial, merged = merged_result(l1)
        # A[0,0] is only ever read
        assert merged["A"][(0, 0)] == initial["A"][(0, 0)]

    def test_written_elements_updated(self, l1):
        plan, initial, merged = merged_result(l1)
        expected = {n: a.copy() for n, a in initial.items()}
        run_sequential(l1, expected)
        for name in merged:
            assert merged[name] == expected[name]

    def test_output_dependence_order_respected(self):
        """Two blocks write the same element; the later (sequential)
        writer must win in the merge."""
        # L2 duplicate: A[i+j,i+j] written by every iteration on the
        # same anti-diagonal, each its own block.
        nest = catalog.l2()
        plan, initial, merged = merged_result(nest, strategy=Strategy.DUPLICATE)
        expected = {n: a.copy() for n, a in initial.items()}
        run_sequential(nest, expected)
        assert merged["A"] == expected["A"]
        assert merged["B"] == expected["B"]

    def test_merge_with_redundancy_elimination(self, l3):
        plan, initial, merged = merged_result(
            l3, strategy=Strategy.DUPLICATE, eliminate_redundant=True)
        expected = {n: a.copy() for n, a in initial.items()}
        run_sequential(l3, expected)
        assert merged["A"] == expected["A"]

    def test_merge_does_not_mutate_inputs(self, l1):
        plan = build_plan(l1)
        initial = make_arrays(plan.model)
        snapshot = {n: a.copy() for n, a in initial.items()}
        res = run_parallel(plan, initial=initial)
        merge_copies(res, initial)
        for name in initial:
            assert initial[name] == snapshot[name]
