"""Table I/II regeneration and paper-data integrity."""

import pytest

from repro.perf import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    paper_speedup,
    paper_time,
    table1_rows,
    table2_rows,
)
from repro.perf.tables import format_rows


class TestPaperData:
    def test_grid_complete(self):
        ms = (16, 32, 64, 128, 256)
        for m in ms:
            assert ("L5", 1, m) in PAPER_TABLE1
            for p in (4, 16):
                for loop in ("L5'", "L5''"):
                    assert (loop, p, m) in PAPER_TABLE1
                    assert (loop, p, m) in PAPER_TABLE2

    def test_speedups_consistent_with_times(self):
        # Table II is derived from Table I: check their internal consistency
        for (loop, p, m), sp in PAPER_TABLE2.items():
            derived = PAPER_TABLE1[("L5", 1, m)] / PAPER_TABLE1[(loop, p, m)]
            assert derived == pytest.approx(sp, rel=0.02)

    def test_accessors(self):
        assert paper_time("L5", 1, 256) == 161.2546
        assert paper_speedup("L5''", 16, 256) == 15.14


class TestRegeneration:
    def test_table1_rows_structure(self):
        rows = table1_rows(ms=(16, 64), ps=(4,))
        assert len(rows) == 2 + 4  # 2 sequential + 2 loops x 2 sizes
        for r in rows:
            assert r["simulated_s"] > 0
            if r["paper_s"] is not None:
                assert 0.3 < r["simulated_s"] / r["paper_s"] < 3.0

    def test_table2_rows_structure(self):
        rows = table2_rows(ms=(16, 64), ps=(4,))
        assert len(rows) == 4
        for r in rows:
            assert 0 < r["simulated_speedup"] < r["p"]

    def test_large_m_within_15_percent(self):
        """The compute-dominated cells should calibrate tightly."""
        rows = [r for r in table1_rows(ms=(256,), ps=(4, 16))
                if r["paper_s"] is not None]
        for r in rows:
            assert abs(r["simulated_s"] / r["paper_s"] - 1) < 0.15, r

    def test_format_rows(self):
        rows = table1_rows(ms=(16,), ps=(4,))
        text = format_rows(rows, ["loop", "p", "M", "simulated_s"])
        assert "L5''" in text and "simulated_s" in text
        assert format_rows([]) == "(empty)"
