"""Simulated matmul study (message-level)."""

import pytest

from repro.machine.cost import CostModel, TRANSPUTER
from repro.perf import (
    run_study,
    simulate_l5,
    simulate_l5_doubleprime,
    simulate_l5_prime,
)

UNIT = CostModel(t_comp=1.0, t_start=1.0, t_comm=1.0)


class TestSimulateL5:
    def test_compute_only_by_default(self):
        sim = simulate_l5(8, UNIT)
        assert sim.compute_time == 512
        assert sim.distribution_time == 0.0
        assert sim.messages == 0

    def test_with_distribution(self):
        sim = simulate_l5(8, UNIT, include_distribution=True)
        assert sim.messages == 2
        assert sim.words_sent == 2 * 64
        assert sim.distribution_time > 0


class TestSimulateL5Prime:
    def test_message_pattern(self):
        sim = simulate_l5_prime(16, 16, UNIT)
        # 16 scatter sends of A + 1 broadcast of B
        assert sim.messages == 17
        assert sim.words_sent == 16 * 16 + 16 * 16

    def test_compute_split(self):
        sim = simulate_l5_prime(16, 4, UNIT)
        assert sim.compute_time == 16 ** 3 / 4

    def test_m_multiple_of_p_required(self):
        with pytest.raises(ValueError):
            simulate_l5_prime(10, 4, UNIT)


class TestSimulateL5DoublePrime:
    def test_message_pattern(self):
        sim = simulate_l5_doubleprime(16, 16, UNIT)
        # sqrt(p)=4 row multicasts + 4 column multicasts
        assert sim.messages == 8
        assert sim.words_sent == 8 * (16 * 16 // 4)

    def test_perfect_square_required(self):
        with pytest.raises(ValueError):
            simulate_l5_doubleprime(16, 8, UNIT)

    def test_m_multiple_of_sqrt_p(self):
        with pytest.raises(ValueError):
            simulate_l5_doubleprime(10, 16, UNIT)


class TestStudyShape:
    """Paper Table I/II qualitative structure from the simulator."""

    def setup_method(self):
        self.sims = run_study(ms=(16, 64, 256), ps=(4, 16), cost=TRANSPUTER)

    def test_l5pp_faster_than_l5p(self):
        for p in (4, 16):
            for m in (16, 64, 256):
                assert (self.sims[("L5''", p, m)].total_time
                        < self.sims[("L5'", p, m)].total_time), (p, m)

    def test_parallel_faster_than_sequential(self):
        for p in (4, 16):
            for m in (64, 256):
                seq = self.sims[("L5", 1, m)].total_time
                assert self.sims[("L5'", p, m)].total_time < seq
                assert self.sims[("L5''", p, m)].total_time < seq

    def test_speedup_monotone_in_m(self):
        for loop in ("L5'", "L5''"):
            sp = [self.sims[("L5", 1, m)].total_time
                  / self.sims[(loop, 16, m)].total_time
                  for m in (16, 64, 256)]
            assert sp[0] < sp[1] < sp[2]

    def test_speedup_bounded_by_p(self):
        for (loop, p, m), sim in self.sims.items():
            if p == 1:
                continue
            seq = self.sims[("L5", 1, m)].total_time
            assert seq / sim.total_time < p

    def test_within_2x_of_paper(self):
        """Absolute calibration: every simulated cell within 2x of Table I."""
        from repro.perf.tables import PAPER_TABLE1

        for key, sim in self.sims.items():
            paper = PAPER_TABLE1.get(key)
            if paper is None:
                continue
            ratio = sim.total_time / paper
            assert 0.5 < ratio < 2.0, (key, ratio)
