"""Automatic strategy selection."""

import pytest

from repro.lang import catalog, parse
from repro.machine.cost import CostModel
from repro.perf import choose_strategy

# communication made cheap so parallelism wins on small test instances
CHEAP_COMM = CostModel(t_comp=1e-3, t_start=1e-6, t_comm=1e-7)


class TestCandidateEnumeration:
    def test_l5_candidates(self):
        res = choose_strategy(catalog.l5(4), p=4, cost=CHEAP_COMM)
        labels = {c.label for c in res.candidates}
        assert labels == {"nonduplicate", "duplicate{A}", "duplicate{B}",
                          "duplicate{A,B}"}

    def test_elimination_doubles_candidates(self):
        res = choose_strategy(catalog.l3(), p=4, cost=CHEAP_COMM,
                              consider_elimination=True)
        assert {c.eliminate_redundant for c in res.candidates} == {False, True}

    def test_max_candidates_cap(self):
        res = choose_strategy(catalog.l5(4), p=4, cost=CHEAP_COMM,
                              max_candidates=2)
        assert len(res.candidates) == 2


class TestSelections:
    def test_l5_picks_full_duplication(self):
        res = choose_strategy(catalog.l5(8), p=4, cost=CHEAP_COMM)
        assert res.best.label == "duplicate{A,B}"
        assert res.best.blocks == 64

    def test_l1_picks_nonduplicate_on_tie(self):
        res = choose_strategy(catalog.l1(), p=4, cost=CHEAP_COMM)
        assert res.best.label == "nonduplicate"
        assert res.best.blocks == 7

    def test_l3_elimination_wins_when_comm_cheap(self):
        res = choose_strategy(catalog.l3(8), p=4, cost=CHEAP_COMM,
                              consider_elimination=True)
        assert res.best.eliminate_redundant
        assert res.best.blocks == 8

    def test_expensive_comm_prefers_sequential(self):
        """With brutal startup costs the selector keeps tiny loops serial."""
        pricey = CostModel(t_comp=1e-6, t_start=10.0, t_comm=1.0)
        res = choose_strategy(catalog.l5(4), p=4, cost=pricey)
        assert res.best.label == "nonduplicate"

    def test_ranking_sorted(self):
        res = choose_strategy(catalog.l5(4), p=4, cost=CHEAP_COMM)
        spans = [c.makespan for c in res.candidates]
        assert spans == sorted(spans)

    def test_table_rendering(self):
        res = choose_strategy(catalog.l5(4), p=4, cost=CHEAP_COMM)
        text = res.table()
        assert "strategy" in text and "nonduplicate" in text


class TestCorrectnessOfChosenPlans:
    def test_best_plan_verifies(self):
        from repro.runtime import verify_plan

        for fn in (catalog.l1, catalog.l2, lambda: catalog.l5(4)):
            res = choose_strategy(fn(), p=4, cost=CHEAP_COMM)
            verify_plan(res.best.plan).raise_on_failure()
