"""Remaining matmul-harness surfaces."""

import pytest

from repro.machine.cost import CostModel
from repro.perf import run_study, simulate_l5, simulate_l5_prime
from repro.perf.matmul import MatmulSim, _mesh_machine

UNIT = CostModel(t_comp=1.0, t_start=1.0, t_comm=1.0)


class TestMatmulSim:
    def test_speedup_over(self):
        sim = MatmulSim("L5'", 8, 4, distribution_time=2.0, compute_time=8.0,
                        messages=5, words_sent=100)
        assert sim.total_time == 10.0
        assert sim.speedup_over(40.0) == pytest.approx(4.0)

    def test_mesh_machine_square(self):
        assert _mesh_machine(16, UNIT).num_processors == 16

    def test_mesh_machine_non_square_falls_back_to_row(self):
        mc = _mesh_machine(6, UNIT)
        assert mc.num_processors == 6

    def test_run_study_keys_complete(self):
        sims = run_study(ms=(16,), ps=(4,), cost=UNIT)
        assert set(sims) == {("L5", 1, 16), ("L5'", 4, 16), ("L5''", 4, 16)}

    def test_prime_distribution_only_once(self):
        sim = simulate_l5_prime(16, 4, UNIT)
        # messages: 4 scatter sends + 1 broadcast
        assert sim.messages == 5

    def test_sequential_includes_distribution_when_asked(self):
        without = simulate_l5(16, UNIT)
        with_d = simulate_l5(16, UNIT, include_distribution=True)
        assert with_d.total_time > without.total_time
        assert with_d.compute_time == without.compute_time
