"""Analytic cost formulas T1, T2, T3."""

import pytest

from repro.machine.cost import CostModel, TRANSPUTER
from repro.perf import t1_sequential, t2_duplicate_b, t3_duplicate_ab

UNIT = CostModel(t_comp=1.0, t_start=1.0, t_comm=1.0)


class TestFormulas:
    def test_t1_structure(self):
        # M^3 + 2(1 + M^2)
        assert t1_sequential(4, UNIT) == 64 + 2 * (1 + 16)
        assert t1_sequential(4, UNIT, include_distribution=False) == 64

    def test_t2_structure(self):
        # M^3/p + (p + M^2) + (1 + 2 sqrt(p) M^2)
        m, p = 8, 4
        expected = 512 / 4 + (4 + 64) + (1 + 2 * 2 * 64)
        assert t2_duplicate_b(m, p, UNIT) == pytest.approx(expected)

    def test_t3_structure(self):
        # M^3/p + 2(sqrt(p) + 2 M^2)
        m, p = 8, 4
        expected = 512 / 4 + 2 * (2 + 2 * 64)
        assert t3_duplicate_ab(m, p, UNIT) == pytest.approx(expected)

    def test_non_square_p_rejected(self):
        with pytest.raises(ValueError):
            t3_duplicate_ab(8, 6, UNIT)
        with pytest.raises(ValueError):
            t2_duplicate_b(8, 5, UNIT)


class TestPaperShape:
    """The qualitative claims of Section IV, under Transputer constants."""

    @pytest.mark.parametrize("m", [16, 32, 64, 128, 256])
    @pytest.mark.parametrize("p", [4, 16])
    def test_t3_beats_t2(self, m, p):
        assert t3_duplicate_ab(m, p, TRANSPUTER) < t2_duplicate_b(m, p, TRANSPUTER)

    @pytest.mark.parametrize("m", [32, 64, 128, 256])
    @pytest.mark.parametrize("p", [4, 16])
    def test_parallel_beats_sequential(self, m, p):
        seq = t1_sequential(m, TRANSPUTER, include_distribution=False)
        assert t2_duplicate_b(m, p, TRANSPUTER) < seq
        assert t3_duplicate_ab(m, p, TRANSPUTER) < seq

    def test_speedup_grows_with_m(self):
        # communication amortizes: speedup monotone in M (paper Table II)
        seq = [t1_sequential(m, TRANSPUTER, include_distribution=False)
               for m in (16, 64, 256)]
        sp = [s / t3_duplicate_ab(m, 16, TRANSPUTER)
              for s, m in zip(seq, (16, 64, 256))]
        assert sp[0] < sp[1] < sp[2]
        assert sp[2] < 16  # bounded by p

    def test_t2_broadcast_term_dominates_scatter(self):
        # the paper's point: distributing whole B costs ~2 sqrt(p) M^2
        m, p = 256, 16
        t2 = t2_duplicate_b(m, p, TRANSPUTER)
        t3 = t3_duplicate_ab(m, p, TRANSPUTER)
        comm2 = t2 - (m ** 3 / p) * TRANSPUTER.t_comp
        comm3 = t3 - (m ** 3 / p) * TRANSPUTER.t_comp
        assert comm2 > 1.5 * comm3
