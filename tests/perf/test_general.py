"""General plan cost estimation."""

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.machine.cost import CostModel, TRANSPUTER
from repro.perf import estimate_plan, mesh_for, simulate_l5_doubleprime

UNIT = CostModel(t_comp=1.0, t_start=1.0, t_comm=1.0)


class TestMeshFor:
    def test_square(self):
        assert (mesh_for(16).rows, mesh_for(16).cols) == (4, 4)

    def test_rectangular(self):
        m = mesh_for(12)
        assert m.rows * m.cols == 12
        assert m.rows == 3  # squarest factorization

    def test_prime(self):
        m = mesh_for(7)
        assert (m.rows, m.cols) == (1, 7)


class TestEstimatePlan:
    def test_sequential_plan_single_processor(self, l5):
        plan = build_plan(l5)
        est = estimate_plan(plan, 4)  # k=0: degenerate grid, 1 processor
        assert est.p == 1
        assert est.loads == {0: 64}  # 64 iterations x 1 statement
        assert est.compute_time == pytest.approx(64 * TRANSPUTER.t_comp)

    def test_l5pp_matches_special_sim_structure(self):
        m, p = 8, 4
        plan = build_plan(catalog.l5(m), Strategy.DUPLICATE)
        est = estimate_plan(plan, p)
        sim = simulate_l5_doubleprime(m, p)
        # identical compute makespans; communication same order of magnitude
        assert est.compute_time == pytest.approx(sim.compute_time)
        assert 0.3 < est.distribution_time / sim.distribution_time < 3.0

    def test_balanced_loads(self):
        plan = build_plan(catalog.l4())
        est = estimate_plan(plan, 4)
        assert est.imbalance == 1.0
        assert sum(est.loads.values()) == 64  # one statement per iteration

    def test_memory_counts_replication(self):
        m = 4
        nd = estimate_plan(build_plan(catalog.l5(m)), 4)
        dup = estimate_plan(build_plan(catalog.l5(m), Strategy.DUPLICATE), 4)
        assert dup.memory_words > nd.memory_words

    def test_redundant_computations_not_charged(self, l3):
        full = estimate_plan(build_plan(l3, Strategy.DUPLICATE), 4, cost=UNIT)
        mini = estimate_plan(
            build_plan(l3, Strategy.DUPLICATE, eliminate_redundant=True),
            4, cost=UNIT)
        assert sum(mini.loads.values()) < sum(full.loads.values())

    def test_broadcast_detected(self):
        """L5' B goes to every processor: one broadcast, not p sends."""
        plan = build_plan(catalog.l5(4), Strategy.DUPLICATE,
                          duplicate_arrays={"B"})
        est = estimate_plan(plan, 4)
        # B: 16 elements to all 4 pids -> 1 broadcast; A,C scattered
        assert est.messages <= 1 + 4 + 4

    def test_makespan_additive(self, l1):
        est = estimate_plan(build_plan(l1), 4, cost=UNIT)
        assert est.makespan == pytest.approx(
            est.distribution_time + est.compute_time)
