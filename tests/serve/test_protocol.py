"""Wire protocol: framing, versioning, typed errors, single-flight keys."""

import json

import pytest

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    SCHEMA_VERSION,
    Overloaded,
    ProtocolError,
    Request,
    Response,
    UnsupportedSchema,
    decode_frame,
    encode_frame,
    ensure_json_native,
    request_key,
)


class TestFraming:
    def test_request_round_trips(self):
        req = Request(op="verify", nest="L2", strategy="duplicate",
                      scalars={"D": 2.0}, id="r1")
        back = Request.from_dict(decode_frame(encode_frame(req)))
        assert back == req

    def test_response_round_trips(self):
        resp = Response(ok=True, op="run", id="r2",
                        result={"ok": True, "blocks": 16},
                        coalesced=True, warm=True, elapsed_ms=1.5)
        back = Response.from_dict(decode_frame(encode_frame(resp)))
        assert back == resp

    def test_frames_are_single_lines(self):
        raw = encode_frame(Request(op="status"))
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1

    def test_error_response_round_trips_envelope(self):
        resp = Response.failure("run", Overloaded("server overloaded: full"))
        back = Response.from_dict(decode_frame(encode_frame(resp)))
        assert not back.ok
        assert back.error["kind"] == "overloaded"
        assert back.reason() == "server overloaded: full"

    def test_undecodable_frame_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_frame(b"[1, 2, 3]\n")

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))


class TestValidation:
    def test_schema_version_mismatch_typed(self):
        frame = Request(op="status").to_dict()
        frame["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(UnsupportedSchema):
            Request.from_dict(frame)

    def test_missing_schema_version_rejected(self):
        with pytest.raises(UnsupportedSchema):
            Request.from_dict({"op": "status"})

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            Request.from_dict({"op": "compile",
                               "schema_version": SCHEMA_VERSION})

    def test_work_ops_require_a_nest(self):
        for op in ("plan", "run", "verify", "audit"):
            with pytest.raises(ProtocolError, match="requires a nest"):
                Request.from_dict({"op": op,
                                   "schema_version": SCHEMA_VERSION})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fields"):
            Request.from_dict({"op": "status", "shiny": 1,
                               "schema_version": SCHEMA_VERSION})

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ProtocolError, match="unknown strategy"):
            Request.from_dict({"op": "plan", "nest": "L2",
                               "strategy": "triplicate",
                               "schema_version": SCHEMA_VERSION})


class TestRequestKey:
    def test_identical_requests_collide(self):
        a = Request(op="verify", nest="L2", strategy="duplicate")
        b = Request(op="verify", nest="L2", strategy="duplicate")
        assert request_key(a) == request_key(b)

    def test_rename_invariance(self):
        """``for i/j`` and ``for x/y`` over the same structure coalesce."""
        src_ij = """
        for i = 1 to 4 { for j = 1 to 4 {
          A[i, j] = A[i - 1, j - 1] + 1;
        } }
        """
        src_xy = """
        for x = 1 to 4 { for y = 1 to 4 {
          A[x, y] = A[x - 1, y - 1] + 1;
        } }
        """
        a = Request(op="verify", nest=src_ij)
        b = Request(op="verify", nest=src_xy)
        assert request_key(a) == request_key(b)

    def test_distinct_work_stays_distinct(self):
        base = dict(nest="L2", strategy="duplicate")
        key = request_key(Request(op="verify", **base))
        assert request_key(Request(op="run", **base)) != key
        assert request_key(Request(op="verify", nest="L2")) != key
        assert request_key(
            Request(op="verify", backend="compiled", **base)) != key
        assert request_key(
            Request(op="verify", scalars={"D": 2.0}, **base)) != key

    def test_duplicate_array_order_is_canonical(self):
        a = Request(op="plan", nest="L5", strategy="duplicate",
                    duplicate_arrays=("B", "A"))
        b = Request(op="plan", nest="L5", strategy="duplicate",
                    duplicate_arrays=("A", "B"))
        assert request_key(a) == request_key(b)


class TestEnsureJsonNative:
    def test_accepts_native_trees(self):
        obj = {"a": [1, 2.5, "x", None, True], "b": {"c": []}}
        assert ensure_json_native(obj) is obj

    @pytest.mark.parametrize("bad, fragment", [
        ({"a": (1, 2)}, "tuple"),
        ({"a": {1: "x"}}, "non-string key"),
        ({"a": {"b": {"c": set()}}}, "$.a.b.c"),
        ({"a": [complex(1)]}, "$.a[0]"),
    ])
    def test_rejects_non_native(self, bad, fragment):
        with pytest.raises(TypeError, match=None) as exc:
            ensure_json_native(bad)
        assert fragment in str(exc.value)

    def test_rejects_numeric_subclasses(self):
        class FancyFloat(float):
            pass

        with pytest.raises(TypeError, match="subclass"):
            ensure_json_native({"v": FancyFloat(1.0)})

    def test_matches_json_dumps_strictness(self):
        """Whatever the checker passes, json.dumps must serialize."""
        obj = {"a": [1, 2.5, "x", None, True], "b": {"c": [{"d": 0}]}}
        ensure_json_native(obj)
        json.dumps(obj)
