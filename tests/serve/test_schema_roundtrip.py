"""Every Summary implementor's ``to_json()`` is wire-safe.

The serving layer puts those dicts on the wire verbatim, so each must
be built purely from JSON-native types (``ensure_json_native``) and
survive a ``json.dumps``/``loads`` round trip unchanged -- no tuples,
no sets, no Fractions, no numpy scalars.
"""

import json

import pytest

from repro.api import Session, Summary
from repro.serve.protocol import ensure_json_native


def roundtrip(payload: dict) -> None:
    ensure_json_native(payload)
    assert json.loads(json.dumps(payload)) == payload


@pytest.fixture(scope="module")
def session():
    with Session("L2", strategy="duplicate") as s:
        yield s


class TestSummaryImplementors:
    def test_parallel_result(self, session):
        result = session.run()
        assert isinstance(result, Summary)
        roundtrip(result.to_json())

    def test_verification_report(self, session):
        report = session.verify()
        assert isinstance(report, Summary)
        roundtrip(report.to_json())

    def test_cross_checked_verification_report(self, session):
        roundtrip(session.verify(backend="all").to_json())

    def test_audit_report(self, session):
        report = session.audit()
        assert isinstance(report, Summary)
        roundtrip(report.to_json())

    def test_failed_audit_report(self):
        from repro.obs.audit import audit_plan, inject_violation

        with Session("L1", strategy="duplicate") as s:
            bad = inject_violation(s.plan())
            report = audit_plan(bad, run_engines=False)
        assert not report.ok
        roundtrip(report.to_json())

    def test_machine_run(self, session):
        run = session.machine(p=4)
        assert isinstance(run, Summary)
        roundtrip(run.to_json())

    def test_scheduler_result(self):
        from repro.runtime.scheduler.core import LeaseRecord, SchedulerResult

        result = SchedulerResult(
            mode="dynamic", units=2, blocks=4, workers=2, batch=2,
            chaos="crash-prob=0.2",
            leases=[LeaseRecord(unit=0, attempt=1, blocks=(0, 1),
                                start_s=0.0, end_s=0.5, outcome="ok",
                                pid=123)],
            retries=1, completed_units=2, wall_s=0.25)
        assert isinstance(result, Summary)
        roundtrip(result.to_json())

    def test_scheduler_result_from_real_run(self, session):
        result = session.run(backend="multiprocess")
        assert result.scheduler is not None
        roundtrip(result.scheduler.to_json())
        roundtrip(result.to_json())
