"""Daemon end-to-end: socket lifecycle, concurrent clients, clean exit."""

import os
import threading
import time

import pytest

from repro.serve import daemon as dmod
from repro.serve.client import ServeClient, ServeError


def shm_segments():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("repro-")}
    except FileNotFoundError:  # non-Linux
        return set()


@pytest.fixture
def daemon(tmp_path):
    """A foreground daemon on a temp socket, running in a thread."""
    sock = tmp_path / "serve.sock"
    thread = threading.Thread(target=dmod.run_daemon, args=(sock,),
                              kwargs={"max_concurrency": 4},
                              daemon=True)
    thread.start()
    deadline = time.monotonic() + 10
    while not sock.exists():
        assert time.monotonic() < deadline, "daemon never bound its socket"
        assert thread.is_alive(), "daemon died during startup"
        time.sleep(0.02)
    yield sock
    if sock.exists():
        try:
            with ServeClient(sock) as c:
                c.shutdown()
        except (ConnectionError, OSError):
            pass
    thread.join(timeout=10)


class TestDaemonLifecycle:
    def test_request_response_over_socket(self, daemon):
        with ServeClient(daemon) as client:
            report = client.request("verify", nest="L2",
                                    strategy="duplicate")
        assert report["ok"]
        assert report["communication_free"]

    def test_pidfile_written(self, daemon):
        pid = dmod.read_pidfile(daemon)
        assert pid == os.getpid()  # thread-hosted daemon: our pid

    def test_mixed_concurrent_clients(self, daemon):
        """Several clients firing mixed ops concurrently all succeed."""
        before = shm_segments()
        results: dict[int, list] = {}

        def client_loop(idx: int):
            ops = [("verify", "L2", "duplicate"),
                   ("plan", "L1", "duplicate"),
                   ("run", "L2", "duplicate"),
                   ("audit", "L1", "duplicate")]
            got = []
            with ServeClient(daemon) as client:
                for op, nest, strategy in ops:
                    got.append(client.request(op, nest=nest,
                                              strategy=strategy))
            results[idx] = got

        threads = [threading.Thread(target=client_loop, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive()
        assert sorted(results) == [0, 1, 2]
        for got in results.values():
            assert len(got) == 4
            assert all(r.get("ok", True) for r in got)
        with ServeClient(daemon) as client:
            st = client.status()
        assert st["requests"] >= 12
        assert st["errors"] == 0
        assert shm_segments() <= before

    def test_typed_error_over_the_wire(self, daemon):
        with ServeClient(daemon) as client:
            with pytest.raises(ServeError) as exc:
                client.request("verify", nest="for broken {{{")
        assert exc.value.kind == "bad-request"

    def test_clean_shutdown_removes_socket_and_pidfile(self, tmp_path):
        sock = tmp_path / "s2.sock"
        thread = threading.Thread(target=dmod.run_daemon, args=(sock,),
                                  daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while not sock.exists():
            assert time.monotonic() < deadline
            time.sleep(0.02)
        before = shm_segments()
        with ServeClient(sock) as client:
            client.request("run", nest="L2", strategy="duplicate",
                           backend="multiprocess")
            client.shutdown()
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert not sock.exists()
        assert dmod.pidfile_for(sock).exists() is False
        # the warm pool and every cached plan segment were released
        assert shm_segments() <= before
