"""AsyncServer: single-flight, admission control, warm sessions, errors."""

import asyncio

import pytest

from repro.api import Session
from repro.serve import AsyncServer, Request


def run(coro):
    return asyncio.run(coro)


def frame(op="verify", nest="L2", strategy="duplicate", **kw):
    return Request(op=op, nest=nest, strategy=strategy, **kw).to_dict()


class TestSingleFlight:
    def test_identical_burst_runs_once(self):
        """N concurrent identical requests: one pipeline analysis, one
        plan-cache miss, N responses."""
        from repro.pipeline import PLAN_CACHE

        async def burst(srv):
            frames = [dict(frame(), id=f"r{i}") for i in range(8)]
            return await asyncio.gather(*[srv.handle(f) for f in frames])

        PLAN_CACHE.clear()  # a cold cache: the burst itself must miss once
        with AsyncServer(max_concurrency=4, queue_limit=16) as srv:
            resps = run(burst(srv))
            assert len(resps) == 8
            assert all(r["ok"] for r in resps)
            # exactly one execution analyzed the nest...
            assert srv.registry.value("cache.miss") == 1
            assert srv.registry.value("serve.session.miss") == 1
            # ...and everyone else piggybacked on it
            assert srv.registry.value("serve.coalesced") == 7
            assert sum(r["coalesced"] for r in resps) == 7

    def test_responses_bit_identical_to_direct_session(self):
        async def one(srv):
            return await asyncio.gather(
                *[srv.handle(dict(frame(op="run"), id=f"r{i}"))
                  for i in range(4)])

        with AsyncServer() as srv:
            resps = run(one(srv))
        with Session("L2", strategy="duplicate") as s:
            direct = s.run().to_json()
        for r in resps:
            assert r["result"] == direct

    def test_correlation_ids_echoed_per_waiter(self):
        async def burst(srv):
            frames = [dict(frame(), id=f"client-{i}") for i in range(5)]
            return await asyncio.gather(*[srv.handle(f) for f in frames])

        with AsyncServer() as srv:
            resps = run(burst(srv))
        assert sorted(r["id"] for r in resps) == sorted(
            f"client-{i}" for i in range(5))

    def test_sequential_repeat_hits_warm_session(self):
        async def twice(srv):
            first = await srv.handle(frame())
            second = await srv.handle(frame())
            return first, second

        with AsyncServer() as srv:
            first, second = run(twice(srv))
        assert not first["warm"]
        assert second["warm"]
        assert srv.registry.value("serve.session.hit") == 1


class TestAdmissionControl:
    def test_over_capacity_burst_gets_typed_rejections(self):
        """Distinct requests beyond capacity are rejected immediately
        with the typed ``overloaded`` envelope, never queued silently."""
        async def burst(srv):
            frames = [dict(frame(scalars={"D": float(i)}), id=f"r{i}")
                      for i in range(5)]
            return await asyncio.gather(*[srv.handle(f) for f in frames])

        with AsyncServer(max_concurrency=1, queue_limit=0) as srv:
            resps = run(burst(srv))
        ok = [r for r in resps if r["ok"]]
        rejected = [r for r in resps if not r["ok"]]
        assert len(ok) == 1
        assert len(rejected) == 4
        for r in rejected:
            assert r["error"]["kind"] == "overloaded"
            assert "overloaded" in r["error"]["reason"]
        assert srv.registry.value("serve.rejected") == 4

    def test_coalesced_requests_bypass_admission(self):
        """Identical requests don't consume queue slots -- a burst of
        the same work always fans out from the one admitted flight."""
        async def burst(srv):
            frames = [dict(frame(), id=f"r{i}") for i in range(6)]
            return await asyncio.gather(*[srv.handle(f) for f in frames])

        with AsyncServer(max_concurrency=1, queue_limit=0) as srv:
            resps = run(burst(srv))
        assert all(r["ok"] for r in resps)
        assert srv.registry.value("serve.rejected") == 0

    def test_capacity_recovers_after_burst(self):
        async def go(srv):
            frames = [dict(frame(scalars={"D": float(i)}), id=f"r{i}")
                      for i in range(3)]
            await asyncio.gather(*[srv.handle(f) for f in frames])
            return await srv.handle(frame(op="run"))

        with AsyncServer(max_concurrency=1, queue_limit=0) as srv:
            late = run(go(srv))
        assert late["ok"]


class TestErrors:
    def test_bad_nest_is_bad_request(self):
        with AsyncServer() as srv:
            resp = run(srv.handle(frame(nest="for broken {{{")))
        assert not resp["ok"]
        assert resp["error"]["kind"] == "bad-request"
        assert srv.registry.value("serve.errors.bad-request") == 1

    def test_schema_mismatch_is_typed(self):
        with AsyncServer() as srv:
            bad = frame()
            bad["schema_version"] = 999
            resp = run(srv.handle(bad))
        assert not resp["ok"]
        assert resp["error"]["kind"] == "unsupported-schema"

    def test_error_responses_echo_the_id(self):
        with AsyncServer() as srv:
            bad = {"op": "nope", "id": "x1", "schema_version": 1}
            resp = run(srv.handle(bad))
        assert resp["id"] == "x1"
        assert resp["error"]["kind"] == "bad-request"


class TestOps:
    def test_plan_op(self):
        with AsyncServer() as srv:
            resp = run(srv.handle(frame(op="plan")))
        assert resp["ok"]
        assert resp["result"]["blocks"] == 16
        assert resp["result"]["strategy"] == "duplicate"

    def test_audit_op(self):
        with AsyncServer() as srv:
            resp = run(srv.handle(frame(op="audit")))
        assert resp["ok"]
        assert resp["result"]["certified"]

    def test_status_op(self):
        async def go(srv):
            await srv.handle(frame())
            return await srv.handle({"op": "status", "schema_version": 1})

        with AsyncServer() as srv:
            resp = run(go(srv))
        st = resp["result"]
        assert st["ok"] and st["requests"] == 2
        assert st["completed"] == 1
        assert st["latency_ms"]["count"] == 1

    def test_shutdown_op_sets_event(self):
        async def go(srv):
            resp = await srv.handle({"op": "shutdown", "schema_version": 1})
            return resp, srv.shutdown_event.is_set()

        with AsyncServer() as srv:
            resp, is_set = run(go(srv))
        assert resp["ok"] and is_set


class TestWarmState:
    def test_sessions_share_one_pool(self):
        async def go(srv):
            a = await srv.handle(frame(op="run", backend="multiprocess"))
            b = await srv.handle(dict(
                frame(op="run", nest="L1", backend="multiprocess")))
            return a, b

        with AsyncServer() as srv:
            a, b = run(go(srv))
            assert a["ok"] and b["ok"]
            # both multiprocess runs reused the server's one pool: it
            # spawned exactly once
            assert srv._pool.generation == 1

    def test_session_lru_evicts_and_closes(self):
        async def go(srv):
            for nest in ("L1", "L2", "L3"):
                resp = await srv.handle(frame(op="plan", nest=nest))
                assert resp["ok"]

        with AsyncServer(max_sessions=2) as srv:
            run(go(srv))
            assert len(srv._sessions) == 2
            assert srv.registry.value("serve.session.evict") == 1

    def test_close_is_idempotent(self):
        srv = AsyncServer()
        run(srv.handle(frame(op="plan")))
        srv.close()
        srv.close()
