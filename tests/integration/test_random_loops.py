"""Property-based pipeline tests on randomly generated loop nests.

The generator produces arbitrary *uniformly generated* nests (random
reference matrices ``H`` per array, random offsets per reference,
random statement structure).  For every generated nest and every
strategy, the pipeline's guarantees must hold:

- blocks partition the iteration space;
- non-duplicate data blocks are disjoint;
- parallel execution touches only local memory (zero remote accesses);
- the merged parallel result is bit-identical to sequential execution;
- the transformed nest enumerates exactly the iteration space, blocks
  matching the partition.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Strategy, build_plan
from repro.core.plan import check_all
from repro.lang import builder as b
from repro.lang.ast import Assign, BinOp, Const, LoopNest
from repro.runtime import verify_plan
from repro.transform import transform_nest

INDICES = ("i", "j", "k")


@st.composite
def loop_nests(draw):
    depth = draw(st.integers(2, 3))
    indices = INDICES[:depth]
    bounds = [draw(st.integers(2, 3)) for _ in range(depth)]

    num_arrays = draw(st.integers(2, 3))
    names = ["A", "B", "C"][:num_arrays]
    # per-array reference shape: rank + H (shared by all refs of the array)
    shapes = {}
    for name in names:
        rank = draw(st.integers(1, 2))
        h = [[draw(st.integers(-2, 2)) for _ in range(depth)]
             for _ in range(rank)]
        shapes[name] = (rank, h)

    def random_ref(name):
        rank, h = shapes[name]
        subs = []
        for r in range(rank):
            terms = [(h[r][c], indices[c]) for c in range(depth) if h[r][c]]
            const = draw(st.integers(-2, 2))
            subs.append(b.lin(*terms, const=const))
        return b.ref(name, *subs)

    nstmts = draw(st.integers(1, 3))
    stmts = []
    for s in range(nstmts):
        lhs = random_ref(draw(st.sampled_from(names)))
        nreads = draw(st.integers(1, 2))
        rhs = None
        for _ in range(nreads):
            term = random_ref(draw(st.sampled_from(names)))
            rhs = term if rhs is None else BinOp("+", rhs, term)
        rhs = BinOp("*", rhs, Const(draw(st.integers(1, 3))))
        stmts.append(Assign(lhs=lhs, rhs=rhs))

    loops = [b.loop(indices[d], 1, bounds[d]) for d in range(depth)]
    return b.nest(*loops, body=stmts, name="RAND")


STRATEGIES = [
    dict(strategy=Strategy.NONDUPLICATE),
    dict(strategy=Strategy.DUPLICATE),
    dict(strategy=Strategy.NONDUPLICATE, eliminate_redundant=True),
    dict(strategy=Strategy.DUPLICATE, eliminate_redundant=True),
]


@given(loop_nests(), st.sampled_from(range(len(STRATEGIES))))
@settings(max_examples=60, deadline=None)
def test_pipeline_invariants_on_random_loops(nest, strategy_idx):
    kwargs = STRATEGIES[strategy_idx]
    plan = build_plan(nest, **kwargs)
    check_all(plan)
    report = verify_plan(plan)
    assert report.communication_free
    assert report.equal, report.mismatches[:3]


@given(loop_nests())
@settings(max_examples=40, deadline=None)
def test_duplicate_never_less_parallel(nest):
    nd = build_plan(nest)
    dup = build_plan(nest, Strategy.DUPLICATE)
    assert dup.psi.is_subspace_of(nd.psi)
    assert dup.num_blocks >= nd.num_blocks


@given(loop_nests())
@settings(max_examples=40, deadline=None)
def test_transform_bijection_on_random_loops(nest):
    plan = build_plan(nest, Strategy.DUPLICATE)
    tnest = transform_nest(nest, plan.psi)
    got = sorted(tnest.all_iterations())
    expected = sorted(plan.model.space.points())
    assert got == expected
    # block structure agrees with the partition
    for blk in tnest.iterate_blocks():
        ids = {plan.block_of(it) for it in tnest.iterations_of_block(blk)}
        assert len(ids) <= 1


@given(loop_nests())
@settings(max_examples=30, deadline=None)
def test_minimal_spaces_shrink(nest):
    full = build_plan(nest, Strategy.DUPLICATE)
    mini = build_plan(nest, Strategy.DUPLICATE, eliminate_redundant=True)
    assert mini.psi.is_subspace_of(full.psi)
    assert mini.num_blocks >= full.num_blocks
