"""Full-pipeline integration: parse -> analyze -> partition -> transform
-> map -> execute on the simulated machine -> merge -> verify."""

import pytest

from repro import (
    Strategy,
    build_plan,
    catalog,
    make_arrays,
    parse,
    run_parallel,
    run_sequential,
    transform_nest,
    verify_plan,
)
from repro.mapping import assign_blocks, shape_grid, workload_stats
from repro.runtime.merge import merge_copies


class TestPipelineOnFixedMachine:
    """More blocks than processors: cyclic mapping, still exact + comm-free."""

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_l1_on_p_processors(self, p):
        nest = catalog.l1(6)
        plan = build_plan(nest)
        tnest = transform_nest(nest, plan.psi)
        grid = shape_grid(p, tnest.k)
        assignment = assign_blocks(tnest, grid)

        # plan block index -> processor id via the cyclic assignment
        mapping = {}
        for b in plan.blocks:
            pt = tnest.block_of_iteration(b.iterations[0])
            mapping[b.index] = assignment.owner_id(pt)

        report = verify_plan(plan, block_to_pid=mapping)
        report.raise_on_failure()
        assert len({pid for pid in mapping.values()}) <= grid.size

    @pytest.mark.parametrize("p", [1, 4])
    def test_l5_doubleprime_on_mesh(self, p):
        nest = catalog.l5(4)
        plan = build_plan(nest, Strategy.DUPLICATE)
        tnest = transform_nest(nest, plan.psi)
        grid = shape_grid(p, tnest.k)
        assignment = assign_blocks(tnest, grid)
        mapping = {
            b.index: assignment.owner_id(tnest.block_of_iteration(b.iterations[0]))
            for b in plan.blocks
        }
        verify_plan(plan, block_to_pid=mapping).raise_on_failure()

    def test_workloads_consistent_between_plan_and_tnest(self):
        nest = catalog.l4()
        plan = build_plan(nest)
        tnest = transform_nest(nest, plan.psi)
        sizes_plan = sorted(len(b) for b in plan.blocks)
        sizes_tnest = sorted(n for n in tnest.block_sizes().values() if n)
        assert sizes_plan == sizes_tnest


class TestUserWrittenLoop:
    """A loop not from the catalog, through the whole public API."""

    SRC = """
        for t = 1 to 3 {
          for x = 1 to 6 {
            S1: U[x, t] = U[x - 2, t - 1] * 2 + F[x, t];
          }
        }
    """

    def test_full_pipeline(self):
        nest = parse(self.SRC, name="WAVE")
        plan = build_plan(nest)
        # dependence direction (2,1): 1-dim partitioning space
        assert plan.psi.dim == 1
        assert plan.num_blocks > 1
        verify_plan(plan).raise_on_failure()

    def test_duplicate_no_worse(self):
        nest = parse(self.SRC)
        nd = build_plan(nest)
        dup = build_plan(nest, Strategy.DUPLICATE)
        assert dup.num_blocks >= nd.num_blocks
        verify_plan(dup).raise_on_failure()


class TestStrategyMonotonicity:
    """Duplication and redundancy elimination never reduce parallelism."""

    @pytest.mark.parametrize("name", sorted(catalog.ALL_LOOPS))
    def test_monotone(self, name):
        fn = catalog.ALL_LOOPS[name]
        nd = build_plan(fn())
        dup = build_plan(fn(), Strategy.DUPLICATE)
        mind = build_plan(fn(), Strategy.DUPLICATE, eliminate_redundant=True)
        assert dup.num_blocks >= nd.num_blocks, name
        assert mind.num_blocks >= dup.num_blocks, name


class TestMergeOnSharedProcessors:
    def test_all_blocks_one_processor(self):
        nest = catalog.l2()
        plan = build_plan(nest, Strategy.DUPLICATE)
        initial = make_arrays(plan.model)
        mapping = {b.index: 0 for b in plan.blocks}
        res = run_parallel(plan, initial=initial, block_to_pid=mapping)
        merged = merge_copies(res, initial)
        expected = {n: a.copy() for n, a in initial.items()}
        run_sequential(nest, expected)
        for n in merged:
            assert merged[n] == expected[n]
