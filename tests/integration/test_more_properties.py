"""Additional property suites: affine-bounded loops, SPMD equivalence,
program composition, and sabotage detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Strategy, build_plan
from repro.core.plan import check_no_interblock_flow
from repro.lang import builder as b
from repro.lang import parse
from repro.lang.ast import Assign, BinOp, Const
from repro.machine.cost import CostModel
from repro.mapping import shape_grid
from repro.program import Program, plan_program, verify_program
from repro.runtime import make_arrays, run_sequential, verify_plan
from repro.transform import compile_spmd, transform_nest

CHEAP = CostModel(t_comp=1e-3, t_start=1e-6, t_comm=1e-7)


# ---------------------------------------------------------------------------
# affine-bounded (triangular/trapezoidal) random loops
# ---------------------------------------------------------------------------

@st.composite
def affine_bounded_nests(draw):
    n1 = draw(st.integers(3, 5))
    # inner bounds: one of j<=i, j<=i+1, j from i to n
    shape = draw(st.sampled_from(["tri_up", "tri_shift", "band"]))
    o1 = draw(st.integers(-1, 1))
    o2 = draw(st.integers(-1, 1))
    if shape == "tri_up":
        inner = ("1", "i")
    elif shape == "tri_shift":
        inner = ("1", "i + 1")
    else:
        inner = ("i", str(n1))
    body = f"A[i, j] = A[i - 1, j - 1] + B[i + {o1}, j + {o2}];"
    src = f"""
        for i = 1 to {n1} {{
          for j = {inner[0]} to {inner[1]} {{
            {body}
          }}
        }}
    """
    return parse(src, name="AFF")


@given(affine_bounded_nests(),
       st.sampled_from([Strategy.NONDUPLICATE, Strategy.DUPLICATE]))
@settings(max_examples=40, deadline=None)
def test_affine_bounded_pipeline(nest, strategy):
    plan = build_plan(nest, strategy)
    check_no_interblock_flow(plan)
    report = verify_plan(plan)
    assert report.communication_free and report.equal


@given(affine_bounded_nests())
@settings(max_examples=25, deadline=None)
def test_affine_bounded_transform_bijection(nest):
    plan = build_plan(nest)
    t = transform_nest(nest, plan.psi)
    assert sorted(t.all_iterations()) == sorted(plan.model.space.points())


# ---------------------------------------------------------------------------
# SPMD equivalence on random non-duplicate plans
# ---------------------------------------------------------------------------

@st.composite
def simple_nests(draw):
    n = draw(st.integers(2, 4))
    di = draw(st.integers(0, 2))
    dj = draw(st.integers(-2, 2))
    c = draw(st.integers(1, 3))
    src = f"""
        for i = 1 to {n} {{
          for j = 1 to {n} {{
            U[i, j] = U[i - {di}, j - {dj}] * {c} + F[i, j];
          }}
        }}
    """
    return parse(src, name="SPMDRAND")


@given(simple_nests(), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_spmd_equivalence_random(nest, p):
    plan = build_plan(nest)  # non-duplicate: any PE order is sound
    t = transform_nest(nest, plan.psi)
    grid = shape_grid(p, t.k)
    run_pe = compile_spmd(t, grid)
    arrays = make_arrays(plan.model)

    class View:
        def __init__(self, ds):
            self.ds = ds

        def __getitem__(self, c):
            return self.ds[c]

        def __setitem__(self, c, v):
            self.ds[c] = v

    got = {n_: a.copy() for n_, a in arrays.items()}
    views = {n_: View(a) for n_, a in got.items()}
    for proc in grid.coords():
        run_pe(proc, views, {})
    expected = {n_: a.copy() for n_, a in arrays.items()}
    run_sequential(nest, expected)
    for name in expected:
        assert got[name] == expected[name]


# ---------------------------------------------------------------------------
# random two-phase programs
# ---------------------------------------------------------------------------

@given(st.integers(0, 2), st.integers(-1, 1), st.integers(1, 3),
       st.booleans())
@settings(max_examples=25, deadline=None)
def test_random_two_phase_program(di, dj, scale, transpose):
    p1 = parse(f"""
        for i = 1 to 4 {{ for j = 1 to 4 {{
          U[i, j] = U[i - {di}, j - {dj}] + F[i, j];
        }} }}
    """, name="PH1")
    lhs = "V[j, i]" if transpose else "V[i, j]"
    p2 = parse(f"""
        for i = 1 to 4 {{ for j = 1 to 4 {{
          {lhs} = U[i, j] * {scale};
        }} }}
    """, name="PH2")
    pplan = plan_program(Program(nests=[p1, p2]), p=4, cost=CHEAP)
    assert verify_program(pplan).ok
    # reallocation accounting is self-consistent
    r = pplan.reallocations[0]
    assert r.moved_words >= 0 and 0.0 <= r.locality <= 1.0


# ---------------------------------------------------------------------------
# sabotage: a wrong partitioning space is detected
# ---------------------------------------------------------------------------

class TestSabotageDetection:
    def _bad_plan(self):
        """L1 partitioned along (1,0): cuts the (1,1) flow dependence."""
        from repro.analysis import extract_references
        from repro.core.partition import (all_data_partitions,
                                          block_index_map,
                                          iteration_partition)
        from repro.core.plan import PartitionPlan
        from repro.core.strategy import partitioning_space
        from repro.lang import catalog
        from repro.ratlinalg import Subspace

        nest = catalog.l1()
        model = extract_references(nest)
        bad = Subspace(2, [[1, 0]])
        breakdown = partitioning_space(model)
        breakdown.psi = bad
        blocks = iteration_partition(model.space, bad)
        return PartitionPlan(
            nest=nest, model=model, breakdown=breakdown, blocks=blocks,
            data_blocks=all_data_partitions(model, blocks),
            _block_of=block_index_map(blocks))

    def test_static_check_catches_it(self):
        with pytest.raises(AssertionError, match="crosses blocks"):
            check_no_interblock_flow(self._bad_plan())

    def test_runtime_verification_catches_it(self):
        report = verify_plan(self._bad_plan())
        # the duplicate data partition hides the element in both blocks,
        # so execution completes -- but the merged values must be wrong
        # OR remote accesses occurred; either way verification fails.
        assert not report.ok
