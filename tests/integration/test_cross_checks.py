"""Cross-validation between independent subsystems.

The repository has several independent paths to the same quantities
(analytic formulas, the message-level estimator, the full machine run,
the special-cased matmul harness).  They must agree on structure.
"""

import pytest

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.machine.cost import CostModel, TRANSPUTER
from repro.perf import (
    choose_strategy,
    estimate_plan,
    simulate_l5_doubleprime,
    t3_duplicate_ab,
)
from repro.runtime import run_on_machine

CHEAP = CostModel(t_comp=1e-3, t_start=1e-6, t_comm=1e-7)


class TestEstimatorVsMachineRun:
    @pytest.mark.parametrize("fn,kwargs,p", [
        (catalog.l1, dict(), 4),
        (catalog.l2, dict(strategy=Strategy.DUPLICATE), 4),
        (lambda: catalog.l5(4), dict(strategy=Strategy.DUPLICATE), 4),
        (catalog.l4, dict(), 4),
    ])
    def test_compute_terms_agree(self, fn, kwargs, p):
        plan = build_plan(fn(), **kwargs)
        est = estimate_plan(plan, p, cost=CHEAP)
        run = run_on_machine(plan, p, cost=CHEAP)
        assert run.stats.max_compute_time == pytest.approx(est.compute_time)

    def test_distribution_terms_agree(self):
        """Same grouping logic -> identical distribution charge."""
        plan = build_plan(catalog.l5(4), Strategy.DUPLICATE)
        est = estimate_plan(plan, 4, cost=CHEAP)
        run = run_on_machine(plan, 4, cost=CHEAP)
        assert run.stats.distribution_time == pytest.approx(
            est.distribution_time)
        assert run.stats.messages == est.messages

    def test_memory_agrees(self):
        """estimate_plan counts physical words per processor (one copy
        per (element, pid)); the run keeps per-*block* logical regions.
        Collapsing the run's regions per processor must reproduce the
        estimate exactly."""
        plan = build_plan(catalog.l5(4), Strategy.DUPLICATE)
        est = estimate_plan(plan, 4, cost=CHEAP)
        run = run_on_machine(plan, 4, cost=CHEAP)
        per_pid: dict[int, set] = {}
        for blk, mem in run.result.memories.items():
            pid = run.result.block_to_pid[blk]
            bucket = per_pid.setdefault(pid, set())
            for array, coords_set in mem.allocated.items():
                bucket.update((array, c) for c in coords_set)
        physical = sum(len(s) for s in per_pid.values())
        assert physical == est.memory_words
        # and the per-block logical total is at least the physical one
        logical = sum(m.words() for m in run.result.memories.values())
        assert logical >= physical


class TestEstimatorVsMatmulHarness:
    def test_l5pp_compute_identical(self):
        m, p = 8, 4
        plan = build_plan(catalog.l5(m), Strategy.DUPLICATE)
        est = estimate_plan(plan, p, cost=TRANSPUTER)
        sim = simulate_l5_doubleprime(m, p, TRANSPUTER)
        assert est.compute_time == pytest.approx(sim.compute_time)

    def test_l5pp_vs_analytic_t3(self):
        m, p = 16, 16
        sim = simulate_l5_doubleprime(m, p, TRANSPUTER)
        analytic = t3_duplicate_ab(m, p, TRANSPUTER)
        assert 0.5 < sim.total_time / analytic < 2.0


class TestSelectorVsMachineRun:
    def test_selected_plan_really_fastest(self):
        """Re-rank the selector's candidates with the full machine run:
        the winner must stay the winner (both use the same models, so
        this guards against drift between the two code paths)."""
        result = choose_strategy(catalog.l5(8), p=4, cost=CHEAP)
        measured = {
            c.label: run_on_machine(c.plan, 4, cost=CHEAP).makespan
            for c in result.candidates
        }
        best_measured = min(measured, key=measured.get)
        assert best_measured == result.best.label
