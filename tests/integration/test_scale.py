"""Larger-instance sanity: the pipeline stays correct and tractable
as iteration spaces grow beyond the paper's 4x4 teaching sizes."""

import pytest

from repro.core import Strategy, build_plan
from repro.core.plan import check_all
from repro.lang import catalog
from repro.mapping import assign_blocks, shape_grid, workload_stats
from repro.runtime import verify_plan
from repro.transform import transform_nest


class TestScaledInstances:
    def test_l1_n20(self):
        plan = build_plan(catalog.l1(20))
        assert plan.num_blocks == 39  # 2n - 1 diagonals
        check_all(plan)
        verify_plan(plan).raise_on_failure()

    def test_l2_n8_dup(self):
        plan = build_plan(catalog.l2(8), Strategy.DUPLICATE)
        assert plan.num_blocks == 64
        verify_plan(plan).raise_on_failure()

    def test_l3_n10_minimal(self):
        plan = build_plan(catalog.l3(10), Strategy.DUPLICATE,
                          eliminate_redundant=True)
        assert plan.num_blocks == 10
        rep = verify_plan(plan).raise_on_failure()
        # redundant S1 instances: all but the last column
        assert rep.skipped_computations == 10 * 9

    def test_l4_n8(self):
        nest = catalog.l4(8)
        plan = build_plan(nest)
        t = transform_nest(nest, plan.psi)
        assert sum(t.block_sizes().values()) == 512
        stats = workload_stats(assign_blocks(t, shape_grid(4, t.k)))
        assert stats.total == 512
        assert stats.imbalance < 1.05

    def test_l5_m6_dup(self):
        plan = build_plan(catalog.l5(6), Strategy.DUPLICATE)
        assert plan.num_blocks == 36
        verify_plan(plan).raise_on_failure()

    def test_block_count_scaling_law(self):
        """L1's parallelism grows linearly with n (anti-diagonals)."""
        for n in (4, 8, 12, 16):
            assert build_plan(catalog.l1(n)).num_blocks == 2 * n - 1

    def test_independent_quadratic(self):
        for n in (4, 8):
            assert build_plan(catalog.independent(n)).num_blocks == n * n

    def test_triangular_n10(self):
        plan = build_plan(catalog.triangular(10))
        check_all(plan)
        verify_plan(plan).raise_on_failure()
