"""The data reference graph G^A (Definition 6, Figs. 6-7)."""

from repro.analysis import build_reference_graph, extract_references
from repro.analysis.refgraph import build_all_reference_graphs
from repro.lang import parse


class TestL3Graph:
    """Fig. 7 exactly (our read numbering: r1 = A[i-1,j-1] in S1,
    r2 = A[i+1,j-2] in S2 -- the paper numbers them the other way)."""

    def setup_method(self):
        from repro.lang import catalog

        self.model = extract_references(catalog.l3())
        self.g = build_reference_graph(self.model, "A")

    def test_vertices(self):
        assert [self.g.vertex_name(w) for w in self.g.writes] == ["w1", "w2"]
        assert [self.g.vertex_name(r) for r in self.g.reads] == ["r1", "r2"]

    def test_edge_set_matches_fig7(self):
        edges = set(self.g.edge_names())
        # our r1 = A[i-1,j-1] (S1), r2 = A[i+1,j-2] (S2): the paper's
        # r2 and r1 respectively -- same graph under that relabeling.
        assert edges == {
            ("w1", "w2", "output"),
            ("r2", "r1", "input"),
            ("r2", "w1", "anti"),
            ("r2", "w2", "anti"),
            ("w1", "r1", "flow"),
            ("w2", "r1", "flow"),
        }

    def test_edges_of_kind(self):
        from repro.analysis import DependenceKind

        assert len(self.g.edges_of_kind(DependenceKind.FLOW)) == 2
        assert len(self.g.edges_of_kind(DependenceKind.ANTI)) == 2
        assert len(self.g.edges_of_kind(DependenceKind.OUTPUT)) == 1
        assert len(self.g.edges_of_kind(DependenceKind.INPUT)) == 1

    def test_find_edge(self):
        e = self.g.find_edge("w2", "r1")
        assert e is not None
        assert tuple(int(x) for x in e.witness) == (1, 0)  # the paper's t1
        assert self.g.find_edge("r1", "r1") is None

    def test_networkx_backing(self):
        assert set(self.g.graph.nodes) == {"w1", "w2", "r1", "r2"}
        assert self.g.graph.number_of_edges() == 6


class TestOtherGraphs:
    def test_single_reference_graph_empty(self, l1):
        model = extract_references(l1)
        g = build_reference_graph(model, "B")
        assert g.edges == []
        assert len(g.writes) == 1 and len(g.reads) == 0

    def test_build_all(self, l1):
        graphs = build_all_reference_graphs(extract_references(l1))
        assert set(graphs) == {"A", "B", "C"}
        assert [e[2] for e in graphs["C"].edge_names()] == ["input"]

    def test_self_accumulation_graph(self, l5):
        model = extract_references(l5)
        g = build_reference_graph(model, "C")
        kinds = {k for _, _, k in g.edge_names()}
        # C[i,j] read+write with equal offsets: flow and anti between the
        # two references (output reuse happens through the single write
        # reference itself and is carried by Ker(H_C), not a graph edge)
        assert kinds == {"flow", "anti"}

    def test_iter_protocol(self, l3):
        g = build_reference_graph(extract_references(l3), "A")
        assert len(list(iter(g))) == 6
