"""Reference extraction and the uniformly-generated-references check."""

import pytest

from repro.analysis import NonUniformReferenceError, extract_references
from repro.lang import parse
from repro.ratlinalg import RatMat, RatVec


class TestExtraction:
    def test_l1_reference_matrices(self, l1):
        model = extract_references(l1)
        assert model.arrays["A"].h == RatMat([[2, 0], [0, 1]])
        assert model.arrays["B"].h == RatMat([[0, 1], [1, 0]])
        assert model.arrays["C"].h == RatMat([[1, 0], [0, 1]])

    def test_l1_offsets(self, l1):
        model = extract_references(l1)
        offsets_a = [tuple(int(x) for x in r.offset)
                     for r in model.arrays["A"].references]
        assert offsets_a == [(0, 0), (-2, -1)]
        offsets_b = [tuple(int(x) for x in r.offset)
                     for r in model.arrays["B"].references]
        assert offsets_b == [(0, 1)]

    def test_roles_and_slots(self, l1):
        model = extract_references(l1)
        a = model.arrays["A"].references
        assert a[0].is_write and a[0].slot == 0 and a[0].stmt_index == 0
        assert not a[1].is_write and a[1].stmt_index == 1

    def test_l5_rectangular_h(self, l5):
        model = extract_references(l5)
        assert model.arrays["A"].h == RatMat([[1, 0, 0], [0, 0, 1]])
        assert model.arrays["B"].h == RatMat([[0, 0, 1], [0, 1, 0]])
        assert model.arrays["C"].h == RatMat([[1, 0, 0], [0, 1, 0]])

    def test_distinct_offsets_dedup(self, l5):
        model = extract_references(l5)
        # C appears twice with offset (0,0): one distinct referenced variable
        assert len(model.arrays["C"].references) == 2
        assert len(model.arrays["C"].distinct_offsets()) == 1

    def test_writes_reads_partition(self, l2):
        model = extract_references(l2)
        info = model.arrays["A"]
        assert len(info.writes()) == 2
        assert len(info.reads()) == 1
        assert not info.is_read_only()
        assert model.arrays["B"].is_read_only()

    def test_element_at(self, l1):
        model = extract_references(l1)
        info = model.arrays["A"]
        assert info.element_at((1, 1), info.references[0].offset) == (2, 1)
        assert info.element_at((2, 2), info.references[1].offset) == (2, 1)

    def test_all_references_flat(self, l1):
        model = extract_references(l1)
        assert len(model.all_references()) == 5


class TestNonUniform:
    def test_different_h_rejected(self):
        nest = parse("for i = 1 to 2 { A[i] = A[2*i]; }")
        with pytest.raises(NonUniformReferenceError, match="non-uniformly"):
            extract_references(nest)

    def test_transposed_access_rejected(self):
        nest = parse("for i = 1 to 2 { for j = 1 to 2 { A[i, j] = A[j, i]; } }")
        with pytest.raises(NonUniformReferenceError):
            extract_references(nest)

    def test_uniform_offsets_accepted(self):
        nest = parse("for i = 1 to 2 { A[i + 3] = A[i - 5]; }")
        model = extract_references(nest)
        assert len(model.arrays["A"].references) == 2

    def test_scalar_in_subscript_rejected(self):
        nest = parse("for i = 1 to 2 { A[i + N] = 0; }")
        with pytest.raises(NonUniformReferenceError, match="affine"):
            extract_references(nest)

    def test_fractional_subscript_rejected(self):
        nest = parse("for i = 1 to 2 { A[i / 2] = 0; }")
        with pytest.raises(NonUniformReferenceError, match="non-integer"):
            extract_references(nest)

    def test_rank_consistency(self):
        nest = parse("for i = 1 to 2 { for j = 1 to 2 { A[i, j] = A[i]; } }")
        with pytest.raises(NonUniformReferenceError):
            extract_references(nest)
