"""Redundant-computation elimination (Section III.C)."""

from repro.analysis import analyze_redundancy, extract_references
from repro.analysis.dependence import DependenceKind
from repro.lang import catalog, parse


def analyzed(src):
    return analyze_redundancy(extract_references(parse(src)))


class TestL3:
    """The paper's worked example: N(S1) = {(i,4)}, N(S2) = I^2."""

    def setup_method(self):
        self.red = analyze_redundancy(extract_references(catalog.l3()))

    def test_n_sets(self):
        assert self.red.n_set(0) == {(i, 4) for i in range(1, 5)}
        assert self.red.n_set(1) == {(i, j) for i in range(1, 5)
                                     for j in range(1, 5)}

    def test_redundant_set(self):
        assert self.red.redundant_set(0) == {(i, j) for i in range(1, 5)
                                             for j in range(1, 4)}
        assert self.red.redundant_set(1) == set()

    def test_useful_edges_match_paper(self):
        g = self.red.graphs["A"]
        useful = {(g.vertex_name(d.src), g.vertex_name(d.dst), d.kind.value)
                  for d in self.red.useful_edges}
        # paper: flow (w2,r2) and anti (r1,w2) survive.  Our r1 is the S1
        # read A[i-1,j-1] (the paper's r2) and our r2 the S2 read
        # A[i+1,j-2] (the paper's r1).
        assert useful == {("w2", "r1", "flow"), ("r2", "w2", "anti")}

    def test_false_edges_match_paper(self):
        g = self.red.graphs["A"]
        false = {(g.vertex_name(d.src), g.vertex_name(d.dst), d.kind.value)
                 for d in self.red.false_edges}
        assert false == {("w1", "w2", "output"), ("r2", "r1", "input"),
                         ("r2", "w1", "anti"), ("w1", "r1", "flow")}

    def test_useful_vectors(self):
        vecs = {tuple(v) for v in self.red.useful_vectors("A")}
        assert vecs == {(1, 0), (1, -1)}
        flow = {tuple(v) for v in self.red.useful_vectors("A", flow_only=True)}
        assert flow == {(1, 0)}

    def test_val_sets(self):
        w1 = self.red.model.arrays["A"].writes()[0]
        val = self.red.val_set(w1)
        assert val == {(i, 4) for i in range(1, 5)}

    def test_summary_mentions_counts(self):
        s = self.red.summary()
        assert "4/16" in s and "16/16" in s


class TestNoRedundancy:
    def test_all_live_when_every_write_is_final(self, l1):
        red = analyze_redundancy(extract_references(l1))
        total = l1
        size = red.model.space.size()
        assert len(red.n_set(0)) == size
        assert len(red.n_set(1)) == size
        assert red.false_edges == []

    def test_accumulation_all_live(self, l5):
        red = analyze_redundancy(extract_references(l5))
        assert len(red.n_set(0)) == red.model.space.size()


class TestCase1DeadWrites:
    def test_overwrite_without_read(self):
        red = analyzed("""
            for i = 1 to 4 {
              A[1] = B[i];
            }
        """)
        # only the last write (i=4) is live
        assert red.n_set(0) == {(4,)}

    def test_read_keeps_alive(self):
        red = analyzed("""
            for i = 1 to 4 {
              A[1] = B[i];
              C[i] = A[1];
            }
        """)
        # every write is read before the next overwrite
        assert len(red.n_set(0)) == 4


class TestCase2TransitiveRedundancy:
    def test_paper_substitution_example(self):
        """The S1'..S4' illustration: S2'(2,2) and S1'(2,1) are redundant."""
        red = analyze_redundancy(extract_references(catalog.l3_sub()))
        # S2' writes B[i,j], overwritten by S4'(i,j+1) unread -> redundant
        # except where no overwrite exists (j = 4).
        assert (1, (2, 2)) not in red.live
        assert (1, (2, 4)) in red.live
        # S1' writes A[i,j]; A[2,1] is read only by the redundant S2'(2,2)
        # before S3'(3,2) overwrites it -> S1'(2,1) is redundant.
        assert (0, (2, 1)) not in red.live

    def test_chain_of_dead_values(self):
        red = analyzed("""
            for i = 1 to 3 {
              A[i] = B[i];
              C[i] = A[i];
              C[i] = 7;
            }
        """)
        # C[i] from S2 is immediately overwritten by S3; the A[i] values
        # feeding S2 are read nowhere else... but A[i] itself is never
        # overwritten, so S1 stays live while S2 is redundant.
        assert red.n_set(1) == set()
        assert len(red.n_set(0)) == 3
        assert len(red.n_set(2)) == 3


class TestFalseDependenceDetection:
    def test_edges_to_dead_code_are_false(self):
        red = analyzed("""
            for i = 1 to 4 {
              A[i] = B[i];
              A[i] = C[i];
            }
        """)
        # S1's write is always overwritten unread: output edge is... the
        # Val set of w1 is empty, so every edge touching w1 is false.
        g = red.graphs["A"]
        for dep in red.useful_edges:
            assert g.vertex_name(dep.src) != "w1"
            assert g.vertex_name(dep.dst) != "w1"

    def test_useful_flow_preserved(self):
        red = analyzed("""
            for i = 1 to 4 {
              A[i] = B[i];
              C[i] = A[i - 1];
            }
        """)
        kinds = {d.kind for d in red.useful_edges if d.array == "A"}
        assert DependenceKind.FLOW in kinds
