"""Data-referenced vectors (Definition 1)."""

from repro.analysis import data_referenced_vectors, extract_references
from repro.lang import parse


def vectors_of(model, array):
    return [tuple(int(x) for x in d.vector)
            for d in data_referenced_vectors(model.arrays[array])]


class TestPaperExamples:
    def test_l1(self, l1):
        model = extract_references(l1)
        assert vectors_of(model, "A") == [(2, 1)]
        assert vectors_of(model, "C") == [(1, 1)]
        assert vectors_of(model, "B") == []  # single referenced variable

    def test_l2_all_pairs(self, l2):
        model = extract_references(l2)
        vecs = set(vectors_of(model, "A"))
        # paper's r1,r2,r3 up to sign/pair-order: {(1,1),(0,-1),(-1,0)}
        assert {(1, 1), (0, 1), (1, 0)} == vecs
        assert vectors_of(model, "B") == [(1, 1)]

    def test_l5_zero_offset_pair_collapses(self, l5):
        model = extract_references(l5)
        assert vectors_of(model, "C") == []  # both refs share offset (0,0)
        assert vectors_of(model, "A") == []
        assert vectors_of(model, "B") == []


class TestCombinatorics:
    def test_pair_count(self):
        nest = parse("""
            for i = 1 to 2 {
              A[i] = A[i - 1] + A[i - 2] + A[i - 3];
            }
        """)
        model = extract_references(nest)
        # s = 4 distinct referenced variables -> s(s-1)/2 = 6 vectors
        assert len(data_referenced_vectors(model.arrays["A"])) == 6

    def test_first_appearance_orientation(self):
        nest = parse("for i = 1 to 2 { A[i + 5] = A[i]; }")
        model = extract_references(nest)
        [d] = data_referenced_vectors(model.arrays["A"])
        assert tuple(d.vector) == (5,)
        assert d.first.is_write and not d.second.is_write

    def test_metadata(self, l1):
        model = extract_references(l1)
        [d] = data_referenced_vectors(model.arrays["A"])
        assert d.array == "A"
        assert d.first.stmt_index == 0 and d.second.stmt_index == 1
