"""Dependence summary tables."""

from repro.analysis import analyze_redundancy, extract_references
from repro.analysis.summary import format_dependence_table, summarize_dependences
from repro.lang import catalog, parse


class TestSummarizeL3:
    def setup_method(self):
        self.model = extract_references(catalog.l3())
        self.red = analyze_redundancy(self.model)
        self.rows = summarize_dependences(self.model, self.red)

    def test_six_dependences(self):
        assert len(self.rows) == 6

    def test_distances_unique_for_identity_h(self):
        for r in self.rows:
            assert r.lattice_rank == 0
            assert r.distance is not None
            assert r.distance == r.witness

    def test_useful_classification(self):
        useful = {(r.src, r.dst, r.kind) for r in self.rows
                  if r.classification == "useful"}
        # the flow w2 -> (S1's read) and the anti (S2's read) -> w2
        assert useful == {("S2.W", "S1.R1", "flow"), ("S2.R1", "S2.W", "anti")}
        assert sum(1 for r in self.rows if r.classification == "false") == 4

    def test_loop_carried_flags(self):
        flow = next(r for r in self.rows
                    if r.kind == "flow" and r.classification == "useful")
        assert flow.loop_carried
        assert flow.distance == (1, 0)

    def test_deterministic_order(self):
        again = summarize_dependences(self.model, self.red)
        assert again == self.rows


class TestSummarizeSingular:
    def test_l5_lattice_description(self):
        model = extract_references(catalog.l5())
        rows = summarize_dependences(model)
        c_rows = [r for r in rows if r.array == "C"]
        assert c_rows
        for r in c_rows:
            assert r.lattice_rank == 1      # Ker(H_C) is 1-dimensional
            assert r.distance is None        # no unique distance
            assert r.classification == ""    # no redundancy analysis given

    def test_same_iteration_anti_not_carried(self):
        model = extract_references(catalog.l5())
        rows = summarize_dependences(model)
        anti = [r for r in rows if r.kind == "anti" and r.array == "C"]
        assert any(not r.loop_carried for r in anti)  # witness t = 0


class TestFormatting:
    def test_table_text(self):
        model = extract_references(catalog.l3())
        text = format_dependence_table(summarize_dependences(model))
        assert "array" in text and "flow" in text and "S2.W" in text

    def test_empty(self):
        model = extract_references(parse("for i = 1 to 2 { A[i] = 1; }"))
        assert format_dependence_table(summarize_dependences(model)) == \
            "(no dependences)"

    def test_lattice_notation(self):
        model = extract_references(catalog.l5())
        text = format_dependence_table(summarize_dependences(model))
        assert "+L1" in text  # lattice-described distances
