"""Exact dependence testing and classification."""

import pytest

from repro.analysis import (
    DependenceKind,
    all_dependences,
    dependence_between,
    extract_references,
    has_flow_dependence,
    is_fully_duplicable,
)
from repro.analysis.dependence import access_precedes, is_forall_loop
from repro.lang import catalog, parse


def model_of(src):
    return extract_references(parse(src))


class TestAccessPrecedes:
    def test_statement_order(self, l1):
        model = extract_references(l1)
        refs = model.all_references()
        s1_write = next(r for r in refs if r.stmt_index == 0 and r.is_write)
        s2_read = next(r for r in refs if r.stmt_index == 1 and not r.is_write)
        assert access_precedes(s1_write, s2_read)
        assert not access_precedes(s2_read, s1_write)

    def test_read_before_write_same_statement(self, l5):
        model = extract_references(l5)
        c = model.arrays["C"]
        w = c.writes()[0]
        r = c.reads()[0]
        assert access_precedes(r, w)
        assert not access_precedes(w, r)


class TestDependenceBetween:
    def test_l1_flow_on_a(self, l1):
        model = extract_references(l1)
        info = model.arrays["A"]
        w, r = info.writes()[0], info.reads()[0]
        dep = dependence_between(info, w, r, model.space)
        assert dep is not None and dep.kind is DependenceKind.FLOW
        assert tuple(int(x) for x in dep.witness) == (1, 1)

    def test_l1_no_reverse_flow(self, l1):
        model = extract_references(l1)
        info = model.arrays["A"]
        w, r = info.writes()[0], info.reads()[0]
        dep = dependence_between(info, r, w, model.space)
        assert dep is None  # t = (-1,-1) is lexicographically negative

    def test_l2_inconsistent_system_no_dep(self, l2):
        # A[i+j-1,i+j-1] vs A[i+j-1,i+j]: H t = (0,-1) unsolvable
        model = extract_references(l2)
        info = model.arrays["A"]
        w2 = info.writes()[1]
        r1 = info.reads()[0]
        assert dependence_between(info, w2, r1, model.space) is None
        assert dependence_between(info, r1, w2, model.space) is None

    def test_l2_non_integer_solution_no_dep(self, l2):
        # B: t = (1/2, 1) is not integral -> no dependence on B
        model = extract_references(l2)
        info = model.arrays["B"]
        a, b = info.references
        assert dependence_between(info, a, b, model.space) is None

    def test_l5_flow_on_c_along_k(self, l5):
        model = extract_references(l5)
        info = model.arrays["C"]
        w, r = info.writes()[0], info.reads()[0]
        dep = dependence_between(info, w, r, model.space)
        assert dep is not None and dep.kind is DependenceKind.FLOW
        t = dep.witness
        assert t[0] == 0 and t[1] == 0 and t[2] > 0

    def test_same_iteration_anti_on_c(self, l5):
        model = extract_references(l5)
        info = model.arrays["C"]
        w, r = info.writes()[0], info.reads()[0]
        dep = dependence_between(info, r, w, model.space)
        assert dep is not None and dep.kind is DependenceKind.ANTI

    def test_out_of_range_difference(self):
        # offset difference 10 exceeds the 4-iteration space: no dependence
        model = model_of("for i = 1 to 4 { A[i] = A[i - 10]; }")
        info = model.arrays["A"]
        w, r = info.writes()[0], info.reads()[0]
        assert dependence_between(info, w, r, model.space) is None

    def test_in_range_difference(self):
        model = model_of("for i = 1 to 4 { A[i] = A[i - 3]; }")
        info = model.arrays["A"]
        w, r = info.writes()[0], info.reads()[0]
        dep = dependence_between(info, w, r, model.space)
        assert dep is not None and tuple(dep.witness) == (3,)

    def test_triangular_space_exactness(self):
        # In a triangular space, i2-i1=(0,3) requires j and j+3 <= i:
        # only possible at i=4, which exists -> dependence present for n=4
        nest = parse("for i = 1 to 4 { for j = 1 to i { T[i,j] = T[i,j-3]; } }")
        model = extract_references(nest)
        info = model.arrays["T"]
        w, r = info.writes()[0], info.reads()[0]
        assert dependence_between(info, w, r, model.space) is not None
        # with n=3 no row is long enough
        nest3 = parse("for i = 1 to 3 { for j = 1 to i { T[i,j] = T[i,j-3]; } }")
        m3 = extract_references(nest3)
        i3 = m3.arrays["T"]
        assert dependence_between(i3, i3.writes()[0], i3.reads()[0],
                                  m3.space) is None


class TestAggregates:
    def test_all_dependences_l1(self, l1):
        model = extract_references(l1)
        deps = all_dependences(model)
        kinds = {(d.array, d.kind) for d in deps}
        assert ("A", DependenceKind.FLOW) in kinds
        assert ("C", DependenceKind.INPUT) in kinds
        assert not any(d.array == "B" for d in deps)

    def test_fully_duplicable_l2(self, l2):
        model = extract_references(l2)
        assert is_fully_duplicable(model.arrays["A"], model.space)
        assert is_fully_duplicable(model.arrays["B"], model.space)

    def test_fully_duplicable_l5(self, l5):
        model = extract_references(l5)
        assert is_fully_duplicable(model.arrays["A"], model.space)
        assert is_fully_duplicable(model.arrays["B"], model.space)
        assert not is_fully_duplicable(model.arrays["C"], model.space)
        assert has_flow_dependence(model.arrays["C"], model.space)

    def test_read_only_array_is_fully_duplicable(self, l1):
        model = extract_references(l1)
        assert is_fully_duplicable(model.arrays["B"], model.space)


class TestForallDetection:
    def test_l1_not_forall(self, l1):
        assert not is_forall_loop(extract_references(l1))

    def test_independent_is_forall(self):
        assert is_forall_loop(extract_references(catalog.independent()))

    def test_l2_is_forall(self, l2):
        # all deps in L2 are intra-iteration or nonexistent across iterations?
        model = extract_references(l2)
        # L2 carries an output dependence between iterations (w1->w2, t=(1,0))
        assert not is_forall_loop(model)

    def test_input_deps_dont_block_forall(self):
        model = model_of("for i = 1 to 4 { A[i] = B[i] + B[i - 1]; }")
        assert is_forall_loop(model)
