"""Sequential trace construction."""

from repro.analysis import build_trace, extract_references
from repro.lang import parse


def traced(src):
    model = extract_references(parse(src))
    return model, build_trace(model)


class TestTraceStructure:
    def test_computation_count(self, l1):
        model = extract_references(l1)
        trace = build_trace(model)
        assert len(trace.computations) == 32  # 16 iterations x 2 statements

    def test_execution_order(self, l1):
        model = extract_references(l1)
        trace = build_trace(model)
        comps = trace.computations
        assert [c.seq for c in comps] == list(range(len(comps)))
        # iteration-major, statement-minor
        assert comps[0].comp == (0, (1, 1))
        assert comps[1].comp == (1, (1, 1))
        assert comps[2].comp == (0, (1, 2))

    def test_reads_then_write_times(self):
        model, trace = traced("for i = 1 to 2 { A[i] = A[i]; }")
        events = trace.timelines[("A", (1,))]
        assert [(e.is_write) for e in events] == [False, True]
        assert events[0].time < events[1].time

    def test_elements_resolved(self, l1):
        model = extract_references(l1)
        trace = build_trace(model)
        first = trace.computations[0]  # S1 at (1,1): A[2,1] = C[1,1]*7
        assert first.write_element == ("A", (2, 1))
        assert [e for e, _ in first.read_elements] == [("C", (1, 1))]

    def test_timeline_ordering(self, l3):
        model = extract_references(l3)
        trace = build_trace(model)
        for element, events in trace.timelines.items():
            times = [e.time for e in events]
            assert times == sorted(times)


class TestTimelineQueries:
    def test_writes_and_reads_of(self):
        model, trace = traced("for i = 1 to 3 { A[i] = A[i - 1]; }")
        assert len(trace.writes_to(("A", (1,)))) == 1
        assert len(trace.reads_of(("A", (1,)))) == 1  # read by i=2
        assert len(trace.reads_of(("A", (0,)))) == 1
        assert trace.writes_to(("A", (0,))) == []

    def test_last_write_before(self):
        model, trace = traced("for i = 1 to 3 { A[1] = A[1] + 1; }")
        events = trace.timelines[("A", (1,))]
        # read at i=2 sees the write at i=1
        read_i2 = [e for e in events if not e.is_write][1]
        w = trace.last_write_before(("A", (1,)), read_i2.time)
        assert w is not None and w.comp == (0, (1,))

    def test_last_write_before_none(self):
        model, trace = traced("for i = 1 to 2 { A[i] = B[i]; }")
        ev = trace.reads_of(("B", (1,)))[0]
        assert trace.last_write_before(("B", (1,)), ev.time) is None

    def test_multi_statement_within_iteration(self):
        model, trace = traced("""
            for i = 1 to 2 {
              A[i] = 1;
              B[i] = A[i];
            }
        """)
        # B's read of A[i] must see the same-iteration write by S1
        read = trace.reads_of(("A", (1,)))[0]
        w = trace.last_write_before(("A", (1,)), read.time)
        assert w is not None and w.comp == (0, (1,))
