"""Figure regeneration: the structured data behind Figs. 1-10."""

import pytest

from repro.viz import (
    fig01_l1_dataspaces,
    fig02_l1_data_partition,
    fig03_l1_iteration_partition,
    fig04_l2_data_partition,
    fig05_l2_iteration_partition,
    fig07_l3_reference_graph,
    fig08_l3_data_partition,
    fig09_l3_iteration_partition,
    fig10_l4_processor_assignment,
)


class TestFig1:
    def test_drvs(self):
        art = fig01_l1_dataspaces()
        assert art.data["drvs"] == {"A": [(2, 1)], "B": [], "C": [(1, 1)]}

    def test_renders_all_arrays(self):
        text = fig01_l1_dataspaces().text
        for name in ("array A", "array B", "array C"):
            assert name in text


class TestFigs2And3:
    def test_seven_blocks(self):
        art = fig02_l1_data_partition()
        assert art.data["num_blocks"] == 7

    def test_data_block_sizes(self):
        art = fig02_l1_data_partition()
        sizes = art.data["block_sizes"]
        # all referenced elements covered, disjointly
        # A: {A[2i,j]} ∪ {A[2i-2,j-1]} = 16 + 16 - 9 = 23 distinct elements
        assert sum(sizes["A"]) == 23
        assert sum(sizes["B"]) == 16
        assert sum(sizes["C"]) == 23

    def test_base_points_match_paper(self):
        art = fig03_l1_iteration_partition()
        assert art.data["base_points"] == [
            (1, 1), (1, 2), (1, 3), (1, 4), (2, 1), (3, 1), (4, 1)]
        assert art.data["block_sizes"] == [4, 3, 2, 1, 3, 2, 1]


class TestFigs4And5:
    def test_16_singleton_blocks(self):
        assert fig05_l2_iteration_partition().data["num_blocks"] == 16

    def test_replication_reported(self):
        art = fig04_l2_data_partition()
        assert art.data["replication"]["A"] > 1.0  # duplicated data visible


class TestFig7:
    def test_edge_structure(self):
        art = fig07_l3_reference_graph()
        assert sorted(art.data["edges"]) == sorted([
            ("w1", "w2", "output"), ("r2", "r1", "input"),
            ("r2", "w1", "anti"), ("r2", "w2", "anti"),
            ("w1", "r1", "flow"), ("w2", "r1", "flow"),
        ])


class TestFigs8And9:
    def test_four_blocks(self):
        assert fig08_l3_data_partition().data["num_blocks"] == 4

    def test_n_s1(self):
        art = fig09_l3_iteration_partition()
        assert art.data["N_S1"] == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_dotted_marks_present(self):
        assert ":" in fig09_l3_iteration_partition().text


class TestFig10:
    def test_grid_and_loads(self):
        art = fig10_l4_processor_assignment()
        assert art.data["grid"] == (2, 2)
        assert art.data["loads"] == {(0, 0): 16, (0, 1): 16,
                                     (1, 0): 16, (1, 1): 16}
        assert art.data["imbalance"] == 1.0

    def test_pseudocode_included(self):
        text = fig10_l4_processor_assignment().text
        assert "forall" in text

    def test_str_banner(self):
        s = str(fig10_l4_processor_assignment())
        assert s.startswith("=== Fig. 10")
