"""ASCII partition renderers."""

from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.viz import (
    render_data_partition,
    render_data_space,
    render_iteration_partition,
)


class TestRenderDataSpace:
    def test_marks_used_cells(self):
        out = render_data_space([(0, 0), (2, 1)], title="T")
        assert out.splitlines()[0] == "T"
        assert "o" in out and "." in out

    def test_empty(self):
        assert "(empty)" in render_data_space([], title="X")


class TestRenderDataPartition:
    def test_l1_array_a(self):
        plan = build_plan(catalog.l1())
        out = render_data_partition(plan.data_blocks["A"])
        # block ids 0..6 appear; unused strided columns are dots
        for d in "0123456":
            assert d in out
        assert "." in out
        assert "*" not in out  # non-duplicate: no replication

    def test_duplicated_cells_starred(self):
        plan = build_plan(catalog.l5(), Strategy.DUPLICATE)
        out = render_data_partition(plan.data_blocks["B"])
        assert "*" in out

    def test_axis_labels_present(self):
        plan = build_plan(catalog.l1())
        out = render_data_partition(plan.data_blocks["C"])
        assert "+" in out and "|" in out


class TestRenderIterationPartition:
    def test_l1(self):
        plan = build_plan(catalog.l1())
        out = render_iteration_partition(plan.blocks)
        # diagonal structure: (1,1) and (2,2) same digit
        lines = {ln.split("|")[0].strip(): ln for ln in out.splitlines()
                 if "|" in ln}
        assert lines["1"].split("| ")[1].split()[0] == \
               lines["2"].split("| ")[1].split()[1]

    def test_mark_overrides(self):
        plan = build_plan(catalog.l3(), Strategy.DUPLICATE,
                          eliminate_redundant=True)
        mark = {(1, 1): ":"}
        out = render_iteration_partition(plan.blocks, mark=mark)
        assert ":" in out

    def test_empty(self):
        assert "(empty)" in render_iteration_partition([], title="E")

    def test_many_blocks_hash_fallback(self):
        plan = build_plan(catalog.independent(7))  # 49 singleton blocks
        out = render_iteration_partition(plan.blocks)
        assert "#" in out  # ids >= 36 render as '#'
