"""Golden-master regression tests: figure renderings are pinned byte-exact.

If a legitimate change alters a rendering, regenerate the goldens with:

    python - <<'EOF'
    from tests.viz.test_golden_figures import regenerate
    regenerate()
    EOF
"""

import pathlib

import pytest

from repro.viz import (
    fig01_l1_dataspaces,
    fig02_l1_data_partition,
    fig03_l1_iteration_partition,
    fig04_l2_data_partition,
    fig05_l2_iteration_partition,
    fig07_l3_reference_graph,
    fig08_l3_data_partition,
    fig09_l3_iteration_partition,
    fig10_l4_processor_assignment,
)

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "golden"

FIGURES = {
    "fig1": fig01_l1_dataspaces,
    "fig2": fig02_l1_data_partition,
    "fig3": fig03_l1_iteration_partition,
    "fig4": fig04_l2_data_partition,
    "fig5": fig05_l2_iteration_partition,
    "fig7": fig07_l3_reference_graph,
    "fig8": fig08_l3_data_partition,
    "fig9": fig09_l3_iteration_partition,
    "fig10": fig10_l4_processor_assignment,
}


def regenerate():  # pragma: no cover - maintenance helper
    for name, fn in FIGURES.items():
        (GOLDEN_DIR / f"{name}.txt").write_text(str(fn()) + "\n")


@pytest.mark.parametrize("name", sorted(FIGURES))
def test_figure_matches_golden(name):
    expected = (GOLDEN_DIR / f"{name}.txt").read_text()
    actual = str(FIGURES[name]()) + "\n"
    assert actual == expected, (
        f"{name} rendering changed; if intended, regenerate the goldens "
        f"(see module docstring)"
    )


def test_goldens_all_present():
    assert {p.stem for p in GOLDEN_DIR.glob("*.txt")} >= set(FIGURES)
