"""DOT export of reference graphs."""

from repro.analysis import build_reference_graph, extract_references
from repro.lang import catalog
from repro.viz.dot import to_dot


class TestToDot:
    def setup_method(self):
        model = extract_references(catalog.l3())
        self.g = build_reference_graph(model, "A")
        self.dot = to_dot(self.g, title="L3")

    def test_valid_digraph_shell(self):
        assert self.dot.startswith('digraph "L3" {')
        assert self.dot.rstrip().endswith("}")
        assert self.dot.count("{") == self.dot.count("}")

    def test_all_vertices_present(self):
        for name in ("w1", "w2", "r1", "r2"):
            assert f'"{name}"' in self.dot

    def test_vertex_labels_show_subscripts(self):
        assert "A[i, j]" in self.dot
        assert "A[i + 1, j - 2]" in self.dot

    def test_all_edges_with_kinds(self):
        assert self.dot.count("->") == 6
        for sym in ("δf", "δa", "δo", "δi"):
            assert sym in self.dot

    def test_witness_vectors_in_labels(self):
        assert "t=(1, 0)" in self.dot  # the useful flow dependence

    def test_rank_layout(self):
        assert "rank=source" in self.dot and "rank=sink" in self.dot

    def test_empty_graph(self):
        model = extract_references(catalog.l1())
        g = build_reference_graph(model, "B")  # single write, no edges
        dot = to_dot(g)
        assert "->" not in dot
        assert '"w1"' in dot
