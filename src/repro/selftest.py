"""Runtime self-test: every paper claim checked in one call.

``python -m repro selftest`` reruns the reproduction's ground truth --
the analysis results, partition structures, transformation facts and
performance-shape claims of the paper -- and prints a PASS/FAIL line
per claim.  A downstream user can run it after install to confirm the
reproduction is intact on their machine.

Plans are built through the shared pass pipeline with
:meth:`repro.pipeline.PipelineConfig.from_flags`, so every claim
exercises exactly the strategy/elimination plumbing the CLI uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass
class Claim:
    section: str
    statement: str
    check: Callable[[], bool]


def _claims() -> list[Claim]:
    from repro.analysis import (
        analyze_redundancy,
        build_reference_graph,
        data_referenced_vectors,
        extract_references,
        is_fully_duplicable,
    )
    from repro.baseline import hyperplane_partition
    from repro.lang import catalog
    from repro.machine.cost import TRANSPUTER
    from repro.mapping import assign_blocks, shape_grid, workload_stats
    from repro.perf import simulate_l5, simulate_l5_doubleprime, simulate_l5_prime
    from repro.pipeline import PipelineConfig, run_pipeline
    from repro.ratlinalg import Subspace
    from repro.runtime.verify import _verify_plan as verify_plan
    from repro.transform import transform_nest

    def build_plan(loop, duplicate=False, duplicate_arrays=None,
                   eliminate=False):
        # exactly the CLI's flag semantics, via the shared pipeline config
        config = PipelineConfig.from_flags(
            duplicate=duplicate, duplicate_arrays=duplicate_arrays,
            eliminate=eliminate)
        return run_pipeline(loop, config, upto="partition").plan

    def drvs(loop, array):
        model = extract_references(loop)
        return [tuple(int(x) for x in d.vector)
                for d in data_referenced_vectors(model.arrays[array])]

    claims: list[Claim] = [
        Claim("II", "L1 data-referenced vectors are (2,1) for A, (1,1) for C",
              lambda: drvs(catalog.l1(), "A") == [(2, 1)]
              and drvs(catalog.l1(), "C") == [(1, 1)]),
        Claim("III.A", "L1: Psi = span{(1,1)} with 7 blocks",
              lambda: (lambda p: p.psi == Subspace(2, [[1, 1]])
                       and p.num_blocks == 7)(build_plan(catalog.l1()))),
        Claim("III.A", "L1 verifies: zero communication, exact result",
              lambda: verify_plan(build_plan(catalog.l1())).ok),
        Claim("III.A", "L2 is sequential without duplication",
              lambda: build_plan(catalog.l2()).num_blocks == 1),
        Claim("III.B", "L2's arrays are fully duplicable",
              lambda: (lambda m: is_fully_duplicable(m.arrays["A"], m.space)
                       and is_fully_duplicable(m.arrays["B"], m.space))(
                  extract_references(catalog.l2()))),
        Claim("III.B", "L2 duplicate strategy: 16 parallel blocks, exact",
              lambda: (lambda p: p.num_blocks == 16 and verify_plan(p).ok)(
                  build_plan(catalog.l2(), duplicate=True))),
        Claim("III.C", "L3: N(S1) = {(i,4)}",
              lambda: analyze_redundancy(
                  extract_references(catalog.l3())).n_set(0)
              == {(i, 4) for i in range(1, 5)}),
        Claim("III.C", "L3: G^A has 6 edges (Fig. 7)",
              lambda: len(build_reference_graph(
                  extract_references(catalog.l3()), "A").edges) == 6),
        Claim("III.C", "L3 minimal duplicate: Psi = span{(1,0)}, 4 blocks",
              lambda: (lambda p: p.psi == Subspace(2, [[1, 0]])
                       and p.num_blocks == 4)(
                  build_plan(catalog.l3(), duplicate=True, eliminate=True))),
        Claim("III.C", "L3 elimination skips 12 computations, stays exact",
              lambda: (lambda r: r.ok and r.skipped_computations == 12)(
                  verify_plan(build_plan(catalog.l3(), duplicate=True,
                                         eliminate=True)))),
        Claim("III.A", "R&S baseline inapplicable to L1 (not For-all)",
              lambda: not hyperplane_partition(catalog.l1()).applicable),
        Claim("IV", "L4: Psi = span{(1,-1,1)}, 37 forall points",
              lambda: (lambda p: p.psi == Subspace(3, [[1, -1, 1]])
                       and p.num_blocks == 37)(build_plan(catalog.l4()))),
        Claim("IV", "L4' on a 2x2 grid: 16 iterations per processor",
              lambda: (lambda t: workload_stats(
                  assign_blocks(t, shape_grid(4, t.k))).loads
                  == {(0, 0): 16, (0, 1): 16, (1, 0): 16, (1, 1): 16})(
                  transform_nest(catalog.l4(),
                                 build_plan(catalog.l4()).psi))),
        Claim("IV", "L5 strategies: 1 / 4 / 16 blocks (L5, L5', L5'')",
              lambda: build_plan(catalog.l5()).num_blocks == 1
              and build_plan(catalog.l5(),
                             duplicate_arrays={"B"}).num_blocks == 4
              and build_plan(catalog.l5(), duplicate=True).num_blocks == 16),
        Claim("IV", "Table I shape: L5'' < L5' < L5 at M=64, p=16",
              lambda: simulate_l5_doubleprime(64, 16).total_time
              < simulate_l5_prime(64, 16).total_time
              < simulate_l5(64).total_time),
        Claim("IV", "Table I calibration: sequential M=256 within 2% of paper",
              lambda: abs(simulate_l5(256).total_time / 161.2546 - 1) < 0.02),
        Claim("IV", "Table II shape: speedup grows with M, bounded by p",
              lambda: (lambda sp: sp[0] < sp[1] < sp[2] < 16)(
                  [simulate_l5(m).total_time
                   / simulate_l5_doubleprime(m, 16).total_time
                   for m in (16, 64, 256)])),
    ]
    return claims


def run_selftest(out=None) -> int:
    """Run every claim; returns the number of failures."""
    import sys

    out = out or sys.stdout
    failures = 0
    for claim in _claims():
        try:
            ok = claim.check()
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            ok = False
            print(f"[ERROR] {claim.section}: {claim.statement} ({exc})",
                  file=out)
            failures += 1
            continue
        status = "PASS" if ok else "FAIL"
        if not ok:
            failures += 1
        print(f"[{status}] {claim.section}: {claim.statement}", file=out)
    total = len(_claims())
    print(f"\n{total - failures}/{total} claims reproduced", file=out)
    return failures
