"""Catalog of loops: the paper's L1-L5 plus extra workloads.

Every function returns a freshly parsed :class:`~repro.lang.ast.LoopNest`
so callers can mutate derived structures without aliasing.

The extra workloads (convolution, DFT-as-nested-loop, SOR-like stencil)
mirror the applications the paper's UPPER project evaluates and are used
by the examples and the property/ablation test suites.
"""

from __future__ import annotations

from repro.lang.ast import LoopNest
from repro.lang.parser import parse


def l1(n: int = 4) -> LoopNest:
    """Paper Example 1 (loop L1): three arrays, partitioning space span{(1,1)}."""
    return parse(
        f"""
        for i = 1 to {n} {{
          for j = 1 to {n} {{
            S1: A[2*i, j] = C[i, j] * 7;
            S2: B[j, i + 1] = A[2*i - 2, j - 1] + C[i - 1, j - 1];
          }}
        }}
        """,
        name="L1",
    )


def l2(n: int = 4) -> LoopNest:
    """Paper Example 2 (loop L2): singular H_A; fully duplicable arrays."""
    return parse(
        f"""
        for i = 1 to {n} {{
          for j = 1 to {n} {{
            S1: A[i + j, i + j] = B[2*i, j] * A[i + j - 1, i + j];
            S2: A[i + j - 1, i + j - 1] = B[2*i - 1, j - 1] / 3;
          }}
        }}
        """,
        name="L2",
    )


def l3(n: int = 4) -> LoopNest:
    """Paper Example 3 (loop L3): redundant computations, minimal spaces."""
    return parse(
        f"""
        for i = 1 to {n} {{
          for j = 1 to {n} {{
            S1: A[i, j] = A[i - 1, j - 1] * 3;
            S2: A[i, j - 1] = A[i + 1, j - 2] / 7;
          }}
        }}
        """,
        name="L3",
    )


def l3_sub(n: int = 4) -> LoopNest:
    """The four-statement variant of L3 used to illustrate redundant writes.

    ``D``, ``F``, ``G``, ``K`` are free scalar parameters.
    """
    return parse(
        f"""
        for i = 1 to {n} {{
          for j = 1 to {n} {{
            S1: A[i, j] = C[i, j] * 3;
            S2: B[i, j] = A[i, j - 1] / D;
            S3: A[i - 1, j - 1] = E[i, j - 1] / F + 11;
            S4: B[i, j - 1] = G * 5 - K;
          }}
        }}
        """,
        name="L3sub",
    )


def l4(n: int = 4) -> LoopNest:
    """Paper Example 4 (loop L4): 3-nested, Psi = span{(1,-1,1)}."""
    return parse(
        f"""
        for i1 = 1 to {n} {{
          for i2 = 1 to {n} {{
            for i3 = 1 to {n} {{
              S1: A[i1, i2, i3] = A[i1 - 1, i2 + 1, i3 - 1] + B[i1, i2, i3];
            }}
          }}
        }}
        """,
        name="L4",
    )


def l5(m: int = 4) -> LoopNest:
    """Paper loop L5: matrix multiplication ``C += A * B`` (Section IV study)."""
    return parse(
        f"""
        for i = 1 to {m} {{
          for j = 1 to {m} {{
            for k = 1 to {m} {{
              S1: C[i, j] = C[i, j] + A[i, k] * B[k, j];
            }}
          }}
        }}
        """,
        name="L5",
    )


def convolution(n: int = 8, w: int = 3) -> LoopNest:
    """1-D convolution ``y[i] += x[i+k] * h[k]`` as a 2-nested loop.

    One of the UPPER-project workloads (Section V).  ``x`` and ``h`` are
    read-only, so the duplicate-data strategy fully parallelizes it.
    """
    return parse(
        f"""
        for i = 1 to {n} {{
          for k = 1 to {w} {{
            S1: Y[i] = Y[i] + X[i + k] * H[k];
          }}
        }}
        """,
        name="CONV",
    )


def dft(n: int = 8) -> LoopNest:
    """DFT-shaped doubly nested accumulation ``X[i] += W[i, k] * x[k]``.

    The twiddle factors are modeled as a precomputed read-only 2-D array
    (the mini-language is linear, so ``W`` carries the non-linear part).
    """
    return parse(
        f"""
        for i = 1 to {n} {{
          for k = 1 to {n} {{
            S1: XOUT[i] = XOUT[i] + W[i, k] * XIN[k];
          }}
        }}
        """,
        name="DFT",
    )


def stencil2d(n: int = 6) -> LoopNest:
    """Diagonal-flow 2-D stencil: communication-free along span{(1,1)}."""
    return parse(
        f"""
        for i = 1 to {n} {{
          for j = 1 to {n} {{
            S1: U[i, j] = U[i - 1, j - 1] + F[i, j];
          }}
        }}
        """,
        name="STENCIL2D",
    )


def triangular(n: int = 5) -> LoopNest:
    """Non-rectangular iteration space (affine upper bound j <= i)."""
    return parse(
        f"""
        for i = 1 to {n} {{
          for j = 1 to i {{
            S1: T[i, j] = T[i - 1, j] + V[i, j];
          }}
        }}
        """,
        name="TRI",
    )


def independent(n: int = 4) -> LoopNest:
    """Embarrassingly parallel loop: every iteration its own block."""
    return parse(
        f"""
        for i = 1 to {n} {{
          for j = 1 to {n} {{
            S1: A[i, j] = B[i, j] * 2;
          }}
        }}
        """,
        name="INDEP",
    )


def axpy(n: int = 8) -> LoopNest:
    """BLAS-1 AXPY ``y = a*x + y``: embarrassingly parallel."""
    return parse(
        f"""
        for i = 1 to {n} {{
          S1: Y[i] = ALPHA * X[i] + Y[i];
        }}
        """,
        name="AXPY",
    )


def outer_product(n: int = 6) -> LoopNest:
    """BLAS-2 rank-1 update ``A += x y^T``: 2-D parallel with duplication."""
    return parse(
        f"""
        for i = 1 to {n} {{
          for j = 1 to {n} {{
            S1: A[i, j] = A[i, j] + X[i] * Y[j];
          }}
        }}
        """,
        name="OUTER",
    )


def matvec(n: int = 6) -> LoopNest:
    """BLAS-2 matrix-vector product ``y += A x`` as a 2-nested loop."""
    return parse(
        f"""
        for i = 1 to {n} {{
          for j = 1 to {n} {{
            S1: Y[i] = Y[i] + A[i, j] * X[j];
          }}
        }}
        """,
        name="MATVEC",
    )


def forward_subst(n: int = 5) -> LoopNest:
    """Forward-substitution-shaped recurrence -- OUTSIDE the model.

    ``x[i] += L[i,j] * x[j]`` references X through two *different*
    reference matrices (``[1 0]`` and ``[0 1]``), so its references are
    not uniformly generated and
    :func:`repro.analysis.extract_references` rejects it.  Kept in the
    catalog (but not in :data:`ALL_LOOPS`) as the canonical example of
    the model boundary.
    """
    return parse(
        f"""
        for i = 1 to {n} {{
          for j = 1 to i {{
            S1: X[i] = X[i] + L[i, j] * X[j];
          }}
        }}
        """,
        name="FSUB",
    )


PAPER_LOOPS = {"L1": l1, "L2": l2, "L3": l3, "L4": l4, "L5": l5}

ALL_LOOPS = {
    **PAPER_LOOPS,
    "L3sub": l3_sub,
    "CONV": convolution,
    "DFT": dft,
    "STENCIL2D": stencil2d,
    "TRI": triangular,
    "INDEP": independent,
    "AXPY": axpy,
    "OUTER": outer_product,
    "MATVEC": matvec,
    # forward_subst is intentionally NOT here: its references are not
    # uniformly generated (the model boundary; see its docstring).
}
