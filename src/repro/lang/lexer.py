"""Tokenizer for the loop mini-language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator


class TokenType(enum.Enum):
    FOR = "for"
    TO = "to"
    STEP = "step"
    IDENT = "ident"
    INT = "int"
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    EOF = "eof"


KEYWORDS = {"for": TokenType.FOR, "to": TokenType.TO, "step": TokenType.STEP}

SINGLE_CHARS = {
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
    ";": TokenType.SEMI,
    ":": TokenType.COLON,
}


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.text!r}, {self.line}:{self.col})"


class LexError(ValueError):
    """Raised for characters the mini-language does not understand."""


class Lexer:
    """Hand-rolled scanner; supports ``#``-to-end-of-line comments."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _peek(self) -> str:
        return self.source[self.pos] if self.pos < len(self.source) else ""

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    def tokens(self) -> Iterator[Token]:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
                continue
            if ch == "#":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
                continue
            line, col = self.line, self.col
            if ch.isdigit():
                text = ""
                while self.pos < len(self.source) and self._peek().isdigit():
                    text += self._advance()
                yield Token(TokenType.INT, text, line, col)
                continue
            if ch.isalpha() or ch == "_":
                text = ""
                while self.pos < len(self.source) and (
                    self._peek().isalnum() or self._peek() == "_"
                ):
                    text += self._advance()
                yield Token(KEYWORDS.get(text, TokenType.IDENT), text, line, col)
                continue
            if ch in SINGLE_CHARS:
                self._advance()
                yield Token(SINGLE_CHARS[ch], ch, line, col)
                continue
            raise LexError(f"unexpected character {ch!r} at line {line}, col {col}")
        yield Token(TokenType.EOF, "", self.line, self.col)


def tokenize(source: str) -> list[Token]:
    """All tokens of ``source`` including the trailing EOF token."""
    return list(Lexer(source).tokens())
