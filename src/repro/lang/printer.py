"""Pretty-printer: AST back to mini-language source.

``parse(to_source(nest))`` round-trips to an equal AST (modulo redundant
parentheses, which the printer inserts conservatively by precedence).
"""

from __future__ import annotations

from repro.lang.ast import ArrayRef, Assign, BinOp, Const, Expr, LoopNest, Name, UnaryOp

_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2}


def expr_to_source(expr: Expr, parent_prec: int = 0, right_side: bool = False) -> str:
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Name):
        return expr.ident
    if isinstance(expr, ArrayRef):
        subs = ", ".join(expr_to_source(s) for s in expr.subscripts)
        return f"{expr.array}[{subs}]"
    if isinstance(expr, UnaryOp):
        inner = expr_to_source(expr.operand, parent_prec=3)
        text = f"-{inner}"
        return f"({text})" if parent_prec >= 2 else text
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        left = expr_to_source(expr.left, prec, right_side=False)
        right = expr_to_source(expr.right, prec, right_side=True)
        text = f"{left} {expr.op} {right}"
        # '-' and '/' are left-associative: parenthesize equal-precedence
        # right operands too.
        needs = parent_prec > prec or (parent_prec == prec and right_side)
        return f"({text})" if needs else text
    raise TypeError(f"cannot print {expr!r}")


def stmt_to_source(stmt: Assign) -> str:
    label = f"{stmt.label}: " if stmt.label else ""
    return f"{label}{expr_to_source(stmt.lhs)} = {expr_to_source(stmt.rhs)};"


def to_source(nest: LoopNest, indent: str = "  ") -> str:
    """Render a :class:`LoopNest` as parseable mini-language source."""
    lines: list[str] = []
    for k, idx in enumerate(nest.indices):
        pad = indent * k
        lo = expr_to_source(nest.lowers[k])
        hi = expr_to_source(nest.uppers[k])
        lines.append(f"{pad}for {idx} = {lo} to {hi} {{")
    body_pad = indent * nest.depth
    for s in nest.statements:
        lines.append(f"{body_pad}{stmt_to_source(s)}")
    for k in range(nest.depth - 1, -1, -1):
        lines.append(f"{indent * k}}}")
    return "\n".join(lines)
