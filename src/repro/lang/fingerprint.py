"""Canonical structural fingerprints of loop nests.

:func:`fingerprint_nest` hashes everything that determines a
partitioning result: the nest name, loop bounds, statement labels and
the full expression structure of every statement (hence every reference
matrix ``H`` and offset ``c``).  It is *normalization-stable*: the
parser normalizes loops on construction, so a nest parsed from source
and the same nest built programmatically hash identically, and loop
*index names* are canonicalized to their positions so ``for i/for j``
versus ``for x/for y`` over the same structure collide on purpose.

Scalar parameter names and array names are semantic (they appear in
summaries and key duplication sets) and are hashed verbatim.

The fingerprint keys the plan cache (:mod:`repro.pipeline.cache`).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Optional

from repro.lang.ast import ArrayRef, Assign, BinOp, Const, Expr, LoopNest, Name, UnaryOp


def _expr_sexpr(expr: Expr, index_pos: Mapping[str, int]) -> str:
    """A canonical S-expression for one expression node."""
    if isinstance(expr, Const):
        return f"(c {expr.value})"
    if isinstance(expr, Name):
        pos = index_pos.get(expr.ident)
        # loop indices by position (rename-invariant), scalars by name
        return f"(i {pos})" if pos is not None else f"(s {expr.ident})"
    if isinstance(expr, UnaryOp):
        return f"(u {expr.op} {_expr_sexpr(expr.operand, index_pos)})"
    if isinstance(expr, BinOp):
        return (f"(b {expr.op} {_expr_sexpr(expr.left, index_pos)} "
                f"{_expr_sexpr(expr.right, index_pos)})")
    if isinstance(expr, ArrayRef):
        subs = " ".join(_expr_sexpr(s, index_pos) for s in expr.subscripts)
        return f"(a {expr.array} {subs})"
    raise TypeError(f"cannot fingerprint expression node {expr!r}")


def _stmt_sexpr(stmt: Assign, index_pos: Mapping[str, int]) -> str:
    return (f"(= {stmt.label!r} {_expr_sexpr(stmt.lhs, index_pos)} "
            f"{_expr_sexpr(stmt.rhs, index_pos)})")


def nest_canonical_form(nest: LoopNest) -> str:
    """The canonical serialization that :func:`fingerprint_nest` hashes.

    Exposed for debugging cache keys: two nests share a fingerprint iff
    they share this string.
    """
    index_pos = {name: k for k, name in enumerate(nest.indices)}
    parts = [f"(nest {nest.name!r} {nest.depth}"]
    for lo, hi in zip(nest.lowers, nest.uppers):
        parts.append(f"(range {_expr_sexpr(lo, index_pos)} "
                     f"{_expr_sexpr(hi, index_pos)})")
    for stmt in nest.statements:
        parts.append(_stmt_sexpr(stmt, index_pos))
    parts.append(")")
    return " ".join(parts)


def fingerprint_nest(nest: LoopNest) -> str:
    """A stable hex digest of the nest's canonical structure."""
    return hashlib.sha256(nest_canonical_form(nest).encode()).hexdigest()


def plan_cache_key(
    nest: LoopNest,
    strategy_value: str,
    duplicate_arrays: Optional[Iterable[str]] = None,
    eliminate_redundant: bool = False,
) -> tuple:
    """The full cache key: nest fingerprint + everything ``build_plan`` varies on.

    ``duplicate_arrays=None`` (the "all arrays" default) is kept distinct
    from an explicit set, mirroring ``partitioning_space`` semantics.
    """
    dup = (None if duplicate_arrays is None
           else tuple(sorted(duplicate_arrays)))
    return (fingerprint_nest(nest), strategy_value, dup,
            bool(eliminate_redundant))
