"""Iteration spaces ``I^n`` of loop nests.

Provides exact enumeration (lexicographic order), membership tests, the
bounding box, and the *difference box* used by Definition 4 condition
(2): the set of possible ``i_2 - i_1`` vectors.
"""

from __future__ import annotations

from fractions import Fraction
from math import ceil, floor
from typing import Iterator, Optional, Sequence

from repro.lang.affine import AffineExpr, affine_of
from repro.lang.ast import LoopNest
from repro.ratlinalg.matrix import RatVec


class IterationSpace:
    """The set of iterations of a :class:`LoopNest`, with exact queries."""

    def __init__(self, nest: LoopNest):
        self.nest = nest
        self.depth = nest.depth
        self._lowers: list[AffineExpr] = [
            affine_of(lo, nest.indices) for lo in nest.lowers
        ]
        self._uppers: list[AffineExpr] = [
            affine_of(hi, nest.indices) for hi in nest.uppers
        ]
        self._points_cache: Optional[list[tuple[int, ...]]] = None
        self._box_cache: Optional[tuple[tuple[int, ...], tuple[int, ...]]] = None
        # rank_of support: ("rect", los, his, strides) or ("map", {point: rank})
        self._rank_cache: Optional[tuple] = None

    # -- structural ----------------------------------------------------------
    def is_rectangular(self) -> bool:
        """True if every bound is a constant (paper examples are all rectangular)."""
        return all(lo.is_constant() and hi.is_constant()
                   for lo, hi in zip(self._lowers, self._uppers))

    def bounds_at(self, prefix: Sequence[int], k: int) -> tuple[int, int]:
        """(lower, upper) of loop ``k`` for the given values of indices[:k]."""
        env = dict(zip(self.nest.indices[:k], prefix))
        lo = self._lowers[k].eval({**env})
        hi = self._uppers[k].eval({**env})
        return ceil(lo), floor(hi)

    # -- enumeration -----------------------------------------------------------
    def iterate(self) -> Iterator[tuple[int, ...]]:
        """All iterations in lexicographic (sequential-execution) order."""
        point: list[int] = [0] * self.depth

        def rec(k: int) -> Iterator[tuple[int, ...]]:
            if k == self.depth:
                yield tuple(point)
                return
            lo, hi = self.bounds_at(point[:k], k)
            for v in range(lo, hi + 1):
                point[k] = v
                yield from rec(k + 1)

        yield from rec(0)

    def points(self) -> list[tuple[int, ...]]:
        """Materialized iteration list (cached)."""
        if self._points_cache is None:
            self._points_cache = list(self.iterate())
        return self._points_cache

    def rank_of(self, point) -> int:
        """Lexicographic rank of ``point`` within the space.

        ``rank_of(p) == space.points().index(p)``, but O(1): rectangular
        spaces use a closed-form stride formula (derived once from the
        loop bounds), non-rectangular ones a lookup table built from the
        cached enumeration.  Raises :class:`ValueError` for points
        outside the space, so callers can use it as a membership check.
        """
        pt = tuple(int(x) for x in point)
        if self._rank_cache is None:
            if self.is_rectangular():
                los, his, strides = [], [], []
                for k in range(self.depth):
                    lo, hi = self.bounds_at((), k)
                    los.append(lo)
                    his.append(hi)
                extents = [max(0, h - l + 1) for l, h in zip(los, his)]
                stride = 1
                strides = [0] * self.depth
                for k in range(self.depth - 1, -1, -1):
                    strides[k] = stride
                    stride *= extents[k]
                self._rank_cache = ("rect", tuple(los), tuple(his),
                                    tuple(strides))
            else:
                self._rank_cache = (
                    "map", {p: r for r, p in enumerate(self.points())})
        kind = self._rank_cache[0]
        if kind == "rect":
            _, los, his, strides = self._rank_cache
            if len(pt) != self.depth:
                raise ValueError(f"rank_of: {pt} has wrong depth")
            rank = 0
            for v, lo, hi, s in zip(pt, los, his, strides):
                if not lo <= v <= hi:
                    raise ValueError(f"rank_of: {pt} outside the space")
                rank += (v - lo) * s
            return rank
        try:
            return self._rank_cache[1][pt]
        except KeyError:
            raise ValueError(f"rank_of: {pt} outside the space") from None

    def rank_strides(self) -> Optional[tuple[tuple[int, ...], tuple[int, ...]]]:
        """``(los, strides)`` of the closed-form rank, or ``None`` if the
        space is not rectangular.  Used by the compiled/vectorized
        engines to inline write-stamp computation."""
        if self._rank_cache is None or self._rank_cache[0] != "rect":
            if not self.is_rectangular():
                return None
            self.rank_of(tuple(self.bounds_at((), k)[0]
                               for k in range(self.depth)))
        if self._rank_cache[0] != "rect":
            return None
        _, los, _his, strides = self._rank_cache
        return los, strides

    def size(self) -> int:
        if self.is_rectangular():
            total = 1
            for k in range(self.depth):
                lo, hi = self.bounds_at((), k)
                total *= max(0, hi - lo + 1)
            return total
        return len(self.points())

    def __contains__(self, point) -> bool:
        pt = tuple(int(x) for x in point)
        if len(pt) != self.depth:
            return False
        if any(isinstance(x, Fraction) and x.denominator != 1 for x in point):
            return False
        for k in range(self.depth):
            lo, hi = self.bounds_at(pt[:k], k)
            if not lo <= pt[k] <= hi:
                return False
        return True

    # -- boxes ------------------------------------------------------------------
    def bounding_box(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Componentwise (min, max) over all iterations.

        Computed by interval arithmetic over the affine bounds (exact for
        rectangular spaces; a tight cover for affine-bounded ones, falling
        back to an exact scan when the interval recursion cannot bound a
        level).
        """
        if self._box_cache is not None:
            return self._box_cache
        if self.is_rectangular():
            lo = tuple(self.bounds_at((), k)[0] for k in range(self.depth))
            hi = tuple(self.bounds_at((), k)[1] for k in range(self.depth))
        else:
            pts = self.points()
            if not pts:
                lo = tuple(0 for _ in range(self.depth))
                hi = tuple(-1 for _ in range(self.depth))
            else:
                lo = tuple(min(p[k] for p in pts) for k in range(self.depth))
                hi = tuple(max(p[k] for p in pts) for k in range(self.depth))
        self._box_cache = (lo, hi)
        return self._box_cache

    def difference_box(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """A box containing every possible ``i_2 - i_1`` difference.

        Exact (equals the true difference set's bounding box) for
        rectangular spaces.
        """
        lo, hi = self.bounding_box()
        return (tuple(l - h for l, h in zip(lo, hi)),
                tuple(h - l for l, h in zip(lo, hi)))

    # -- Definition 4 condition (2) helper ------------------------------------------
    def pair_exists(self, t: RatVec) -> bool:
        """True iff ``t = i_2 - i_1`` for some iterations ``i_1, i_2`` in the space."""
        if not t.is_integral():
            return False
        tv = t.to_ints()
        if len(tv) != self.depth:
            return False
        if self.is_rectangular():
            lo, hi = self.bounding_box()
            return all(abs(tv[k]) <= hi[k] - lo[k] for k in range(self.depth))
        for p in self.points():
            shifted = tuple(p[k] + tv[k] for k in range(self.depth))
            if shifted in self:
                return True
        return False
