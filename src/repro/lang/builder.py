"""Programmatic construction of loop nests (alternative to parsing).

Example -- the paper's loop L1::

    from repro.lang import builder as b

    nest = b.nest(
        b.loop("i", 1, 4),
        b.loop("j", 1, 4),
        body=[
            b.assign(b.ref("A", b.lin((2, "i")), b.lin("j")),
                     b.mul(b.ref("C", b.lin("i"), b.lin("j")), b.const(7)),
                     label="S1"),
        ],
    )
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.lang.ast import ArrayRef, Assign, BinOp, Const, Expr, LoopNest, Name, UnaryOp

ExprLike = Union[Expr, int, str]


def const(v: int) -> Const:
    return Const(int(v))


def name(ident: str) -> Name:
    return Name(ident)


def _coerce(e: ExprLike) -> Expr:
    if isinstance(e, Expr):
        return e
    if isinstance(e, int):
        return Const(e)
    if isinstance(e, str):
        return Name(e)
    raise TypeError(f"cannot coerce {e!r} to an expression")


def add(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("+", _coerce(a), _coerce(b))


def sub(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("-", _coerce(a), _coerce(b))


def mul(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("*", _coerce(a), _coerce(b))


def div(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("/", _coerce(a), _coerce(b))


def neg(a: ExprLike) -> UnaryOp:
    return UnaryOp("-", _coerce(a))


def lin(*terms: Union[ExprLike, tuple[int, str]], const: int = 0) -> Expr:
    """Build an affine expression from terms.

    Each term is an index name (coefficient 1), an int, an expression,
    or a ``(coefficient, index)`` pair; ``const`` adds a trailing
    constant.  ``lin((2, "i"), const=-2)`` is ``2*i - 2``.
    """
    # Each part is (expr, negate): negative coefficients/constants combine
    # by subtraction, matching what the parser produces for "2*i - 2".
    parts: list[tuple[Expr, bool]] = []
    for t in terms:
        if isinstance(t, tuple):
            coeff, idx = t
            if coeff == 1:
                parts.append((Name(idx), False))
            elif coeff == -1:
                parts.append((Name(idx), True))
            elif coeff < 0:
                parts.append((BinOp("*", Const(-coeff), Name(idx)), True))
            else:
                parts.append((BinOp("*", Const(coeff), Name(idx)), False))
        else:
            parts.append((_coerce(t), False))
    if const:
        parts.append((Const(abs(const)), const < 0))
    expr: Expr | None = None
    for p, negate in parts:
        if expr is None:
            expr = UnaryOp("-", p) if negate else p
        else:
            expr = BinOp("-" if negate else "+", expr, p)
    if expr is None:
        expr = Const(0)
    return expr


def ref(array: str, *subscripts: ExprLike) -> ArrayRef:
    return ArrayRef(array=array, subscripts=tuple(_coerce(s) for s in subscripts))


def assign(lhs: ArrayRef, rhs: ExprLike, label: str = "") -> Assign:
    return Assign(lhs=lhs, rhs=_coerce(rhs), label=label)


@dataclass(frozen=True)
class LoopSpec:
    index: str
    lower: Expr
    upper: Expr


def loop(index: str, lower: ExprLike, upper: ExprLike) -> LoopSpec:
    return LoopSpec(index=index, lower=_coerce(lower), upper=_coerce(upper))


def nest(*loops: LoopSpec, body: Sequence[Assign], name: str = "") -> LoopNest:
    return LoopNest(
        indices=tuple(l.index for l in loops),
        lowers=tuple(l.lower for l in loops),
        uppers=tuple(l.upper for l in loops),
        statements=tuple(body),
        name=name,
    )
