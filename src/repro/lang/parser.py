"""Recursive-descent parser for the loop mini-language.

Grammar (EBNF)::

    program  := loop EOF
    loop     := 'for' IDENT '=' expr 'to' expr body
    body     := '{' (loop | stmt+) '}'
    stmt     := [IDENT ':'] arrayref '=' expr ';'
    arrayref := IDENT '[' expr (',' expr)* ']'
    expr     := term (('+' | '-') term)*
    term     := unary (('*' | '/') unary)*
    unary    := '-' unary | atom
    atom     := INT | arrayref | IDENT | '(' expr ')'

The parser enforces the paper's model: the nest must be *perfect*
(statements only at the innermost level), bounds must be affine in the
enclosing indices, and subscripts must be affine in all loop indices
with integer coefficients (checked later by reference extraction).
"""

from __future__ import annotations

from typing import Optional

from repro.lang.affine import NotAffineError, affine_of
from repro.lang.ast import ArrayRef, Assign, BinOp, Const, Expr, LoopNest, Name, UnaryOp
from repro.lang.lexer import Token, TokenType, tokenize


class ParseError(ValueError):
    """Syntax or model-shape error in the mini-language source."""


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing ---------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def _next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type is not TokenType.EOF:
            self.pos += 1
        return tok

    def _expect(self, ttype: TokenType) -> Token:
        tok = self._next()
        if tok.type is not ttype:
            raise ParseError(
                f"expected {ttype.value!r} but found {tok.text!r} "
                f"at line {tok.line}, col {tok.col}"
            )
        return tok

    def _at(self, ttype: TokenType) -> bool:
        return self._peek().type is ttype

    # -- grammar ------------------------------------------------------------
    def parse_program(self, name: str = "") -> LoopNest:
        nest = self.parse_loop(name=name)
        self._expect(TokenType.EOF)
        return nest

    def parse_loop(self, name: str = "") -> LoopNest:
        from repro.lang.normalize import NormalizationError, RawLoopLevel, normalize_steps

        levels: list[RawLoopLevel] = []
        while self._at(TokenType.FOR):
            self._expect(TokenType.FOR)
            idx = self._expect(TokenType.IDENT).text
            self._expect(TokenType.ASSIGN)
            lo = self.parse_expr()
            self._expect(TokenType.TO)
            hi = self.parse_expr()
            step = 1
            if self._at(TokenType.STEP):
                self._next()
                neg = False
                if self._at(TokenType.MINUS):
                    self._next()
                    neg = True
                tok = self._expect(TokenType.INT)
                step = -int(tok.text) if neg else int(tok.text)
            self._expect(TokenType.LBRACE)
            levels.append(RawLoopLevel(index=idx, lower=lo, upper=hi, step=step))
            if not self._at(TokenType.FOR):
                break
        if not levels:
            tok = self._peek()
            raise ParseError(f"expected 'for' at line {tok.line}, col {tok.col}")
        statements: list[Assign] = []
        while not self._at(TokenType.RBRACE):
            statements.append(self.parse_statement())
        for _ in levels:
            self._expect(TokenType.RBRACE)
        if not statements:
            raise ParseError("loop body has no statements")
        try:
            nest = normalize_steps(levels, statements, name=name)
        except NormalizationError as exc:
            raise ParseError(f"cannot normalize loop: {exc}") from exc
        self._validate_bounds(nest)
        return nest

    def parse_statement(self) -> Assign:
        label = ""
        if (self._at(TokenType.IDENT)
                and self._peek(1).type is TokenType.COLON):
            label = self._next().text
            self._next()  # colon
        lhs = self.parse_arrayref_required()
        self._expect(TokenType.ASSIGN)
        rhs = self.parse_expr()
        self._expect(TokenType.SEMI)
        return Assign(lhs=lhs, rhs=rhs, label=label)

    def parse_arrayref_required(self) -> ArrayRef:
        tok = self._expect(TokenType.IDENT)
        if not self._at(TokenType.LBRACKET):
            raise ParseError(
                f"assignment target {tok.text!r} at line {tok.line} must be an "
                "array reference (scalar assignments are outside the model)"
            )
        return self._finish_arrayref(tok.text)

    def _finish_arrayref(self, array: str) -> ArrayRef:
        self._expect(TokenType.LBRACKET)
        subs = [self.parse_expr()]
        while self._at(TokenType.COMMA):
            self._next()
            subs.append(self.parse_expr())
        self._expect(TokenType.RBRACKET)
        return ArrayRef(array=array, subscripts=tuple(subs))

    # expressions -------------------------------------------------------------
    def parse_expr(self) -> Expr:
        left = self.parse_term()
        while self._peek().type in (TokenType.PLUS, TokenType.MINUS):
            op = self._next().text
            right = self.parse_term()
            left = BinOp(op, left, right)
        return left

    def parse_term(self) -> Expr:
        left = self.parse_unary()
        while self._peek().type in (TokenType.STAR, TokenType.SLASH):
            op = self._next().text
            right = self.parse_unary()
            left = BinOp(op, left, right)
        return left

    def parse_unary(self) -> Expr:
        if self._at(TokenType.MINUS):
            self._next()
            return UnaryOp("-", self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        tok = self._peek()
        if tok.type is TokenType.INT:
            self._next()
            return Const(int(tok.text))
        if tok.type is TokenType.IDENT:
            self._next()
            if self._at(TokenType.LBRACKET):
                return self._finish_arrayref(tok.text)
            return Name(tok.text)
        if tok.type is TokenType.LPAREN:
            self._next()
            e = self.parse_expr()
            self._expect(TokenType.RPAREN)
            return e
        raise ParseError(
            f"unexpected token {tok.text!r} at line {tok.line}, col {tok.col}"
        )

    # model checks ---------------------------------------------------------------
    @staticmethod
    def _validate_bounds(nest: LoopNest) -> None:
        for k in range(nest.depth):
            prefix = nest.indices[:k]
            for which, bound in (("lower", nest.lowers[k]), ("upper", nest.uppers[k])):
                try:
                    ae = affine_of(bound, nest.indices)
                except NotAffineError as exc:
                    raise ParseError(
                        f"{which} bound of loop {nest.indices[k]!r} is not affine: {exc}"
                    ) from exc
                if not ae.depends_only_on_prefix(k):
                    raise ParseError(
                        f"{which} bound of loop {nest.indices[k]!r} references a "
                        f"non-enclosing index (allowed: {list(prefix)})"
                    )
                if not ae.is_integral():
                    raise ParseError(
                        f"{which} bound of loop {nest.indices[k]!r} has non-integer "
                        "coefficients"
                    )


def parse(source: str, name: str = "") -> LoopNest:
    """Parse mini-language source into a :class:`LoopNest`."""
    return Parser(source).parse_program(name=name)


def parse_multi(source: str, name_prefix: str = "PHASE") -> list[LoopNest]:
    """Parse a *program file*: a sequence of top-level loop nests.

    Each nest becomes one phase of a multi-loop program (see
    :mod:`repro.program`); phases are named ``PHASE1, PHASE2, ...``
    unless ``name_prefix`` says otherwise.
    """
    parser = Parser(source)
    nests: list[LoopNest] = []
    while not parser._at(TokenType.EOF):
        nests.append(parser.parse_loop(name=f"{name_prefix}{len(nests) + 1}"))
    parser._expect(TokenType.EOF)
    if not nests:
        raise ParseError("program file contains no loops")
    return nests
