"""AST for the loop mini-language.

The top-level object is :class:`LoopNest` -- a *perfectly nested,
normalized* ``n``-deep loop (the paper's Section II model).  Expression
nodes are deliberately small: constants, names (loop indices or free
scalar parameters), array references with affine subscripts, unary minus
and the four binary operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union


class Expr:
    """Base class for expression nodes."""

    def array_refs(self) -> Iterator["ArrayRef"]:
        """All array references in this expression, left to right."""
        if isinstance(self, ArrayRef):
            yield self
            for s in self.subscripts:
                yield from s.array_refs()
        elif isinstance(self, BinOp):
            yield from self.left.array_refs()
            yield from self.right.array_refs()
        elif isinstance(self, UnaryOp):
            yield from self.operand.array_refs()

    def names(self) -> Iterator[str]:
        """All identifiers (indices and scalars) in this expression."""
        if isinstance(self, Name):
            yield self.ident
        elif isinstance(self, ArrayRef):
            for s in self.subscripts:
                yield from s.names()
        elif isinstance(self, BinOp):
            yield from self.left.names()
            yield from self.right.names()
        elif isinstance(self, UnaryOp):
            yield from self.operand.names()


@dataclass(frozen=True)
class Const(Expr):
    value: int

    def __repr__(self) -> str:
        return f"Const({self.value})"


@dataclass(frozen=True)
class Name(Expr):
    """A loop index or a free scalar parameter; resolved by context."""

    ident: str

    def __repr__(self) -> str:
        return f"Name({self.ident})"


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # one of + - * /
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in "+-*/":
            raise ValueError(f"unknown operator {self.op!r}")

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.left!r}, {self.right!r})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # only '-'
    operand: Expr

    def __post_init__(self):
        if self.op != "-":
            raise ValueError(f"unknown unary operator {self.op!r}")


@dataclass(frozen=True)
class ArrayRef(Expr):
    """``array[sub_1, ..., sub_d]`` with affine subscripts."""

    array: str
    subscripts: tuple[Expr, ...]

    @property
    def rank(self) -> int:
        return len(self.subscripts)

    def __repr__(self) -> str:
        return f"ArrayRef({self.array}, {list(self.subscripts)})"


@dataclass(frozen=True)
class Assign:
    """One assignment statement ``label: lhs = rhs;``."""

    lhs: ArrayRef
    rhs: Expr
    label: str = ""

    def reads(self) -> Iterator[ArrayRef]:
        """Array references read by this statement (RHS, plus any refs in
        the LHS *subscripts* -- subscripts are affine so there are none in
        practice, but we stay general)."""
        yield from self.rhs.array_refs()
        for s in self.lhs.subscripts:
            yield from s.array_refs()

    def writes(self) -> ArrayRef:
        return self.lhs

    def scalar_names(self, index_names: Sequence[str]) -> set[str]:
        """Free scalar parameter names used by this statement."""
        idx = set(index_names)
        return {n for n in list(self.rhs.names()) + list(
            nm for s in self.lhs.subscripts for nm in s.names()
        ) if n not in idx}


@dataclass(frozen=True)
class LoopNest:
    """A perfectly nested normalized loop.

    ``indices[k]`` iterates from ``lowers[k]`` to ``uppers[k]``
    inclusive, where the bounds are expressions affine in
    ``indices[:k]``.  ``statements`` is the (ordered) loop body.
    """

    indices: tuple[str, ...]
    lowers: tuple[Expr, ...]
    uppers: tuple[Expr, ...]
    statements: tuple[Assign, ...]
    name: str = ""

    def __post_init__(self):
        n = len(self.indices)
        if len(self.lowers) != n or len(self.uppers) != n:
            raise ValueError("bounds/indices arity mismatch")
        if len(set(self.indices)) != n:
            raise ValueError(f"duplicate loop indices in {self.indices}")
        if not self.statements:
            raise ValueError("loop nest with an empty body")
        seen = set()
        for k, s in enumerate(self.statements):
            if s.label and s.label in seen:
                raise ValueError(f"duplicate statement label {s.label}")
            seen.add(s.label)

    @property
    def depth(self) -> int:
        return len(self.indices)

    def array_names(self) -> list[str]:
        """All arrays referenced, in first-appearance order."""
        out: list[str] = []
        for s in self.statements:
            for ref in [s.lhs] + list(s.reads()):
                if ref.array not in out:
                    out.append(ref.array)
        return out

    def scalar_names(self) -> set[str]:
        """Free scalar parameters (non-index names outside subscripts)."""
        out: set[str] = set()
        for s in self.statements:
            out |= s.scalar_names(self.indices)
        return out

    def statement_label(self, k: int) -> str:
        s = self.statements[k]
        return s.label or f"S{k + 1}"

    def with_statements(self, statements: Sequence[Assign]) -> "LoopNest":
        return LoopNest(self.indices, self.lowers, self.uppers,
                        tuple(statements), self.name)


Node = Union[Expr, Assign, LoopNest]
