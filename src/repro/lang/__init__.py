"""The loop mini-language: the paper's normalized nested-loop model.

A program is one perfectly nested, normalized ``n``-deep loop whose body
is a list of array assignment statements (the paper's Section II model):

.. code-block:: text

    for i = 1 to 4 {
      for j = 1 to 4 {
        S1: A[2*i, j]   = C[i, j] * 7;
        S2: B[j, i+1]   = A[2*i - 2, j - 1] + C[i - 1, j - 1];
      }
    }

Loop bounds are affine expressions in the enclosing indices; subscripts
are affine expressions in the loop indices (this is exactly what makes
references *uniformly generated* analysable: ``A[H i + c]``).

Use :func:`parse` for source text or :mod:`repro.lang.builder` to build
nests programmatically; :mod:`repro.lang.catalog` has the paper's loops
L1-L5 ready-made.
"""

from repro.lang.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    Expr,
    LoopNest,
    Name,
    UnaryOp,
)
from repro.lang.affine import AffineExpr, NotAffineError, affine_of
from repro.lang.lexer import Lexer, LexError, Token, TokenType, tokenize
from repro.lang.parser import ParseError, Parser, parse, parse_multi
from repro.lang.printer import to_source
from repro.lang.space import IterationSpace
from repro.lang import builder, catalog

__all__ = [
    "ArrayRef",
    "Assign",
    "BinOp",
    "Const",
    "Expr",
    "LoopNest",
    "Name",
    "UnaryOp",
    "AffineExpr",
    "NotAffineError",
    "affine_of",
    "Lexer",
    "LexError",
    "Token",
    "TokenType",
    "tokenize",
    "ParseError",
    "Parser",
    "parse",
    "parse_multi",
    "to_source",
    "IterationSpace",
    "builder",
    "catalog",
]
