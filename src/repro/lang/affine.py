"""Affine-expression extraction.

Subscripts and loop bounds must be affine in the loop indices:
``a_1 I_1 + ... + a_n I_n + c`` with integer (rational, in intermediate
forms) coefficients.  :func:`affine_of` converts an expression AST into
an :class:`AffineExpr` or raises :class:`NotAffineError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from repro.lang.ast import ArrayRef, BinOp, Const, Expr, Name, UnaryOp
from repro.ratlinalg.matrix import RatVec, as_fraction


class NotAffineError(ValueError):
    """The expression is not affine in the loop indices."""


@dataclass(frozen=True)
class AffineExpr:
    """``sum_k coeffs[k] * index_k + const`` over a fixed index tuple."""

    indices: tuple[str, ...]
    coeffs: tuple[Fraction, ...]
    const: Fraction

    @staticmethod
    def constant(indices: Sequence[str], value) -> "AffineExpr":
        return AffineExpr(tuple(indices),
                          tuple(Fraction(0) for _ in indices),
                          as_fraction(value))

    @staticmethod
    def index(indices: Sequence[str], name: str) -> "AffineExpr":
        idx = tuple(indices)
        if name not in idx:
            raise NotAffineError(f"{name} is not a loop index of {idx}")
        return AffineExpr(idx,
                          tuple(Fraction(int(nm == name)) for nm in idx),
                          Fraction(0))

    # -- arithmetic (closed under affine operations) ---------------------
    def _check(self, other: "AffineExpr") -> None:
        if self.indices != other.indices:
            raise ValueError("mixing affine expressions over different index tuples")

    def __add__(self, other: "AffineExpr") -> "AffineExpr":
        self._check(other)
        return AffineExpr(self.indices,
                          tuple(a + b for a, b in zip(self.coeffs, other.coeffs)),
                          self.const + other.const)

    def __sub__(self, other: "AffineExpr") -> "AffineExpr":
        self._check(other)
        return AffineExpr(self.indices,
                          tuple(a - b for a, b in zip(self.coeffs, other.coeffs)),
                          self.const - other.const)

    def __neg__(self) -> "AffineExpr":
        return AffineExpr(self.indices, tuple(-a for a in self.coeffs), -self.const)

    def scale(self, k) -> "AffineExpr":
        k = as_fraction(k)
        return AffineExpr(self.indices, tuple(a * k for a in self.coeffs), self.const * k)

    def is_constant(self) -> bool:
        return all(a == 0 for a in self.coeffs)

    def is_integral(self) -> bool:
        return (self.const.denominator == 1
                and all(a.denominator == 1 for a in self.coeffs))

    def coeff_vector(self) -> RatVec:
        return RatVec(self.coeffs)

    def eval(self, env: Mapping[str, int]) -> Fraction:
        total = self.const
        for name, a in zip(self.indices, self.coeffs):
            if a != 0:
                total += a * as_fraction(env[name])
        return total

    def eval_point(self, point: Sequence[int]) -> Fraction:
        total = self.const
        for a, x in zip(self.coeffs, point):
            if a != 0:
                total += a * as_fraction(int(x))
        return total

    def depends_only_on_prefix(self, k: int) -> bool:
        """True if only indices[0:k] have nonzero coefficients.

        Loop bounds at depth ``k`` may reference only enclosing indices.
        """
        return all(a == 0 for a in self.coeffs[k:])

    def render(self) -> str:
        parts: list[str] = []
        for a, name in zip(self.coeffs, self.indices):
            if a == 0:
                continue
            if a == 1:
                parts.append(f"+ {name}" if parts else name)
            elif a == -1:
                parts.append(f"- {name}" if parts else f"-{name}")
            else:
                mag = a if a > 0 else -a
                ms = str(mag) if mag.denominator == 1 else f"({mag})"
                if parts:
                    parts.append(f"+ {ms}*{name}" if a > 0 else f"- {ms}*{name}")
                else:
                    parts.append(f"{ms}*{name}" if a > 0 else f"-{ms}*{name}")
        if self.const != 0 or not parts:
            if parts:
                parts.append(f"+ {self.const}" if self.const > 0 else f"- {-self.const}")
            else:
                parts.append(str(self.const))
        return " ".join(parts)


def affine_of(expr: Expr, indices: Sequence[str]) -> AffineExpr:
    """Extract an :class:`AffineExpr` over ``indices`` from an AST expression.

    Non-index names, array references, products of two index-dependent
    factors and non-exact divisions all raise :class:`NotAffineError`.
    """
    idx = tuple(indices)
    if isinstance(expr, Const):
        return AffineExpr.constant(idx, expr.value)
    if isinstance(expr, Name):
        if expr.ident in idx:
            return AffineExpr.index(idx, expr.ident)
        raise NotAffineError(
            f"name {expr.ident!r} is not a loop index; symbolic parameters are "
            "not allowed in subscripts/bounds"
        )
    if isinstance(expr, UnaryOp):
        return -affine_of(expr.operand, idx)
    if isinstance(expr, BinOp):
        if expr.op == "+":
            return affine_of(expr.left, idx) + affine_of(expr.right, idx)
        if expr.op == "-":
            return affine_of(expr.left, idx) - affine_of(expr.right, idx)
        if expr.op == "*":
            left = affine_of(expr.left, idx)
            right = affine_of(expr.right, idx)
            if left.is_constant():
                return right.scale(left.const)
            if right.is_constant():
                return left.scale(right.const)
            raise NotAffineError("product of two index-dependent expressions")
        if expr.op == "/":
            left = affine_of(expr.left, idx)
            right = affine_of(expr.right, idx)
            if not right.is_constant() or right.const == 0:
                raise NotAffineError("division by an index-dependent or zero expression")
            return left.scale(Fraction(1) / right.const)
    if isinstance(expr, ArrayRef):
        raise NotAffineError(f"array reference {expr.array} inside an affine context")
    raise NotAffineError(f"cannot interpret {expr!r} as affine")
