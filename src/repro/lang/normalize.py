"""Loop normalization: remove non-unit steps.

The paper's model (Section II) assumes *normalized* loops -- every
index runs ``1 .. u_j`` with step 1.  Real source loops may step by a
constant ``s > 1``; :func:`normalize_steps` rewrites

    for i = lo to hi step s { body(i) }

into the normalized

    for i = 1 to floor((hi - lo)/s) + 1 { body(lo + (i - 1)*s) }

by substituting the affine re-indexing ``i -> lo + (i - 1)*s`` into
every subscript, bound and body expression.  Affine (index-dependent)
bounds are supported only with step 1 -- the trip count
``floor((hi - lo)/s) + 1`` of a stepped loop is not affine otherwise,
which would leave the paper's model; such loops raise
:class:`NormalizationError`.

The parser applies this automatically, so every :class:`LoopNest` in
the system is normalized by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.lang.affine import NotAffineError, affine_of
from repro.lang.ast import ArrayRef, Assign, BinOp, Const, Expr, LoopNest, Name, UnaryOp


class NormalizationError(ValueError):
    """The loop cannot be normalized within the affine model."""


def substitute(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Structurally substitute names by expressions."""
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Name):
        return mapping.get(expr.ident, expr)
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, substitute(expr.operand, mapping))
    if isinstance(expr, BinOp):
        return BinOp(expr.op,
                     substitute(expr.left, mapping),
                     substitute(expr.right, mapping))
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.array,
                        tuple(substitute(s, mapping) for s in expr.subscripts))
    raise TypeError(f"cannot substitute into {expr!r}")


def _reindex_expr(lo: Expr, step: int, var: str) -> Expr:
    """The replacement expression ``lo + (var - 1) * step``."""
    shifted = BinOp("-", Name(var), Const(1))
    if step != 1:
        shifted = BinOp("*", shifted, Const(step))
    return BinOp("+", lo, shifted)


@dataclass(frozen=True)
class RawLoopLevel:
    """One pre-normalization loop level."""

    index: str
    lower: Expr
    upper: Expr
    step: int = 1


def normalize_steps(levels: Sequence[RawLoopLevel],
                    statements: Sequence[Assign],
                    name: str = "") -> LoopNest:
    """Build a normalized :class:`LoopNest` from raw (stepped) levels.

    Levels with step 1 are kept as-is (general affine bounds allowed);
    levels with step > 1 require constant bounds and are rebased to
    ``1 .. trip_count`` with the re-indexing substituted everywhere.
    """
    indices = tuple(l.index for l in levels)
    mapping: dict[str, Expr] = {}
    lowers: list[Expr] = []
    uppers: list[Expr] = []
    for k, level in enumerate(levels):
        if level.step == 0:
            raise NormalizationError(f"loop {level.index!r} has step 0")
        if level.step < 0:
            raise NormalizationError(
                f"loop {level.index!r} has negative step {level.step}; "
                "reverse loops are outside the normalized model")
        # bounds may reference outer indices: apply their substitutions
        lo = substitute(level.lower, mapping)
        hi = substitute(level.upper, mapping)
        if level.step == 1:
            lowers.append(lo)
            uppers.append(hi)
            continue
        try:
            lo_aff = affine_of(lo, indices)
            hi_aff = affine_of(hi, indices)
        except NotAffineError as exc:
            raise NormalizationError(str(exc)) from exc
        if not (lo_aff.is_constant() and hi_aff.is_constant()):
            raise NormalizationError(
                f"loop {level.index!r} has step {level.step} with "
                "index-dependent bounds; the trip count is not affine")
        lo_c, hi_c = lo_aff.const, hi_aff.const
        if lo_c.denominator != 1 or hi_c.denominator != 1:
            raise NormalizationError("fractional constant bounds")
        trips = max(0, (int(hi_c) - int(lo_c)) // level.step + 1)
        mapping[level.index] = _reindex_expr(Const(int(lo_c)), level.step,
                                             level.index)
        lowers.append(Const(1))
        uppers.append(Const(trips))
    if not mapping:
        return LoopNest(indices, tuple(lowers), tuple(uppers),
                        tuple(statements), name=name)
    new_statements = tuple(
        Assign(
            lhs=substitute(s.lhs, mapping),  # type: ignore[arg-type]
            rhs=substitute(s.rhs, mapping),
            label=s.label,
        )
        for s in statements
    )
    return LoopNest(indices, tuple(lowers), tuple(uppers),
                    new_statements, name=name)
