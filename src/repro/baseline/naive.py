"""Naive block partitioning: the "what if we ignore the reference
pattern" baseline motivating the paper.

Chunk the iteration space into ``p`` contiguous blocks (outermost-index
slabs, the classic default of early parallelizers) and place each
array element on the processor of the *first* iteration writing it
(owner-computes; read-only data on the first reader).  Every access to
an element owned elsewhere then costs an interprocessor message.

``naive_partition`` counts those remote accesses exactly on the
sequential trace, and ``naive_cost`` turns them into time under the
machine cost model -- the overhead the communication-free technique
eliminates.  Intra-block dependence order is preserved by construction
(slabs execute their iterations in lexicographic order), but slabs must
synchronize on cross-block flow dependences; we report those too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.references import ReferenceModel, extract_references
from repro.analysis.trace import build_trace
from repro.lang.ast import LoopNest
from repro.machine.cost import CostModel, TRANSPUTER


@dataclass
class NaiveResult:
    """Remote-access accounting for the naive chunked partition."""

    p: int
    chunks: list[list[tuple[int, ...]]]
    owner_of_iteration: dict[tuple[int, ...], int]
    remote_reads: int = 0
    remote_writes: int = 0
    cross_block_flows: int = 0
    local_accesses: int = 0
    element_owner: dict = field(default_factory=dict, repr=False)

    @property
    def remote_accesses(self) -> int:
        return self.remote_reads + self.remote_writes

    @property
    def communication_free(self) -> bool:
        return self.remote_accesses == 0

    def cost(self, cost: CostModel = TRANSPUTER) -> float:
        """Time for the remote traffic: one 1-word message per access.

        Deliberately charitable to the baseline (no contention, single
        hop); even so the startup term swamps the compute savings.
        """
        return self.remote_accesses * (cost.t_start + cost.t_comm)


def naive_partition(nest: LoopNest, p: int,
                    model: Optional[ReferenceModel] = None) -> NaiveResult:
    """Chunk iterations into ``p`` contiguous slabs and count remote accesses."""
    if model is None:
        model = extract_references(nest)
    points = model.space.points()
    n = len(points)
    chunks: list[list[tuple[int, ...]]] = []
    base = n // p
    extra = n % p
    idx = 0
    for pid in range(p):
        size = base + (1 if pid < extra else 0)
        chunks.append(points[idx:idx + size])
        idx += size

    owner_of_iteration = {
        it: pid for pid, chunk in enumerate(chunks) for it in chunk
    }

    result = NaiveResult(p=p, chunks=chunks,
                         owner_of_iteration=owner_of_iteration)

    trace = build_trace(model)
    element_owner: dict = {}
    last_writer_pid: dict = {}
    for comp in trace.computations:
        _stmt, it = comp.comp
        pid = owner_of_iteration[it]
        for element, _ref in comp.read_elements:
            owner = element_owner.setdefault(element, pid)
            if owner == pid:
                result.local_accesses += 1
            else:
                result.remote_reads += 1
            lw = last_writer_pid.get(element)
            if lw is not None and lw != pid:
                result.cross_block_flows += 1
        element = comp.write_element
        owner = element_owner.setdefault(element, pid)
        if owner == pid:
            result.local_accesses += 1
        else:
            result.remote_writes += 1
        last_writer_pid[element] = pid
    result.element_owner = element_owner
    return result


@dataclass
class MotivationComparison:
    """Naive-vs-communication-free comparison for one loop."""

    naive: NaiveResult
    commfree_blocks: int
    commfree_remote: int
    naive_comm_time: float
    compute_time_per_pe: float

    @property
    def comm_to_compute_ratio(self) -> float:
        if self.compute_time_per_pe == 0:
            return float("inf") if self.naive_comm_time else 0.0
        return self.naive_comm_time / self.compute_time_per_pe


def compare_with_commfree(nest: LoopNest, p: int,
                          cost: CostModel = TRANSPUTER,
                          strategy=None) -> MotivationComparison:
    """Quantify the paper's motivation on one loop.

    The communication-free plan (best strategy unless given) has zero
    remote accesses by construction; the naive chunking pays
    ``naive_comm_time`` of messaging against a per-processor compute
    time of ``iterations/p * t_comp``.
    """
    from repro.core.plan import build_plan
    from repro.core.strategy import Strategy

    model = extract_references(nest)
    naive = naive_partition(nest, p, model=model)
    plan = build_plan(nest, strategy or Strategy.DUPLICATE, model=model)
    compute = model.space.size() / p * cost.t_comp
    return MotivationComparison(
        naive=naive,
        commfree_blocks=plan.num_blocks,
        commfree_remote=0,
        naive_comm_time=naive.cost(cost),
        compute_time_per_pe=compute,
    )
