"""Baseline comparator: Ramanujam & Sadayappan hyperplane partitioning.

The paper claims (Section III.A) that its method extracts more
parallelism than Ramanujam & Sadayappan's compile-time technique [18],
which (a) applies only to For-all loops and (b) partitions iterations
and data along ``(n-1)``-dimensional hyperplanes, yielding a
1-dimensional family of blocks.  :mod:`~repro.baseline.hyperplane`
reimplements that scheme so benches can compare degrees of parallelism.
"""

from repro.baseline.hyperplane import HyperplaneResult, hyperplane_partition
from repro.baseline.naive import (
    MotivationComparison,
    NaiveResult,
    compare_with_commfree,
    naive_partition,
)

__all__ = [
    "HyperplaneResult",
    "hyperplane_partition",
    "NaiveResult",
    "MotivationComparison",
    "naive_partition",
    "compare_with_commfree",
]
