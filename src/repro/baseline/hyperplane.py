"""Communication-free hyperplane partitioning for For-all loops
(Ramanujam & Sadayappan, IEEE TPDS 1991 -- the paper's comparator [18]).

Scheme (specialized to uniformly generated references, matching the
comparison in Section III.A of Chen & Sheu):

1. The loop must be a **For-all loop**: no flow/anti/output dependence
   may cross iterations (all cross-iteration reuse is read-only).
2. Iterations are grouped by ``(n-1)``-dimensional hyperplanes
   ``q · i = const``.  For the partition to be communication-free with
   non-duplicate data, any two iterations sharing an array element must
   lie on the same hyperplane: the normal ``q`` must be orthogonal to
   the loop's sharing space (which coincides with the non-duplicate
   partitioning space ``Psi`` of Theorem 1).
3. Such a ``q`` exists iff ``dim(Psi) <= n - 1``; the parallelism is
   the number of distinct hyperplane values -- a *1-dimensional* family
   of blocks, versus Chen & Sheu's ``n - dim(Psi)``-dimensional family.

``hyperplane_partition`` returns the best hyperplane (the one with the
most blocks) or an inapplicability verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.dependence import is_forall_loop
from repro.analysis.references import ReferenceModel, extract_references
from repro.core.strategy import Strategy, partitioning_space
from repro.lang.ast import LoopNest
from repro.ratlinalg.matrix import RatVec


@dataclass
class HyperplaneResult:
    """Outcome of the baseline partitioner."""

    applicable: bool
    reason: str
    normal: Optional[RatVec] = None           # the hyperplane normal q
    num_blocks: int = 0                        # distinct q·i values
    blocks: Optional[dict[object, list[tuple[int, ...]]]] = None

    @property
    def degree_of_parallelism(self) -> int:
        return self.num_blocks if self.applicable else 1


def hyperplane_partition(nest: LoopNest,
                         model: Optional[ReferenceModel] = None) -> HyperplaneResult:
    """Run the baseline on a loop nest; see module docstring."""
    if model is None:
        model = extract_references(nest)
    if not is_forall_loop(model):
        return HyperplaneResult(
            applicable=False,
            reason="not a For-all loop (a flow/anti/output dependence crosses "
                   "iterations); Ramanujam & Sadayappan's method does not apply",
        )
    breakdown = partitioning_space(model, strategy=Strategy.NONDUPLICATE)
    psi = breakdown.psi
    n = nest.depth
    if psi.dim > n - 1:
        return HyperplaneResult(
            applicable=False,
            reason=f"sharing space has dimension {psi.dim} = n; no "
                   "communication-free hyperplane exists",
        )
    # Candidate normals: the orthogonal complement of Psi.  Pick the one
    # producing the most hyperplane values over the iteration space.
    candidates = [v.primitive() for v in psi.orthogonal_complement().basis()]
    best: Optional[HyperplaneResult] = None
    for q in candidates:
        groups: dict[object, list[tuple[int, ...]]] = {}
        for it in model.space.iterate():
            key = q.dot(RatVec(it))
            groups.setdefault(key, []).append(it)
        result = HyperplaneResult(
            applicable=True,
            reason="communication-free hyperplane found",
            normal=q,
            num_blocks=len(groups),
            blocks=groups,
        )
        if best is None or result.num_blocks > best.num_blocks:
            best = result
    assert best is not None
    return best
