"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

if __name__ == "__main__":
    code = main()
    if code == 141:
        # EPIPE path: point the real fd at devnull so the interpreter's
        # shutdown flush of whatever is still buffered cannot raise
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
    raise SystemExit(code)
