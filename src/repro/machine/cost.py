"""The ``(t_comp, t_start, t_comm)`` cost model.

Paper, Section IV: "assume that the time required to perform one
iteration is t_comp; the time required to communicate including two
parts is t_start, the startup time for communication; and t_comm is the
time required to transmit a single datum from one processor to the
neighboring one."

``TRANSPUTER`` is calibrated against Table I:

- sequential L5 times are almost exactly cubic: ``161.25s / 256^3``
  gives ``t_comp ≈ 9.6 µs`` per multiply-add iteration;
- the L5'' p=16 M=256 residual over compute (``10.65 - 10.07 ≈ 0.58s``)
  against the T3 communication term fits ``t_comm ≈ 2.2 µs`` per word;
- ``t_start = 200 µs`` is a typical Transputer-era software startup
  and is small enough to stay consistent with every Table I cell.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Per-operation time constants (seconds)."""

    t_comp: float   # one loop iteration
    t_start: float  # communication startup
    t_comm: float   # one word between neighbors

    def compute(self, iterations: int) -> float:
        return iterations * self.t_comp

    def pipelined(self, words: int, hops: int) -> float:
        """Wormhole/pipelined transfer: startup + (w + h - 1) per-word steps."""
        if words <= 0:
            return 0.0
        return self.t_start + (words + max(hops, 1) - 1) * self.t_comm

    def store_and_forward(self, words: int, hops: int) -> float:
        """Whole-message per-hop forwarding: startup + h * w per-word steps."""
        if words <= 0:
            return 0.0
        return self.t_start + max(hops, 1) * words * self.t_comm


#: Calibrated to the paper's Transputer measurements (Table I); see module docstring.
TRANSPUTER = CostModel(t_comp=9.6e-6, t_start=2.0e-4, t_comm=2.2e-6)

#: Unit costs: makes simulated times equal to event counts (handy in tests).
UNIT_COSTS = CostModel(t_comp=1.0, t_start=1.0, t_comm=1.0)
