"""Network primitives with the paper's cost accounting.

Three operations, matching how Section IV costs the initial data
distribution of loops L5' and L5'':

``send``
    point-to-point, *pipelined* ("in a pipelined fashion"):
    ``t_start + (w + hops - 1) * t_comm``.
``multicast``
    one message delivered to a set of nodes by *pipelined* chaining
    through them (wormhole-style cut-through):
    ``t_start + (w + chain_hops - 1) * t_comm`` -- the paper's
    "multicasting in a pipelined fashion", whose per-array total for
    L5'' is ``O(sqrt(p) t_start + 2 M^2 t_comm)``: the word term
    dominates the hop term, exactly as in a pipelined chain.
``broadcast``
    whole-array flood to every node, costed along the diameter:
    ``t_start + diameter * w * t_comm`` -- the paper's
    ``O(t_start + 2*sqrt(p)*M^2*t_comm)`` for distributing array B
    of L5'.

The host serializes its outgoing operations (it has one injection
channel), so a schedule's elapsed time is the sum of its operations'
times; per-destination arrival times are tracked so processors can
start computing when their data is in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.machine.cost import CostModel
from repro.machine.message import Message, MessageLog
from repro.machine.topology import Topology


@dataclass
class Network:
    """The interconnect: topology + cost model + message log."""

    topology: Topology
    cost: CostModel
    log: MessageLog = field(default_factory=MessageLog)
    clock: float = 0.0  # host injection channel time

    # -- primitives -----------------------------------------------------------
    def send(self, src: int, dst: int, words: int, tag: str = "") -> float:
        """Pipelined point-to-point transfer; returns its channel time."""
        if words <= 0:
            return 0.0
        hops = self.topology.hops(src, dst)
        t = self.cost.pipelined(words, hops)
        self._record("send", src, (dst,), words, hops, t, tag)
        return t

    def multicast(self, src: int, dsts: Sequence[int], words: int,
                  tag: str = "") -> float:
        """Pipelined chain delivery of one message to ``dsts``."""
        dsts = tuple(sorted(set(dsts)))
        if words <= 0 or not dsts:
            return 0.0
        hops = max(1, self.topology.chain_length(src, list(dsts)))
        t = self.cost.pipelined(words, hops)
        self._record("multicast", src, dsts, words, hops, t, tag)
        return t

    def broadcast(self, src: int, words: int, tag: str = "") -> float:
        """Store-and-forward flood of one message to every node processor."""
        if words <= 0:
            return 0.0
        dsts = tuple(self.topology.nodes())
        hops = max(1, self.topology.diameter_from(src))
        t = self.cost.store_and_forward(words, hops)
        self._record("broadcast", src, dsts, words, hops, t, tag)
        return t

    # -- bookkeeping ------------------------------------------------------------
    def _record(self, kind: str, src: int, dsts: tuple[int, ...], words: int,
                hops: int, t: float, tag: str) -> None:
        self.clock += t
        self.log.record(Message(kind=kind, src=src, dsts=dsts, words=words,
                                hops=hops, time=t, tag=tag))

    @property
    def elapsed(self) -> float:
        """Total serialized channel time of all operations so far."""
        return self.clock

    def reset(self) -> None:
        self.clock = 0.0
        self.log.clear()
