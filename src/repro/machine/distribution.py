"""Host-to-node initial data distribution schedules.

The paper distinguishes three patterns for pushing initial array
contents from the host into node memories:

- :func:`scatter_slices` -- disjoint pieces, one pipelined send per
  processor (array A in loop L5');
- :func:`multicast_groups` -- shared pieces per processor group, one
  store-and-forward multicast per group (arrays A and B in loop L5'',
  multicast along mesh rows / columns);
- :func:`broadcast_array` -- the whole array to everybody (array B in
  loop L5').

Each helper both *charges* the network and *populates* the target
memories, recording per-processor arrival times so compute can be
overlapped downstream if desired (the paper, and our makespan, simply
serialize distribution before compute).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.machine.machine import Multicomputer
from repro.machine.topology import HOST

Coords = tuple[int, ...]
InitFn = Callable[[Coords], float]


@dataclass(frozen=True)
class DistributionOp:
    """One logical distribution step (for reporting/tests)."""

    kind: str
    array: str
    dsts: tuple[int, ...]
    words: int
    time: float


@dataclass
class DistributionSchedule:
    """The ordered list of distribution operations of one run."""

    ops: list[DistributionOp] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(op.time for op in self.ops)

    @property
    def total_words(self) -> int:
        return sum(op.words * len(op.dsts) for op in self.ops)

    def by_array(self, array: str) -> list[DistributionOp]:
        return [op for op in self.ops if op.array == array]


def _materialize(machine: Multicomputer, pid: int, array: str,
                 elements: Iterable[Coords], init: Optional[InitFn]) -> int:
    mem = machine.processor(pid).memory
    n = mem.allocate(array, elements, init=init)
    machine.processor(pid).recv_time = machine.network.elapsed
    return n


def scatter_slices(
    machine: Multicomputer,
    array: str,
    pieces: dict[int, Iterable[Coords]],
    init: Optional[InitFn] = None,
    schedule: Optional[DistributionSchedule] = None,
) -> DistributionSchedule:
    """Send a disjoint element set to each processor (pipelined sends)."""
    schedule = schedule if schedule is not None else DistributionSchedule()
    for pid in sorted(pieces):
        elems = [tuple(int(x) for x in c) for c in pieces[pid]]
        if not elems:
            continue
        t = machine.network.send(HOST, pid, len(elems), tag=f"scatter:{array}")
        _materialize(machine, pid, array, elems, init)
        schedule.ops.append(DistributionOp("scatter", array, (pid,), len(elems), t))
    return schedule


def multicast_groups(
    machine: Multicomputer,
    array: str,
    groups: Sequence[tuple[Sequence[int], Iterable[Coords]]],
    init: Optional[InitFn] = None,
    schedule: Optional[DistributionSchedule] = None,
) -> DistributionSchedule:
    """Multicast one shared element set to each processor group."""
    schedule = schedule if schedule is not None else DistributionSchedule()
    for dsts, elements in groups:
        elems = [tuple(int(x) for x in c) for c in elements]
        if not elems or not dsts:
            continue
        t = machine.network.multicast(HOST, list(dsts), len(elems),
                                      tag=f"multicast:{array}")
        for pid in dsts:
            _materialize(machine, pid, array, elems, init)
        schedule.ops.append(
            DistributionOp("multicast", array, tuple(sorted(dsts)), len(elems), t)
        )
    return schedule


def broadcast_array(
    machine: Multicomputer,
    array: str,
    elements: Iterable[Coords],
    init: Optional[InitFn] = None,
    schedule: Optional[DistributionSchedule] = None,
) -> DistributionSchedule:
    """Broadcast the whole element set to every node processor."""
    schedule = schedule if schedule is not None else DistributionSchedule()
    elems = [tuple(int(x) for x in c) for c in elements]
    if not elems:
        return schedule
    t = machine.network.broadcast(HOST, len(elems), tag=f"broadcast:{array}")
    for pid in range(machine.num_processors):
        _materialize(machine, pid, array, elems, init)
    schedule.ops.append(
        DistributionOp("broadcast", array,
                       tuple(range(machine.num_processors)), len(elems), t)
    )
    return schedule
