"""Interconnect topologies.

Node processors are numbered ``0 .. p-1``; the special :data:`HOST`
node (-1) models the paper's host processor, attached to node 0 (a
corner of the mesh).  Hop counts come from exact shortest paths on the
topology graph (networkx), so routing distance is topology-accurate.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable

import networkx as nx

#: The host processor's node id.
HOST = -1


class Topology:
    """Base class: a connected undirected graph over nodes + HOST."""

    def __init__(self, num_nodes: int, edges: Iterable[tuple[int, int]],
                 host_attach: int = 0):
        if num_nodes < 1:
            raise ValueError("need at least one node")
        self.num_nodes = num_nodes
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(num_nodes))
        self.graph.add_edges_from(edges)
        self.graph.add_edge(HOST, host_attach)
        if not nx.is_connected(self.graph):
            raise ValueError("topology graph is not connected")
        self._hops = dict(nx.all_pairs_shortest_path_length(self.graph))

    # -- queries -----------------------------------------------------------
    def nodes(self) -> list[int]:
        return list(range(self.num_nodes))

    def hops(self, a: int, b: int) -> int:
        """Shortest-path hop count between two nodes (0 for a == b)."""
        return self._hops[a][b]

    def neighbors(self, a: int) -> list[int]:
        return sorted(n for n in self.graph.neighbors(a))

    def diameter_from(self, src: int) -> int:
        """Longest shortest path from ``src`` to any node processor."""
        return max(self.hops(src, n) for n in self.nodes())

    def chain_length(self, src: int, dsts: list[int]) -> int:
        """Greedy nearest-neighbor path length visiting all ``dsts`` from ``src``.

        Used to cost a store-and-forward multicast chain; exact optimal
        routing is a TSP, the greedy chain is the standard practical
        schedule and is optimal for row/column sets on a mesh.
        """
        remaining = set(dsts)
        remaining.discard(src)
        total = 0
        cur = src
        while remaining:
            nxt = min(remaining, key=lambda d: (self.hops(cur, d), d))
            total += self.hops(cur, nxt)
            remaining.remove(nxt)
            cur = nxt
        return total

    def describe(self) -> str:
        return f"{type(self).__name__}(p={self.num_nodes})"


class Mesh2D(Topology):
    """A ``rows x cols`` 2-D mesh; node ``r*cols + c``; host at node 0."""

    def __init__(self, rows: int, cols: int):
        self.rows, self.cols = rows, cols
        edges = []
        for r in range(rows):
            for c in range(cols):
                n = r * cols + c
                if c + 1 < cols:
                    edges.append((n, n + 1))
                if r + 1 < rows:
                    edges.append((n, n + cols))
        super().__init__(rows * cols, edges)

    def coords(self, node: int) -> tuple[int, int]:
        return divmod(node, self.cols)

    def node_at(self, r: int, c: int) -> int:
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise IndexError(f"({r},{c}) outside {self.rows}x{self.cols} mesh")
        return r * self.cols + c

    def row_nodes(self, r: int) -> list[int]:
        return [self.node_at(r, c) for c in range(self.cols)]

    def col_nodes(self, c: int) -> list[int]:
        return [self.node_at(r, c) for r in range(self.rows)]

    def describe(self) -> str:
        return f"Mesh2D({self.rows}x{self.cols})"


class RingTopology(Topology):
    def __init__(self, num_nodes: int):
        edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
        if num_nodes == 1:
            edges = []
        super().__init__(num_nodes, edges)


class StarTopology(Topology):
    """All nodes attached to node 0 (host also at node 0)."""

    def __init__(self, num_nodes: int):
        super().__init__(num_nodes, [(0, i) for i in range(1, num_nodes)])


class CompleteTopology(Topology):
    def __init__(self, num_nodes: int):
        edges = [(i, j) for i in range(num_nodes) for j in range(i + 1, num_nodes)]
        super().__init__(num_nodes, edges)


class Hypercube(Topology):
    """A ``2^dim``-node binary hypercube (Transputer-era alternative).

    Nodes are adjacent iff their ids differ in exactly one bit; hop
    distance is Hamming distance, diameter ``dim``.
    """

    def __init__(self, dim: int):
        if dim < 0:
            raise ValueError("hypercube dimension must be >= 0")
        self.dim = dim
        n = 1 << dim
        edges = [(i, i ^ (1 << b)) for i in range(n) for b in range(dim)
                 if i < (i ^ (1 << b))]
        super().__init__(n, edges)

    def describe(self) -> str:
        return f"Hypercube(dim={self.dim}, p={self.num_nodes})"


class Torus2D(Topology):
    """A 2-D torus (mesh with wrap-around links): halves the diameter."""

    def __init__(self, rows: int, cols: int):
        self.rows, self.cols = rows, cols
        edges = set()
        for r in range(rows):
            for c in range(cols):
                n = r * cols + c
                right = r * cols + (c + 1) % cols
                down = ((r + 1) % rows) * cols + c
                if right != n:
                    edges.add((min(n, right), max(n, right)))
                if down != n:
                    edges.add((min(n, down), max(n, down)))
        super().__init__(rows * cols, sorted(edges))

    def coords(self, node: int) -> tuple[int, int]:
        return divmod(node, self.cols)

    def describe(self) -> str:
        return f"Torus2D({self.rows}x{self.cols})"
