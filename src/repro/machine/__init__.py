"""Distributed-memory multicomputer simulator.

The paper evaluates on a 16-node Transputer multicomputer (mesh).  We
simulate the same structure:

- :mod:`~repro.machine.topology`: mesh / ring / star / complete
  interconnects plus a *host* processor attached to node 0 (the paper's
  host distributes initial data to the nodes);
- :mod:`~repro.machine.cost`: the ``(t_comp, t_start, t_comm)`` cost
  model, with Transputer-calibrated defaults fitted to Table I;
- :mod:`~repro.machine.network`: message primitives with the paper's
  accounting -- pipelined point-to-point sends
  (``t_start + (w + h - 1) t_comm``) and store-and-forward multicast /
  broadcast (``t_start + path * w * t_comm``), plus full message logs;
- :mod:`~repro.machine.memory` / :mod:`~repro.machine.processor`: local
  memories with ownership bookkeeping and per-processor counters;
- :mod:`~repro.machine.machine`: the assembled :class:`Multicomputer`;
- :mod:`~repro.machine.distribution`: host-to-node initial data
  distribution schedules (scatter / multicast / broadcast), the three
  patterns of loops L5, L5' and L5''.
"""

from repro.machine.cost import CostModel, TRANSPUTER, UNIT_COSTS
from repro.machine.topology import (
    CompleteTopology,
    HOST,
    Hypercube,
    Mesh2D,
    RingTopology,
    StarTopology,
    Topology,
    Torus2D,
)
from repro.machine.message import Message
from repro.machine.memory import LocalMemory, RemoteAccessError
from repro.machine.processor import Processor
from repro.machine.network import Network
from repro.machine.machine import Multicomputer
from repro.machine.distribution import (
    DistributionOp,
    DistributionSchedule,
    broadcast_array,
    multicast_groups,
    scatter_slices,
)

__all__ = [
    "CostModel",
    "TRANSPUTER",
    "UNIT_COSTS",
    "Topology",
    "Mesh2D",
    "RingTopology",
    "StarTopology",
    "CompleteTopology",
    "Hypercube",
    "Torus2D",
    "HOST",
    "Message",
    "LocalMemory",
    "RemoteAccessError",
    "Processor",
    "Network",
    "Multicomputer",
    "DistributionOp",
    "DistributionSchedule",
    "scatter_slices",
    "multicast_groups",
    "broadcast_array",
]
