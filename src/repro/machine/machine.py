"""The assembled multicomputer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.machine.cost import CostModel, TRANSPUTER
from repro.machine.network import Network
from repro.machine.processor import Processor
from repro.machine.topology import HOST, Mesh2D, Topology
from repro.obs.metrics import MetricsRegistry, current_registry


@dataclass
class MachineStats:
    """Aggregate statistics of one simulated run.

    These are the paper's Tables I & II quantities: the distribution
    time is the ``T3``-style data-download term, the compute makespan
    the ``T1``/``T2`` execution term (see docs/PAPER_MAP.md).
    """

    distribution_time: float
    max_compute_time: float
    total_iterations: int
    messages: int
    words_sent: int
    remote_accesses: int
    memory_words: dict[int, int]
    # read/write split of remote_accesses (each would be a fetch or a
    # store message on a real machine); the combined count stays for
    # compatibility
    remote_reads: int = 0
    remote_writes: int = 0

    @property
    def makespan(self) -> float:
        return self.distribution_time + self.max_compute_time

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "distribution_time": self.distribution_time,
            "max_compute_time": self.max_compute_time,
            "makespan": self.makespan,
            "total_iterations": self.total_iterations,
            "messages": self.messages,
            "words_sent": self.words_sent,
            "remote_accesses": self.remote_accesses,
            "remote_reads": self.remote_reads,
            "remote_writes": self.remote_writes,
            "memory_words": dict(self.memory_words),
        }

    def publish(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Publish this snapshot as ``machine.*`` gauges (last run wins)."""
        reg = registry if registry is not None else current_registry()
        reg.set("machine.distribution_time", self.distribution_time)
        reg.set("machine.max_compute_time", self.max_compute_time)
        reg.set("machine.makespan", self.makespan)
        reg.set("machine.total_iterations", self.total_iterations)
        reg.set("machine.messages", self.messages)
        reg.set("machine.words_sent", self.words_sent)
        reg.set("machine.remote_accesses", self.remote_accesses)
        reg.set("machine.remote_reads", self.remote_reads)
        reg.set("machine.remote_writes", self.remote_writes)
        reg.set("machine.memory_words", sum(self.memory_words.values()))


class Multicomputer:
    """Processors + network; the simulation substrate.

    The execution model mirrors the paper: a *distribution phase* where
    the host pushes initial array data to node memories (serialized on
    the host's channel), then a *compute phase* with zero communication
    (enforced: any remote access raises), then result collection /
    merging handled by the runtime layer.
    """

    def __init__(self, topology: Topology, cost: CostModel = TRANSPUTER):
        self.topology = topology
        self.cost = cost
        self.network = Network(topology=topology, cost=cost)
        self.processors = [Processor(pid=i, cost=cost) for i in topology.nodes()]

    # -- convenience constructors --------------------------------------------
    @staticmethod
    def mesh(rows: int, cols: int, cost: CostModel = TRANSPUTER) -> "Multicomputer":
        return Multicomputer(Mesh2D(rows, cols), cost=cost)

    @property
    def num_processors(self) -> int:
        return len(self.processors)

    def processor(self, pid: int) -> Processor:
        return self.processors[pid]

    # -- stats ------------------------------------------------------------------
    def stats(self) -> MachineStats:
        snap = MachineStats(
            distribution_time=self.network.elapsed,
            max_compute_time=max((p.compute_time for p in self.processors),
                                 default=0.0),
            total_iterations=sum(p.iterations for p in self.processors),
            messages=self.network.log.count,
            words_sent=self.network.log.total_words,
            remote_accesses=sum(p.memory.remote_attempts for p in self.processors),
            memory_words={p.pid: p.memory.words() for p in self.processors},
            remote_reads=sum(p.memory.remote_read_attempts
                             for p in self.processors),
            remote_writes=sum(p.memory.remote_write_attempts
                              for p in self.processors),
        )
        snap.publish()
        return snap

    def makespan(self) -> float:
        """Distribution (serialized on the host) + slowest processor's compute."""
        return self.stats().makespan

    def reset(self) -> None:
        self.network.reset()
        for p in self.processors:
            p.reset()
