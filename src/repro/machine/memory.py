"""Per-processor local memories.

A :class:`LocalMemory` stores array elements by coordinate tuple.  Every
access is checked: reading or writing an element that was never
allocated locally raises :class:`RemoteAccessError` -- in a real
multicomputer that access would be an interprocessor message, and the
whole point of the paper is that none occur.  The parallel executor
runs with these checks on and asserts a zero remote-access count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


class RemoteAccessError(KeyError):
    """An access fell outside the processor's allocated data blocks."""

    def __init__(self, pid: int, array: str, coords: tuple[int, ...],
                 is_write: Optional[bool] = None):
        super().__init__(f"PE{pid}: remote access to {array}{list(coords)}")
        self.pid = pid
        self.array = array
        self.coords = coords
        self.is_write = is_write


@dataclass
class LocalMemory:
    """One processor's private memory: allocated elements + their values."""

    pid: int
    # array -> {coords -> value}
    values: dict[str, dict[tuple[int, ...], float]] = field(default_factory=dict)
    # array -> set of coords this processor owns (allocation map)
    allocated: dict[str, set[tuple[int, ...]]] = field(default_factory=dict)
    reads: int = 0
    writes: int = 0
    # combined remote count (kept for compatibility) plus the read/write
    # split -- a remote *read* is a fetch message on a real machine, a
    # remote *write* a store message; the audit layer reports both
    remote_attempts: int = 0
    remote_read_attempts: int = 0
    remote_write_attempts: int = 0
    strict: bool = True

    # -- allocation -------------------------------------------------------
    def allocate(self, array: str, coords_iter: Iterable[tuple[int, ...]],
                 init=None) -> int:
        """Allocate elements locally; returns the number of words allocated.

        ``init`` is an optional callable ``(coords) -> value`` supplying
        initial contents (the host-distributed initial data).
        """
        store = self.values.setdefault(array, {})
        alloc = self.allocated.setdefault(array, set())
        n = 0
        for c in coords_iter:
            c = tuple(int(x) for x in c)
            if c not in alloc:
                alloc.add(c)
                n += 1
            store[c] = float(init(c)) if init is not None else 0.0
        return n

    def holds(self, array: str, coords: tuple[int, ...]) -> bool:
        return coords in self.allocated.get(array, ())

    def words(self) -> int:
        return sum(len(s) for s in self.allocated.values())

    # -- access -------------------------------------------------------------
    def note_remote(self, is_write: Optional[bool] = None) -> None:
        """Count one remote attempt (split by direction when known).

        Engines that detect violations outside ``load``/``store`` (the
        vectorized up-front check, the multiprocess marker) charge the
        attempt here so the split counters stay consistent.
        """
        self.remote_attempts += 1
        if is_write:
            self.remote_write_attempts += 1
        elif is_write is not None:
            self.remote_read_attempts += 1

    def load(self, array: str, coords: tuple[int, ...]) -> float:
        coords = tuple(int(x) for x in coords)
        if not self.holds(array, coords):
            self.note_remote(is_write=False)
            if self.strict:
                raise RemoteAccessError(self.pid, array, coords,
                                        is_write=False)
            return 0.0
        self.reads += 1
        return self.values[array][coords]

    def store(self, array: str, coords: tuple[int, ...], value: float) -> None:
        coords = tuple(int(x) for x in coords)
        if not self.holds(array, coords):
            self.note_remote(is_write=True)
            if self.strict:
                raise RemoteAccessError(self.pid, array, coords,
                                        is_write=True)
            return
        self.writes += 1
        self.values[array][coords] = float(value)
