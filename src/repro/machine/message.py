"""Message records for the simulator's communication log."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Message:
    """One logged communication operation.

    ``kind`` is ``send`` / ``multicast`` / ``broadcast``; ``dsts`` has a
    single entry for sends.  ``words`` is the message size in array
    elements (the paper's "data"), ``hops`` the routing distance used
    for costing, and ``time`` the resulting channel time.
    """

    kind: str
    src: int
    dsts: tuple[int, ...]
    words: int
    hops: int
    time: float
    tag: str = ""

    def __post_init__(self):
        if self.kind not in ("send", "multicast", "broadcast"):
            raise ValueError(f"unknown message kind {self.kind!r}")
        if self.words < 0:
            raise ValueError("negative message size")

    def to_dict(self) -> dict:
        """JSON-ready representation (for external trace analysis)."""
        return {
            "kind": self.kind,
            "src": self.src,
            "dsts": list(self.dsts),
            "words": self.words,
            "hops": self.hops,
            "time": self.time,
            "tag": self.tag,
        }


@dataclass
class MessageLog:
    """Accumulates messages and aggregate statistics."""

    messages: list[Message] = field(default_factory=list)

    def record(self, msg: Message) -> None:
        self.messages.append(msg)

    @property
    def count(self) -> int:
        return len(self.messages)

    @property
    def total_words(self) -> int:
        return sum(m.words for m in self.messages)

    @property
    def total_time(self) -> float:
        return sum(m.time for m in self.messages)

    def by_kind(self, kind: str) -> list[Message]:
        return [m for m in self.messages if m.kind == kind]

    def to_json(self, indent: int = 0) -> str:
        """The full message trace as a JSON array."""
        import json

        return json.dumps([m.to_dict() for m in self.messages],
                          indent=indent or None)

    def clear(self) -> None:
        self.messages.clear()
