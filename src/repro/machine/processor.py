"""Node processors: local memory + time accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.cost import CostModel
from repro.machine.memory import LocalMemory


@dataclass
class Processor:
    """One node of the multicomputer."""

    pid: int
    cost: CostModel
    memory: LocalMemory = field(default=None)  # type: ignore[assignment]
    compute_time: float = 0.0
    recv_time: float = 0.0     # time at which all its initial data has arrived
    iterations: int = 0

    def __post_init__(self):
        if self.memory is None:
            self.memory = LocalMemory(pid=self.pid)

    def charge_iterations(self, n: int) -> None:
        """Account ``n`` loop iterations of compute time."""
        self.iterations += n
        self.compute_time += self.cost.compute(n)

    @property
    def finish_time(self) -> float:
        """Data arrival + local compute (no communication during execution)."""
        return self.recv_time + self.compute_time

    def reset(self) -> None:
        self.compute_time = 0.0
        self.recv_time = 0.0
        self.iterations = 0
        self.memory = LocalMemory(pid=self.pid)
