"""The unified public API: one session, one options object, one result shape.

The repository grew five loosely related entry points (``build_plan``,
``run_sequential``, ``run_parallel``, ``verify_plan``, ``run_on_machine``)
with divergent signatures and kwargs duplicated across them.  This
module fronts them all:

- :class:`RunOptions` -- one dataclass holding the execution kwargs
  (backend, chaos, tracing, metrics) that used to be threaded through
  each entry point separately;
- :class:`Session` -- a facade that owns a nest, a plan, scoped
  observability recorders, and the options, and drives the whole
  pipeline::

      from repro.api import Session

      s = Session("L1", strategy="duplicate", chaos="crash-prob=0.2")
      s.plan()
      result = s.run(backend="multiprocess")
      assert s.verify().ok and s.audit().ok

- the **Summary protocol** -- every result the facade returns
  (:class:`~repro.runtime.parallel.ParallelResult`,
  :class:`~repro.runtime.verify.VerificationReport`,
  :class:`~repro.obs.audit.AuditReport`,
  :class:`~repro.runtime.machine_run.MachineRun`) exposes ``.ok``,
  ``.summary()`` and ``.to_json()``, so callers (and the CLI, and the
  report) render any of them uniformly.

The legacy entry points remain and keep their exact behavior; the
facade composes them rather than replacing them (see ``docs/API.md``
for the migration map).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Protocol, Union, runtime_checkable

from repro.core.plan import PartitionPlan
from repro.core.strategy import Strategy
from repro.lang.ast import LoopNest
from repro.runtime.scheduler.faults import FaultPlan


@runtime_checkable
class Summary(Protocol):
    """What every result object speaks: a verdict, a line, a dict."""

    @property
    def ok(self) -> bool: ...

    def summary(self) -> str: ...

    def to_json(self) -> dict: ...


@dataclass(frozen=True)
class RunOptions:
    """Execution options shared by every entry point.

    Consolidates the kwargs that were duplicated across
    ``run_sequential`` / ``run_parallel`` / ``verify_plan`` /
    ``run_on_machine``: the engine ``backend``, the ``chaos`` fault
    plan, and whether tracing / metrics recording are enabled.
    """

    #: engine backend name (None = the default / ``$REPRO_BACKEND``)
    backend: Optional[str] = None
    #: fault plan (or spec string) scoped over parallel executions
    chaos: Union[FaultPlan, str, None] = None
    #: record spans/events (Session scopes a Tracer accordingly)
    trace: bool = False
    #: keep a session-scoped metrics registry (always cheap; kept for
    #: symmetry and for callers that want a fresh registry per session)
    metrics: bool = True

    def __post_init__(self) -> None:
        # normalize a spec string eagerly so errors surface at build time
        object.__setattr__(self, "chaos", FaultPlan.parse(self.chaos))

    def with_(self, **updates) -> "RunOptions":
        """A copy with the given fields replaced."""
        return replace(self, **updates)


def _coerce_nest(nest_or_source: Union[LoopNest, str]) -> LoopNest:
    """A LoopNest from a nest, a source string, or a catalog name."""
    if isinstance(nest_or_source, LoopNest):
        return nest_or_source
    if not isinstance(nest_or_source, str):
        raise TypeError(
            f"expected a LoopNest, source text, or catalog name; got "
            f"{type(nest_or_source).__name__}")
    from repro.lang.catalog import ALL_LOOPS

    key = nest_or_source.strip()
    by_name = {name.lower(): factory for name, factory in ALL_LOOPS.items()}
    if key.lower() in by_name:
        return by_name[key.lower()]()
    from repro.lang.parser import parse

    return parse(nest_or_source)


class Session:
    """One nest, one plan, one set of options, one place to run it all.

    The session lazily builds (and caches) the partition plan, scopes
    its own observability recorders over every operation, and forwards
    :class:`RunOptions` everywhere, so the five legacy entry points
    collapse into five methods with no repeated kwargs.
    """

    def __init__(
        self,
        nest_or_source: Union[LoopNest, str],
        strategy: Union[Strategy, str] = Strategy.NONDUPLICATE,
        *,
        backend: Optional[str] = None,
        chaos: Union[FaultPlan, str, None] = None,
        trace: bool = False,
        options: Optional[RunOptions] = None,
        eliminate_redundant: bool = False,
        duplicate_arrays=None,
        scalars: Optional[dict] = None,
        registry=None,
        tracer=None,
        pool=None,
    ) -> None:
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import Tracer

        self.nest = _coerce_nest(nest_or_source)
        self.strategy = Strategy(strategy)
        if options is None:
            options = RunOptions(backend=backend, chaos=chaos, trace=trace)
        else:
            if backend is not None:
                options = options.with_(backend=backend)
            if chaos is not None:
                options = options.with_(chaos=chaos)
            if trace:
                options = options.with_(trace=True)
        self.options = options
        self.eliminate_redundant = eliminate_redundant
        self.duplicate_arrays = (frozenset(duplicate_arrays)
                                 if duplicate_arrays is not None else None)
        self.scalars = dict(scalars) if scalars else {}
        # registry/tracer/pool are injectable so an embedding host (the
        # CLI under --trace/--metrics, the serving layer sharing one
        # registry and one warm pool across sessions) can see what the
        # session records; by default each session owns fresh ones
        self.tracer = tracer if tracer is not None \
            else Tracer(enabled=options.trace)
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        #: diagnostics of the last plan build (a DiagnosticBag), or None
        self.diagnostics = None
        self._plan: Optional[PartitionPlan] = None
        # one persistent worker pool for the session: multiprocess runs
        # reuse warm workers across run() calls instead of paying a pool
        # spawn per run; closed (with any cached plan segment) by close().
        # An injected pool is shared -- close() leaves it running.
        from repro.runtime.pool import WorkerPool

        self._owns_pool = pool is None
        self._pool = pool if pool is not None else WorkerPool()
        self._closed = False

    # -- scoping ----------------------------------------------------------
    def _scope(self):
        from contextlib import ExitStack

        from repro.obs.metrics import use_registry
        from repro.obs.trace import use_tracer
        from repro.runtime.pool import use_pool

        stack = ExitStack()
        stack.enter_context(use_tracer(self.tracer))
        stack.enter_context(use_registry(self.registry))
        if not self._closed:
            stack.enter_context(use_pool(self._pool))
        return stack

    # -- lifecycle --------------------------------------------------------
    @property
    def pool(self):
        """The session's persistent :class:`~repro.runtime.pool.WorkerPool`."""
        return self._pool

    def close(self) -> None:
        """Release session resources: shut the worker pool down and
        unlink the plan's cached shared-memory segment (if any).

        Idempotent; a closed session still runs, it just stops scoping
        the persistent pool (runs fall back to ephemeral pools).
        """
        self._closed = True
        if self._owns_pool:
            self._pool.shutdown()
        if self._plan is not None:
            from repro.runtime.blockstore import release_plan_segment

            release_plan_segment(self._plan)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the pipeline -----------------------------------------------------
    def plan(self) -> PartitionPlan:
        """Build (once) and return the partition plan.

        Runs the pass pipeline (through the content-addressed plan
        cache) and keeps the build's diagnostics on
        :attr:`diagnostics`, so embedding hosts (CLI, serving layer)
        can render them.
        """
        if self._plan is None:
            from repro.obs.flight import flight
            from repro.obs.top import current_writer
            from repro.pipeline.context import PipelineConfig
            from repro.pipeline.passes import run_pipeline

            writer = current_writer()
            if writer is not None:
                writer.write({"phase": "plan",
                              "case": self.nest.name or "?"})
            with self._scope(), flight().span(
                    "session.plan", case=self.nest.name or "?",
                    strategy=self.strategy.value):
                config = PipelineConfig(
                    strategy=self.strategy,
                    duplicate_arrays=self.duplicate_arrays,
                    eliminate_redundant=self.eliminate_redundant,
                    backend=self.options.backend,
                )
                ctx = run_pipeline(self.nest, config, upto="partition")
                self.diagnostics = ctx.diagnostics
                self._plan = ctx.plan
        return self._plan

    def run(self, backend: Optional[str] = None, **kwargs):
        """Execute the plan in parallel; returns a
        :class:`~repro.runtime.parallel.ParallelResult`."""
        from repro.obs.flight import flight
        from repro.runtime.parallel import _run_parallel

        with self._scope(), flight().span(
                "session.run", case=self.nest.name or "?",
                backend=backend or self.options.backend or "default"):
            result = _run_parallel(self.plan(), scalars=self.scalars,
                                   backend=backend, options=self.options,
                                   **kwargs)
        self._snapshot_done(result)
        return result

    def _snapshot_done(self, result) -> None:
        """Final ``repro top`` frame for a finished run: progress full,
        the communication-optimality gauge computed from the run's
        actual access counts."""
        from repro.obs.slo import comm_optimality
        from repro.obs.top import current_writer, registry_stats

        writer = current_writer()
        if writer is None:
            return
        memories = getattr(result, "memories", None) or {}
        total = sum(m.reads + m.writes for m in memories.values())
        remote = getattr(result, "remote_accesses", 0)
        nblocks = len(getattr(result, "plan", self._plan).blocks)
        writer.write({
            "registry": registry_stats(self.registry),
            "phase": "done",
            "case": self.nest.name or "?",
            "backend": getattr(result, "backend", "?"),
            "units": 1, "units_done": 1,
            "blocks": nblocks, "blocks_done": nblocks,
            "comm_optimality": comm_optimality(total, remote),
            "remote_accesses": remote,
        })

    def run_sequential(self, backend: Optional[str] = None):
        """Run the nest sequentially (the golden model); returns the
        final arrays."""
        from repro.runtime.arrays import make_arrays
        from repro.runtime.seq import run_sequential

        plan = self.plan()
        with self._scope():
            arrays = make_arrays(plan.model)
            return run_sequential(plan.nest, arrays, scalars=self.scalars,
                                  space=plan.model.space, backend=backend,
                                  options=self.options)

    def verify(self, backend: Optional[str] = None, **kwargs):
        """Parallel == sequential, zero communication; returns a
        :class:`~repro.runtime.verify.VerificationReport`."""
        from repro.runtime.verify import _verify_plan

        with self._scope():
            return _verify_plan(self.plan(), scalars=self.scalars,
                                backend=backend, options=self.options,
                                **kwargs)

    def audit(self, plan: Optional[PartitionPlan] = None, **kwargs):
        """Certify communication-freedom; returns an
        :class:`~repro.obs.audit.AuditReport`.

        ``plan`` overrides the session's own plan -- the CLI's
        ``--inject-violation`` negative control audits a sabotaged
        copy without poisoning the session.
        """
        from repro.obs.audit import audit_plan

        with self._scope():
            return audit_plan(plan if plan is not None else self.plan(),
                              scalars=self.scalars,
                              registry=self.registry, **kwargs)

    def machine(self, p: int = 16, **kwargs):
        """Run on the simulated multicomputer; returns a
        :class:`~repro.runtime.machine_run.MachineRun`."""
        from repro.runtime.machine_run import run_on_machine

        with self._scope():
            return run_on_machine(self.plan(), p, scalars=self.scalars,
                                  options=self.options, **kwargs)

    def report(self, p: int = 16, **kwargs):
        """The full compile report for this nest."""
        from repro.report import compile_report

        with self._scope():
            return compile_report(self.nest, p=p,
                                  scalars=self.scalars or None, **kwargs)

    # -- observability ----------------------------------------------------
    def metrics(self) -> dict:
        """A snapshot of the session's metrics registry."""
        return self.registry.snapshot()
