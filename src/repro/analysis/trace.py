"""The sequential access trace of a loop nest.

The redundancy analysis of Section III.C is decided *exactly* on the
finite iteration space by replaying the loop's accesses in sequential
(lexicographic) order: each computation ``S_k(i)`` performs its RHS
reads, then its LHS write.  The trace records who touched which array
element when -- the per-element timelines drive the liveness fixpoint
in :mod:`repro.analysis.redundancy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.references import Reference, ReferenceModel

# An array element is identified by (array name, coordinate tuple).
Element = tuple[str, tuple[int, ...]]
# A computation is one statement instance: (stmt_index, iteration).
CompId = tuple[int, tuple[int, ...]]


@dataclass(frozen=True)
class AccessEvent:
    """One read or write of one element by one computation.

    ``time`` orders all events totally: ``(sequence, phase)`` where
    ``sequence`` numbers computations in execution order and ``phase``
    is 0 for reads, 1 for the write.
    """

    time: tuple[int, int]
    is_write: bool
    comp: CompId
    element: Element
    ref: Reference


@dataclass(frozen=True)
class Computation:
    """One executed statement instance with its resolved accesses."""

    seq: int
    comp: CompId
    write_element: Element
    read_elements: tuple[tuple[Element, Reference], ...]
    write_ref: Reference


@dataclass
class SequentialTrace:
    """The full trace plus per-element timelines."""

    model: ReferenceModel
    computations: list[Computation]
    # element -> ordered (time, is_write, comp) triples
    timelines: dict[Element, list[AccessEvent]] = field(default_factory=dict)

    def events(self) -> Iterator[AccessEvent]:
        for evs in self.timelines.values():
            yield from evs

    def writes_to(self, element: Element) -> list[AccessEvent]:
        return [e for e in self.timelines.get(element, []) if e.is_write]

    def reads_of(self, element: Element) -> list[AccessEvent]:
        return [e for e in self.timelines.get(element, []) if not e.is_write]

    def last_write_before(self, element: Element, time: tuple[int, int]):
        """The most recent write event to ``element`` strictly before ``time``."""
        best = None
        for ev in self.timelines.get(element, []):
            if ev.is_write and ev.time < time:
                best = ev
            elif ev.time >= time:
                break
        return best


def build_trace(model: ReferenceModel) -> SequentialTrace:
    """Replay the nest sequentially and record every access."""
    nest = model.nest
    refs_by_stmt: dict[int, tuple[Reference, list[Reference]]] = {}
    for k in range(len(nest.statements)):
        stmt_refs = [r for r in model.all_references() if r.stmt_index == k]
        write = next(r for r in stmt_refs if r.is_write)
        reads = [r for r in stmt_refs if not r.is_write]
        refs_by_stmt[k] = (write, reads)

    computations: list[Computation] = []
    timelines: dict[Element, list[AccessEvent]] = {}
    seq = 0
    for iteration in model.space.iterate():
        for k in range(len(nest.statements)):
            write_ref, read_refs = refs_by_stmt[k]
            comp: CompId = (k, iteration)
            read_elems: list[tuple[Element, Reference]] = []
            for rr in read_refs:
                elem: Element = (rr.array, model.arrays[rr.array].element_at(iteration, rr.offset))
                read_elems.append((elem, rr))
                ev = AccessEvent(time=(seq, 0), is_write=False, comp=comp,
                                 element=elem, ref=rr)
                timelines.setdefault(elem, []).append(ev)
            welem: Element = (
                write_ref.array,
                model.arrays[write_ref.array].element_at(iteration, write_ref.offset),
            )
            ev = AccessEvent(time=(seq, 1), is_write=True, comp=comp,
                             element=welem, ref=write_ref)
            timelines.setdefault(welem, []).append(ev)
            computations.append(
                Computation(seq=seq, comp=comp, write_element=welem,
                            read_elements=tuple(read_elems), write_ref=write_ref)
            )
            seq += 1
    return SequentialTrace(model=model, computations=computations, timelines=timelines)
