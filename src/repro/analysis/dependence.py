"""Exact data-dependence testing and classification.

A dependence from access ``a`` to access ``b`` on array ``A`` exists iff
there are iterations ``i_1, i_2`` in the iteration space with

    H i_1 + c_a = H i_2 + c_b      (same element), and
    (i_1, a) executes before (i_2, b).

Writing ``t = i_2 - i_1`` this becomes: ``H t = c_a - c_b`` has an
integer solution ``t`` that is a difference of two in-space iterations
and is lexicographically positive (or zero with ``a`` textually before
``b``).  We decide this exactly: Smith normal form gives the integer
solution lattice, which we enumerate inside the difference box.

Kinds follow the roles: write-then-read = flow (delta^f), read-then-
write = anti (delta^a), write-write = output (delta^o), read-read =
input (delta^i).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.analysis.references import ArrayInfo, Reference, ReferenceModel
from repro.lang.space import IterationSpace
from repro.ratlinalg.lattice import IntLattice
from repro.ratlinalg.matrix import RatVec
from repro.ratlinalg.smith import solve_diophantine


class DependenceKind(enum.Enum):
    FLOW = "flow"      # delta^f : write -> read
    ANTI = "anti"      # delta^a : read -> write
    OUTPUT = "output"  # delta^o : write -> write
    INPUT = "input"    # delta^i : read -> read

    @staticmethod
    def of(src_is_write: bool, dst_is_write: bool) -> "DependenceKind":
        if src_is_write and not dst_is_write:
            return DependenceKind.FLOW
        if not src_is_write and dst_is_write:
            return DependenceKind.ANTI
        if src_is_write and dst_is_write:
            return DependenceKind.OUTPUT
        return DependenceKind.INPUT


@dataclass(frozen=True)
class Dependence:
    """A witnessed dependence ``src -> dst`` with one iteration-difference."""

    array: str
    src: Reference
    dst: Reference
    kind: DependenceKind
    witness: RatVec  # t = i_dst - i_src for one realizing pair

    def __repr__(self) -> str:
        t = tuple(int(x) for x in self.witness)
        return (f"Dependence({self.kind.value}: S{self.src.stmt_index + 1}"
                f"{'W' if self.src.is_write else 'R'} -> S{self.dst.stmt_index + 1}"
                f"{'W' if self.dst.is_write else 'R'} on {self.array}, t={t})")


def access_precedes(a: Reference, b: Reference) -> bool:
    """Within one iteration, does access ``a`` happen before access ``b``?

    Statement order is primary; within a statement all RHS reads happen
    before the LHS write (the value is computed, then stored).
    """
    if a.stmt_index != b.stmt_index:
        return a.stmt_index < b.stmt_index
    # same statement: a read precedes the write; two reads are unordered
    # for dependence purposes (reads commute), two writes impossible.
    return (not a.is_write) and b.is_write


def dependence_between(
    info: ArrayInfo,
    src: Reference,
    dst: Reference,
    space: IterationSpace,
) -> Optional[Dependence]:
    """The dependence ``src -> dst`` if it exists, else ``None``.

    Exact for rectangular iteration spaces; for affine-bounded spaces the
    candidate difference is additionally verified against the concrete
    space (``IterationSpace.pair_exists``), so the answer stays exact.
    """
    r = src.offset - dst.offset
    sol = solve_diophantine(info.h, r)
    if sol is None:
        return None
    lat = IntLattice(list(sol.lattice_basis), sol.particular)
    lo, hi = space.difference_box()
    same_iter_ok = access_precedes(src, dst)
    rectangular = space.is_rectangular()

    def ok(t: RatVec) -> bool:
        sign = t.lex_sign()
        if sign < 0 or (sign == 0 and not same_iter_ok):
            return False
        return True if rectangular else space.pair_exists(t)

    witness = lat.any_point_in_box_where(lo, hi, ok)
    if witness is None:
        return None
    return Dependence(
        array=info.name, src=src, dst=dst,
        kind=DependenceKind.of(src.is_write, dst.is_write),
        witness=witness,
    )


def all_dependences(model: ReferenceModel) -> list[Dependence]:
    """Every dependence between distinct references, all arrays."""
    out: list[Dependence] = []
    for info in model.arrays.values():
        refs = info.references
        for a in refs:
            for b in refs:
                if a is b:
                    continue
                dep = dependence_between(info, a, b, model.space)
                if dep is not None:
                    out.append(dep)
    return out


def loop_carried_dependence_exists(
    info: ArrayInfo,
    src: Reference,
    dst: Reference,
    space: IterationSpace,
) -> bool:
    """Is there a dependence ``src -> dst`` across *distinct* iterations?

    Like :func:`dependence_between` but requiring ``t`` strictly
    lexicographically positive.  A loop is a For-all loop (in the
    Ramanujam-Sadayappan sense) iff no non-input dependence is loop
    carried.
    """
    r = src.offset - dst.offset
    sol = solve_diophantine(info.h, r)
    if sol is None:
        return False
    lat = IntLattice(list(sol.lattice_basis), sol.particular)
    lo, hi = space.difference_box()
    rectangular = space.is_rectangular()

    def ok(t: RatVec) -> bool:
        if t.lex_sign() <= 0:
            return False
        return True if rectangular else space.pair_exists(t)

    return lat.any_point_in_box_where(lo, hi, ok) is not None


def is_forall_loop(model: ReferenceModel) -> bool:
    """True iff no flow/anti/output dependence crosses iterations."""
    for info in model.arrays.values():
        refs = info.references
        for a in refs:
            for b in refs:
                if a is b or (not a.is_write and not b.is_write):
                    continue  # read-read (input) deps don't constrain For-all
                if loop_carried_dependence_exists(info, a, b, model.space):
                    return False
    return True


def has_flow_dependence(info: ArrayInfo, space: IterationSpace) -> bool:
    """Does any flow dependence exist on this array? (Definition 5 test)."""
    for w in info.writes():
        for r in info.reads():
            if dependence_between(info, w, r, space) is not None:
                return True
    return False


def is_fully_duplicable(info: ArrayInfo, space: IterationSpace) -> bool:
    """Definition 5: fully duplicable iff the array carries no flow dependence."""
    return not has_flow_dependence(info, space)
