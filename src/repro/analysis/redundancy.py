"""Redundant-computation elimination (Section III.C).

A computation ``S_k(i)`` is *redundant* when the value it writes is
overwritten before being read by any non-redundant computation (the
paper's Cases 1 and 2, applied recursively).  Equivalently, the
*non-redundant* (live) computations are the least fixpoint of

    live(C)  iff  C's written value is never overwritten (final value)
             or   some live computation reads C's value before the
                  overwrite,

computed here by a backwards worklist over the exact sequential trace.
The analysis then yields:

- ``N(S_k)`` -- the iterations where ``S_k`` is non-redundant;
- ``Val(ref, S)`` -- elements actually touched by non-redundant
  computations through ``ref``;
- the *false* vs. *useful* classification of every data-reference-graph
  edge (``Val(a,S) ∩ Val(b,S') = φ`` means false);
- the dependence vectors contributed by useful edges, feeding the
  minimal partitioning spaces of Theorems 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.dependence import Dependence, DependenceKind
from repro.analysis.references import Reference, ReferenceModel
from repro.analysis.refgraph import DataReferenceGraph, build_all_reference_graphs
from repro.analysis.trace import CompId, Element, SequentialTrace, build_trace
from repro.ratlinalg.lattice import IntLattice
from repro.ratlinalg.matrix import RatVec
from repro.ratlinalg.smith import solve_diophantine


@dataclass
class RedundancyAnalysis:
    """Results of redundant-computation elimination for one loop nest."""

    model: ReferenceModel
    trace: SequentialTrace
    live: set[CompId]
    graphs: dict[str, DataReferenceGraph]
    useful_edges: list[Dependence] = field(default_factory=list)
    false_edges: list[Dependence] = field(default_factory=list)

    # -- N(S_k) ----------------------------------------------------------
    def n_set(self, stmt_index: int) -> set[tuple[int, ...]]:
        """``N(S_k)``: iterations where statement ``k`` is non-redundant."""
        return {it for (k, it) in self.live if k == stmt_index}

    def redundant_set(self, stmt_index: int) -> set[tuple[int, ...]]:
        all_iters = set(self.model.space.points())
        return all_iters - self.n_set(stmt_index)

    def is_live(self, stmt_index: int, iteration: tuple[int, ...]) -> bool:
        return (stmt_index, iteration) in self.live

    # -- Val sets ----------------------------------------------------------
    def val_set(self, ref: Reference) -> set[tuple[int, ...]]:
        """``Val(ref, S_k)``: elements accessed by non-redundant computations."""
        info = self.model.arrays[ref.array]
        return {
            info.element_at(it, ref.offset) for it in self.n_set(ref.stmt_index)
        }

    def edge_is_useful(self, dep: Dependence) -> bool:
        return bool(self.val_set(dep.src) & self.val_set(dep.dst))

    # -- useful dependence vectors -------------------------------------------
    def useful_vectors(self, array: str, flow_only: bool = False) -> list[RatVec]:
        """Particular solutions ``t`` of ``H t = r`` for each useful edge.

        With ``flow_only`` (duplicate-data strategy, Theorem 4) only flow
        edges contribute.  For a nonsingular ``H`` (the paper's Section
        III.C assumption) the solution is unique; for singular ``H`` we
        return the canonical particular solution -- callers add
        ``Ker(H)`` separately, so the spanned space is identical.
        """
        info = self.model.arrays[array]
        out: list[RatVec] = []
        for dep in self.useful_edges:
            if dep.array != array:
                continue
            if flow_only and dep.kind is not DependenceKind.FLOW:
                continue
            sol = solve_diophantine(info.h, dep.src.offset - dep.dst.offset)
            if sol is None:
                continue
            out.append(sol.particular)
        return out

    # -- reporting ------------------------------------------------------------
    def summary(self) -> str:
        lines = []
        for k in range(len(self.model.nest.statements)):
            label = self.model.nest.statement_label(k)
            n = len(self.n_set(k))
            total = self.model.space.size()
            lines.append(f"{label}: {n}/{total} computations non-redundant")
        lines.append(
            f"useful edges: {len(self.useful_edges)}, "
            f"false edges: {len(self.false_edges)}"
        )
        return "\n".join(lines)


def _liveness(trace: SequentialTrace) -> set[CompId]:
    """Least-fixpoint liveness over the trace (see module docstring)."""
    live: set[CompId] = set()
    worklist: list[CompId] = []
    # Seed: the last write to each element is never overwritten -> its
    # computation produces a final value and is live.
    for element, events in trace.timelines.items():
        writes = [e for e in events if e.is_write]
        if writes:
            comp = writes[-1].comp
            if comp not in live:
                live.add(comp)
                worklist.append(comp)
    comp_index = {c.comp: c for c in trace.computations}
    while worklist:
        comp = worklist.pop()
        record = comp_index[comp]
        read_time = (record.seq, 0)
        for element, _ref in record.read_elements:
            writer = trace.last_write_before(element, read_time)
            if writer is not None and writer.comp not in live:
                live.add(writer.comp)
                worklist.append(writer.comp)
    return live


def analyze_redundancy(model: ReferenceModel,
                       trace: Optional[SequentialTrace] = None) -> RedundancyAnalysis:
    """Run the full Section-III.C analysis on a reference model."""
    if trace is None:
        trace = build_trace(model)
    live = _liveness(trace)
    graphs = build_all_reference_graphs(model)
    analysis = RedundancyAnalysis(
        model=model, trace=trace, live=live, graphs=graphs
    )
    for g in graphs.values():
        for dep in g.edges:
            (analysis.useful_edges
             if analysis.edge_is_useful(dep)
             else analysis.false_edges).append(dep)
    return analysis
