"""Reference extraction: from AST to ``A[H i + c]`` form.

Every array reference in the loop body is decomposed into its reference
matrix ``H`` (``d x n``, integer) and constant offset vector ``c``
(Section II).  References to the same array must share ``H`` --
*uniformly generated references*; anything else raises
:class:`NonUniformReferenceError` (the paper restricts its analysis to
this class because "little exploitable data dependence exists between
nonuniformly generated references").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lang.affine import NotAffineError, affine_of
from repro.lang.ast import ArrayRef, LoopNest
from repro.lang.space import IterationSpace
from repro.ratlinalg.matrix import RatMat, RatVec


class NonUniformReferenceError(ValueError):
    """Two references to one array disagree on the reference matrix ``H``."""


@dataclass(frozen=True)
class Reference:
    """One referenced array variable ``A[H i + c]`` at a statement.

    ``stmt_index`` is the 0-based statement position; ``is_write`` marks
    the left-hand side.  ``slot`` disambiguates multiple reads of the
    same array within one statement (0 = LHS, then RHS reads in
    left-to-right order).
    """

    array: str
    offset: RatVec
    stmt_index: int
    is_write: bool
    slot: int
    ast: ArrayRef

    @property
    def key(self) -> tuple:
        return (self.array, self.stmt_index, self.is_write, self.slot)

    def describe(self, indices: tuple[str, ...]) -> str:
        subs = ", ".join(s for s in self._subscript_strings(indices))
        role = "W" if self.is_write else "R"
        return f"{self.array}[{subs}] ({role}@S{self.stmt_index + 1})"

    def _subscript_strings(self, indices):
        from repro.lang.printer import expr_to_source

        return [expr_to_source(s) for s in self.ast.subscripts]


@dataclass
class ArrayInfo:
    """All references to one array, with the shared reference matrix."""

    name: str
    h: RatMat                     # d x n integer reference matrix
    references: list[Reference] = field(default_factory=list)

    @property
    def rank(self) -> int:
        return self.h.nrows

    @property
    def depth(self) -> int:
        return self.h.ncols

    def writes(self) -> list[Reference]:
        return [r for r in self.references if r.is_write]

    def reads(self) -> list[Reference]:
        return [r for r in self.references if not r.is_write]

    def is_read_only(self) -> bool:
        return not self.writes()

    def distinct_offsets(self) -> list[RatVec]:
        """Offsets of the *distinct* referenced variables (paper's s variables)."""
        seen: list[RatVec] = []
        for r in self.references:
            if r.offset not in seen:
                seen.append(r.offset)
        return seen

    def element_at(self, iteration, offset: RatVec) -> tuple[int, ...]:
        """The array element ``H i + c`` touched at ``iteration`` via ``offset``."""
        i = iteration if isinstance(iteration, RatVec) else RatVec(list(iteration))
        return tuple(int(x) for x in (self.h @ i + offset))


@dataclass
class ReferenceModel:
    """The complete reference-pattern model of one loop nest."""

    nest: LoopNest
    space: IterationSpace
    arrays: dict[str, ArrayInfo]

    def array(self, name: str) -> ArrayInfo:
        return self.arrays[name]

    def array_names(self) -> list[str]:
        return list(self.arrays.keys())

    def all_references(self) -> list[Reference]:
        return [r for info in self.arrays.values() for r in info.references]


def _decompose(ref: ArrayRef, indices: tuple[str, ...]) -> tuple[RatMat, RatVec]:
    """Split ``A[sub_1..sub_d]`` into integer ``H`` (d x n) and offset ``c``."""
    rows = []
    consts = []
    for sub in ref.subscripts:
        try:
            ae = affine_of(sub, indices)
        except NotAffineError as exc:
            raise NonUniformReferenceError(
                f"subscript of {ref.array} is not affine in {indices}: {exc}"
            ) from exc
        if not ae.is_integral():
            raise NonUniformReferenceError(
                f"subscript of {ref.array} has non-integer coefficients: {ae.render()}"
            )
        rows.append(list(ae.coeffs))
        consts.append(ae.const)
    return RatMat(rows), RatVec(consts)


def extract_references(nest: LoopNest) -> ReferenceModel:
    """Build the :class:`ReferenceModel`, enforcing uniform generation.

    Within one statement the LHS write gets ``slot`` 0 and RHS reads get
    slots 1, 2, ... in source order; the slot only disambiguates
    references, it has no semantic weight.
    """
    indices = nest.indices
    arrays: dict[str, ArrayInfo] = {}

    def visit(ref: ArrayRef, stmt_index: int, is_write: bool, slot: int) -> None:
        h, c = _decompose(ref, indices)
        info = arrays.get(ref.array)
        if info is None:
            info = ArrayInfo(name=ref.array, h=h)
            arrays[ref.array] = info
        else:
            if info.h != h:
                raise NonUniformReferenceError(
                    f"array {ref.array} has non-uniformly generated references: "
                    f"{info.h!r} vs {h!r}"
                )
            if info.rank != len(c):
                raise NonUniformReferenceError(
                    f"array {ref.array} used with inconsistent rank"
                )
        info.references.append(
            Reference(array=ref.array, offset=c, stmt_index=stmt_index,
                      is_write=is_write, slot=slot, ast=ref)
        )

    for k, stmt in enumerate(nest.statements):
        visit(stmt.lhs, k, True, 0)
        for slot, read in enumerate(stmt.rhs.array_refs(), start=1):
            visit(read, k, False, slot)

    return ReferenceModel(nest=nest, space=IterationSpace(nest), arrays=arrays)
