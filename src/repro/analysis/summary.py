"""Dependence summaries: the compiler's ``-fdump-deps`` view.

Aggregates every dependence of a nest into a tabular summary --
kind, endpoints, distance vector (unique for nonsingular ``H``,
lattice-described otherwise), whether it is loop-carried, and (after
redundancy analysis) whether it is useful or false.  Feeds the report
module and gives tests a single structured view over the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.dependence import Dependence, DependenceKind, all_dependences
from repro.analysis.redundancy import RedundancyAnalysis
from repro.analysis.references import ReferenceModel
from repro.ratlinalg.rref import nullspace
from repro.ratlinalg.smith import solve_diophantine


@dataclass(frozen=True)
class DependenceRow:
    """One summarized dependence."""

    array: str
    kind: str
    src: str                      # e.g. "S1.W"
    dst: str                      # e.g. "S2.R1"
    witness: tuple[int, ...]
    distance: Optional[tuple[int, ...]]  # unique distance, if H nonsingular
    lattice_rank: int             # solution-set dimension beyond a point
    loop_carried: bool
    classification: str           # "useful" / "false" / "" (no analysis)


def _ref_name(ref) -> str:
    role = "W" if ref.is_write else f"R{ref.slot}"
    return f"S{ref.stmt_index + 1}.{role}"


def summarize_dependences(
    model: ReferenceModel,
    redundancy: Optional[RedundancyAnalysis] = None,
) -> list[DependenceRow]:
    """The full dependence table of a nest, deterministic order."""
    deps = all_dependences(model)
    classified: dict[int, str] = {}
    if redundancy is not None:
        useful_keys = {
            (d.array, d.src.key, d.dst.key) for d in redundancy.useful_edges
        }
        false_keys = {
            (d.array, d.src.key, d.dst.key) for d in redundancy.false_edges
        }
    rows: list[DependenceRow] = []
    for dep in deps:
        info = model.arrays[dep.array]
        kernel_dim = len(nullspace(info.h))
        distance: Optional[tuple[int, ...]] = None
        if kernel_dim == 0:
            sol = solve_diophantine(info.h, dep.src.offset - dep.dst.offset)
            if sol is not None:
                distance = tuple(int(x) for x in sol.particular)
        witness = tuple(int(x) for x in dep.witness)
        if redundancy is None:
            cls = ""
        else:
            key = (dep.array, dep.src.key, dep.dst.key)
            cls = ("useful" if key in useful_keys
                   else "false" if key in false_keys else "")
        rows.append(DependenceRow(
            array=dep.array,
            kind=dep.kind.value,
            src=_ref_name(dep.src),
            dst=_ref_name(dep.dst),
            witness=witness,
            distance=distance,
            lattice_rank=kernel_dim,
            loop_carried=dep.witness.lex_sign() > 0,
            classification=cls,
        ))
    rows.sort(key=lambda r: (r.array, r.src, r.dst, r.kind))
    return rows


def format_dependence_table(rows: list[DependenceRow]) -> str:
    """Plain-text rendering of the dependence table."""
    if not rows:
        return "(no dependences)"
    header = (f"{'array':<6} {'kind':<7} {'src':<7} {'dst':<7} "
              f"{'distance':<12} {'carried':<8} {'class':<7}")
    lines = [header, "-" * len(header)]
    for r in rows:
        dist = (str(r.distance) if r.distance is not None
                else f"{r.witness}+L{r.lattice_rank}")
        lines.append(
            f"{r.array:<6} {r.kind:<7} {r.src:<7} {r.dst:<7} "
            f"{dist:<12} {('yes' if r.loop_carried else 'no'):<8} "
            f"{r.classification:<7}")
    return "\n".join(lines)
