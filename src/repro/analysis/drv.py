"""Data-referenced vectors (Definition 1).

For two referenced variables ``A[H i + c_1]`` and ``A[H i + c_2]`` the
data-referenced vector is ``r = c_1 - c_2``: the vector difference of
the two elements touched by the *same* iteration.  Two iterations
``i_1``, ``i_2`` touch the same element through the two references iff
``H (i_2 - i_1) = r``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.references import ArrayInfo, Reference
from repro.ratlinalg.matrix import RatVec


@dataclass(frozen=True)
class DataReferencedVector:
    """``r = first.offset - second.offset`` for a pair of distinct references."""

    array: str
    first: Reference
    second: Reference
    vector: RatVec


def data_referenced_vectors(info: ArrayInfo) -> list[DataReferencedVector]:
    """All data-referenced vectors of one array.

    Pairs are formed over *distinct offsets* (the paper's
    ``s(s-1)/2`` pairs of referenced variables); two textual references
    with equal offsets denote the same referenced variable and produce
    no vector.  Order within a pair follows first-appearance order, so
    L1's array A yields ``r = (2, 1)`` (``A[2i,j]`` minus
    ``A[2i-2,j-1]``) exactly as in the paper.
    """
    reps: list[Reference] = []
    seen: set[tuple] = set()
    for r in info.references:
        key = tuple(r.offset)
        if key not in seen:
            seen.add(key)
            reps.append(r)
    out: list[DataReferencedVector] = []
    for a in range(len(reps)):
        for b in range(a + 1, len(reps)):
            out.append(
                DataReferencedVector(
                    array=info.name,
                    first=reps[a],
                    second=reps[b],
                    vector=reps[a].offset - reps[b].offset,
                )
            )
    return out
