"""The data reference graph ``G^A = (V^A, E^A)`` (Definition 6).

Vertices are the referenced array variables of one array, split into
writes ``W^A`` (LHS occurrences) and reads ``R^A`` (RHS occurrences).
Edges are the data dependences between them, labelled with their kind.
The exact dependence test of :mod:`repro.analysis.dependence` yields
precisely the connections the paper describes (output edges between
writes, input edges between reads, flow edges ``w -> r`` and anti edges
``r -> w`` according to the execution order) -- reproducing Fig. 7 for
loop L3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import networkx as nx

from repro.analysis.dependence import Dependence, DependenceKind, dependence_between
from repro.analysis.references import ArrayInfo, Reference, ReferenceModel


@dataclass
class DataReferenceGraph:
    """``G^A`` for one array, backed by a :class:`networkx.MultiDiGraph`."""

    array: str
    writes: list[Reference]
    reads: list[Reference]
    edges: list[Dependence]
    graph: nx.MultiDiGraph = field(repr=False, default_factory=nx.MultiDiGraph)

    def vertex_name(self, ref: Reference) -> str:
        """Paper-style vertex names: ``w1, w2, ...`` / ``r1, r2, ...``."""
        if ref.is_write:
            return f"w{self.writes.index(ref) + 1}"
        return f"r{self.reads.index(ref) + 1}"

    def edges_of_kind(self, kind: DependenceKind) -> list[Dependence]:
        return [e for e in self.edges if e.kind == kind]

    def edge_names(self) -> list[tuple[str, str, str]]:
        """Edges as (src_name, dst_name, kind) triples, for display/tests."""
        return [
            (self.vertex_name(e.src), self.vertex_name(e.dst), e.kind.value)
            for e in self.edges
        ]

    def find_edge(self, src_name: str, dst_name: str) -> Optional[Dependence]:
        for e in self.edges:
            if (self.vertex_name(e.src) == src_name
                    and self.vertex_name(e.dst) == dst_name):
                return e
        return None

    def __iter__(self) -> Iterator[Dependence]:
        return iter(self.edges)


def build_reference_graph(model: ReferenceModel, array: str) -> DataReferenceGraph:
    """Construct ``G^A`` for ``array`` in the given model."""
    info: ArrayInfo = model.arrays[array]
    writes = info.writes()
    reads = info.reads()
    g = nx.MultiDiGraph()
    out = DataReferenceGraph(array=array, writes=writes, reads=reads, edges=[], graph=g)
    for ref in writes + reads:
        g.add_node(out.vertex_name(ref), ref=ref, role="W" if ref.is_write else "R")
    for a in info.references:
        for b in info.references:
            if a is b:
                continue
            dep = dependence_between(info, a, b, model.space)
            if dep is not None:
                out.edges.append(dep)
                g.add_edge(out.vertex_name(a), out.vertex_name(b),
                           kind=dep.kind.value, dep=dep)
    return out


def build_all_reference_graphs(model: ReferenceModel) -> dict[str, DataReferenceGraph]:
    return {name: build_reference_graph(model, name) for name in model.arrays}
