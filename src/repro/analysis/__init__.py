"""Reference-pattern and dependence analysis (Sections II-III of the paper).

- :mod:`~repro.analysis.references`: extract ``A[H i + c]`` reference
  functions and offsets; verify *uniformly generated* references.
- :mod:`~repro.analysis.drv`: data-referenced vectors (Definition 1).
- :mod:`~repro.analysis.dependence`: exact dependence existence and
  classification (flow / anti / output / input) on the integer solution
  lattice of ``H t = r``.
- :mod:`~repro.analysis.refgraph`: the data reference graph ``G^A``
  (Definition 6).
- :mod:`~repro.analysis.trace`: the sequential access trace.
- :mod:`~repro.analysis.redundancy`: redundant-computation elimination,
  ``N(S_k)`` sets, ``Val`` sets and false-dependence detection
  (Section III.C).
"""

from repro.analysis.references import (
    ArrayInfo,
    NonUniformReferenceError,
    Reference,
    ReferenceModel,
    extract_references,
)
from repro.analysis.drv import data_referenced_vectors
from repro.analysis.dependence import (
    Dependence,
    DependenceKind,
    all_dependences,
    dependence_between,
    has_flow_dependence,
    is_fully_duplicable,
)
from repro.analysis.refgraph import DataReferenceGraph, build_reference_graph
from repro.analysis.trace import AccessEvent, Computation, SequentialTrace, build_trace
from repro.analysis.redundancy import RedundancyAnalysis, analyze_redundancy

__all__ = [
    "ArrayInfo",
    "NonUniformReferenceError",
    "Reference",
    "ReferenceModel",
    "extract_references",
    "data_referenced_vectors",
    "Dependence",
    "DependenceKind",
    "all_dependences",
    "dependence_between",
    "has_flow_dependence",
    "is_fully_duplicable",
    "DataReferenceGraph",
    "build_reference_graph",
    "AccessEvent",
    "Computation",
    "SequentialTrace",
    "build_trace",
    "RedundancyAnalysis",
    "analyze_redundancy",
]
