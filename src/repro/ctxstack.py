"""Thread-aware ambient-scope stacks.

The ambient scoping helpers scattered through the repository --
``use_registry`` / ``use_tracer`` (obs), ``use_metrics`` (pipeline),
``use_pool`` (runtime) and ``use_fault_plan`` (scheduler) -- used to
push onto plain module-level lists.  That is correct for a
single-threaded CLI run, but the serving daemon (:mod:`repro.serve`)
executes many requests concurrently on worker threads: with one shared
list, thread A's ``finally: stack.pop()`` can remove the entry thread B
just pushed, silently rebinding B's metrics registry or worker pool
mid-request.

:class:`ScopeStack` fixes the shape once for all five sites: every
thread sees its own stack, seeded with the shared *base* entries (the
process-wide defaults like ``METRICS`` or the null tracer), so

- scopes entered on one thread are invisible to -- and unpoppable
  by -- every other thread;
- a thread that never scopes anything still reads the process default;
- exits are matched by identity, so even a mispaired teardown cannot
  drop someone else's entry.

Deliberately *not* inherited across thread spawn (unlike
``contextvars`` copied into executor tasks): a daemon worker thread
must start from the process defaults, not from whatever scope the
event-loop thread happened to be in when the executor was created.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional


class ScopeStack:
    """One ambient-scope stack, isolated per thread above a shared base."""

    def __init__(self, *base: Any) -> None:
        self._base = tuple(base)
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = list(self._base)
        return stack

    # -- queries ----------------------------------------------------------
    def top(self, default: Any = None) -> Any:
        """The innermost scoped value on *this* thread (or the base)."""
        stack = self._stack()
        return stack[-1] if stack else default

    def depth(self) -> int:
        """Scoped entries above the shared base, on this thread."""
        return len(self._stack()) - len(self._base)

    # -- scoping ----------------------------------------------------------
    @contextmanager
    def scoped(self, value: Any) -> Iterator[Any]:
        """Push ``value`` for the duration of the ``with`` block."""
        stack = self._stack()
        stack.append(value)
        try:
            yield value
        finally:
            if stack and stack[-1] is value:
                stack.pop()
            else:  # pragma: no cover - mispaired teardown
                for i in range(len(stack) - 1, -1, -1):
                    if stack[i] is value:
                        del stack[i]
                        break


def scope_stack(*base: Any) -> ScopeStack:
    """Factory kept for call-site readability."""
    return ScopeStack(*base)
