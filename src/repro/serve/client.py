"""Blocking Unix-socket client for the serving daemon.

One connection, JSON-lines frames, version-checked responses.  Used by
the CLI's ``serve status``/``serve stop``/``serve submit``, the CI
smoke test, and anything else that wants a warm daemon instead of a
cold process per request::

    with ServeClient() as c:
        report = c.request("verify", nest="L2", strategy="duplicate")
        assert report["ok"]
"""

from __future__ import annotations

import socket
from typing import Optional

from repro.serve.protocol import (
    Request,
    Response,
    decode_frame,
    encode_frame,
)


class ServeError(RuntimeError):
    """A failed request; carries the typed envelope."""

    def __init__(self, response: Response):
        super().__init__(response.reason())
        self.response = response
        self.kind = (response.error or {}).get("kind", "internal")


class ServeClient:
    """One blocking connection to a serving daemon."""

    def __init__(self, socket_path: Optional[str] = None,
                 timeout: float = 60.0) -> None:
        from repro.serve.daemon import default_socket_path

        self.socket_path = str(socket_path or default_socket_path())
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(self.socket_path)
        self._rfile = self._sock.makefile("rb")
        self._counter = 0

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the wire ---------------------------------------------------------
    def call(self, request: Request) -> Response:
        """Send one request, wait for its response frame."""
        self._sock.sendall(encode_frame(request))
        line = self._rfile.readline()
        if not line:
            raise ConnectionError(
                f"daemon at {self.socket_path} closed the connection")
        return Response.from_dict(decode_frame(line))

    def request(self, op: str, **fields) -> dict:
        """Call and unwrap: the result payload, or :class:`ServeError`."""
        self._counter += 1
        req = Request(op=op, id=f"c{self._counter}", **fields)
        resp = self.call(req)
        if not resp.ok:
            raise ServeError(resp)
        return resp.result or {}

    # -- conveniences -----------------------------------------------------
    def status(self) -> dict:
        return self.request("status")

    def shutdown(self) -> dict:
        return self.request("shutdown")
