"""The Unix-domain-socket daemon around :class:`AsyncServer`.

``repro serve start`` binds ``$REPRO_SERVE_SOCKET`` (default
``<cache-root>/serve.sock``), writes a pidfile next to it, and serves
JSON-lines frames until a ``shutdown`` request (``repro serve stop``)
or SIGTERM.  Every connection is one client; frames on one connection
are answered in completion order (each request is its own asyncio
task), so a client may pipeline.

The module doubles as the foreground entry point::

    python -m repro.serve.daemon --socket /tmp/s.sock

which is exactly what ``repro serve start`` double-forks into, and
what tests run in a thread.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
from pathlib import Path
from typing import Optional

from repro.serve.protocol import ProtocolError, Response, decode_frame, encode_frame
from repro.serve.server import (
    DEFAULT_CONCURRENCY,
    DEFAULT_QUEUE_LIMIT,
    AsyncServer,
)

SOCKET_ENV_VAR = "REPRO_SERVE_SOCKET"


def default_socket_path() -> Path:
    """``$REPRO_SERVE_SOCKET`` or ``<cache-root>/serve.sock``."""
    env = os.environ.get(SOCKET_ENV_VAR)
    if env:
        return Path(env)
    from repro.pipeline.cache import cache_root

    return cache_root() / "serve.sock"


def pidfile_for(socket_path) -> Path:
    return Path(socket_path).with_suffix(".pid")


def read_pidfile(socket_path) -> Optional[int]:
    try:
        return int(pidfile_for(socket_path).read_text().strip())
    except (OSError, ValueError):
        return None


def pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


async def _handle_connection(server: AsyncServer,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    """One client: read frames, answer each as its own task."""
    tasks: set[asyncio.Task] = set()

    async def answer(line: bytes) -> None:
        try:
            frame = decode_frame(line)
        except ProtocolError as exc:
            resp = Response.failure("", exc).to_dict()
        else:
            resp = await server.handle(frame)
        writer.write(encode_frame(resp))
        await writer.drain()

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            task = asyncio.ensure_future(answer(line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
            if server.shutdown_event.is_set():
                break
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve_forever(socket_path, server: AsyncServer) -> None:
    """Bind the socket, serve until the shutdown event, clean up."""
    socket_path = Path(socket_path)
    socket_path.parent.mkdir(parents=True, exist_ok=True)
    if socket_path.exists():
        socket_path.unlink()
    sock_server = await asyncio.start_unix_server(
        lambda r, w: _handle_connection(server, r, w), path=str(socket_path))
    pidfile_for(socket_path).write_text(f"{os.getpid()}\n")
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, server.shutdown_event.set)
        except (NotImplementedError, RuntimeError):
            pass
    try:
        async with sock_server:
            await server.shutdown_event.wait()
    finally:
        sock_server.close()
        try:
            # 3.12+ waits for live connection handlers too; an idle
            # client that never disconnects must not wedge shutdown
            await asyncio.wait_for(sock_server.wait_closed(), timeout=5.0)
        except asyncio.TimeoutError:
            pass
        server.close()
        for path in (socket_path, pidfile_for(socket_path)):
            try:
                path.unlink()
            except OSError:
                pass


def run_daemon(socket_path=None,
               max_concurrency: int = DEFAULT_CONCURRENCY,
               queue_limit: int = DEFAULT_QUEUE_LIMIT,
               server: Optional[AsyncServer] = None) -> None:
    """Foreground daemon loop (blocks until shutdown)."""
    socket_path = socket_path or default_socket_path()
    if server is None:
        server = AsyncServer(max_concurrency=max_concurrency,
                             queue_limit=queue_limit)
    asyncio.run(serve_forever(socket_path, server))


def spawn_daemon(socket_path=None,
                 max_concurrency: int = DEFAULT_CONCURRENCY,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 wait_s: float = 10.0) -> int:
    """Start a detached daemon process; returns its pid.

    Double-fork + setsid so the daemon survives the CLI process, with
    the grandchild exec'ing this module in foreground mode.  Waits for
    the socket to appear (the daemon is accepting) before returning.
    """
    import subprocess
    import time

    socket_path = Path(socket_path or default_socket_path())
    existing = read_pidfile(socket_path)
    if existing is not None and pid_alive(existing):
        raise RuntimeError(
            f"daemon already running (pid {existing}, "
            f"socket {socket_path})")
    argv = [sys.executable, "-m", "repro.serve.daemon",
            "--socket", str(socket_path),
            "--concurrency", str(max_concurrency),
            "--queue-limit", str(queue_limit)]
    proc = subprocess.Popen(
        argv, start_new_session=True,
        stdin=subprocess.DEVNULL,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + wait_s
    while time.monotonic() < deadline:
        if socket_path.exists():
            return proc.pid
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited immediately (code {proc.returncode})")
        time.sleep(0.05)
    proc.terminate()
    raise RuntimeError(f"daemon did not bind {socket_path} "
                       f"within {wait_s}s")


def stop_daemon(socket_path=None, wait_s: float = 10.0) -> bool:
    """Graceful stop: shutdown request over the socket, SIGTERM fallback.

    Returns True if a daemon was stopped, False if none was running.
    """
    import time

    socket_path = Path(socket_path or default_socket_path())
    pid = read_pidfile(socket_path)
    stopped = False
    if socket_path.exists():
        from repro.serve.client import ServeClient

        try:
            with ServeClient(socket_path, timeout=wait_s) as client:
                client.shutdown()
            stopped = True
        except (ConnectionError, OSError):
            pass
    if not stopped and pid is not None and pid_alive(pid):
        os.kill(pid, signal.SIGTERM)
        stopped = True
    if pid is not None:
        deadline = time.monotonic() + wait_s
        while time.monotonic() < deadline and pid_alive(pid):
            time.sleep(0.05)
    # a SIGKILLed daemon leaves its socket behind; clear it
    for path in (socket_path, pidfile_for(socket_path)):
        try:
            path.unlink()
        except OSError:
            pass
    return stopped


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.serve.daemon",
        description="foreground repro serving daemon")
    parser.add_argument("--socket", default=None,
                        help="unix socket path (default "
                             "$REPRO_SERVE_SOCKET or <cache>/serve.sock)")
    parser.add_argument("--concurrency", type=int,
                        default=DEFAULT_CONCURRENCY)
    parser.add_argument("--queue-limit", type=int,
                        default=DEFAULT_QUEUE_LIMIT)
    args = parser.parse_args(argv)
    run_daemon(args.socket, max_concurrency=args.concurrency,
               queue_limit=args.queue_limit)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
