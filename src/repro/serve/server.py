"""The in-process serving engine: admission, single-flight, warm state.

:class:`AsyncServer` is the daemon's brain and directly usable from
tests and benchmarks without a socket.  It multiplexes many concurrent
plan/run/verify/audit requests over a small pool of worker threads,
each request executing through a warm :class:`repro.api.Session`:

- **admission control** -- at most ``queue_limit`` requests may be
  admitted beyond the ones actively executing; excess arrivals are
  rejected *immediately* with a typed ``overloaded`` envelope rather
  than queued unboundedly (``serve.rejected``).  Backpressure is
  explicit: the client knows at once, and the daemon's memory stays
  bounded under any burst;
- **single-flight coalescing** -- requests are keyed by
  :func:`repro.serve.protocol.request_key` (the rename-invariant plan
  fingerprint plus op/backend/scalars).  While one execution for a key
  is in flight, every further arrival with the same key awaits the
  same future and receives the same payload (``serve.coalesced``): a
  burst of N identical requests costs exactly one pipeline analysis;
- **warm state** -- sessions live in an LRU keyed by their plan
  fingerprint, all sharing one worker pool and one metrics registry,
  so repeat traffic reuses built plans, compiled kernels and spawned
  worker processes.  Evicted sessions are closed (their cached
  shared-memory plan segments unlinked); the shared pool survives
  until :meth:`AsyncServer.close`.

Every request runs under a per-request span (``serve.request``) on the
server's tracer and lands its latency in the ``serve.latency_ms``
histogram, so ``p50/p95/p99`` come straight out of the registry
snapshot.  When a ``repro top`` snapshot path is configured the server
publishes its registry stats after every request.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Optional

from repro.serve.protocol import (
    Overloaded,
    ProtocolError,
    Request,
    Response,
    request_key,
)

#: Default executor width: concurrent requests actually computing.
DEFAULT_CONCURRENCY = 4
#: Default bound on admitted-but-not-yet-executing requests.
DEFAULT_QUEUE_LIMIT = 32
#: Default number of warm sessions kept in the LRU.
DEFAULT_SESSIONS = 8


class AsyncServer:
    """The asyncio serving engine over warm :class:`~repro.api.Session`s."""

    def __init__(
        self,
        max_concurrency: int = DEFAULT_CONCURRENCY,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        max_sessions: int = DEFAULT_SESSIONS,
        registry=None,
        tracer=None,
    ) -> None:
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import NULL_TRACER
        from repro.runtime.engine.base import backend_names
        from repro.runtime.pool import WorkerPool

        backend_names()  # warm the engine registry before executor threads
        self.max_concurrency = max(1, int(max_concurrency))
        self.queue_limit = max(0, int(queue_limit))
        self.max_sessions = max(1, int(max_sessions))
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_concurrency,
            thread_name_prefix="repro-serve")
        #: one warm pool shared by every session (sessions never own it)
        self._pool = WorkerPool()
        #: plan-key -> (Session, per-session lock); LRU, newest last
        self._sessions: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._sessions_lock = threading.Lock()
        #: request-key -> asyncio.Future of the in-flight execution
        self._inflight: dict[tuple, asyncio.Future] = {}
        #: requests admitted (executing or queued for the executor)
        self._admitted = 0
        self._requests = 0
        self._closed = False
        self.shutdown_event = asyncio.Event()

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Shut the executor, every warm session, and the shared pool."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        with self._sessions_lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session, _lock in sessions:
            session.close()
        self._pool.shutdown()

    def __enter__(self) -> "AsyncServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- warm sessions ----------------------------------------------------
    def _session_for(self, req: Request, session_key: tuple):
        """The warm session for a plan fingerprint (LRU, shared pool)."""
        from repro.api import Session

        with self._sessions_lock:
            hit = self._sessions.get(session_key)
            if hit is not None:
                self._sessions.move_to_end(session_key)
                self.registry.inc("serve.session.hit")
                return hit
            session = Session(
                req.nest,
                strategy=req.strategy,
                duplicate_arrays=req.duplicate_arrays,
                eliminate_redundant=req.eliminate_redundant,
                scalars=req.scalars,
                registry=self.registry,
                tracer=self.tracer,
                pool=self._pool,
            )
            entry = (session, threading.Lock())
            self._sessions[session_key] = entry
            self.registry.inc("serve.session.miss")
            evicted = []
            while len(self._sessions) > self.max_sessions:
                _, old = self._sessions.popitem(last=False)
                evicted.append(old[0])
                self.registry.inc("serve.session.evict")
            self.registry.set("serve.sessions", len(self._sessions))
        for old in evicted:
            old.close()
        return entry

    # -- execution (worker threads) ---------------------------------------
    def _execute(self, req: Request, session_key: tuple) -> Response:
        """Run one request to completion on an executor thread."""
        t0 = perf_counter()
        session, lock = self._session_for(req, session_key)
        with lock:
            warm = session._plan is not None
            with self.tracer.span("serve.request", category="serve",
                                  op=req.op, nest=req.nest[:40]):
                if req.op == "plan":
                    plan = session.plan()
                    result = {
                        "ok": True,
                        "loop": plan.nest.name,
                        "strategy": plan.strategy.value,
                        "blocks": plan.num_blocks,
                        "psi_dim": plan.psi.dim,
                        "summary": plan.summary(),
                    }
                elif req.op == "run":
                    result = session.run(backend=req.backend).to_json()
                elif req.op == "verify":
                    result = session.verify(backend=req.backend).to_json()
                elif req.op == "audit":
                    result = session.audit().to_json()
                else:  # pragma: no cover - dispatch guards earlier
                    raise ProtocolError(f"unexecutable op {req.op!r}")
        elapsed_ms = (perf_counter() - t0) * 1e3
        self.registry.observe("serve.latency_ms", elapsed_ms)
        ok = bool(result.get("ok", True))
        return Response(ok=ok, op=req.op, id=req.id, result=result,
                        warm=warm, elapsed_ms=round(elapsed_ms, 3))

    # -- the front door (event loop) --------------------------------------
    async def handle(self, frame: dict) -> dict:
        """One request frame in, one response frame out."""
        self._requests += 1
        self.registry.inc("serve.requests")
        op = frame.get("op", "") if isinstance(frame, dict) else ""
        try:
            req = Request.from_dict(frame)
        except ProtocolError as exc:
            self.registry.inc("serve.errors")
            self.registry.inc(f"serve.errors.{exc.kind}")
            return Response.failure(op, exc, id=_frame_id(frame)).to_dict()
        try:
            resp = await self._dispatch(req)
        except ProtocolError as exc:
            self.registry.inc("serve.errors")
            self.registry.inc(f"serve.errors.{exc.kind}")
            resp = Response.failure(req.op, exc, id=req.id)
        except Exception as exc:  # noqa: BLE001 - the wire reports it
            self.registry.inc("serve.errors")
            self.registry.inc("serve.errors.internal")
            resp = Response.failure(req.op, exc, id=req.id)
        if resp.ok:
            self.registry.inc("serve.ok")
        self._publish_top()
        return resp.to_dict()

    async def _dispatch(self, req: Request) -> Response:
        if req.op == "status":
            return Response(ok=True, op="status", id=req.id,
                            result=self.status())
        if req.op == "shutdown":
            self.shutdown_event.set()
            return Response(ok=True, op="shutdown", id=req.id,
                            result={"ok": True, "stopping": True})
        try:
            key = request_key(req)
        except Exception as exc:
            raise ProtocolError(f"bad nest: {exc}") from None
        # sessions are per (plan fingerprint, scalars): the plan and
        # its kernels are shared via the global caches either way, but
        # a session bakes its scalar bindings in at construction
        session_key = (key[1], key[3])

        loop = asyncio.get_running_loop()
        # single-flight: piggyback on an identical in-flight execution
        existing = self._inflight.get(key)
        if existing is not None:
            self.registry.inc("serve.coalesced")
            resp: Response = await asyncio.shield(existing)
            return Response(ok=resp.ok, op=resp.op, id=req.id,
                            result=resp.result, error=resp.error,
                            coalesced=True, warm=resp.warm,
                            elapsed_ms=resp.elapsed_ms)

        # admission control: bound what waits for an executor slot
        if self._admitted >= self.max_concurrency + self.queue_limit:
            self.registry.inc("serve.rejected")
            raise Overloaded(
                f"server overloaded: {self._admitted} requests in "
                f"flight (capacity {self.max_concurrency}+"
                f"{self.queue_limit} queued)")

        self._admitted += 1
        self.registry.set("serve.inflight", self._admitted)
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            resp = await loop.run_in_executor(
                self._executor, self._execute, req, session_key)
            if not future.cancelled():
                future.set_result(resp)
            return resp
        except Exception as exc:
            if not future.cancelled():
                future.set_exception(exc)
                # coalesced waiters consume it; a lone request re-raises
                future.exception()
            raise
        finally:
            self._inflight.pop(key, None)
            self._admitted -= 1
            self.registry.set("serve.inflight", self._admitted)

    # -- introspection ----------------------------------------------------
    def status(self) -> dict:
        """The daemon-status payload (also the CLI's ``serve status``)."""
        reg = self.registry
        lat = reg.get("serve.latency_ms")
        if lat is not None and lat.count:
            snap = {"count": lat.count,
                    "mean": round(lat.mean, 3),
                    "p50": round(lat.quantile(0.50), 3),
                    "p95": round(lat.quantile(0.95), 3),
                    "p99": round(lat.quantile(0.99), 3)}
        else:
            snap = {}
        return {
            "ok": True,
            "requests": int(reg.value("serve.requests")),
            "completed": int(reg.value("serve.ok")),
            "errors": int(reg.value("serve.errors")),
            "rejected": int(reg.value("serve.rejected")),
            "coalesced": int(reg.value("serve.coalesced")),
            "inflight": self._admitted,
            "sessions": len(self._sessions),
            "session_hits": int(reg.value("serve.session.hit")),
            "latency_ms": snap,
            "pool_generation": getattr(self._pool, "generation", 0),
            "concurrency": self.max_concurrency,
            "queue_limit": self.queue_limit,
        }

    def _publish_top(self) -> None:
        """One ``repro top`` frame per request, when a writer is live."""
        from repro.obs.top import current_writer, registry_stats

        writer = current_writer()
        if writer is None:
            return
        writer.maybe_write(lambda: {
            "registry": registry_stats(self.registry),
            "phase": "serve",
            "case": "serve",
            "serve": self.status(),
        })


def _frame_id(frame) -> Optional[str]:
    if isinstance(frame, dict):
        value = frame.get("id")
        return value if isinstance(value, str) else None
    return None
