"""The versioned wire protocol of the serving layer.

One request and one response per line (JSON-lines framing, UTF-8,
``\\n``-terminated), every frame stamped with ``schema_version`` so a
client and a daemon from different checkouts fail loudly instead of
misreading each other.  The payload of a successful response is
exactly the ``to_json()`` dict of the Summary-protocol result the
matching :class:`repro.api.Session` method returns -- the wire carries
nothing a direct caller would not also see.

Errors travel as a typed envelope (``kind`` + ``reason``) reusing the
CLI's uniform ``repro: <reason>`` failure strings, so a client can
branch on the kind (``bad-request`` / ``unsupported-schema`` /
``overloaded`` / ``failed`` / ``internal``) and still print the exact
line the CLI would have printed.

:func:`request_key` is the single-flight identity: the rename-invariant
plan-cache fingerprint of the nest plus everything else that changes
the answer (op, backend, scalars).  Two requests with equal keys are
the *same work* and the server answers both from one execution.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Mapping, Optional

#: Bump on any incompatible frame change.
SCHEMA_VERSION = 1

#: Hard per-frame byte cap -- a malformed client cannot balloon the
#: daemon's line buffer.
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: The ops a request may carry, in dispatch order.
OPS = ("plan", "run", "verify", "audit", "status", "shutdown")


class ProtocolError(ValueError):
    """A frame the protocol rejects; ``kind`` mirrors the error envelope."""

    kind = "bad-request"

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class UnsupportedSchema(ProtocolError):
    kind = "unsupported-schema"


class Overloaded(ProtocolError):
    """Admission control rejected the request (bounded queue full)."""

    kind = "overloaded"


@dataclass(frozen=True)
class Request:
    """One unit of work for the serving layer.

    ``nest`` is anything :class:`repro.api.Session` accepts as its
    first argument: a catalog name (``"L2"``) or mini-language source
    text.  The strategy/duplication/elimination triple mirrors
    ``build_plan``; ``scalars`` are the symbolic parameter bindings.
    """

    op: str
    nest: str = ""
    strategy: str = "nonduplicate"
    duplicate_arrays: Optional[tuple[str, ...]] = None
    eliminate_redundant: bool = False
    backend: Optional[str] = None
    scalars: Optional[dict] = None
    #: client-chosen correlation id, echoed verbatim on the response
    id: Optional[str] = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.duplicate_arrays is not None:
            object.__setattr__(self, "duplicate_arrays",
                               tuple(sorted(self.duplicate_arrays)))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Request":
        if not isinstance(data, Mapping):
            raise ProtocolError("frame is not a JSON object")
        version = data.get("schema_version", None)
        if version != SCHEMA_VERSION:
            raise UnsupportedSchema(
                f"schema_version {version!r} unsupported "
                f"(daemon speaks {SCHEMA_VERSION})")
        op = data.get("op")
        if op not in OPS:
            raise ProtocolError(
                f"unknown op {op!r} (expected one of {', '.join(OPS)})")
        if op not in ("status", "shutdown") and not data.get("nest"):
            raise ProtocolError(f"op {op!r} requires a nest")
        strategy = data.get("strategy", "nonduplicate")
        if strategy not in ("nonduplicate", "duplicate"):
            raise ProtocolError(
                f"unknown strategy {strategy!r} "
                "(expected nonduplicate or duplicate)")
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ProtocolError(
                f"unknown fields: {', '.join(sorted(unknown))}")
        dup = data.get("duplicate_arrays")
        return cls(
            op=op,
            nest=data.get("nest", ""),
            strategy=data.get("strategy", "nonduplicate"),
            duplicate_arrays=tuple(dup) if dup is not None else None,
            eliminate_redundant=bool(data.get("eliminate_redundant", False)),
            backend=data.get("backend"),
            scalars=dict(data["scalars"]) if data.get("scalars") else None,
            id=data.get("id"),
        )

    def to_dict(self) -> dict:
        data = asdict(self)
        if data["duplicate_arrays"] is not None:
            data["duplicate_arrays"] = list(data["duplicate_arrays"])
        return data


@dataclass(frozen=True)
class Response:
    """The answer to one request.

    ``result`` is the Summary-protocol ``to_json()`` dict on success
    and absent on error; ``error`` is the typed envelope on failure.
    ``coalesced`` marks responses served by single-flight fan-out from
    another request's execution; ``warm`` marks ones answered by an
    already-planned session.
    """

    ok: bool
    op: str = ""
    id: Optional[str] = None
    result: Optional[dict] = None
    error: Optional[dict] = None
    coalesced: bool = False
    warm: bool = False
    elapsed_ms: float = 0.0
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def failure(cls, op: str, exc: Exception,
                id: Optional[str] = None) -> "Response":
        kind = getattr(exc, "kind", "internal")
        reason = getattr(exc, "reason", None) or str(exc) or repr(exc)
        return cls(ok=False, op=op, id=id,
                   error={"kind": kind, "reason": reason})

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Response":
        if not isinstance(data, Mapping):
            raise ProtocolError("frame is not a JSON object")
        version = data.get("schema_version", None)
        if version != SCHEMA_VERSION:
            raise UnsupportedSchema(
                f"schema_version {version!r} unsupported "
                f"(client speaks {SCHEMA_VERSION})")
        return cls(ok=bool(data.get("ok")), op=data.get("op", ""),
                   id=data.get("id"), result=data.get("result"),
                   error=data.get("error"),
                   coalesced=bool(data.get("coalesced", False)),
                   warm=bool(data.get("warm", False)),
                   elapsed_ms=float(data.get("elapsed_ms", 0.0)))

    def to_dict(self) -> dict:
        data = asdict(self)
        if data["result"] is None:
            del data["result"]
        if data["error"] is None:
            del data["error"]
        return data

    def reason(self) -> str:
        """The CLI-style ``repro: <reason>`` string for a failure."""
        if self.ok:
            return ""
        err = self.error or {}
        return err.get("reason", "request failed")


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def encode_frame(obj: Any) -> bytes:
    """One JSON-lines frame: compact JSON + ``\\n``."""
    if hasattr(obj, "to_dict"):
        obj = obj.to_dict()
    data = json.dumps(obj, separators=(",", ":"), sort_keys=True)
    raw = data.encode("utf-8") + b"\n"
    if len(raw) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(raw)} bytes exceeds "
                            f"{MAX_FRAME_BYTES}")
    return raw


def decode_frame(line: bytes) -> dict:
    """The JSON object of one received line."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds "
                            f"{MAX_FRAME_BYTES}")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("frame is not a JSON object")
    return obj


# ---------------------------------------------------------------------------
# the single-flight identity
# ---------------------------------------------------------------------------

def request_key(req: Request) -> tuple:
    """What makes two requests *the same work*.

    The nest participates via its rename-invariant canonical
    fingerprint (:func:`repro.lang.fingerprint.plan_cache_key`), so
    ``for i/for j`` and ``for x/for y`` over the same structure -- or a
    catalog name and its spelled-out source -- coalesce on purpose.
    Everything else that changes the answer (op, backend, scalars)
    keeps distinct work distinct.
    """
    from repro.api import _coerce_nest

    nest = _coerce_nest(req.nest)
    plan_key = _plan_key(nest, req)
    scalars = (tuple(sorted(req.scalars.items()))
               if req.scalars else None)
    return (req.op, plan_key, req.backend, scalars)


def _plan_key(nest, req: Request) -> tuple:
    from repro.lang.fingerprint import plan_cache_key

    return plan_cache_key(nest, req.strategy, req.duplicate_arrays,
                          req.eliminate_redundant)


# ---------------------------------------------------------------------------
# the JSON-native contract
# ---------------------------------------------------------------------------

_NATIVE = (str, int, float, bool, type(None))


def ensure_json_native(obj: Any, path: str = "$") -> Any:
    """Assert ``obj`` is built purely from JSON-native types.

    The wire carries Summary-protocol ``to_json()`` dicts verbatim;
    this walks one and raises :class:`TypeError` naming the offending
    path when any non-native value (a Fraction, a numpy scalar, a set,
    a dataclass) leaks through.  Returns ``obj`` so it can be used
    inline.  ``bool`` is checked before ``int`` on purpose -- both are
    fine; what is *not* fine is anything whose ``json.dumps`` would
    need a default hook.
    """
    if isinstance(obj, dict):
        for k, v in obj.items():
            if not isinstance(k, str):
                raise TypeError(f"{path}: non-string key {k!r} "
                                f"({type(k).__name__})")
            ensure_json_native(v, f"{path}.{k}")
        return obj
    if isinstance(obj, (list, tuple)):
        if isinstance(obj, tuple):
            raise TypeError(f"{path}: tuple is not JSON-native "
                            "(serializes, but does not round-trip)")
        for i, v in enumerate(obj):
            ensure_json_native(v, f"{path}[{i}]")
        return obj
    # exact-type check: numpy scalars subclass float/int in some
    # builds, but bool/int/float/str/None themselves are the contract
    if type(obj) in _NATIVE or isinstance(obj, bool):
        return obj
    if isinstance(obj, (int, float, str)) and type(obj) not in _NATIVE:
        raise TypeError(f"{path}: {type(obj).__name__} subclass of a "
                        "native type; coerce before serializing")
    raise TypeError(f"{path}: {type(obj).__name__} is not JSON-native")


__all__ = [
    "SCHEMA_VERSION", "MAX_FRAME_BYTES", "OPS",
    "ProtocolError", "UnsupportedSchema", "Overloaded",
    "Request", "Response",
    "encode_frame", "decode_frame",
    "request_key", "ensure_json_native",
]
