"""Async batch serving: one warm process, many concurrent requests.

The serving layer fronts :class:`repro.api.Session` with an asyncio
server so many clients can plan / run / verify / audit concurrently
against one warm process -- hot plans stay planned, codegen kernels
stay compiled, the worker pool stays spawned.  Three pieces:

- :mod:`repro.serve.protocol` -- the versioned JSON-lines wire
  protocol (frozen request/response dataclasses, typed error
  envelopes, the single-flight fingerprint);
- :mod:`repro.serve.server` -- :class:`AsyncServer`, the in-process
  engine: admission control with bounded queues, single-flight
  coalescing of identical requests, an LRU of warm sessions sharing
  one worker pool and one metrics registry;
- :mod:`repro.serve.daemon` / :mod:`repro.serve.client` -- the Unix
  domain socket daemon (``repro serve start/stop/status``) and the
  blocking client used by the CLI, the CI smoke test and the bench.
"""

from repro.serve.protocol import (  # noqa: F401
    SCHEMA_VERSION,
    Overloaded,
    ProtocolError,
    Request,
    Response,
    decode_frame,
    encode_frame,
    ensure_json_native,
    request_key,
)
from repro.serve.server import AsyncServer  # noqa: F401
from repro.serve.client import ServeClient  # noqa: F401
from repro.serve.daemon import default_socket_path  # noqa: F401
