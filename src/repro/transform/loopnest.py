"""The executable transformed loop nest (paper's loop L').

:func:`transform_nest` turns a loop nest plus its partitioning space
into a :class:`TransformedNest`: ``k`` outer *forall* loops (each point
is one iteration block, independently executable) and ``g`` inner
sequential loops, with exact Fourier-Motzkin bounds and the *extended
statements* that recover the original index values.

Within a block, the inner loops enumerate the block's iterations in the
original lexicographic order (the inner indices are original index
variables at increasing positions, and every earlier non-inner index is
an affine function of the block point and the preceding inner indices),
preserving all intra-block dependences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterator, Optional, Sequence

from repro.lang.affine import AffineExpr, affine_of
from repro.lang.ast import LoopNest
from repro.ratlinalg.fm import AffineForm, FMSystem, LoopBound, bounds_for_order
from repro.ratlinalg.matrix import RatMat, RatVec
from repro.ratlinalg.span import Subspace
from repro.transform.basis import TransformBasis, build_transform_basis


@dataclass
class TransformedNest:
    """Parallel form of a partitioned nest; see module docstring."""

    nest: LoopNest
    basis: TransformBasis
    bounds: list[LoopBound]          # parallel to var order: outer then inner
    # extended statements: original index position -> affine form over the
    # new variables (in loop order); only positions NOT among the inner
    # indices appear (inner indices are loop variables themselves).
    extended: dict[int, AffineForm] = field(default_factory=dict)

    # -- structure -------------------------------------------------------
    @property
    def k(self) -> int:
        return self.basis.k

    @property
    def g(self) -> int:
        return self.basis.g

    @property
    def var_names(self) -> list[str]:
        return list(self.basis.outer_names) + list(self.basis.inner_names)

    # -- enumeration ---------------------------------------------------------
    def iterate_blocks(self) -> Iterator[tuple[int, ...]]:
        """All forall points (iteration-block coordinates), lexicographically.

        Points whose inner domain turns out empty are still yielded --
        they correspond to empty blocks and execute zero iterations,
        matching the semantics of the generated forall code.
        """
        prefix: list[int] = []

        def rec(depth: int) -> Iterator[tuple[int, ...]]:
            if depth == self.k:
                yield tuple(prefix)
                return
            for v in self.bounds[depth].range_for(prefix):
                prefix.append(v)
                yield from rec(depth + 1)
                prefix.pop()

        yield from rec(0)

    def iterations_of_block(self, block: Sequence[int]) -> Iterator[tuple[int, ...]]:
        """Original iterations of one forall point, in lexicographic order.

        New-coordinate points without an integer original preimage are
        skipped (possible only when ``|det M| > 1``).
        """
        coords: list[int] = list(block)

        def rec(depth: int) -> Iterator[tuple[int, ...]]:
            if depth == self.k + self.g:
                orig = self.basis.original_iteration(coords)
                if orig.is_integral():
                    yield orig.to_ints()
                return
            for v in self.bounds[depth].range_for(coords):
                coords.append(v)
                yield from rec(depth + 1)
                coords.pop()

        yield from rec(self.k)

    def all_iterations(self) -> Iterator[tuple[int, ...]]:
        for blk in self.iterate_blocks():
            yield from self.iterations_of_block(blk)

    def block_of_iteration(self, iteration) -> tuple[int, ...]:
        return self.basis.block_coords(iteration)

    def block_sizes(self) -> dict[tuple[int, ...], int]:
        return {blk: sum(1 for _ in self.iterations_of_block(blk))
                for blk in self.iterate_blocks()}


def _constraint_rows(nest: LoopNest) -> list[tuple[RatVec, Fraction]]:
    """Original-bound constraints as (coeff-row over I, const), meaning
    ``row · I + const >= 0``."""
    rows: list[tuple[RatVec, Fraction]] = []
    n = nest.depth
    for m_pos in range(n):
        lo = affine_of(nest.lowers[m_pos], nest.indices)
        hi = affine_of(nest.uppers[m_pos], nest.indices)
        unit = RatVec.unit(n, m_pos)
        # I_m - lo(I) >= 0
        rows.append((unit - lo.coeff_vector(), -lo.const))
        # hi(I) - I_m >= 0
        rows.append((hi.coeff_vector() - unit, hi.const))
    return rows


def transform_nest(nest: LoopNest,
                   psi: Subspace,
                   basis: Optional[TransformBasis] = None) -> TransformedNest:
    """Build the executable parallel form for partitioning space ``psi``."""
    if basis is None:
        basis = build_transform_basis(psi, nest.indices)
    n = nest.depth

    # Express each original-bound constraint over the new variables:
    # row·I + c >= 0  with  I = M^{-1} x  becomes  (row·M^{-1})·x + c >= 0.
    system = FMSystem(n)
    for row, const in _constraint_rows(nest):
        new_row = RatVec(
            sum((row[i] * basis.m_inv[i, j] for i in range(n)), Fraction(0))
            for j in range(n)
        )
        system.add(list(new_row), const)

    bounds = bounds_for_order(system, list(range(n)))

    # Extended statements: I_m as an affine form over the new variables.
    extended: dict[int, AffineForm] = {}
    for m_pos in range(n):
        if m_pos in basis.inner_positions:
            continue
        coeffs = tuple(basis.m_inv[m_pos, j] for j in range(n))
        extended[m_pos] = AffineForm(coeffs, Fraction(0))

    return TransformedNest(nest=nest, basis=basis, bounds=bounds, extended=extended)
