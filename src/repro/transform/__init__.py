"""Program transformation (Section IV): partitioned nest -> parallel form.

Pipeline:

1. :mod:`~repro.transform.basis` -- the gcd-normalized integer basis
   ``Q`` of ``Ker(Psi)``, its row-echelon pivots ``y_j``, the inner
   index choice ``z_i`` and the (invertible) change-of-variables matrix;
2. :mod:`~repro.transform.loopnest` -- the executable
   :class:`TransformedNest` with Fourier-Motzkin loop bounds: ``k``
   outer ``forall`` dimensions (one point per iteration block) and ``g``
   inner sequential dimensions;
3. :mod:`~repro.transform.codegen` -- paper-style pseudocode and
   executable Python source for the transformed nest.
"""

from repro.transform.basis import TransformBasis, build_transform_basis
from repro.transform.loopnest import TransformedNest, transform_nest
from repro.transform.codegen import to_pseudocode, to_python_source, compile_nest
from repro.transform.spmd import (
    compile_spmd,
    iterations_of_processor,
    to_spmd_pseudocode,
    to_spmd_python_source,
)
from repro.transform.validate import TransformValidation, validate_transform

__all__ = [
    "TransformBasis",
    "build_transform_basis",
    "TransformedNest",
    "transform_nest",
    "to_pseudocode",
    "to_python_source",
    "compile_nest",
    "to_spmd_pseudocode",
    "to_spmd_python_source",
    "compile_spmd",
    "iterations_of_processor",
    "TransformValidation",
    "validate_transform",
]
