"""Code generation for transformed nests.

Two targets:

- :func:`to_pseudocode` -- the paper's ``forall`` presentation (loop
  L4' style), with extended statements ``E_j`` recovering the original
  indices;
- :func:`to_python_source` / :func:`compile_nest` -- executable Python.
  All bound arithmetic is integer-exact: a rational bound ``p/q`` is
  emitted as floor/ceil divisions, and blocks with ``|det M| > 1``
  guard the reconstruction of original indices with a divisibility
  check.

The compiled function has signature ``run(arrays, scalars)`` where
``arrays`` maps names to objects indexable by coordinate tuples (e.g.
:class:`repro.runtime.arrays.DataSpace`) and ``scalars`` maps free
parameter names to numbers.
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm
from typing import Callable

from repro.lang.ast import ArrayRef, Assign, BinOp, Const, Expr, Name, UnaryOp
from repro.ratlinalg.fm import AffineForm, LoopBound
from repro.transform.loopnest import TransformedNest


# ---------------------------------------------------------------------------
# helpers: exact integer rendering of affine forms
# ---------------------------------------------------------------------------

def _integerize(form: AffineForm) -> tuple[list[int], int, int]:
    """Rewrite ``form`` as ``(num_coeffs, num_const, den)`` with
    ``form = (sum num_coeffs[j]*x_j + num_const) / den`` and ``den >= 1``."""
    den = 1
    for c in list(form.coeffs) + [form.const]:
        den = lcm(den, c.denominator)
    return ([int(c * den) for c in form.coeffs], int(form.const * den), den)


def _linear_src(coeffs: list[int], const: int, names: list[str]) -> str:
    parts: list[str] = []
    for c, nm in zip(coeffs, names):
        if c == 0:
            continue
        if c == 1:
            parts.append(f"+ {nm}" if parts else nm)
        elif c == -1:
            parts.append(f"- {nm}" if parts else f"-{nm}")
        elif c > 0:
            parts.append(f"+ {c}*{nm}" if parts else f"{c}*{nm}")
        else:
            parts.append(f"- {-c}*{nm}" if parts else f"-{-c}*{nm}")
    if const or not parts:
        parts.append((f"+ {const}" if const > 0 else f"- {-const}")
                     if parts else str(const))
    return " ".join(parts)


def _ceil_src(form: AffineForm, names: list[str]) -> str:
    coeffs, const, den = _integerize(form)
    body = _linear_src(coeffs, const, names)
    if den == 1:
        return body
    return f"-((-({body})) // {den})"


def _floor_src(form: AffineForm, names: list[str]) -> str:
    coeffs, const, den = _integerize(form)
    body = _linear_src(coeffs, const, names)
    if den == 1:
        return body
    return f"({body}) // {den}"


def _lower_src(bound: LoopBound, names: list[str]) -> str:
    parts = [_ceil_src(f, names) for f in bound.lowers]
    return parts[0] if len(parts) == 1 else "max(" + ", ".join(parts) + ")"


def _upper_src(bound: LoopBound, names: list[str]) -> str:
    parts = [_floor_src(f, names) for f in bound.uppers]
    return parts[0] if len(parts) == 1 else "min(" + ", ".join(parts) + ")"


# ---------------------------------------------------------------------------
# statement rendering
# ---------------------------------------------------------------------------

def _expr_src(expr: Expr, index_names: set[str]) -> str:
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Name):
        if expr.ident in index_names:
            return expr.ident
        return f"scalars[{expr.ident!r}]"
    if isinstance(expr, ArrayRef):
        subs = ", ".join(_expr_src(s, index_names) for s in expr.subscripts)
        return f"arrays[{expr.array!r}][({subs},)]"
    if isinstance(expr, UnaryOp):
        return f"(-{_expr_src(expr.operand, index_names)})"
    if isinstance(expr, BinOp):
        return (f"({_expr_src(expr.left, index_names)} {expr.op} "
                f"{_expr_src(expr.right, index_names)})")
    raise TypeError(f"cannot render {expr!r}")


def _stmt_src(stmt: Assign, index_names: set[str]) -> str:
    subs = ", ".join(_expr_src(s, index_names) for s in stmt.lhs.subscripts)
    return (f"arrays[{stmt.lhs.array!r}][({subs},)] = "
            f"{_expr_src(stmt.rhs, index_names)}")


# ---------------------------------------------------------------------------
# pseudocode (paper style)
# ---------------------------------------------------------------------------

def to_pseudocode(tnest: TransformedNest) -> str:
    """Paper-style ``forall`` rendering of the transformed nest."""
    names = tnest.var_names
    nest = tnest.nest
    lines: list[str] = []
    indent = ""
    for depth, bound in enumerate(tnest.bounds):
        var = names[depth]
        kw = "forall" if depth < tnest.k else "for"
        lo = _render_bound_forms(bound.lowers, names, "max")
        hi = _render_bound_forms(bound.uppers, names, "min")
        lines.append(f"{indent}{kw} {var} = {lo} to {hi}")
        indent += "  "
    eidx = 1
    for m_pos in sorted(tnest.extended):
        form = tnest.extended[m_pos]
        lines.append(
            f"{indent}E{eidx}: {nest.indices[m_pos]} := {form.render(names)} ;"
        )
        eidx += 1
    from repro.lang.printer import stmt_to_source

    for stmt in nest.statements:
        lines.append(f"{indent}{stmt_to_source(stmt)}")
    for depth in range(len(tnest.bounds) - 1, -1, -1):
        indent = "  " * depth
        lines.append(f"{indent}{'end-forall' if depth < tnest.k else 'end'}")
    return "\n".join(lines)


def _render_bound_forms(forms, names, agg: str) -> str:
    rendered = [f.render(names) for f in forms]
    if len(rendered) == 1:
        return rendered[0]
    return f"{agg}(" + ", ".join(rendered) + ")"


# ---------------------------------------------------------------------------
# executable Python
# ---------------------------------------------------------------------------

def to_python_source(tnest: TransformedNest, func_name: str = "run") -> str:
    """Executable Python for the whole transformed nest (all blocks)."""
    names = tnest.var_names
    nest = tnest.nest
    n = len(names)
    out: list[str] = [f"def {func_name}(arrays, scalars=None):",
                      "    scalars = scalars or {}"]
    pad = "    "
    for depth, bound in enumerate(tnest.bounds):
        var = names[depth]
        out.append(f"{pad}for {var} in range({_lower_src(bound, names)}, "
                   f"{_upper_src(bound, names)} + 1):")
        pad += "    "
    # extended statements: recover every original index not serving as an
    # inner loop variable; guard divisibility when |det M| > 1.
    for m_pos in sorted(tnest.extended):
        form = tnest.extended[m_pos]
        coeffs, const, den = _integerize(form)
        body = _linear_src(coeffs, const, names)
        orig = nest.indices[m_pos]
        if den == 1:
            out.append(f"{pad}{orig} = {body}")
        else:
            out.append(f"{pad}_num = {body}")
            out.append(f"{pad}if _num % {den}: continue")
            out.append(f"{pad}{orig} = _num // {den}")
    index_names = set(nest.indices) | set(names)
    for stmt in nest.statements:
        out.append(f"{pad}{_stmt_src(stmt, index_names)}")
    return "\n".join(out) + "\n"


def compile_nest(tnest: TransformedNest, func_name: str = "run") -> Callable:
    """Compile :func:`to_python_source` output into a callable."""
    src = to_python_source(tnest, func_name)
    namespace: dict = {}
    exec(compile(src, f"<generated {func_name}>", "exec"), namespace)
    return namespace[func_name]
