"""SPMD per-processor code generation (Section IV's final listings).

The paper assigns forall points to processors with stepped loops:

    forall I'_{y_j} = (l'_j + (a_j - (l'_j mod p_j)) mod p_j)
                      to u'_j step p_j

so processor ``PE_{a_1..a_k}`` executes exactly the points whose ``j``-th
coordinate is congruent to ``a_j`` modulo ``p_j`` -- the same cyclic
assignment as :mod:`repro.mapping.cyclic`, expressed as code.  This
module generates that per-processor program, both as paper-style
pseudocode (the L4'/L5'/L5'' listings) and as executable Python.

Correctness note: with stepped outer loops the processors' iteration
sets partition the forall domain; for plans whose dependences are all
intra-block (every plan built by Theorems 1-4), running the processors
in any order -- or in parallel -- produces the sequential result.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.mapping.grid import ProcessorGrid
from repro.transform.codegen import (
    _integerize,
    _linear_src,
    _lower_src,
    _stmt_src,
    _upper_src,
    _render_bound_forms,
)
from repro.transform.loopnest import TransformedNest


def iterations_of_processor(
    tnest: TransformedNest,
    grid: ProcessorGrid,
    proc: Sequence[int],
) -> Iterator[tuple[int, ...]]:
    """Original iterations executed by grid processor ``proc``."""
    proc = tuple(proc)
    if len(proc) != grid.k or grid.k != tnest.k:
        raise ValueError("processor coordinate arity mismatch")
    for blk in tnest.iterate_blocks():
        if tuple(v % d for v, d in zip(blk, grid.dims)) == proc:
            yield from tnest.iterations_of_block(blk)


def to_spmd_pseudocode(tnest: TransformedNest, grid: ProcessorGrid) -> str:
    """Paper-style per-processor listing for symbolic ``PE_{a_1..a_k}``."""
    names = tnest.var_names
    nest = tnest.nest
    lines: list[str] = []
    indent = ""
    for depth, bound in enumerate(tnest.bounds):
        var = names[depth]
        lo = _render_bound_forms(bound.lowers, names, "max")
        hi = _render_bound_forms(bound.uppers, names, "min")
        if depth < tnest.k:
            p = grid.dims[depth]
            a = f"a{depth + 1}"
            lines.append(
                f"{indent}forall {var} = (({lo}) + ({a} - (({lo}) mod {p})) "
                f"mod {p}) to {hi} step {p}"
            )
        else:
            lines.append(f"{indent}for {var} = {lo} to {hi}")
        indent += "  "
    eidx = 1
    for m_pos in sorted(tnest.extended):
        form = tnest.extended[m_pos]
        lines.append(f"{indent}E{eidx}: {nest.indices[m_pos]} := "
                     f"{form.render(names)} ;")
        eidx += 1
    from repro.lang.printer import stmt_to_source

    for stmt in nest.statements:
        lines.append(f"{indent}{stmt_to_source(stmt)}")
    for depth in range(len(tnest.bounds) - 1, -1, -1):
        indent = "  " * depth
        lines.append(f"{indent}{'end-forall' if depth < tnest.k else 'end'}")
    return "\n".join(lines)


def to_spmd_python_source(tnest: TransformedNest, grid: ProcessorGrid,
                          func_name: str = "run_pe") -> str:
    """Executable Python: ``run_pe(proc, arrays, scalars=None)``.

    ``proc`` is the grid coordinate tuple of the executing processor;
    outer forall loops start at the paper's congruent offset and step by
    the grid dimension.
    """
    names = tnest.var_names
    nest = tnest.nest
    out: list[str] = [
        f"def {func_name}(proc, arrays, scalars=None):",
        "    scalars = scalars or {}",
    ]
    pad = "    "
    for depth, bound in enumerate(tnest.bounds):
        var = names[depth]
        lo_src = _lower_src(bound, names)
        hi_src = _upper_src(bound, names)
        if depth < tnest.k:
            p = grid.dims[depth]
            out.append(f"{pad}_l{depth} = {lo_src}")
            out.append(
                f"{pad}for {var} in range(_l{depth} + "
                f"((proc[{depth}] - (_l{depth} % {p})) % {p}), "
                f"{hi_src} + 1, {p}):"
            )
        else:
            out.append(f"{pad}for {var} in range({lo_src}, {hi_src} + 1):")
        pad += "    "
    for m_pos in sorted(tnest.extended):
        form = tnest.extended[m_pos]
        coeffs, const, den = _integerize(form)
        body = _linear_src(coeffs, const, names)
        orig = nest.indices[m_pos]
        if den == 1:
            out.append(f"{pad}{orig} = {body}")
        else:
            out.append(f"{pad}_num = {body}")
            out.append(f"{pad}if _num % {den}: continue")
            out.append(f"{pad}{orig} = _num // {den}")
    index_names = set(nest.indices) | set(names)
    for stmt in nest.statements:
        out.append(f"{pad}{_stmt_src(stmt, index_names)}")
    return "\n".join(out) + "\n"


def compile_spmd(tnest: TransformedNest, grid: ProcessorGrid,
                 func_name: str = "run_pe") -> Callable:
    """Compile the SPMD source into a callable."""
    src = to_spmd_python_source(tnest, grid, func_name)
    namespace: dict = {}
    exec(compile(src, f"<generated {func_name}>", "exec"), namespace)
    return namespace[func_name]
