"""Transformation validation: the Section-IV correctness obligations.

A transformed nest must (a) enumerate exactly the original iteration
space with no duplicates (the one-to-one mapping the paper constructs
the ``z_i`` selection for), (b) keep each forall point inside a single
partition block, and (c) enumerate each block's iterations in the
original lexicographic order (dependence preservation).
:func:`validate_transform` checks all three on the concrete instance
and returns a structured report; ``raise_on_failure`` turns it into an
assertion for pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.plan import PartitionPlan
from repro.transform.loopnest import TransformedNest


@dataclass
class TransformValidation:
    """Outcome of validating one transformed nest."""

    bijective: bool
    lexicographic: bool
    blocks_consistent: bool
    missing: list[tuple[int, ...]] = field(default_factory=list)
    duplicated: list[tuple[int, ...]] = field(default_factory=list)
    extra: list[tuple[int, ...]] = field(default_factory=list)
    disordered_blocks: list[tuple[int, ...]] = field(default_factory=list)
    split_blocks: list[tuple[int, ...]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.bijective and self.lexicographic and self.blocks_consistent

    def raise_on_failure(self) -> "TransformValidation":
        if not self.ok:
            problems = []
            if self.missing:
                problems.append(f"missing iterations {self.missing[:3]}")
            if self.duplicated:
                problems.append(f"duplicated iterations {self.duplicated[:3]}")
            if self.extra:
                problems.append(f"extra iterations {self.extra[:3]}")
            if self.disordered_blocks:
                problems.append(
                    f"non-lexicographic blocks {self.disordered_blocks[:3]}")
            if self.split_blocks:
                problems.append(f"split blocks {self.split_blocks[:3]}")
            raise AssertionError("transformation invalid: " + "; ".join(problems))
        return self


def validate_transform(tnest: TransformedNest,
                       plan: Optional[PartitionPlan] = None
                       ) -> TransformValidation:
    """Check the three Section-IV obligations; see module docstring.

    ``plan`` enables the block-consistency check (the forall points must
    refine the plan's partition exactly); without it only bijection and
    ordering are checked.
    """
    from repro.lang.space import IterationSpace

    space = (plan.model.space if plan is not None
             else IterationSpace(tnest.nest))
    expected = set(space.points())

    seen: dict[tuple[int, ...], int] = {}
    disordered: list[tuple[int, ...]] = []
    split: list[tuple[int, ...]] = []
    for blk in tnest.iterate_blocks():
        its = list(tnest.iterations_of_block(blk))
        if its != sorted(its):
            disordered.append(blk)
        if plan is not None and its:
            ids = {plan.block_of(it) for it in its if tuple(it) in expected}
            if len(ids) > 1:
                split.append(blk)
            elif len(ids) == 1:
                plan_block = plan.blocks[next(iter(ids))]
                if set(map(tuple, its)) != set(plan_block.iterations):
                    split.append(blk)
        for it in its:
            seen[tuple(it)] = seen.get(tuple(it), 0) + 1

    missing = sorted(expected - set(seen))
    duplicated = sorted(it for it, n in seen.items() if n > 1)
    extra = sorted(set(seen) - expected)

    return TransformValidation(
        bijective=not (missing or duplicated or extra),
        lexicographic=not disordered,
        blocks_consistent=not split,
        missing=missing,
        duplicated=duplicated,
        extra=extra,
        disordered_blocks=disordered,
        split_blocks=split,
    )
