"""Change-of-variables machinery for the Section IV transformation.

Given the partitioning space ``Psi`` (dim ``g``) of an ``n``-deep nest:

- ``Q = {a_1, ..., a_k}`` (``k = n - g``) is an integer, gcd-normalized
  basis of ``Ker(Psi)`` (the orthogonal complement);
- elementary row operations give the echelon rows whose first-nonzero
  positions ``y_1 < ... < y_k`` decide *where* each new index variable
  sits, while the transformation itself uses the *original* rows
  ``a_{sigma^{-1}(j)}`` (the paper's Eq. (1));
- the inner sequential indices ``I_{z_1}, ..., I_{z_g}`` are the
  smallest-position original indices whose unit vectors stay linearly
  independent of ``Q`` and the previously chosen units, making the
  combined map a bijection;
- ``M`` stacks those ``n`` rows: ``x = M i`` maps an original iteration
  to its new coordinates ``(I'_{y_1}, ..., I'_{y_k}, I_{z_1}, ...,
  I_{z_g})``; the first ``k`` coordinates identify the iteration block
  (they are constant exactly on ``Psi``-cosets).

``M`` is integral and invertible but not necessarily unimodular; when
``|det M| > 1`` some integer new-coordinate points have no integer
preimage, and the executable nest simply skips them (the paper's
examples all have ``|det M| = 1``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ratlinalg.matrix import RatMat, RatVec
from repro.ratlinalg.rref import row_echelon_int
from repro.ratlinalg.span import Subspace


@dataclass
class TransformBasis:
    """All change-of-variables data for one partitioning space."""

    psi: Subspace
    n: int
    k: int                     # number of outer forall dimensions
    g: int                     # number of inner sequential dimensions
    q_rows: list[RatVec]       # gcd-normalized basis of Ker(Psi), original order
    pivot_cols: list[int]      # y_j (0-based), strictly increasing
    origin: list[int]          # origin[j]: index into q_rows of the row at pivot j
    inner_positions: list[int] # z_i (0-based), strictly increasing
    m: RatMat                  # x = M i  (rows: a_{sigma^{-1}(1..k)}, then e_{z_i})
    m_inv: RatMat              # i = M^{-1} x
    outer_names: list[str]     # names of I'_{y_j}
    inner_names: list[str]     # names of I_{z_i} (original index names)

    @property
    def det(self):
        return self.m.det()

    def new_coords(self, iteration) -> RatVec:
        i = iteration if isinstance(iteration, RatVec) else RatVec(list(iteration))
        return self.m @ i

    def block_coords(self, iteration) -> tuple[int, ...]:
        """The forall-point (block id) of an iteration: first ``k`` new coords."""
        x = self.new_coords(iteration)
        return tuple(int(x[j]) for j in range(self.k))

    def original_iteration(self, new_coords) -> RatVec:
        x = new_coords if isinstance(new_coords, RatVec) else RatVec(list(new_coords))
        return self.m_inv @ x


def _fresh_name(base: str, taken: set[str]) -> str:
    name = base + "p"
    while name in taken:
        name += "p"
    taken.add(name)
    return name


def build_transform_basis(psi: Subspace, index_names) -> TransformBasis:
    """Derive the Section-IV change of variables for ``Psi``."""
    n = psi.ambient_dim
    names = list(index_names)
    if len(names) != n:
        raise ValueError(f"{len(names)} index names for ambient dimension {n}")
    g = psi.dim
    k = n - g

    kernel = psi.orthogonal_complement()
    q_rows = [v.primitive() for v in kernel.basis()]
    assert len(q_rows) == k

    if k:
        _, pivot_cols, origin = row_echelon_int(q_rows)
    else:
        pivot_cols, origin = [], []

    # Inner indices: smallest original positions whose unit vectors are
    # independent of span(Q) and the previously chosen units.
    chosen = Subspace(n, q_rows)
    inner_positions: list[int] = []
    for m_pos in range(n):
        if len(inner_positions) == g:
            break
        e = RatVec.unit(n, m_pos)
        if e not in chosen:
            inner_positions.append(m_pos)
            chosen = chosen.with_vectors([e])
    if len(inner_positions) != g:
        raise AssertionError("could not complete the transformation basis")

    rows = [q_rows[origin[j]] for j in range(k)] + [
        RatVec.unit(n, z) for z in inner_positions
    ]
    m = RatMat(rows)
    if m.det() == 0:
        raise AssertionError("transformation matrix is singular")
    m_inv = m.inverse()

    taken = set(names)
    outer_names = [_fresh_name(names[pivot_cols[j]], taken) for j in range(k)]
    inner_names = [names[z] for z in inner_positions]

    return TransformBasis(
        psi=psi, n=n, k=k, g=g,
        q_rows=q_rows, pivot_cols=pivot_cols, origin=origin,
        inner_positions=inner_positions,
        m=m, m_inv=m_inv,
        outer_names=outer_names, inner_names=inner_names,
    )
