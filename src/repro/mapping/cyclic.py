"""Cyclic (mod-based) assignment of forall points to grid processors.

The paper's processor ``PE_{a_1,...,a_k}`` executes the forall points
whose ``j``-th coordinate ``v`` satisfies ``v ≡ a_j (mod p_j)`` -- that
is the effect of starting at ``l'_j + (a_j - (l'_j mod p_j)) mod p_j``
and stepping by ``p_j``.  Neighboring blocks land on different
processors, which balances the workload because neighboring blocks have
almost the same number of iterations (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.mapping.grid import ProcessorGrid
from repro.transform.loopnest import TransformedNest


def owner_of_point(point: tuple[int, ...], grid: ProcessorGrid) -> tuple[int, ...]:
    """Grid coordinates of the processor owning a forall point."""
    if len(point) != grid.k:
        raise ValueError(f"point arity {len(point)} vs grid rank {grid.k}")
    return tuple(v % d for v, d in zip(point, grid.dims))


@dataclass
class CyclicAssignment:
    """A complete block -> processor mapping for one transformed nest."""

    grid: ProcessorGrid
    # processor grid coords -> list of forall points it executes
    points_of: dict[tuple[int, ...], list[tuple[int, ...]]] = field(default_factory=dict)
    # forall point -> iteration count (workload)
    weights: dict[tuple[int, ...], int] = field(default_factory=dict)

    def owner(self, point: tuple[int, ...]) -> tuple[int, ...]:
        return owner_of_point(point, self.grid)

    def owner_id(self, point: tuple[int, ...]) -> int:
        return self.grid.linear_id(self.owner(point))

    def load_of(self, proc: tuple[int, ...]) -> int:
        return sum(self.weights[pt] for pt in self.points_of.get(proc, ()))

    def loads(self) -> dict[tuple[int, ...], int]:
        return {proc: self.load_of(proc) for proc in self.grid.coords()}

    def start_value(self, lower: int, dim: int, a: int) -> int:
        """The paper's stepped-forall start: ``l' + (a - (l' mod p)) mod p``."""
        p = self.grid.dims[dim]
        return lower + (a - (lower % p)) % p


def assign_blocks(
    tnest: TransformedNest,
    grid: ProcessorGrid,
    points: Optional[Iterable[tuple[int, ...]]] = None,
) -> CyclicAssignment:
    """Assign every (non-empty or empty) forall point cyclically.

    ``points`` defaults to the transformed nest's full forall domain;
    weights are the per-block iteration counts.
    """
    if grid.k != tnest.k:
        raise ValueError(
            f"grid rank {grid.k} does not match the nest's {tnest.k} forall dims"
        )
    assignment = CyclicAssignment(grid=grid)
    pts = list(points) if points is not None else list(tnest.iterate_blocks())
    for pt in pts:
        w = sum(1 for _ in tnest.iterations_of_block(pt))
        assignment.weights[pt] = w
        assignment.points_of.setdefault(assignment.owner(pt), []).append(pt)
    for proc in grid.coords():
        assignment.points_of.setdefault(proc, [])
    return assignment
