"""Processor assignment (Section IV, second half).

- :mod:`~repro.mapping.grid`: shaping ``p`` processors into a
  ``p_1 x ... x p_k`` grid with the paper's rule
  ``p_i = floor(p^(1/k))`` for ``i < k`` and
  ``p_k = floor(p / floor(p^(1/k))^(k-1))``;
- :mod:`~repro.mapping.cyclic`: the mod-based cyclic assignment of
  forall points (iteration blocks) to grid processors;
- :mod:`~repro.mapping.balance`: workload metrics quantifying the
  paper's load-balancing claim ("neighboring iteration blocks have
  almost the same number of iterations").
"""

from repro.mapping.grid import ProcessorGrid, shape_grid
from repro.mapping.cyclic import CyclicAssignment, assign_blocks
from repro.mapping.balance import WorkloadStats, workload_stats

__all__ = [
    "ProcessorGrid",
    "shape_grid",
    "CyclicAssignment",
    "assign_blocks",
    "WorkloadStats",
    "workload_stats",
]
