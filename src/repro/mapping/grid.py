"""Processor grids.

The paper numbers ``p`` processors as a ``k``-dimensional grid matching
the ``k`` forall dimensions of the transformed nest, with

    p_i = floor(p^(1/k))                 for 1 <= i <= k-1,
    p_k = floor(p / floor(p^(1/k))^(k-1)).

Note the rule may leave processors unused when ``p`` is not a perfect
``k``-th power (e.g. p=10, k=2 gives a 3x3 grid using 9); that is the
paper's stated trade-off, which we reproduce faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


def _integer_kth_root(p: int, k: int) -> int:
    """``floor(p^(1/k))`` computed exactly (no float rounding)."""
    if p < 1 or k < 1:
        raise ValueError("p and k must be positive")
    r = max(1, round(p ** (1.0 / k)))
    while r ** k > p:
        r -= 1
    while (r + 1) ** k <= p:
        r += 1
    return r


@dataclass(frozen=True)
class ProcessorGrid:
    """A ``p_1 x ... x p_k`` grid of processors."""

    dims: tuple[int, ...]

    @property
    def k(self) -> int:
        return len(self.dims)

    @property
    def size(self) -> int:
        total = 1
        for d in self.dims:
            total *= d
        return total

    def coords(self) -> Iterator[tuple[int, ...]]:
        """All processor coordinates in row-major order."""
        def rec(depth: int, acc: list[int]) -> Iterator[tuple[int, ...]]:
            if depth == self.k:
                yield tuple(acc)
                return
            for a in range(self.dims[depth]):
                acc.append(a)
                yield from rec(depth + 1, acc)
                acc.pop()

        yield from rec(0, [])

    def linear_id(self, coords: tuple[int, ...]) -> int:
        """Row-major linearization of grid coordinates."""
        idx = 0
        for a, d in zip(coords, self.dims):
            if not 0 <= a < d:
                raise IndexError(f"coords {coords} outside grid {self.dims}")
            idx = idx * d + a
        return idx

    def from_linear(self, pid: int) -> tuple[int, ...]:
        if not 0 <= pid < self.size:
            raise IndexError(f"processor id {pid} outside grid of size {self.size}")
        coords = []
        for d in reversed(self.dims):
            coords.append(pid % d)
            pid //= d
        return tuple(reversed(coords))


def shape_grid(p: int, k: int) -> ProcessorGrid:
    """The paper's grid-shaping rule for ``p`` processors, ``k`` forall dims.

    ``k = 0`` (no parallelism: the whole space is one block) yields the
    degenerate single-processor grid.
    """
    if k == 0:
        return ProcessorGrid(dims=())
    if k == 1:
        return ProcessorGrid(dims=(p,))
    root = _integer_kth_root(p, k)
    dims = [root] * (k - 1)
    dims.append(p // (root ** (k - 1)))
    return ProcessorGrid(dims=tuple(dims))
