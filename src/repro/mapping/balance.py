"""Workload balance metrics for a processor assignment."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapping.cyclic import CyclicAssignment


@dataclass(frozen=True)
class WorkloadStats:
    """Per-processor iteration-count statistics."""

    loads: dict[tuple[int, ...], int]

    @property
    def total(self) -> int:
        return sum(self.loads.values())

    @property
    def max_load(self) -> int:
        return max(self.loads.values()) if self.loads else 0

    @property
    def min_load(self) -> int:
        return min(self.loads.values()) if self.loads else 0

    @property
    def mean_load(self) -> float:
        return self.total / len(self.loads) if self.loads else 0.0

    @property
    def imbalance(self) -> float:
        """``max / mean`` -- 1.0 is perfectly balanced."""
        mean = self.mean_load
        return self.max_load / mean if mean else 1.0

    @property
    def efficiency(self) -> float:
        """Parallel efficiency upper bound: ``total / (p * max)``.

        The makespan is driven by the most loaded processor; with no
        communication the best achievable speedup is ``total / max``.
        """
        denom = len(self.loads) * self.max_load
        return self.total / denom if denom else 1.0

    def summary(self) -> str:
        return (f"p={len(self.loads)} total={self.total} "
                f"max={self.max_load} min={self.min_load} "
                f"imbalance={self.imbalance:.3f} efficiency={self.efficiency:.3f}")


def workload_stats(assignment: CyclicAssignment) -> WorkloadStats:
    return WorkloadStats(loads=assignment.loads())
