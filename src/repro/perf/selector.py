"""Automatic strategy selection by estimated cost.

Enumerates the strategy space for a loop -- non-duplicate, plus every
subset of its *fully duplicable* arrays under the duplicate strategy
(optionally with redundancy elimination) -- estimates each candidate
with :func:`repro.perf.general.estimate_plan`, and returns the ranking.
Candidate plans run through the shared pass pipeline (with one
extracted model injected), so repeated selections hit the plan cache.

This realizes the paper's Section IV conclusion: the choice between
L5-style, L5'-style and L5''-style allocations "can be appropriately
estimated such that parallelized programs can gain better performance".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations
from typing import Iterable, Optional

from repro.analysis.references import extract_references
from repro.core.plan import PartitionPlan
from repro.core.strategy import Strategy
from repro.lang.ast import LoopNest
from repro.machine.cost import CostModel, TRANSPUTER
from repro.perf.general import PlanEstimate, estimate_plan
from repro.pipeline import PipelineConfig, run_pipeline


@dataclass
class Candidate:
    """One evaluated strategy."""

    label: str
    duplicate_arrays: frozenset[str]
    eliminate_redundant: bool
    plan: PartitionPlan
    estimate: PlanEstimate

    @property
    def makespan(self) -> float:
        return self.estimate.makespan

    @property
    def blocks(self) -> int:
        return self.plan.num_blocks


@dataclass
class SelectionResult:
    """The full ranking; ``best`` is the minimum-makespan candidate."""

    candidates: list[Candidate]

    @property
    def best(self) -> Candidate:
        return self.candidates[0]

    def table(self) -> str:
        lines = [f"{'strategy':<24} {'blocks':>6} {'makespan(s)':>12} "
                 f"{'comm(s)':>10} {'mem(words)':>10}"]
        for c in self.candidates:
            lines.append(
                f"{c.label:<24} {c.blocks:>6} {c.makespan:>12.6f} "
                f"{c.estimate.distribution_time:>10.6f} "
                f"{c.estimate.memory_words:>10}")
        return "\n".join(lines)


def _powerset(items: Iterable[str]) -> Iterable[frozenset[str]]:
    items = sorted(items)
    return (frozenset(c) for c in chain.from_iterable(
        combinations(items, r) for r in range(len(items) + 1)))


def choose_strategy(
    nest: LoopNest,
    p: int,
    cost: CostModel = TRANSPUTER,
    consider_elimination: bool = False,
    max_candidates: int = 32,
) -> SelectionResult:
    """Evaluate the strategy space and rank by estimated makespan.

    Ties break toward less replication (memory), then fewer blocks --
    no reason to pay duplication for zero gain (the paper's L1 verdict).
    """
    model = extract_references(nest)
    # Any array may be duplicated: fully duplicable ones drop their whole
    # reference space, partially duplicable ones keep only flow vectors.
    array_names = sorted(model.arrays)
    candidates: list[Candidate] = []
    seen_spaces: set[tuple] = set()

    def add(label: str, dup: frozenset[str], elim: bool) -> None:
        if len(candidates) >= max_candidates:
            return
        strategy = Strategy.DUPLICATE if dup else Strategy.NONDUPLICATE
        config = PipelineConfig(strategy=strategy,
                                duplicate_arrays=dup if dup else None,
                                eliminate_redundant=elim)
        plan = run_pipeline(nest, config, upto="partition", model=model).plan
        # duplicating more arrays without changing Psi changes nothing:
        # keep only the first (least-duplication) candidate per space.
        key = (plan.psi, elim)
        if key in seen_spaces:
            return
        seen_spaces.add(key)
        est = estimate_plan(plan, p, cost=cost)
        candidates.append(Candidate(label=label, duplicate_arrays=dup,
                                    eliminate_redundant=elim,
                                    plan=plan, estimate=est))

    elim_options = (False, True) if consider_elimination else (False,)
    for elim in elim_options:
        suffix = "+elim" if elim else ""
        for dup in _powerset(array_names):
            label = ("nonduplicate" if not dup
                     else "duplicate{" + ",".join(sorted(dup)) + "}") + suffix
            add(label, dup, elim)

    candidates.sort(key=lambda c: (c.makespan, c.estimate.memory_words,
                                   len(c.duplicate_arrays),
                                   c.eliminate_redundant, -c.blocks, c.label))
    return SelectionResult(candidates=candidates)
