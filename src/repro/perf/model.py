"""The paper's analytic time formulas for matrix multiplication (Sec. IV).

With ``p`` processors on a ``sqrt(p) x sqrt(p)`` mesh and problem size
``M`` (``M`` a multiple of ``p`` resp. ``sqrt(p)``):

- sequential (non-duplicate forces it):
  ``T1 = M^3 t_comp + 2 (t_start + M^2 t_comm)``
- duplicate B only (loop L5'):
  ``T2 = M^3/p t_comp + (p t_start + M^2 t_comm)
        + (t_start + 2 sqrt(p) M^2 t_comm)``
- duplicate A and B (loop L5''):
  ``T3 = M^3/p t_comp + 2 (sqrt(p) t_start + 2 M^2 t_comm)``

These are the big-O expressions of the paper instantiated with unit
constants; the simulator (:mod:`repro.perf.matmul`) reproduces the same
structure from actual message events.
"""

from __future__ import annotations

from math import isqrt

from repro.machine.cost import CostModel


def _sqrt_p(p: int) -> int:
    r = isqrt(p)
    if r * r != p:
        raise ValueError(f"p={p} is not a perfect square (mesh assumption)")
    return r


def t1_sequential(m: int, cost: CostModel, include_distribution: bool = True) -> float:
    """``T1``: whole A and B to one node, then M^3 iterations there."""
    t = (m ** 3) * cost.t_comp
    if include_distribution:
        t += 2 * (cost.t_start + (m ** 2) * cost.t_comm)
    return t


def t2_duplicate_b(m: int, p: int, cost: CostModel) -> float:
    """``T2`` (loop L5'): scatter A row-cyclically, broadcast whole B."""
    sq = _sqrt_p(p)
    compute = (m ** 3) / p * cost.t_comp
    scatter_a = p * cost.t_start + (m ** 2) * cost.t_comm
    broadcast_b = cost.t_start + 2 * sq * (m ** 2) * cost.t_comm
    return compute + scatter_a + broadcast_b


def t3_duplicate_ab(m: int, p: int, cost: CostModel) -> float:
    """``T3`` (loop L5''): row/column multicasts of A and B."""
    sq = _sqrt_p(p)
    compute = (m ** 3) / p * cost.t_comp
    per_array = sq * cost.t_start + 2 * (m ** 2) * cost.t_comm
    return compute + 2 * per_array
