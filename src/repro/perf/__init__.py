"""Performance study (Section IV + Tables I/II).

- :mod:`~repro.perf.model`: the paper's analytic complexity formulas
  ``T1``, ``T2``, ``T3`` for matrix multiplication;
- :mod:`~repro.perf.matmul`: the simulated Transputer-mesh study of
  loops L5, L5' and L5'' (message-level simulation, compute charged per
  iteration);
- :mod:`~repro.perf.tables`: the paper's Table I / Table II data and
  comparison helpers;
- :mod:`~repro.perf.general`: cost estimation for *any* plan on *any*
  machine size (generalizing the matmul study);
- :mod:`~repro.perf.selector`: automatic strategy selection by
  estimated makespan (the paper's "can be appropriately estimated").
"""

from repro.perf.model import t1_sequential, t2_duplicate_b, t3_duplicate_ab
from repro.perf.matmul import (
    MatmulSim,
    simulate_l5,
    simulate_l5_prime,
    simulate_l5_doubleprime,
    run_study,
)
from repro.perf.tables import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    paper_time,
    paper_speedup,
    table1_rows,
    table2_rows,
)
from repro.perf.general import PlanEstimate, estimate_plan, mesh_for
from repro.perf.selector import Candidate, SelectionResult, choose_strategy

__all__ = [
    "PlanEstimate",
    "estimate_plan",
    "mesh_for",
    "Candidate",
    "SelectionResult",
    "choose_strategy",
    "t1_sequential",
    "t2_duplicate_b",
    "t3_duplicate_ab",
    "MatmulSim",
    "simulate_l5",
    "simulate_l5_prime",
    "simulate_l5_doubleprime",
    "run_study",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "paper_time",
    "paper_speedup",
    "table1_rows",
    "table2_rows",
]
