"""The paper's measured Tables I and II, plus regeneration helpers.

``PAPER_TABLE1[(loop, p, M)]`` is the measured execution time in
seconds on the authors' 16-node Transputer machine; ``PAPER_TABLE2``
the derived speedups.  ``table1_rows`` / ``table2_rows`` regenerate the
same grids from the simulator for side-by-side comparison.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.cost import CostModel, TRANSPUTER
from repro.perf.matmul import run_study

MS = (16, 32, 64, 128, 256)

#: Table I -- execution time of loops L5, L5', L5'' (seconds).
PAPER_TABLE1: dict[tuple[str, int, int], float] = {
    ("L5", 1, 16): 0.0399, ("L5", 1, 32): 0.3162, ("L5", 1, 64): 2.5241,
    ("L5", 1, 128): 20.1691, ("L5", 1, 256): 161.2546,
    ("L5'", 4, 16): 0.0144, ("L5'", 4, 32): 0.0956, ("L5'", 4, 64): 0.6961,
    ("L5'", 4, 128): 5.2895, ("L5'", 4, 256): 41.3058,
    ("L5''", 4, 16): 0.0127, ("L5''", 4, 32): 0.0855, ("L5''", 4, 64): 0.6467,
    ("L5''", 4, 128): 5.1405, ("L5''", 4, 256): 40.7988,
    ("L5'", 16, 16): 0.0135, ("L5'", 16, 32): 0.0543, ("L5'", 16, 64): 0.2869,
    ("L5'", 16, 128): 1.7908, ("L5'", 16, 256): 12.3584,
    ("L5''", 16, 16): 0.0080, ("L5''", 16, 32): 0.0326, ("L5''", 16, 64): 0.2043,
    ("L5''", 16, 128): 1.4326, ("L5''", 16, 256): 10.6513,
}

#: Table II -- speedup of L5' and L5'' over sequential L5.
PAPER_TABLE2: dict[tuple[str, int, int], float] = {
    ("L5'", 4, 16): 2.77, ("L5'", 4, 32): 3.31, ("L5'", 4, 64): 3.63,
    ("L5'", 4, 128): 3.81, ("L5'", 4, 256): 3.89,
    ("L5''", 4, 16): 3.14, ("L5''", 4, 32): 3.70, ("L5''", 4, 64): 3.90,
    ("L5''", 4, 128): 3.92, ("L5''", 4, 256): 3.95,
    ("L5'", 16, 16): 2.96, ("L5'", 16, 32): 5.82, ("L5'", 16, 64): 8.80,
    ("L5'", 16, 128): 11.26, ("L5'", 16, 256): 13.05,
    ("L5''", 16, 16): 4.99, ("L5''", 16, 32): 9.70, ("L5''", 16, 64): 12.35,
    ("L5''", 16, 128): 14.08, ("L5''", 16, 256): 15.14,
}


def paper_time(loop: str, p: int, m: int) -> float:
    return PAPER_TABLE1[(loop, p, m)]


def paper_speedup(loop: str, p: int, m: int) -> float:
    return PAPER_TABLE2[(loop, p, m)]


def table1_rows(cost: CostModel = TRANSPUTER,
                ms=MS, ps=(4, 16)) -> list[dict]:
    """Simulated Table I rows with paper values attached."""
    sims = run_study(ms=ms, ps=ps, cost=cost)
    rows = []
    for (loop, p, m), sim in sorted(sims.items(), key=lambda kv: (kv[0][1], kv[0][0], kv[0][2])):
        rows.append({
            "loop": loop,
            "p": p,
            "M": m,
            "simulated_s": sim.total_time,
            "paper_s": PAPER_TABLE1.get((loop, p, m)),
            "distribution_s": sim.distribution_time,
            "compute_s": sim.compute_time,
        })
    return rows


def table2_rows(cost: CostModel = TRANSPUTER,
                ms=MS, ps=(4, 16)) -> list[dict]:
    """Simulated Table II (speedups) with paper values attached."""
    sims = run_study(ms=ms, ps=ps, cost=cost)
    rows = []
    for p in ps:
        for loop in ("L5'", "L5''"):
            for m in ms:
                seq = sims[("L5", 1, m)].total_time
                sim = sims[(loop, p, m)]
                rows.append({
                    "loop": loop,
                    "p": p,
                    "M": m,
                    "simulated_speedup": seq / sim.total_time,
                    "paper_speedup": PAPER_TABLE2.get((loop, p, m)),
                })
    return rows


def format_rows(rows: list[dict], columns: Optional[list[str]] = None) -> str:
    """Plain-text table rendering for benches and examples."""
    if not rows:
        return "(empty)"
    columns = columns or list(rows[0].keys())
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) for c in columns}
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.4f}"
    return str(v)
