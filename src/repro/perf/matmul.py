"""Simulated Transputer-mesh study of loops L5 / L5' / L5''.

Message-level simulation: the host's distribution operations are issued
on a real :class:`~repro.machine.network.Network` over the mesh (so hop
counts and serialization come from the topology), and compute is
charged per iteration.  Arrays are *not* materialized element-by-element
here -- Table I reaches ``M = 256`` (16.7M iterations), far beyond what
a functional interpreter should execute; functional correctness of the
very same plans is established separately on small instances by
:mod:`repro.runtime.verify`.

The three variants mirror the paper exactly:

- **L5** (non-duplicate): sequential on one node; host ships whole A
  and B to it.
- **L5'** (duplicate B): A rows dealt cyclically over all ``p``
  processors with pipelined sends; whole B broadcast; each processor
  runs ``M^3/p`` iterations.
- **L5''** (duplicate A and B): mesh rows share A row-groups, mesh
  columns share B column-groups, each group multicast once; each
  processor runs ``M^3/p`` iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isqrt

from repro.machine.cost import CostModel, TRANSPUTER
from repro.machine.machine import Multicomputer
from repro.machine.topology import HOST, Mesh2D


@dataclass
class MatmulSim:
    """Result of one simulated matmul run."""

    variant: str
    m: int
    p: int
    distribution_time: float
    compute_time: float       # makespan of the compute phase (max over PEs)
    messages: int
    words_sent: int

    @property
    def total_time(self) -> float:
        return self.distribution_time + self.compute_time

    def speedup_over(self, sequential_compute: float) -> float:
        return sequential_compute / self.total_time


def _mesh_machine(p: int, cost: CostModel) -> Multicomputer:
    sq = isqrt(p)
    if sq * sq == p:
        return Multicomputer(Mesh2D(sq, sq), cost=cost)
    return Multicomputer(Mesh2D(1, p), cost=cost)


def simulate_l5(m: int, cost: CostModel = TRANSPUTER,
                include_distribution: bool = False) -> MatmulSim:
    """Sequential execution on one node.

    Table I's ``p = 1`` row counts only computation ("we consider only
    the computation time, not including the time of allocating arrays
    A and B"), hence ``include_distribution`` defaults off.
    """
    machine = _mesh_machine(1, cost)
    if include_distribution:
        machine.network.send(HOST, 0, m * m, tag="A")
        machine.network.send(HOST, 0, m * m, tag="B")
    machine.processor(0).charge_iterations(m ** 3)
    st = machine.stats()
    return MatmulSim("L5", m, 1, st.distribution_time, st.max_compute_time,
                     st.messages, st.words_sent)


def simulate_l5_prime(m: int, p: int, cost: CostModel = TRANSPUTER) -> MatmulSim:
    """L5': duplicate only B.  Scatter A row-cyclically; broadcast B."""
    if m % p:
        raise ValueError(f"M={m} must be a multiple of p={p} (paper assumption)")
    machine = _mesh_machine(p, cost)
    rows_per_pe = m // p
    for pid in range(p):
        machine.network.send(HOST, pid, rows_per_pe * m, tag="A")
    machine.network.broadcast(HOST, m * m, tag="B")
    for pid in range(p):
        machine.processor(pid).charge_iterations(rows_per_pe * m * m)
    st = machine.stats()
    return MatmulSim("L5'", m, p, st.distribution_time, st.max_compute_time,
                     st.messages, st.words_sent)


def simulate_l5_doubleprime(m: int, p: int,
                            cost: CostModel = TRANSPUTER) -> MatmulSim:
    """L5'': duplicate A and B.  Row multicasts of A, column multicasts of B."""
    sq = isqrt(p)
    if sq * sq != p:
        raise ValueError(f"p={p} must be a perfect square for the mesh variant")
    if m % sq:
        raise ValueError(f"M={m} must be a multiple of sqrt(p)={sq}")
    machine = _mesh_machine(p, cost)
    mesh: Mesh2D = machine.topology  # type: ignore[assignment]
    group_words = (m // sq) * m
    for r in range(sq):
        machine.network.multicast(HOST, mesh.row_nodes(r), group_words, tag="A")
    for c in range(sq):
        machine.network.multicast(HOST, mesh.col_nodes(c), group_words, tag="B")
    per_pe = (m // sq) * (m // sq) * m
    for pid in range(p):
        machine.processor(pid).charge_iterations(per_pe)
    st = machine.stats()
    return MatmulSim("L5''", m, p, st.distribution_time, st.max_compute_time,
                     st.messages, st.words_sent)


def run_study(ms=(16, 32, 64, 128, 256), ps=(4, 16),
              cost: CostModel = TRANSPUTER) -> dict[tuple[str, int, int], MatmulSim]:
    """The full Table-I grid: L5 at p=1 plus L5'/L5'' at each p."""
    out: dict[tuple[str, int, int], MatmulSim] = {}
    for m in ms:
        out[("L5", 1, m)] = simulate_l5(m, cost)
        for p in ps:
            out[("L5'", p, m)] = simulate_l5_prime(m, p, cost)
            out[("L5''", p, m)] = simulate_l5_doubleprime(m, p, cost)
    return out
