"""General plan cost estimation: any loop, any strategy, any machine size.

Generalizes the L5/L5'/L5'' study: given a :class:`PartitionPlan`, a
processor count and a cost model, estimate the paper's two phases:

- **distribution**: every array element must reach the processors whose
  blocks hold it.  Elements are grouped by their destination set and
  shipped with the cheapest matching primitive -- a pipelined *send*
  for a single destination, a *broadcast* when every processor needs
  the group, a pipelined *multicast* otherwise.  On L5 this reduces
  exactly to the paper's scatter / broadcast / row-column-multicast
  patterns.
- **compute**: executed computations per processor (redundant ones are
  skipped) at ``t_comp`` each, makespan = slowest processor.

The estimate powers :mod:`repro.perf.selector`, implementing the
paper's closing remark that "determining which kind of duplication of
array is suitable for replicating ... can be appropriately estimated".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import isqrt
from typing import Optional

from repro.core.plan import PartitionPlan
from repro.machine.cost import CostModel, TRANSPUTER
from repro.machine.machine import Multicomputer
from repro.machine.topology import HOST, Mesh2D
from repro.mapping.cyclic import assign_blocks
from repro.mapping.grid import ProcessorGrid, shape_grid
from repro.transform.loopnest import TransformedNest, transform_nest


@dataclass
class PlanEstimate:
    """Estimated cost of executing a plan on ``p`` processors."""

    plan: PartitionPlan
    p: int
    distribution_time: float
    compute_time: float
    messages: int
    words_sent: int
    memory_words: int
    loads: dict[int, int] = field(repr=False, default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.distribution_time + self.compute_time

    @property
    def imbalance(self) -> float:
        if not self.loads:
            return 1.0
        mx = max(self.loads.values())
        mean = sum(self.loads.values()) / len(self.loads)
        return mx / mean if mean else 1.0


def mesh_for(p: int) -> Mesh2D:
    """The squarest 2-D mesh with exactly ``p`` nodes."""
    r = isqrt(p)
    while p % r:
        r -= 1
    return Mesh2D(r, p // r)


def block_to_pid_map(plan: PartitionPlan, tnest: TransformedNest,
                     grid: ProcessorGrid) -> dict[int, int]:
    """Plan-block -> linear processor id via the cyclic assignment."""
    mapping: dict[int, int] = {}
    for b in plan.blocks:
        pt = tnest.block_of_iteration(b.iterations[0])
        owner = tuple(v % d for v, d in zip(pt, grid.dims))
        mapping[b.index] = grid.linear_id(owner)
    return mapping


def estimate_plan(
    plan: PartitionPlan,
    p: int,
    cost: CostModel = TRANSPUTER,
    tnest: Optional[TransformedNest] = None,
) -> PlanEstimate:
    """Estimate distribution + compute cost of ``plan`` on ``p`` processors."""
    if tnest is None:
        tnest = transform_nest(plan.nest, plan.psi)
    grid = shape_grid(p, tnest.k)
    actual_p = max(1, grid.size)
    machine = Multicomputer(mesh_for(actual_p), cost=cost)
    mapping = block_to_pid_map(plan, tnest, grid)

    # -- distribution: group elements by destination-pid set ----------------
    net = machine.network
    memory_words = 0
    for name, dblocks in plan.data_blocks.items():
        dest_groups: dict[frozenset[int], int] = {}
        owners: dict[tuple[int, ...], set[int]] = {}
        for db in dblocks:
            pid = mapping[db.block_index]
            for e in db.elements:
                owners.setdefault(e, set()).add(pid)
        for e, pids in owners.items():
            key = frozenset(pids)
            dest_groups[key] = dest_groups.get(key, 0) + 1
            memory_words += len(pids)
        for dsts, words in sorted(dest_groups.items(),
                                  key=lambda kv: sorted(kv[0])):
            if len(dsts) == actual_p and actual_p > 1:
                net.broadcast(HOST, words, tag=f"bcast:{name}")
            elif len(dsts) == 1:
                net.send(HOST, next(iter(dsts)), words, tag=f"scatter:{name}")
            else:
                net.multicast(HOST, sorted(dsts), words, tag=f"mcast:{name}")

    # -- compute ----------------------------------------------------------
    loads: dict[int, int] = {pid: 0 for pid in range(actual_p)}
    live = plan.live
    nstmts = len(plan.nest.statements)
    for b in plan.blocks:
        pid = mapping[b.index]
        if live is None:
            executed = len(b.iterations) * nstmts
        else:
            executed = sum(1 for it in b.iterations for k in range(nstmts)
                           if (k, it) in live)
        loads[pid] += executed
    # one "iteration" of the paper's t_comp covers all statements of the
    # body; charge per executed statement scaled by 1/nstmts to keep the
    # unit comparable across plans that skip statements.
    compute = max(loads.values()) / nstmts * cost.t_comp if loads else 0.0

    st = machine.stats()
    return PlanEstimate(
        plan=plan, p=actual_p,
        distribution_time=st.distribution_time,
        compute_time=compute,
        messages=st.messages,
        words_sent=st.words_sent,
        memory_words=memory_words,
        loads=loads,
    )
