"""Observability hooks for the pass pipeline.

:class:`TracingHooks` attaches to
:class:`~repro.pipeline.instrument.Instrumentation` through the
existing :class:`~repro.pipeline.instrument.PipelineHooks` protocol and
mirrors pass boundaries into the span tracer: one ``pipeline`` span per
pass execution, plus an instant event per structured diagnostic.  The
CLI installs it whenever ``--trace``/``--events`` is given; library
callers can attach it to any instrumentation sink.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.trace import Span, Tracer, current_tracer
from repro.pipeline.instrument import PipelineHooks


class TracingHooks(PipelineHooks):
    """Mirror pass start/end and diagnostics into a tracer."""

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        # resolved lazily so one hooks object follows use_tracer scoping
        self._tracer = tracer
        self._open: list[tuple[str, object, Span]] = []

    def _tr(self) -> Tracer:
        return self._tracer if self._tracer is not None else current_tracer()

    def on_pass_start(self, name, ctx) -> None:
        cm = self._tr().span(f"pass:{name}", category="pipeline",
                             config=ctx.config.describe(),
                             nest=ctx.nest.name or "<anon>")
        span = cm.__enter__()
        self._open.append((name, cm, span))

    def on_pass_end(self, name, ctx, seconds) -> None:
        # close the matching span; tolerate nested pipelines sharing hooks
        for i in range(len(self._open) - 1, -1, -1):
            opened_name, cm, span = self._open[i]
            if opened_name == name:
                span.set(artifacts=sorted(ctx.artifacts))
                del self._open[i]
                cm.__exit__(None, None, None)
                return

    def on_diagnostic(self, diag) -> None:
        self._tr().event(f"diagnostic:{diag.code}", category="pipeline",
                         severity=diag.severity.label,
                         message=diag.message,
                         **({"loc": diag.loc} if diag.loc else {}))
