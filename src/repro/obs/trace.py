"""Hierarchical span tracer with a null-recorder fast path.

A :class:`Span` is one timed region of work (a pipeline pass, a plan
cache lookup, one engine block, a machine-simulation phase) with a
category, free-form attributes, and a parent -- spans opened while
another span is open nest under it, so one compile-execute-simulate run
reads as a tree.  An :class:`Event` is an instant (a diagnostic, a
cache decision) attached to whatever span is open.

The process default is a *disabled* tracer: :meth:`Tracer.span` then
returns one shared no-op context manager and records nothing, so call
sites can stay unconditional even on hot-ish paths (per block, per
pass -- never per iteration).  ``benchmarks/bench_obs_overhead.py``
enforces that this disabled path stays under its recorded floor.

Clocks are monotonic (:func:`time.perf_counter_ns`), anchored to the
tracer's creation, so span timestamps are stable under wall-clock
adjustments and directly usable as Chrome trace-event ``ts`` offsets.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.ctxstack import ScopeStack


class _NullSpan:
    """The shared do-nothing span returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    @property
    def recording(self) -> bool:
        return False


#: Singleton no-op span; ``tracer.span(...)`` returns this when disabled.
NULL_SPAN = _NullSpan()


@dataclass
class Span:
    """One completed (or in-flight) timed region."""

    name: str
    category: str
    span_id: int
    parent_id: Optional[int]
    start_ns: int
    duration_ns: int = 0
    attributes: dict[str, Any] = field(default_factory=dict)
    tid: int = 0
    error: Optional[str] = None
    # process lane: None = the owning tracer's pid; set explicitly for
    # spans adopted from worker processes (repro.obs.aggregate)
    pid: Optional[int] = None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (shows up as Chrome trace ``args``)."""
        self.attributes.update(attrs)
        return self

    @property
    def recording(self) -> bool:
        return True

    @property
    def seconds(self) -> float:
        return self.duration_ns / 1e9


@dataclass
class Event:
    """One instant occurrence attached to the open span (if any)."""

    name: str
    category: str
    ts_ns: int
    span_id: Optional[int]
    attributes: dict[str, Any] = field(default_factory=dict)
    pid: Optional[int] = None


class _SpanContext:
    """Context manager that opens/closes one recorded span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._stack().append(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.duration_ns = self._tracer._now() - span.start_ns
        if exc_type is not None:
            span.error = f"{exc_type.__name__}: {exc}"
        stack = self._tracer._stack()
        if stack and stack[-1] is span:
            stack.pop()
        self._tracer._finish(span)
        return False


class Tracer:
    """Collects spans and events; disabled by default (null recorder)."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: list[Span] = []
        self.events: list[Event] = []
        self.pid = os.getpid()
        self._epoch_ns = time.perf_counter_ns()
        self._next_id = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- clock ------------------------------------------------------------
    def _now(self) -> int:
        return time.perf_counter_ns() - self._epoch_ns

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- recording --------------------------------------------------------
    def span(self, name: str, category: str = "app", **attrs: Any):
        """Open a span as a context manager; no-op when disabled.

        The ``with`` target is the :class:`Span` (or the shared null
        span), so callers can ``sp.set(key=value)`` unconditionally.
        """
        if not self.enabled:
            return NULL_SPAN
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(name=name, category=category, span_id=span_id,
                    parent_id=parent, start_ns=self._now(),
                    attributes=dict(attrs),
                    tid=threading.get_ident() & 0xFFFF)
        return _SpanContext(self, span)

    def event(self, name: str, category: str = "app", **attrs: Any) -> None:
        """Record an instant event under the currently open span."""
        if not self.enabled:
            return
        stack = self._stack()
        evt = Event(name=name, category=category, ts_ns=self._now(),
                    span_id=stack[-1].span_id if stack else None,
                    attributes=dict(attrs))
        with self._lock:
            self.events.append(evt)

    def _finish(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def reserve_ids(self, n: int) -> int:
        """Reserve ``n`` consecutive span ids; returns the first.

        Used when adopting spans recorded by another tracer (a worker
        process) so their remapped ids never collide with local ones.
        """
        with self._lock:
            first = self._next_id
            self._next_id += n
        return first

    # -- queries ----------------------------------------------------------
    def find(self, name: Optional[str] = None,
             category: Optional[str] = None) -> list[Span]:
        return [s for s in self.spans
                if (name is None or s.name == name)
                and (category is None or s.category == category)]

    def categories(self) -> set[str]:
        return {s.category for s in self.spans}

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.events.clear()


#: Process-wide default: a *disabled* tracer (the null-recorder path).
NULL_TRACER = Tracer(enabled=False)

_tracer_stack = ScopeStack(NULL_TRACER)


def current_tracer() -> Tracer:
    """The tracer instrumented call sites report to (per thread)."""
    return _tracer_stack.top(NULL_TRACER)


def use_tracer(tracer: Tracer):
    """Scope the active tracer (e.g. for one CLI command or request)."""
    return _tracer_stack.scoped(tracer)
