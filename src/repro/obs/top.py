"""Live run introspection: the snapshot file and the ``repro top`` TUI.

A long multiprocess run is a black box from the outside: the scheduler
knows its lease states, the pool knows its workers, the registry knows
its cache hit rates -- but none of it is visible until the run ends.
This module closes that gap with a deliberately boring mechanism, a
**snapshot file**:

- the *writer* side (:class:`SnapshotWriter`) is wired into the
  scheduler's dispatch loop and the :class:`~repro.api.Session`
  lifecycle.  When ``REPRO_TOP_SNAPSHOT`` names a path, they
  periodically (default every 0.5s) write a one-object JSON snapshot of
  live state -- progress, throughput, lease tallies, per-worker lanes,
  pool/shm/cache stats, and the communication-optimality gauge --
  atomically (tmp + ``os.replace``), so a reader never sees a torn
  file;
- the *reader* side (``repro top``) polls that file and renders an
  ASCII dashboard (:func:`render_top`, built on
  :func:`repro.viz.ascii.render_bar`), refreshing in place on a TTY.
  ``--once`` renders a single frame (scripts, tests); a stale snapshot
  is labeled as such rather than silently shown fresh.

File-based on purpose: no socket, no dependency, works across
processes and even across machines on a shared filesystem, and a
crashed writer leaves behind exactly what a post-mortem wants.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Callable, Optional, Union

#: Path of the live snapshot file; unset = no snapshots are written.
SNAPSHOT_ENV_VAR = "REPRO_TOP_SNAPSHOT"
#: Seconds between snapshot writes (writer side).
DEFAULT_INTERVAL_S = 0.5
#: A snapshot older than this renders as stale (reader side).
STALE_AFTER_S = 5.0


class SnapshotWriter:
    """Throttled atomic JSON snapshot writer."""

    def __init__(self, path: Union[str, Path],
                 interval_s: float = DEFAULT_INTERVAL_S) -> None:
        self.path = str(path)
        self.interval_s = interval_s
        self._last = 0.0
        self.writes = 0

    def maybe_write(self, state: Union[dict, Callable[[], dict]]) -> bool:
        """Write if the interval elapsed; ``state`` may be a thunk so
        callers on hot-ish paths build the dict only when due."""
        now = time.monotonic()
        if now - self._last < self.interval_s:
            return False
        self.write(state() if callable(state) else state)
        return True

    def write(self, state: dict) -> None:
        """Unconditional atomic write; never raises (a dashboard must
        not be able to break the run it watches)."""
        self._last = time.monotonic()
        doc = dict(state)
        doc.setdefault("pid", os.getpid())
        doc["written_at"] = time.time()
        doc.setdefault("registry", registry_stats())
        try:
            tmp = f"{self.path}.tmp.{os.getpid()}"
            with open(tmp, "w") as fh:
                json.dump(doc, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.path)
            self.writes += 1
        except OSError:  # pragma: no cover - unwritable snapshot dir
            pass


def snapshot_path() -> Optional[str]:
    """The configured snapshot path, or None (snapshots off)."""
    return os.environ.get(SNAPSHOT_ENV_VAR) or None


_writer: Optional[SnapshotWriter] = None


def current_writer() -> Optional[SnapshotWriter]:
    """The process-wide writer for ``$REPRO_TOP_SNAPSHOT``, or None.

    Cached per path so the scheduler's throttle state survives across
    runs in one process; re-reads the environment on every call so
    tests (and long-lived daemons) can flip snapshots on and off.
    """
    global _writer
    path = snapshot_path()
    if path is None:
        _writer = None
    elif _writer is None or _writer.path != path:
        _writer = SnapshotWriter(path)
    return _writer


# ---------------------------------------------------------------------------
# snapshot content helpers (writer side)
# ---------------------------------------------------------------------------

def _rate(hit: float, miss: float) -> Optional[float]:
    total = hit + miss
    return None if total == 0 else hit / total


def registry_stats(registry=None) -> dict[str, Any]:
    """The registry-derived block of a snapshot: pool, shm, caches.

    Reads the current metrics registry; every field is best-effort
    (absent metrics read as zero), so this works mid-run from any
    process that publishes the standard families.
    """
    from repro.obs.metrics import current_registry

    reg = registry if registry is not None else current_registry()
    miss_plan = sum(
        reg.value(n) for n in reg.names()
        if n == "cache.miss" or n.startswith("cache.miss."))
    disk_miss = sum(reg.value(n) for n in reg.names()
                    if n.startswith("cache.disk.miss"))
    return {
        "pool_workers": reg.value("engine.pool.workers"),
        "pool_spawns": reg.value("engine.pool.spawns"),
        "pool_reuses": reg.value("engine.pool.reuses"),
        "shm_bytes": reg.value("engine.shm.bytes"),
        "plan_cache_hits": reg.value("cache.hit"),
        "plan_cache_hit_rate": _rate(reg.value("cache.hit"), miss_plan),
        "kernel_cache_hits": reg.value("cache.disk.hit"),
        "kernel_cache_hit_rate": _rate(reg.value("cache.disk.hit"),
                                       disk_miss),
        "retries": reg.value("scheduler.retries"),
        "respawns": reg.value("scheduler.respawns"),
    }


# ---------------------------------------------------------------------------
# rendering (reader side)
# ---------------------------------------------------------------------------

def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024
    return f"{n:.1f}GiB"  # pragma: no cover


def _gauge_line(label: str, frac: Optional[float], note: str = "") -> str:
    from repro.viz.ascii import render_bar

    if frac is None:
        return f"{label:<18} [{'-' * 20}]    - {note}"
    return f"{label:<18} [{render_bar(frac, 20)}] {frac:>4.0%} {note}"


def render_top(snap: dict, now: Optional[float] = None) -> str:
    """One dashboard frame from one snapshot document."""
    now = time.time() if now is None else now
    age = now - snap.get("written_at", now)
    stale = f"  STALE ({age:.0f}s old)" if age > STALE_AFTER_S else ""
    phase = snap.get("phase", "?")
    lines = [
        f"repro top -- {snap.get('case', '?')} "
        f"[{snap.get('backend', 'multiprocess')}]  pid {snap.get('pid', '?')}"
        f"  phase {phase}  +{snap.get('elapsed_s', 0.0):.1f}s{stale}",
    ]

    units, done = snap.get("units", 0), snap.get("units_done", 0)
    blocks, bdone = snap.get("blocks", 0), snap.get("blocks_done", 0)
    if units:
        lines.append(_gauge_line(
            "progress", done / units if units else None,
            f"{done}/{units} units, {bdone}/{blocks} blocks"))
    tput = snap.get("blocks_per_sec")
    if tput is not None:
        lines.append(f"{'throughput':<18} {tput:>8.1f} blocks/s")

    leases = snap.get("leases")
    if leases:
        lines.append(
            f"{'leases':<18} {leases.get('total', 0)} total | "
            f"{leases.get('ok', 0)} ok | "
            f"{leases.get('inflight', 0)} inflight | "
            f"{leases.get('pending', 0)} pending | "
            f"{leases.get('expired', 0)} expired | "
            f"{leases.get('crashed', 0)} crashed | "
            f"{leases.get('dropped', 0)} dropped")

    lanes = snap.get("workers") or {}
    if lanes:
        peak = max((w.get("blocks", 0) for w in lanes.values()), default=0)
        lines.append("worker lanes:")
        for pid in sorted(lanes):
            w = lanes[pid]
            frac = (w.get("blocks", 0) / peak) if peak else 0.0
            lines.append(
                f"  {pid:>8} {_gauge_line('', frac)[19:]}"
                f" {w.get('blocks', 0)} blocks / {w.get('units', 0)} units")

    reg = snap.get("registry") or {}
    if reg:
        lines.append(
            f"{'pool':<18} {int(reg.get('pool_workers') or 0)} workers, "
            f"{int(reg.get('pool_spawns') or 0)} spawns, "
            f"{int(reg.get('pool_reuses') or 0)} reuses | shm "
            f"{_fmt_bytes(reg.get('shm_bytes') or 0)}")
        lines.append(_gauge_line("plan cache", reg.get("plan_cache_hit_rate"),
                                 f"({int(reg.get('plan_cache_hits') or 0)} "
                                 f"hits)"))
        lines.append(_gauge_line("kernel cache",
                                 reg.get("kernel_cache_hit_rate"),
                                 f"({int(reg.get('kernel_cache_hits') or 0)} "
                                 f"hits)"))
    gauge = snap.get("comm_optimality")
    if gauge is not None:
        note = ("communication-free" if gauge >= 1.0
                else f"{snap.get('remote_accesses', 0)} remote accesses")
        lines.append(_gauge_line("comm-optimality", gauge, f"({note})"))
    return "\n".join(lines)


def read_snapshot(path: Union[str, Path]) -> Optional[dict]:
    """The snapshot document, or None while it does not exist yet.

    Writes are atomic, so a readable file is always a complete
    document; a decode error still reads as "not yet" rather than a
    crash (the writer may be on an older format mid-upgrade).
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
        return doc if isinstance(doc, dict) else None
    except (OSError, json.JSONDecodeError):
        return None


def run_top(path: Optional[str] = None, interval_s: float = 1.0,
            iterations: Optional[int] = None, out=None,
            clear: Optional[bool] = None) -> int:
    """The ``repro top`` loop: poll the snapshot, render, repeat.

    ``iterations=None`` polls until interrupted; ``iterations=1`` is
    the ``--once`` mode.  Returns non-zero when no snapshot ever
    appeared (nothing is running, or the writer side was started
    without ``REPRO_TOP_SNAPSHOT``).
    """
    out = out or sys.stdout
    path = path or snapshot_path() or ".repro-top.json"
    if clear is None:
        clear = iterations != 1 and hasattr(out, "isatty") and out.isatty()
    seen = False
    i = 0
    try:
        while iterations is None or i < iterations:
            i += 1
            snap = read_snapshot(path)
            if snap is None:
                if iterations is not None and i >= iterations:
                    break
                time.sleep(min(interval_s, 0.2))
                continue
            seen = True
            frame = render_top(snap)
            if clear:
                print("\x1b[2J\x1b[H", end="", file=out)
            print(frame, file=out)
            if iterations is None or i < iterations:
                time.sleep(interval_s)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    if not seen:
        print(f"repro top: no snapshot at {path} (set "
              f"{SNAPSHOT_ENV_VAR} on the run you want to watch)",
              file=sys.stderr)
        return 1
    return 0
