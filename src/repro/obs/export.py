"""Exporters: Chrome trace-event JSON, Prometheus text, JSON, JSON-lines.

- :func:`chrome_trace` renders a :class:`~repro.obs.trace.Tracer` into
  the Chrome trace-event format (open ``chrome://tracing`` or Perfetto
  and drop the file in).  Spans become complete (``"ph": "X"``) events
  with their attributes as ``args``; instant events become ``"ph": "i"``.
- :func:`prometheus_text` / :func:`metrics_json` dump a
  :class:`~repro.obs.metrics.MetricsRegistry` (names sanitized to
  Prometheus conventions in the text form, kept dotted in JSON).
- :func:`event_log_lines` renders spans and events as a JSON-lines
  structured log (one JSON object per line, ``type`` discriminated).
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer

#: Category shown for instant events in trace viewers.
EVENT_CATEGORY_SUFFIX = ".event"


def _metadata_events(tracer: Tracer,
                     lanes: list[tuple[int, int]]) -> list[dict[str, Any]]:
    """``process_name``/``thread_name`` metadata (``"ph": "M"``) events.

    Without these, Perfetto labels every lane with a bare pid; with
    them the coordinator process reads as ``repro`` and each pool
    worker as ``repro worker <pid>``, so a multiprocess trace is
    legible at a glance.  ``lanes`` is the distinct ``(pid, tid)``
    pairs that actually carry events.
    """
    events: list[dict[str, Any]] = []
    for pid in sorted({pid for pid, _ in lanes}):
        name = "repro" if pid == tracer.pid else f"repro worker {pid}"
        events.append({
            "name": "process_name", "cat": "__metadata", "ph": "M",
            "ts": 0, "pid": pid, "tid": 0, "args": {"name": name},
        })
    for pid, tid in sorted(set(lanes)):
        events.append({
            "name": "thread_name", "cat": "__metadata", "ph": "M",
            "ts": 0, "pid": pid, "tid": tid,
            "args": {"name": "main" if tid == 0 else f"thread {tid}"},
        })
    return events


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """The Chrome trace-event JSON document for one tracer's run."""
    events: list[dict[str, Any]] = []
    lanes: list[tuple[int, int]] = []
    for s in sorted(tracer.spans, key=lambda s: (s.start_ns, s.span_id)):
        args: dict[str, Any] = dict(s.attributes)
        if s.parent_id is not None:
            args["parent_span"] = s.parent_id
        if s.error is not None:
            args["error"] = s.error
        pid = s.pid if s.pid is not None else tracer.pid
        lanes.append((pid, s.tid))
        events.append({
            "name": s.name,
            "cat": s.category,
            "ph": "X",
            "ts": s.start_ns / 1e3,       # microseconds
            "dur": s.duration_ns / 1e3,
            "pid": pid,
            "tid": s.tid,
            "args": args,
        })
    for e in sorted(tracer.events, key=lambda e: e.ts_ns):
        args = dict(e.attributes)
        if e.span_id is not None:
            args["span"] = e.span_id
        pid = e.pid if e.pid is not None else tracer.pid
        lanes.append((pid, 0))
        events.append({
            "name": e.name,
            "cat": e.category + EVENT_CATEGORY_SUFFIX,
            "ph": "i",
            "ts": e.ts_ns / 1e3,
            "s": "t",                     # thread-scoped instant
            "pid": pid,
            "tid": 0,
            "args": args,
        })
    events = _metadata_events(tracer, lanes) + events
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer), fh, indent=1)
        fh.write("\n")


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name to Prometheus charset."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    s = "".join(out)
    if s and s[0].isdigit():
        s = "_" + s
    return s or "_"


def _fmt(v: float) -> str:
    if isinstance(v, float) and v == float("inf"):
        return "+Inf"
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v) if isinstance(v, float) else str(v)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus exposition-format text for every metric, sorted."""
    lines: list[str] = []
    for name in registry.names():
        m = registry.get(name)
        pname = _prom_name(name)
        if m.help:
            lines.append(f"# HELP {pname} {m.help}")
        lines.append(f"# TYPE {pname} {m.kind}")
        if isinstance(m, Histogram):
            cum = 0
            for le, n in zip(m.buckets + (float("inf"),), m.counts):
                cum += n
                lines.append(
                    f'{pname}_bucket{{le="{_fmt(le)}"}} {cum}')
            lines.append(f"{pname}_sum {_fmt(m.total)}")
            lines.append(f"{pname}_count {m.count}")
            if m.count:
                # summary-style quantile estimates (bucket-interpolated)
                for q in (0.5, 0.95, 0.99):
                    lines.append(
                        f'{pname}{{quantile="{q}"}} {_fmt(m.quantile(q))}')
        else:
            lines.append(f"{pname} {_fmt(m.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_json(registry: MetricsRegistry) -> str:
    """JSON metrics dump (dotted names preserved)."""
    return json.dumps(registry.snapshot(), indent=1, sort_keys=True) + "\n"


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Write a metrics dump; ``.json`` gets JSON, anything else text."""
    body = (metrics_json(registry) if path.endswith(".json")
            else prometheus_text(registry))
    with open(path, "w") as fh:
        fh.write(body)


# ---------------------------------------------------------------------------
# structured event log (JSON lines)
# ---------------------------------------------------------------------------

def event_log_lines(tracer: Tracer) -> Iterator[str]:
    """Spans and events interleaved by timestamp, one JSON object each."""
    records: list[tuple[int, dict[str, Any]]] = []
    for s in tracer.spans:
        records.append((s.start_ns, {
            "type": "span",
            "name": s.name,
            "category": s.category,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "start_us": round(s.start_ns / 1e3, 3),
            "duration_us": round(s.duration_ns / 1e3, 3),
            "attributes": s.attributes,
            **({"error": s.error} if s.error else {}),
            **({"pid": s.pid} if s.pid is not None else {}),
        }))
    for e in tracer.events:
        records.append((e.ts_ns, {
            "type": "event",
            "name": e.name,
            "category": e.category,
            "span_id": e.span_id,
            "ts_us": round(e.ts_ns / 1e3, 3),
            "attributes": e.attributes,
        }))
    for _, rec in sorted(records, key=lambda r: r[0]):
        yield json.dumps(rec, sort_keys=True)


def write_event_log(tracer: Tracer, path: str) -> None:
    with open(path, "w") as fh:
        for line in event_log_lines(tracer):
            fh.write(line + "\n")
