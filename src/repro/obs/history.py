"""Continuous perf history: measure engines, append, compare, gate.

One :func:`measure_entry` call times the execution engines on the
standard benchmark workload (the scaled matrix multiply under the
duplicate-data strategy -- the same case whose floors are committed in
``BENCH_engine.json``) and produces a JSON-ready history entry.
Entries append to a JSON-lines history file (one run per line, newest
last), so a working tree accumulates a local perf timeline that
``repro perf`` renders with deltas against the committed baseline.

``repro perf --check`` turns the floors into a regression gate: if a
backend's speedup over the interpreter falls below its floor (from the
baseline file, overridable per backend with ``--floor``), the command
exits non-zero -- suitable for CI.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from time import perf_counter
from typing import Mapping, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry, current_registry

#: Default benchmark geometry -- matches ``benchmarks/bench_engine.py``
#: and the committed ``BENCH_engine.json`` baseline.
DEFAULT_N = 40
DEFAULT_REPEATS = 3
DEFAULT_HISTORY = "BENCH_history.jsonl"
DEFAULT_BASELINE = "BENCH_engine.json"
#: Fallback floors when no baseline file is available.  The
#: multiprocess floor assumes the shared-memory store (descriptor
#: leases, warm pool); it is checked only when the entry ran with one.
#: ``X_over_Y`` keys gate the *relative* speedup of backend X over
#: backend Y (the codegen tier must actually beat the compiled tier it
#: specializes past, not merely beat the interpreter).
DEFAULT_FLOORS = {"compiled": 5.0, "vectorized": 20.0,
                  "multiprocess": 2.0, "codegen": 25.0,
                  "codegen_over_compiled": 1.5}

BACKENDS = ("interp", "compiled", "codegen", "vectorized", "multiprocess")

PathLike = Union[str, Path]


def perf_env(workers: Optional[int] = None) -> dict:
    """The environment stamp attached to every perf entry.

    Perf numbers are meaningless without the machine context: the
    worker count and CPU count explain multiprocess scaling, the
    python/numpy/shm fields explain which tiers and lease paths were
    even available.
    """
    import os
    import platform

    from repro.runtime import numpy_compat as npc
    from repro.runtime.blockstore import shm_available

    return {
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": npc.have_numpy(),
        "shm": shm_available(),
    }


def matmul_nest(n: int = DEFAULT_N):
    """``C = C + A*B`` as a 3-deep nest (the benchmark workload)."""
    from repro.lang.parser import parse

    hi = n - 1
    return parse(
        f"""
        for i = 0 to {hi} {{
          for j = 0 to {hi} {{
            for k = 0 to {hi} {{
              C[i,j] = C[i,j] + A[i,k] * B[k,j];
            }} }} }}
        """,
        name=f"MATMUL{n}",
    )


def _run_once(backend: str, plan, initial) -> float:
    """One fresh-allocation run; returns engine-only seconds."""
    from repro.machine.memory import LocalMemory
    from repro.runtime.engine import get_engine
    from repro.runtime.parallel import ParallelResult

    engine = get_engine(backend)
    memories = {}
    for b in plan.blocks:
        mem = LocalMemory(pid=b.index, strict=True)
        for name, dblocks in plan.data_blocks.items():
            src = initial[name]
            mem.allocate(name, dblocks[b.index].elements,
                         init=lambda c, s=src: s[c])
        memories[b.index] = mem
    result = ParallelResult(
        plan=plan, memories=memories,
        block_to_pid={b.index: b.index for b in plan.blocks})
    t0 = perf_counter()
    engine.run_blocks(plan, memories, result, initial, {}, strict=True)
    return perf_counter() - t0


def measure_engine_runs(
    n: int = DEFAULT_N,
    repeats: int = DEFAULT_REPEATS,
    backends: Optional[Sequence[str]] = None,
) -> dict[str, list[float]]:
    """Per-backend run times (seconds, in order) on the matmul workload.

    The *first* run of each backend is its cold run: it pays one-time
    setup -- kernel emission/compilation (amortized further by the
    codegen tier's on-disk cache), plan geometry, pool warm-up -- that
    steady-state runs skip, so the list shape is what lets
    :func:`make_entry` report setup cost separately from per-run cost.
    ``vectorized`` is skipped when numpy is unavailable; the
    interpreter baseline runs at most twice (it is the slow tier).
    Multiprocess runs are measured against a warm persistent
    :class:`~repro.runtime.pool.WorkerPool`, matching how a
    :class:`~repro.api.Session` amortizes pool spawn across runs.
    """
    from repro.core.plan import build_plan
    from repro.core.strategy import Strategy
    from repro.runtime import numpy_compat as npc
    from repro.runtime.arrays import make_arrays
    from repro.runtime.pool import WorkerPool, use_pool

    plan = build_plan(matmul_nest(n), strategy=Strategy.DUPLICATE)
    initial = make_arrays(plan.model)
    runs: dict[str, list[float]] = {}
    pool = WorkerPool()
    try:
        with use_pool(pool):
            for backend in (backends if backends is not None else BACKENDS):
                if backend == "vectorized" and not npc.have_numpy():
                    continue
                reps = max(1, min(repeats, 2) if backend == "interp"
                           else repeats)
                runs[backend] = [_run_once(backend, plan, initial)
                                 for _ in range(reps)]
    finally:
        pool.shutdown()
    return runs


def measure_engines(
    n: int = DEFAULT_N,
    repeats: int = DEFAULT_REPEATS,
    backends: Optional[Sequence[str]] = None,
) -> dict[str, float]:
    """Best-of engine-only seconds per backend on the matmul workload."""
    return {b: min(r)
            for b, r in measure_engine_runs(n=n, repeats=repeats,
                                            backends=backends).items()}


def make_entry(times: Mapping[str, float], n: int, repeats: int,
               runs: Optional[Mapping[str, Sequence[float]]] = None) -> dict:
    """A JSON-ready history entry from measured times.

    ``runs`` (per-backend run lists, first run cold) adds the
    ``cold_ms`` / ``setup_ms`` breakdown: the one-time setup cost --
    codegen emit + compile on a cold cache, plan geometry, pool warm-up
    -- reported separately from the steady-state per-run ``ms``, so a
    warm on-disk kernel cache is *visible* as a shrunken setup column.
    """
    from repro.runtime.engine.multiproc import worker_count

    interp = times.get("interp")
    entry = {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "case": f"MATMUL{n}-dup",
        "n": n,
        "repeats": repeats,
        "env": perf_env(workers=worker_count(n)),
        "ms": {b: round(t * 1e3, 3) for b, t in sorted(times.items())},
        "speedup": ({b: round(interp / t, 2)
                     for b, t in sorted(times.items()) if b != "interp"}
                    if interp else {}),
    }
    if runs:
        entry["cold_ms"] = {b: round(r[0] * 1e3, 3)
                            for b, r in sorted(runs.items()) if r}
        entry["setup_ms"] = {
            b: round(max(0.0, r[0] - min(r)) * 1e3, 3)
            for b, r in sorted(runs.items()) if r}
    return entry


def measure_plan_latency(n: int = DEFAULT_N,
                         repeats: int = 5) -> tuple[dict, int]:
    """Plan-build latency stats (ms) and the plan's block count.

    Several back-to-back builds of the benchmark nest; later builds hit
    the content-addressed plan cache, so the distribution covers both
    the cold build and the cached serve path (the thing the
    ``plan-latency-p95`` SLO is actually about).  Quantiles are
    nearest-rank (the sample is tiny by construction).
    """
    import math

    from repro.core.plan import build_plan
    from repro.core.strategy import Strategy

    nest = matmul_nest(n)
    samples: list[float] = []
    nblocks = 0
    for _ in range(max(1, repeats)):
        t0 = perf_counter()
        plan = build_plan(nest, strategy=Strategy.DUPLICATE)
        samples.append((perf_counter() - t0) * 1e3)
        nblocks = len(plan.blocks)
    ordered = sorted(samples)

    def rank(q: float) -> float:
        return round(ordered[max(1, math.ceil(q * len(ordered))) - 1], 3)

    return ({"p50": rank(0.5), "p95": rank(0.95),
             "mean": round(sum(samples) / len(samples), 3),
             "runs": len(samples)}, nblocks)


def committed_obs_overhead(path: PathLike = "BENCH_obs.json") \
        -> Optional[float]:
    """The committed flight-recorder overhead fraction, or None.

    Read from ``BENCH_obs.json`` (written by
    ``benchmarks/bench_obs_overhead.py``) so the ``obs-overhead`` SLO
    evaluates against the measured, committed figure.
    """
    p = Path(path)
    if not p.exists():
        return None
    try:
        data = json.loads(p.read_text())
    except (json.JSONDecodeError, OSError):
        return None
    frac = (data.get("flight") or {}).get("overhead_fraction")
    return float(frac) if isinstance(frac, (int, float)) else None


def measure_entry(n: int = DEFAULT_N, repeats: int = DEFAULT_REPEATS,
                  registry: Optional[MetricsRegistry] = None) -> dict:
    """Measure and publish one history entry (``perf.*`` metrics).

    Beyond the per-backend times the entry carries the serving-side
    series the SLOs and the EWMA watchdog gate: ``plan_ms`` (plan-build
    latency stats), ``blocks_per_sec`` (multiprocess block throughput),
    ``obs_overhead_fraction`` (the committed flight-recorder tax) and
    the evaluated ``slo`` block itself.
    """
    from repro.obs.slo import evaluate_slos, slo_block

    runs = measure_engine_runs(n=n, repeats=repeats)
    entry = make_entry({b: min(r) for b, r in runs.items()}, n, repeats,
                       runs=runs)
    plan_ms, nblocks = measure_plan_latency(n=n)
    entry["plan_ms"] = plan_ms
    mp_ms = entry["ms"].get("multiprocess")
    if mp_ms:
        entry["blocks_per_sec"] = round(nblocks / (mp_ms / 1e3), 2)
    frac = committed_obs_overhead()
    if frac is not None:
        entry["obs_overhead_fraction"] = frac
    entry["serve"] = measure_serve_entry()
    entry["slo"] = slo_block(evaluate_slos(entry))
    reg = registry if registry is not None else current_registry()
    reg.inc("perf.runs")
    for backend, s in entry["speedup"].items():
        reg.set(f"perf.speedup.{backend}", s)
    if "blocks_per_sec" in entry:
        reg.set("perf.blocks_per_sec", entry["blocks_per_sec"])
    if "plans_per_sec" in entry["serve"]:
        reg.set("perf.serve.plans_per_sec",
                entry["serve"]["plans_per_sec"])
    return entry


def measure_serve_entry(requests: int = 30, bursts: int = 3) -> dict:
    """One small in-process serving burst: the ``entry["serve"]`` block.

    Mixed plan/verify traffic against an :class:`~repro.serve.server.
    AsyncServer` measures warm request throughput (``plans_per_sec``,
    the series the EWMA watchdog tracks) and latency quantiles from
    the ``serve.latency_ms`` histogram -- the same shape
    ``benchmarks/bench_serve.py`` records floors for.
    """
    import asyncio

    from repro.serve import AsyncServer
    from repro.serve.protocol import Request

    cases = [("plan", "L1"), ("verify", "L2"), ("plan", "L2")]
    per_burst = max(1, requests // bursts)

    async def drive(srv: AsyncServer):
        t0 = perf_counter()
        ok = total = 0
        for burst in range(bursts):
            frames = []
            for i in range(per_burst):
                op, nest = cases[i % len(cases)]
                frames.append(Request(op=op, nest=nest,
                                      strategy="duplicate",
                                      id=f"p{burst}-{i}").to_dict())
            responses = await asyncio.gather(
                *[srv.handle(f) for f in frames])
            total += len(responses)
            ok += sum(1 for r in responses if r["ok"])
        return ok, total, perf_counter() - t0

    with AsyncServer(max_concurrency=4, queue_limit=64) as srv:
        ok, total, wall = asyncio.run(drive(srv))
        lat = srv.registry.get("serve.latency_ms")
        coalesced = int(srv.registry.value("serve.coalesced"))
    block = {
        "requests": total,
        "ok": ok,
        "coalesced": coalesced,
        "wall_ms": round(wall * 1e3, 1),
    }
    if wall > 0 and ok:
        block["plans_per_sec"] = round(ok / wall, 2)
    if lat is not None and lat.count:
        block["p50_ms"] = round(lat.quantile(0.50), 3)
        block["p95_ms"] = round(lat.quantile(0.95), 3)
        block["p99_ms"] = round(lat.quantile(0.99), 3)
    return block


# ---------------------------------------------------------------------------
# history file + baseline comparison
# ---------------------------------------------------------------------------

def append_history(entry: dict, path: PathLike = DEFAULT_HISTORY) -> int:
    """Append one entry to the JSON-lines history; returns the new length."""
    p = Path(path)
    with p.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return sum(1 for line in p.read_text().splitlines() if line.strip())


def load_history(path: PathLike = DEFAULT_HISTORY) -> list[dict]:
    p = Path(path)
    if not p.exists():
        return []
    return [json.loads(line) for line in p.read_text().splitlines()
            if line.strip()]


def load_baseline(path: PathLike = DEFAULT_BASELINE) -> Optional[dict]:
    """The committed baseline: ``{"floors": ..., "speedup": ...}``.

    Reads ``BENCH_engine.json`` and extracts the matmul case matching
    its recorded ``matmul_n``; returns ``None`` when no baseline file
    exists (deltas are then omitted and floors fall back to
    :data:`DEFAULT_FLOORS`).
    """
    p = Path(path)
    if not p.exists():
        return None
    data = json.loads(p.read_text())
    case = f"MATMUL{data.get('matmul_n', DEFAULT_N)}-dup"
    row = data.get("cases", {}).get(case, {})
    return {
        "case": case,
        "floors": data.get("floors", dict(DEFAULT_FLOORS)),
        "speedup": row.get("speedup", {}),
        "ms": row.get("ms", {}),
    }


def check_floors(entry: dict, floors: Mapping[str, float]) -> list[str]:
    """Regression failures: backends whose speedup fell below the floor.

    A floored backend missing from the entry entirely (e.g. vectorized
    without numpy) is skipped -- absence is an environment limitation,
    not a regression.  The multiprocess floor is likewise skipped when
    the entry's environment stamp says the shared-memory store was off
    (``REPRO_NO_SHM`` / no numpy): the floor is a commitment about the
    zero-copy path, and the by-value fallback is dominated by pickling.

    ``X_over_Y`` floor keys gate the ratio of backend X's speedup over
    backend Y's (equivalently Y's ms over X's) and are skipped when
    either backend is missing from the entry.
    """
    failures = []
    env = entry.get("env", {})
    ms = entry.get("ms", {})
    for backend, floor in sorted(floors.items()):
        if "_over_" in backend:
            num, _, den = backend.partition("_over_")
            if num not in ms or den not in ms or not ms[num]:
                continue
            ratio = round(ms[den] / ms[num], 2)
            if ratio < floor:
                failures.append(
                    f"{num}: only {ratio}x over {den} (floor {floor}x)")
            continue
        got = entry.get("speedup", {}).get(backend)
        if got is None:
            continue
        if backend == "multiprocess" and not env.get("shm", True):
            continue
        if got < floor:
            failures.append(f"{backend}: {got}x < floor {floor}x")
    return failures


def render_perf_table(entry: dict, baseline: Optional[dict],
                      floors: Mapping[str, float]) -> str:
    """The ``repro perf`` table: ms, setup, speedup, delta, floor.

    The ``setup ms`` column (cold first run minus steady-state best)
    appears when the entry carries per-run data; a warm on-disk kernel
    cache shows up directly as a near-zero codegen setup cost.
    """
    setup = entry.get("setup_ms") or {}
    header = f"{'backend':<14} {'best ms':>10} "
    if setup:
        header += f"{'setup ms':>9} "
    header += f"{'speedup':>8} {'baseline':>9} {'delta':>7} " \
              f"{'floor':>6}  status"
    lines = [header]
    base_speedup = (baseline or {}).get("speedup", {})

    def setup_col(backend):
        if not setup:
            return ""
        su = setup.get(backend)
        return f"{su:>9.3f} " if su is not None else f"{'-':>9} "

    for backend in sorted(entry["ms"]):
        ms = entry["ms"][backend]
        if backend == "interp":
            lines.append(f"{backend:<14} {ms:>10.3f} {setup_col(backend)}"
                         f"{'1.0':>8} {'-':>9} {'-':>7} {'-':>6}  baseline")
            continue
        s = entry["speedup"].get(backend)
        base = base_speedup.get(backend)
        delta = f"{s - base:+.1f}" if base is not None else "-"
        floor = floors.get(backend)
        if floor is not None and s < floor:
            status = f"REGRESSION (< {floor}x)"
        else:
            status = "ok"
        lines.append(
            f"{backend:<14} {ms:>10.3f} {setup_col(backend)}{s:>8.1f} "
            f"{base if base is not None else '-':>9} {delta:>7} "
            f"{floor if floor is not None else '-':>6}  {status}")
    return "\n".join(lines)
