"""In-tree JSON schema check for emitted Chrome trace-event files.

No external jsonschema dependency: :data:`CHROME_TRACE_SCHEMA` is the
schema document (kept for reference and for external validators), and
:func:`validate_chrome_trace` enforces it directly.  The CI smoke job
runs ``python -m repro.obs.schema trace.json`` on a trace produced by
``repro report --trace`` and fails on any violation.
"""

from __future__ import annotations

import json
import sys
from typing import Any

#: JSON Schema (draft-07 subset) for the documents we emit.
CHROME_TRACE_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "cat", "ph", "ts", "pid", "tid"],
                "properties": {
                    "name": {"type": "string", "minLength": 1},
                    "cat": {"type": "string", "minLength": 1},
                    "ph": {"enum": ["X", "i", "M"]},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"enum": ["ms", "ns"]},
    },
}


def validate_chrome_trace(doc: Any) -> list[str]:
    """Every schema violation in ``doc``, as human-readable strings."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["top level: expected an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents: missing or not an array"]
    unit = doc.get("displayTimeUnit")
    if unit is not None and unit not in ("ms", "ns"):
        errors.append(f"displayTimeUnit: invalid value {unit!r}")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: expected an object")
            continue
        for key, typ in (("name", str), ("cat", str)):
            v = ev.get(key)
            if not isinstance(v, typ) or not v:
                errors.append(f"{where}.{key}: missing or empty")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            errors.append(f"{where}.ph: invalid phase {ph!r}")
        if ph == "M":
            args = ev.get("args")
            if not (isinstance(args, dict)
                    and isinstance(args.get("name"), str)):
                errors.append(
                    f"{where}.args: metadata events need args.name")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"{where}.ts: missing or negative")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                    or dur < 0:
                errors.append(f"{where}.dur: complete events need dur >= 0")
        for key in ("pid", "tid"):
            v = ev.get(key)
            if not isinstance(v, int) or isinstance(v, bool):
                errors.append(f"{where}.{key}: missing or not an integer")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}.args: not an object")
    return errors


def main(argv=None) -> int:
    """``python -m repro.obs.schema trace.json [...]`` -> 0 iff all valid."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.obs.schema TRACE.json [...]",
              file=sys.stderr)
        return 2
    bad = 0
    for path in argv:
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            bad += 1
            continue
        errors = validate_chrome_trace(doc)
        if errors:
            bad += 1
            for e in errors:
                print(f"{path}: {e}", file=sys.stderr)
        else:
            n = len(doc["traceEvents"])
            print(f"{path}: valid chrome trace ({n} events)")
    return 1 if bad else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
