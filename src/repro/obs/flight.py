"""The always-on flight recorder: a bounded black-box ring buffer.

The tracer (:mod:`repro.obs.trace`) records everything but only when a
run opts in (``--trace``); a crashed, hung, or chaos-aborted run that
never opted in tells you nothing.  The flight recorder is the inverse
trade: it is *always on*, it records only coarse occurrences (spans at
pass/engine/scheduler granularity, lease transitions, pool lifecycle,
errors -- never per-iteration or per-block work), and it keeps only the
last ``capacity`` entries in a ring (``collections.deque(maxlen=...)``),
so steady-state cost is one tuple append per coarse event and memory is
bounded regardless of run length.  ``benchmarks/bench_obs_overhead.py``
enforces that the recording tax stays under 2% of a real workload.

When something dies, the ring is **dumped**: the scheduler dumps on
:class:`~repro.runtime.scheduler.SchedulerError` and
:class:`~repro.runtime.scheduler.PoolCollapse`, ``repro chaos`` dumps on
a failed recovery certification, and the CLI driver dumps on any
unhandled exception.  A dump is a ``repro-blackbox-<pid>-<stamp>.json``
file holding the surviving entries, the final metrics snapshot of the
current registry (the run's metric deltas), and any extra payload the
dump site attaches (the scheduler attaches its lease timeline).
``repro blackbox [FILE]`` renders the newest dump -- last N spans and
events, the lease timeline, the final metric deltas -- so a post-mortem
needs no re-run and no foresight.

Knobs: ``REPRO_FLIGHT=0`` disables recording entirely,
``REPRO_FLIGHT_CAPACITY`` resizes the ring (default 4096), and
``REPRO_BLACKBOX_DIR`` redirects dumps (default: the working
directory).
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path
from typing import Any, Optional

#: Disable knob: ``REPRO_FLIGHT=0`` turns recording off.
FLIGHT_ENV_VAR = "REPRO_FLIGHT"
#: Ring capacity override (entries).
CAPACITY_ENV_VAR = "REPRO_FLIGHT_CAPACITY"
#: Directory for blackbox dumps (default: cwd).
BLACKBOX_DIR_ENV_VAR = "REPRO_BLACKBOX_DIR"

DEFAULT_CAPACITY = 4096
#: Dump filename prefix; ``repro blackbox`` globs on this.
BLACKBOX_PREFIX = "repro-blackbox-"

#: Entry kinds -- the renderer groups on these.
SPAN = "span"
EVENT = "event"
LEASE = "lease"
METRIC = "metric"
ERROR = "error"


class _FlightSpan:
    """Context manager recording one coarse region into the ring."""

    __slots__ = ("_rec", "_name", "_payload", "_t0")

    def __init__(self, rec: "FlightRecorder", name: str,
                 payload: Optional[dict]) -> None:
        self._rec = rec
        self._name = name
        self._payload = payload

    def __enter__(self) -> "_FlightSpan":
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        payload = dict(self._payload) if self._payload else {}
        payload["dur_us"] = round(
            (time.perf_counter_ns() - self._t0) / 1e3, 1)
        if exc_type is not None:
            payload["error"] = f"{exc_type.__name__}: {exc}"
        self._rec.record(SPAN, self._name, **payload)
        return False


class _NullFlightSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullFlightSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_FLIGHT_SPAN = _NullFlightSpan()


class FlightRecorder:
    """A bounded ring of coarse occurrences, dumpable on failure.

    Entries are plain tuples ``(ts_ns, kind, name, payload)`` with
    ``payload`` either ``None`` or a small dict -- cheap to append,
    trivially JSON-able at dump time.  Timestamps are monotonic,
    anchored to the recorder's creation (same convention as the
    tracer), so entry times read as run-relative offsets.
    """

    def __init__(self, capacity: Optional[int] = None,
                 enabled: Optional[bool] = None) -> None:
        if capacity is None:
            capacity = int(os.environ.get(CAPACITY_ENV_VAR,
                                          DEFAULT_CAPACITY))
        if enabled is None:
            enabled = os.environ.get(FLIGHT_ENV_VAR, "1") != "0"
        self.enabled = enabled
        self.capacity = max(16, capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        self._epoch_ns = time.perf_counter_ns()
        self.pid = os.getpid()
        self.dumps = 0

    # -- recording --------------------------------------------------------
    def record(self, kind: str, name: str, **payload: Any) -> None:
        """Append one occurrence; near-free, never raises."""
        if not self.enabled:
            return
        self._ring.append((time.perf_counter_ns() - self._epoch_ns,
                           kind, name, payload or None))

    def span(self, name: str, **payload: Any):
        """A coarse timed region (use at pass/engine/run granularity)."""
        if not self.enabled:
            return _NULL_FLIGHT_SPAN
        return _FlightSpan(self, name, payload or None)

    def error(self, name: str, exc: BaseException, **payload: Any) -> None:
        self.record(ERROR, name,
                    exc=f"{type(exc).__name__}: {exc}", **payload)

    # -- queries ----------------------------------------------------------
    def entries(self) -> list[tuple]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    # -- dumping ----------------------------------------------------------
    def to_doc(self, reason: str, extra: Optional[dict] = None,
               registry=None) -> dict:
        """The JSON blackbox document (entries + final metric deltas)."""
        from repro.obs.metrics import current_registry

        reg = registry if registry is not None else current_registry()
        return {
            "blackbox": 1,
            "reason": reason,
            "pid": self.pid,
            "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "capacity": self.capacity,
            "entries": [
                {"t_us": round(ts / 1e3, 1), "kind": kind, "name": name,
                 **({"data": payload} if payload else {})}
                for ts, kind, name, payload in self._ring
            ],
            "metrics": reg.snapshot(),
            **(extra or {}),
        }

    def dump(self, reason: str, path: Optional[str] = None,
             extra: Optional[dict] = None, registry=None) -> Optional[str]:
        """Write the blackbox; returns the path (None when disabled).

        Never raises: a post-mortem writer that throws would mask the
        failure it is documenting.
        """
        if not self.enabled:
            return None
        try:
            if path is None:
                stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
                name = f"{BLACKBOX_PREFIX}{self.pid}-{stamp}-{self.dumps}.json"
                path = str(Path(blackbox_dir()) / name)
            doc = self.to_doc(reason, extra=extra, registry=registry)
            tmp = f"{path}.tmp.{self.pid}"
            with open(tmp, "w") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
            self.dumps += 1
            return path
        except Exception:  # pragma: no cover - defensive post-mortem path
            return None


def blackbox_dir() -> str:
    """Where dumps land (``REPRO_BLACKBOX_DIR`` or the cwd)."""
    return os.environ.get(BLACKBOX_DIR_ENV_VAR) or os.getcwd()


#: The process-wide recorder every instrumented site feeds.
FLIGHT = FlightRecorder()


def flight() -> FlightRecorder:
    """The process-wide flight recorder."""
    return FLIGHT


def dump_blackbox(reason: str, extra: Optional[dict] = None) -> Optional[str]:
    """Dump the process recorder; announce the path on stderr.

    The one-liner failure paths call (scheduler, chaos certifier, CLI
    driver).  Returns the path, or ``None`` when recording is off.
    """
    import sys

    path = FLIGHT.dump(reason, extra=extra)
    if path:
        # deliberately NOT the "repro: <reason>" prefix: that line is
        # the CLI's single machine-greppable failure reason, and this
        # notice must not masquerade as a second one
        print(f"repro blackbox dumped to {path} ({reason})",
              file=sys.stderr)
    return path


# ---------------------------------------------------------------------------
# reading + rendering (the `repro blackbox` subcommand)
# ---------------------------------------------------------------------------

def latest_blackbox(directory: Optional[str] = None) -> Optional[str]:
    """The newest ``repro-blackbox-*.json`` in ``directory`` (or cwd)."""
    d = Path(directory or blackbox_dir())
    dumps = sorted(d.glob(f"{BLACKBOX_PREFIX}*.json"),
                   key=lambda p: p.stat().st_mtime)
    return str(dumps[-1]) if dumps else None


def load_blackbox(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("blackbox") != 1:
        raise ValueError(f"{path}: not a repro blackbox dump")
    return doc


def _fmt_payload(data: dict) -> str:
    return " ".join(f"{k}={v}" for k, v in sorted(data.items()))


def render_blackbox(doc: dict, last: int = 40) -> str:
    """The post-mortem dashboard: tail of the ring, lease timeline,
    final metric deltas."""
    lines = [
        f"blackbox: {doc.get('reason', '?')}",
        f"pid {doc.get('pid', '?')}  dumped {doc.get('ts', '?')}  "
        f"ring {len(doc.get('entries', []))}/{doc.get('capacity', '?')} "
        f"entries",
    ]
    entries = doc.get("entries", [])

    # -- the tail of the ring ---------------------------------------------
    tail = entries[-last:]
    lines.append("")
    lines.append(f"last {len(tail)} entries (of {len(entries)} kept):")
    for e in tail:
        data = e.get("data") or {}
        extra = f"  {_fmt_payload(data)}" if data else ""
        lines.append(f"  {e['t_us'] / 1e3:>10.1f}ms  {e['kind']:<7} "
                     f"{e['name']}{extra}")

    # -- lease timeline ----------------------------------------------------
    leases = [e for e in entries if e["kind"] == LEASE]
    sched = doc.get("scheduler")
    if sched and sched.get("leases"):
        lines.append("")
        lines.append(f"lease timeline ({sched['completed_units']}/"
                     f"{sched['units']} units recovered, "
                     f"{sched['retries']} retries, "
                     f"{sched['respawns']} respawns):")
        for rec in sched["leases"]:
            fault = f" fault={rec['fault']}" if rec.get("fault") else ""
            lines.append(
                f"  unit {rec['unit']:>3} attempt {rec['attempt']} "
                f"[{rec['start_ms']:>9.1f}ms .. {rec['end_ms']:>9.1f}ms] "
                f"{rec['outcome']}{fault}")
    elif leases:
        lines.append("")
        lines.append(f"lease transitions ({len(leases)}):")
        for e in leases:
            data = e.get("data") or {}
            lines.append(f"  {e['t_us'] / 1e3:>10.1f}ms  {e['name']}  "
                         f"{_fmt_payload(data)}")

    # -- final metric deltas ----------------------------------------------
    metrics = doc.get("metrics") or {}
    if metrics:
        lines.append("")
        lines.append(f"final metric deltas ({len(metrics)} metrics):")
        for name in sorted(metrics):
            m = metrics[name]
            if m.get("kind") == "histogram":
                lines.append(
                    f"  {name}: count={m['count']} sum={m['sum']:.6g} "
                    f"p95={m['p95'] if m['p95'] is not None else '-'}")
            else:
                lines.append(f"  {name}: {m.get('value')}")
    errors = [e for e in entries if e["kind"] == ERROR]
    lines.append("")
    lines.append(f"errors recorded: {len(errors)}")
    for e in errors[-5:]:
        data = e.get("data") or {}
        lines.append(f"  {e['t_us'] / 1e3:>10.1f}ms  {e['name']}  "
                     f"{data.get('exc', '')}")
    return "\n".join(lines)
