"""Unified observability: structured tracing, metrics, exporters.

One subsystem sees a whole run end-to-end -- compile (pipeline passes,
plan-cache lookups), execute (engine resolution, per-block runs), and
simulate (machine distribution/compute phases):

- :mod:`~repro.obs.trace`: the hierarchical span tracer with a
  null-recorder fast path (disabled by default; near-zero overhead,
  enforced by ``benchmarks/bench_obs_overhead.py``);
- :mod:`~repro.obs.metrics`: the counters/gauges/histograms registry
  that absorbs the ``Instrumentation`` / ``ParallelResult`` /
  ``MachineStats`` counter systems behind one API;
- :mod:`~repro.obs.export`: Chrome trace-event JSON (Perfetto-viewable),
  Prometheus-style text, JSON metrics dumps and a JSON-lines event log;
- :mod:`~repro.obs.hooks`: the ``PipelineHooks`` adapter mirroring pass
  boundaries and diagnostics into the tracer;
- :mod:`~repro.obs.schema`: the in-tree Chrome-trace schema check
  (``python -m repro.obs.schema trace.json``), used by CI;
- :mod:`~repro.obs.aggregate`: cross-process re-homing of worker
  tracers/registries (per-worker Chrome-trace lanes, merged counters);
- :mod:`~repro.obs.audit`: the communication audit -- static access
  replay, per-block footprints, violation attribution (Definition 1's
  ``r`` vectors), engine reconciliation, and the ASCII dashboard behind
  ``repro audit``;
- :mod:`~repro.obs.history`: the JSON-lines perf history and
  floor-gated regression check behind ``repro perf``;
- :mod:`~repro.obs.flight`: the always-on bounded flight recorder,
  dumped to a ``repro-blackbox-*.json`` post-mortem on failure and
  rendered by ``repro blackbox``;
- :mod:`~repro.obs.profile`: the thread-based sampling profiler behind
  ``--profile`` (collapsed-stack flamegraphs, Chrome sample tracks,
  per-subsystem attribution);
- :mod:`~repro.obs.top`: the periodic run-snapshot writer and the live
  ``repro top`` dashboard;
- :mod:`~repro.obs.slo`: declarative SLOs and the EWMA regression
  watchdog behind ``repro perf --check``.

Every CLI subcommand accepts ``--trace FILE``, ``--metrics``,
``--metrics-out FILE``, ``--events FILE`` and ``--profile FILE``; see
``docs/OBSERVABILITY.md`` for the full knob reference.
"""

from repro.obs.aggregate import WorkerObs, capture_worker_obs, merge_worker_obs
from repro.obs.audit import (
    AccessFootprint,
    AuditReport,
    AuditViolation,
    EngineAuditRun,
    audit_plan,
    inject_violation,
    render_audit_dashboard,
)
from repro.obs.export import (
    chrome_trace,
    event_log_lines,
    metrics_json,
    prometheus_text,
    write_chrome_trace,
    write_event_log,
    write_metrics,
)
from repro.obs.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    use_registry,
)
from repro.obs.history import (
    append_history,
    check_floors,
    load_baseline,
    load_history,
    measure_entry,
)
from repro.obs.flight import (
    FlightRecorder,
    dump_blackbox,
    flight,
    latest_blackbox,
    load_blackbox,
    render_blackbox,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.schema import CHROME_TRACE_SCHEMA, validate_chrome_trace
from repro.obs.slo import SLO, SLOResult, comm_optimality, evaluate_slos, watchdog
from repro.obs.top import SnapshotWriter, current_writer, render_top, run_top
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    Event,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "Tracer",
    "Span",
    "Event",
    "NULL_SPAN",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS",
    "current_registry",
    "use_registry",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "metrics_json",
    "write_metrics",
    "event_log_lines",
    "write_event_log",
    "CHROME_TRACE_SCHEMA",
    "validate_chrome_trace",
    "WorkerObs",
    "capture_worker_obs",
    "merge_worker_obs",
    "AccessFootprint",
    "AuditReport",
    "AuditViolation",
    "EngineAuditRun",
    "audit_plan",
    "inject_violation",
    "render_audit_dashboard",
    "measure_entry",
    "append_history",
    "load_history",
    "load_baseline",
    "check_floors",
    "FlightRecorder",
    "flight",
    "dump_blackbox",
    "latest_blackbox",
    "load_blackbox",
    "render_blackbox",
    "SamplingProfiler",
    "SnapshotWriter",
    "current_writer",
    "render_top",
    "run_top",
    "SLO",
    "SLOResult",
    "evaluate_slos",
    "watchdog",
    "comm_optimality",
]
