"""The unified metrics registry: counters, gauges, histograms.

One registry absorbs the three counter systems that grew independently
-- :class:`~repro.pipeline.instrument.Instrumentation` (pass timings,
cache counters), :class:`~repro.runtime.parallel.ParallelResult`
(remote accesses, loads, memory words) and
:class:`~repro.machine.machine.MachineStats` (makespan, per-processor
costs) -- behind one API.  Those classes keep their public fields; they
additionally *publish* into the current registry, so one run can be
read end-to-end (compile, execute, simulate) from a single snapshot.

Metric names are dotted (``runtime.remote_accesses``); the Prometheus
exporter sanitizes them.  Conventions:

- counters accumulate over the registry's lifetime (``cache.hit``);
- gauges hold the *most recent* observation (``runtime.remote_accesses``
  is the last parallel run's count, exactly equal to
  ``ParallelResult.remote_accesses``);
- histograms record count/sum/min/max plus fixed log-spaced buckets
  (pass wall times land in ``pipeline.pass.seconds.<name>``).

Notable families: ``engine.shm.*`` (the shared-memory block store:
``stores`` / ``attaches`` / ``unlinks`` counters, ``bytes`` gauge) and
``engine.pool.*`` (worker-pool lifecycle: ``spawns`` / ``reuses``
counters, ``workers`` gauge) instrument the zero-copy multiprocess
path; ``engine.multiproc.single_block`` counts the expected in-process
fast path for one-block plans, distinct from
``engine.multiproc.degraded``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.ctxstack import ScopeStack

#: Log-spaced histogram bucket upper bounds, in the metric's own unit
#: (seconds for timings): 1us .. 100s.
DEFAULT_BUCKETS = tuple(10.0 ** e for e in range(-6, 3))

#: Raw observations retained per histogram for exact small-sample
#: quantiles.  While ``count <= SAMPLE_CAP`` every observation is still
#: held, so quantiles are exact nearest-rank values; past the cap the
#: histogram falls back to bucket interpolation (which is where the
#: interpolation error is amortized away by volume anyway).
SAMPLE_CAP = 64


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    help: str = ""
    value: Union[int, float] = 0

    kind = "counter"

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += n


@dataclass
class Gauge:
    """Last observed value (may go up or down)."""

    name: str
    help: str = ""
    value: float = 0.0

    kind = "gauge"

    def set(self, v: float) -> None:
        self.value = v

    def inc(self, n: float = 1) -> None:
        self.value += n


@dataclass
class Histogram:
    """Count/sum/min/max plus fixed cumulative buckets."""

    name: str
    help: str = ""
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    samples: list[float] = field(default_factory=list)

    kind = "histogram"

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # +inf bucket

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if len(self.samples) < SAMPLE_CAP:
            self.samples.append(v)
        for i, le in enumerate(self.buckets):
            if v <= le:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def value(self) -> float:
        """Snapshot scalar: the running sum (see :meth:`MetricsRegistry.value`)."""
        return self.total

    @property
    def exact(self) -> bool:
        """True while every observation is still retained in
        ``samples`` -- quantiles are exact nearest-rank values."""
        return 0 < self.count <= len(self.samples)

    def quantile(self, q: float) -> float:
        """Quantile estimate: exact nearest-rank on small samples,
        bucket-interpolated (Prometheus-style) past ``SAMPLE_CAP``.

        With few observations, interpolating inside a log-spaced bucket
        is badly wrong (a single 5ms pass in the 1..10ms bucket used to
        report p95 near the bucket midpoint, not 5ms); while every raw
        value is still retained the nearest-rank value is returned
        instead, which is exact.  For large counts the target rank is
        located in the cumulative bucket counts and the value
        interpolated linearly within that bucket; the open ends are
        clamped to the observed ``min``/``max``, so ``q=0`` and ``q=1``
        are exact and every estimate stays inside the observed range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        if self.exact:
            ordered = sorted(self.samples)
            rank = max(1, math.ceil(q * self.count))  # nearest-rank
            return ordered[rank - 1]
        target = q * self.count
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            prev = cum
            cum += n
            if cum >= target:
                lo = self.min if i == 0 else self.buckets[i - 1]
                hi = self.max if i >= len(self.buckets) else self.buckets[i]
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                frac = (target - prev) / n
                return lo + (hi - lo) * frac
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same buckets) into this one.

        Used when re-absorbing per-worker registries after a
        multiprocess fan-out (:mod:`repro.obs.aggregate`).
        """
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name}: bucket mismatch on merge")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        self.samples = (self.samples + other.samples)[:SAMPLE_CAP]
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of metrics with create-on-first-use helpers."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    # -- creation ---------------------------------------------------------
    def _get_or_make(self, name: str, cls, help: str = "") -> Metric:
        m = self._metrics.get(name)
        if m is None:
            with self._lock:
                m = self._metrics.get(name)
                if m is None:
                    m = cls(name=name, help=help)
                    self._metrics[name] = m
        if not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} already registered as {m.kind}")
        return m

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_make(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_make(name, Gauge, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_make(name, Histogram, help)

    # -- one-line recording helpers ---------------------------------------
    def inc(self, name: str, n: Union[int, float] = 1) -> None:
        self.counter(name).inc(n)

    def set(self, name: str, v: float) -> None:
        self.gauge(name).set(v)

    def observe(self, name: str, v: float) -> None:
        self.histogram(name).observe(v)

    # -- queries ----------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0) -> Union[int, float]:
        m = self._metrics.get(name)
        return default if m is None else m.value

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of every metric, sorted by name."""
        out: dict[str, Any] = {}
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Histogram):
                out[name] = {
                    "kind": m.kind,
                    "count": m.count,
                    "sum": m.total,
                    "min": None if m.count == 0 else m.min,
                    "max": None if m.count == 0 else m.max,
                    "mean": m.mean,
                    "p50": None if m.count == 0 else m.quantile(0.50),
                    "p95": None if m.count == 0 else m.quantile(0.95),
                    "p99": None if m.count == 0 else m.quantile(0.99),
                    "quantile_method": ("exact" if m.exact
                                        else "bucket-interpolated"),
                }
            else:
                out[name] = {"kind": m.kind, "value": m.value}
        return out

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()


#: Process-wide default registry.  Unlike the tracer there is no null
#: tier: metric updates are cheap, never per-iteration, and a default
#: live registry means library callers can always read one.
METRICS = MetricsRegistry()

_registry_stack = ScopeStack(METRICS)


def current_registry() -> MetricsRegistry:
    """The registry instrumented call sites publish to.

    Per-thread: a scope entered on one thread (a daemon worker running
    one request) is invisible to every other thread, which keeps
    concurrent requests from publishing into each other's registries.
    """
    return _registry_stack.top(METRICS)


def use_registry(registry: MetricsRegistry):
    """Scope the active registry (e.g. per CLI command or request)."""
    return _registry_stack.scoped(registry)
