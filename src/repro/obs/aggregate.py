"""Cross-process observability aggregation.

Multiprocess workers run in their own interpreters: spans recorded
there and counters published there used to die with the worker.  This
module defines the picklable carrier (:class:`WorkerObs`) a worker
fills from its scoped :class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry`, and the parent-side merge
that re-homes everything into the live recorders:

- span/event ids are remapped through freshly reserved parent ids, so
  adopted spans never collide with local ones;
- each span keeps its worker ``pid`` (and worker-local ``tid``), so the
  Chrome trace export renders one lane per worker process;
- worker timestamps are worker-epoch-relative; the caller supplies the
  parent-clock offset (the fan-out span's start), which places worker
  activity inside the fan-out region of the parent timeline.  Offsets
  affect *placement* only -- durations and counts are exact;
- counters accumulate, gauges take the last worker's observation, and
  histograms merge bucket-wise
  (:meth:`~repro.obs.metrics.Histogram.merge`), so parent-side totals
  equal the sum over worker lanes.

Both lease flavors ship the same carrier: by-value workers record
``engine.block`` spans with ``backend="compiled"``, shared-memory store
workers with ``backend="shm"`` (plus ``engine.shm.attaches`` on their
first attach), so a Chrome trace distinguishes the zero-copy path at a
glance while the aggregation machinery stays identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import Counter, Gauge, Histogram, Metric, MetricsRegistry
from repro.obs.trace import Event, Span, Tracer


@dataclass
class WorkerObs:
    """One worker's observability delta, picklable across the pool."""

    pid: int
    spans: list[Span] = field(default_factory=list)
    events: list[Event] = field(default_factory=list)
    metrics: list[Metric] = field(default_factory=list)


def capture_worker_obs(tracer: Tracer, registry: MetricsRegistry) -> WorkerObs:
    """Snapshot a worker's recorders into a :class:`WorkerObs`.

    Span/Event/metric dataclasses carry only plain values, so the
    snapshot pickles through the process pool as-is.
    """
    return WorkerObs(
        pid=tracer.pid,
        spans=list(tracer.spans),
        events=list(tracer.events),
        metrics=[registry.get(name) for name in registry.names()],
    )


def merge_worker_obs(
    tracer: Tracer,
    registry: MetricsRegistry,
    obs: WorkerObs,
    ts_offset_ns: int = 0,
    parent_span_id: Optional[int] = None,
) -> None:
    """Merge one worker's delta into the parent recorders.

    Metrics always merge (the registry has no disabled tier); spans and
    events merge only when the parent tracer records.  Worker root
    spans are re-parented under ``parent_span_id`` (the fan-out span).
    """
    for m in obs.metrics:
        if isinstance(m, Counter):
            registry.counter(m.name, m.help).inc(m.value)
        elif isinstance(m, Histogram):
            registry.histogram(m.name, m.help).merge(m)
        elif isinstance(m, Gauge):
            registry.gauge(m.name, m.help).set(m.value)

    if not tracer.enabled:
        return
    idmap: dict[int, int] = {}
    base = tracer.reserve_ids(len(obs.spans))
    for i, s in enumerate(obs.spans):
        idmap[s.span_id] = base + i
    with tracer._lock:
        for s in obs.spans:
            tracer.spans.append(Span(
                name=s.name,
                category=s.category,
                span_id=idmap[s.span_id],
                parent_id=(idmap[s.parent_id] if s.parent_id in idmap
                           else parent_span_id),
                start_ns=s.start_ns + ts_offset_ns,
                duration_ns=s.duration_ns,
                attributes=dict(s.attributes),
                tid=s.tid,
                error=s.error,
                pid=obs.pid,
            ))
        for e in obs.events:
            tracer.events.append(Event(
                name=e.name,
                category=e.category,
                ts_ns=e.ts_ns + ts_offset_ns,
                span_id=(idmap[e.span_id] if e.span_id in idmap else None),
                attributes=dict(e.attributes),
                pid=obs.pid,
            ))
