"""Declarative SLOs and the EWMA regression watchdog.

The perf harness (:mod:`repro.obs.history`) gates *speedups* against
committed floors -- a strong but narrow contract.  This module adds the
serving-side contracts the ROADMAP's batch-serving work needs:

- :class:`SLO` -- one declarative objective over a perf-history entry:
  a dotted metric path, a direction (``min``/``max``) and a threshold.
  The defaults cover p95 plan-build latency, multiprocess block
  throughput, and the committed observability overhead fraction;
  ``repro perf --slo FILE`` loads additional specs from JSON;
- :func:`evaluate_slos` -- per-run evaluation; results are stamped into
  the entry (``entry["slo"]``) before it is appended to
  ``BENCH_history.jsonl``, so the history carries its own
  pass/fail record;
- :func:`watchdog` -- the EWMA regression watchdog: for each watched
  series (per-backend speedups, blocks/sec) it computes an
  exponentially weighted moving average over the *prior* same-case
  history and flags the newest entry when it drops more than
  ``rel_tolerance`` below that average.  Unlike a static floor, the
  EWMA tracks the machine the history was recorded on, so a gradual
  20%/run decay is caught even while every run stays above its floor.
  It engages only once ``min_history`` entries exist -- a fresh
  checkout can never false-positive.  ``repro perf --check`` runs it
  after the floor gate;
- :func:`comm_optimality` -- the communication-optimality gauge shown
  by ``repro top`` and the audit dashboard: the fraction of data
  accesses served block-locally.  ``1.0`` is the paper's
  zero-communication certificate; following the lower-bounds framing
  of Christ et al. (arXiv:1308.0068), any gap to 1.0 is communication
  that a better allocation could provably have avoided for these
  reference patterns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence

#: History entries required before the watchdog engages.
MIN_HISTORY = 5
#: Default EWMA smoothing factor (weight of the newest prior entry).
DEFAULT_ALPHA = 0.3
#: Default tolerated drop below the EWMA before flagging (fraction).
DEFAULT_TOLERANCE = 0.35

#: Higher-is-better series the watchdog tracks by default.
WATCHDOG_KEYS = (
    "speedup.compiled",
    "speedup.codegen",
    "speedup.vectorized",
    "speedup.multiprocess",
    "blocks_per_sec",
    "serve.plans_per_sec",
)


@dataclass(frozen=True)
class SLO:
    """One service-level objective over a perf-history entry.

    ``metric`` is a dotted path into the entry (``plan_ms.p95``,
    ``speedup.compiled``); ``kind`` is ``"max"`` (value must stay at or
    below ``threshold``) or ``"min"`` (at or above).
    """

    name: str
    metric: str
    kind: str
    threshold: float
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("min", "max"):
            raise ValueError(
                f"SLO {self.name!r}: kind must be 'min' or 'max', "
                f"got {self.kind!r}")

    def check(self, value: float) -> bool:
        return (value >= self.threshold if self.kind == "min"
                else value <= self.threshold)


#: The standing objectives every ``repro perf`` run evaluates.  The
#: thresholds are deliberately generous (these are contracts, not
#: benchmarks -- the floors and the watchdog do the tight gating).
DEFAULT_SLOS: tuple[SLO, ...] = (
    SLO("plan-latency-p95", "plan_ms.p95", "max", 2000.0,
        "p95 plan-build latency stays under 2s on the benchmark nest"),
    SLO("block-throughput", "blocks_per_sec", "min", 1.0,
        "the multiprocess tier sustains at least 1 block/sec"),
    SLO("obs-overhead", "obs_overhead_fraction", "max", 0.02,
        "always-on observability (null tracer + flight recorder) costs "
        "under 2% of workload wall time"),
    SLO("serve-throughput", "serve.plans_per_sec", "min", 1.0,
        "the serving layer sustains at least 1 warm request/sec"),
    SLO("serve-latency-p95", "serve.p95_ms", "max", 5000.0,
        "p95 served-request latency stays under 5s on warm traffic"),
)


def resolve(entry: Mapping[str, Any], path: str) -> Optional[float]:
    """Dotted-path lookup into a history entry; None when absent."""
    node: Any = entry
    for part in path.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


@dataclass(frozen=True)
class SLOResult:
    """One evaluated objective."""

    slo: SLO
    value: float
    ok: bool

    def describe(self) -> str:
        op = ">=" if self.slo.kind == "min" else "<="
        verdict = "ok" if self.ok else "VIOLATED"
        return (f"{self.slo.name}: {self.value:g} {op} "
                f"{self.slo.threshold:g} -- {verdict}")

    def to_json(self) -> dict:
        return {"metric": self.slo.metric, "kind": self.slo.kind,
                "threshold": self.slo.threshold,
                "value": self.value, "ok": self.ok}


def evaluate_slos(entry: Mapping[str, Any],
                  slos: Iterable[SLO] = DEFAULT_SLOS) -> list[SLOResult]:
    """Evaluate every applicable SLO; objectives whose metric is absent
    from the entry are skipped (absence is an environment limitation,
    same convention as the floor gate)."""
    results = []
    for slo in slos:
        value = resolve(entry, slo.metric)
        if value is None:
            continue
        results.append(SLOResult(slo=slo, value=value, ok=slo.check(value)))
    return results


def slo_block(results: Sequence[SLOResult]) -> dict:
    """The JSON block stamped into the history entry (``entry["slo"]``)."""
    return {r.slo.name: r.to_json() for r in results}


#: Where ``benchmarks/bench_serve.py`` commits its serving floors.
SERVE_BASELINE = "BENCH_serve.json"


def serve_slos(path: str = SERVE_BASELINE) -> list[SLO]:
    """The committed serving floors as SLOs over ``entry["serve"]``.

    ``BENCH_serve.json`` (written by ``benchmarks/bench_serve.py``)
    carries a ``floors`` block; each floor becomes an objective over
    the matching ``serve.*`` series of the perf entry, so ``repro perf
    --check`` gates serving throughput/latency exactly like engine
    speedups.  Missing or unreadable baseline -> no extra objectives.
    """
    try:
        with open(path) as fh:
            floors = json.load(fh).get("floors") or {}
    except (OSError, ValueError):
        return []
    out: list[SLO] = []
    if isinstance(floors.get("plans_per_sec"), (int, float)):
        out.append(SLO("serve-plans-per-sec-floor", "serve.plans_per_sec",
                       "min", float(floors["plans_per_sec"]),
                       f"committed serving throughput floor ({path})"))
    if isinstance(floors.get("p95_ms"), (int, float)):
        out.append(SLO("serve-p95-floor", "serve.p95_ms",
                       "max", float(floors["p95_ms"]),
                       f"committed serving p95 latency floor ({path})"))
    return out


def load_slos(path: str) -> list[SLO]:
    """Load SLO specs from a JSON file: a list of objects with
    ``name`` / ``metric`` / ``kind`` / ``threshold`` (and optional
    ``help``) fields."""
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON list of SLO specs")
    return [SLO(name=d["name"], metric=d["metric"], kind=d["kind"],
                threshold=float(d["threshold"]), help=d.get("help", ""))
            for d in data]


# ---------------------------------------------------------------------------
# the EWMA regression watchdog
# ---------------------------------------------------------------------------

def ewma(values: Sequence[float], alpha: float = DEFAULT_ALPHA) -> float:
    """Exponentially weighted moving average, oldest first."""
    if not values:
        raise ValueError("ewma of an empty series")
    acc = values[0]
    for v in values[1:]:
        acc = alpha * v + (1 - alpha) * acc
    return acc


def watchdog(
    history: Sequence[Mapping[str, Any]],
    entry: Mapping[str, Any],
    keys: Sequence[str] = WATCHDOG_KEYS,
    alpha: float = DEFAULT_ALPHA,
    rel_tolerance: float = DEFAULT_TOLERANCE,
    min_history: int = MIN_HISTORY,
) -> list[str]:
    """Regressions of ``entry`` against the EWMA of its prior history.

    ``history`` is the full JSON-lines history (the newest line may be
    ``entry`` itself -- it is excluded from the average).  Only entries
    with the same ``case`` participate, so resizing the benchmark never
    trips the watchdog.  Each watched key is higher-is-better; a key is
    flagged when the new value falls below ``(1 - rel_tolerance)`` of
    the EWMA over at least ``min_history`` prior observations.
    """
    case = entry.get("case")
    prior = [h for h in history
             if h.get("case") == case and h is not entry]
    failures: list[str] = []
    for key in keys:
        value = resolve(entry, key)
        if value is None:
            continue
        series = [v for v in (resolve(h, key) for h in prior)
                  if v is not None]
        if len(series) < min_history:
            continue
        avg = ewma(series, alpha)
        floor = avg * (1.0 - rel_tolerance)
        if value < floor:
            failures.append(
                f"{key}: {value:g} is {1 - value / avg:.0%} below its "
                f"EWMA {avg:.3g} over {len(series)} runs "
                f"(tolerance {rel_tolerance:.0%})")
    return failures


# ---------------------------------------------------------------------------
# the communication-optimality gauge
# ---------------------------------------------------------------------------

def comm_optimality(total_accesses: float, remote_accesses: float) -> float:
    """Fraction of accesses served block-locally, in [0, 1].

    ``1.0`` = every access landed in the owning block's local memory --
    the zero-communication certificate the audit proves statically.
    With no accesses observed yet (a run that has not started) the
    gauge optimistically reads 1.0: the plan was *built* to be
    communication-free, and any observed remote access pulls it down.
    """
    if total_accesses <= 0:
        return 1.0
    return max(0.0, 1.0 - remote_accesses / total_accesses)
