"""A thread-based sampling profiler with subsystem attribution.

Span tracing times what the code *declares*; a sampler shows where the
wall clock actually went -- including the places nobody thought to
instrument.  :class:`SamplingProfiler` runs a daemon thread that grabs
``sys._current_frames()`` every ``interval_s`` (default 5ms), records
the Python stack of every other thread, and attributes each sample to
one subsystem bucket:

- ``pipeline`` -- compile-side passes (:mod:`repro.pipeline`, analysis,
  partitioning);
- ``engine`` / ``engine.kernel`` -- the execution tiers; samples whose
  innermost frame is an emitted kernel (code objects compiled from
  ``<repro-kernel:...>`` sources) are split out as kernel time;
- ``scheduler`` / ``scheduler.wait`` -- the dispatch loop, with time
  blocked in ``concurrent.futures``/``threading`` waits separated from
  real scheduling work;
- ``blockstore`` -- shared-memory (de)serialization (segment writes,
  ``collect``, layout work);
- ``other`` -- everything else (parsing, reporting, stdlib).

Exports:

- :meth:`SamplingProfiler.collapsed` -- collapsed-stack flamegraph
  lines (``frame;frame;frame count``), the format every flamegraph
  renderer (Brendan Gregg's ``flamegraph.pl``, speedscope, inferno)
  accepts; ``repro <cmd> --profile FILE`` writes this;
- :meth:`SamplingProfiler.chrome_events` -- instant sample events on a
  dedicated ``sampler`` pseudo-thread track, merged into ``--trace``
  output so Perfetto shows samples alongside spans;
- :meth:`SamplingProfiler.report` -- the per-bucket wall-time table.

Sampling is statistical: the profiler never touches the profiled
threads, so overhead is one dict scan per tick regardless of workload,
and attribution error shrinks with run length.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter
from typing import Any, Optional

#: Default sampling interval (seconds).
DEFAULT_INTERVAL_S = 0.005
#: Cap on individually retained samples (for the Chrome track); the
#: collapsed-stack counter keeps accumulating past this.
SAMPLE_TRACK_CAP = 20_000
#: The pseudo-tid the Chrome exporter places sample instants on.
SAMPLER_TID = 0x5A17

#: Attribution buckets, in render order.
BUCKETS = ("pipeline", "engine.kernel", "engine", "scheduler",
           "scheduler.wait", "blockstore", "other")

_REPRO_SEP = os.sep + "repro" + os.sep


def _frame_label(filename: str, func: str) -> str:
    """``module.function`` for repro frames, ``function`` for kernels."""
    if filename.startswith("<repro-kernel"):
        return f"kernel:{func}"
    i = filename.rfind(_REPRO_SEP)
    if i >= 0:
        mod = filename[i + len(_REPRO_SEP):]
        mod = mod[:-3] if mod.endswith(".py") else mod
        mod = mod.replace(os.sep, ".").replace(".__init__", "")
        return f"{mod}.{func}"
    return func


def classify_stack(stack: list[tuple[str, str]]) -> str:
    """The subsystem bucket for one sampled stack (outer -> inner).

    The *innermost* repro subsystem on the stack wins (a blockstore
    collect called from the scheduler is blockstore time); scheduler
    samples whose leaf is parked in ``threading``/``concurrent.futures``
    split out as ``scheduler.wait``; emitted-kernel leaves split out as
    ``engine.kernel``.
    """
    bucket = "other"
    for filename, func in stack:
        if filename.startswith("<repro-kernel"):
            bucket = "engine.kernel"
            continue
        i = filename.rfind(_REPRO_SEP)
        if i < 0:
            continue
        mod = filename[i + len(_REPRO_SEP):]
        if mod.startswith("pipeline") or mod.startswith("analysis") \
                or mod.startswith("core") or mod.startswith("lang"):
            bucket = "pipeline"
        elif mod.startswith("runtime" + os.sep + "scheduler"):
            bucket = "scheduler"
        elif mod.startswith("runtime" + os.sep + "blockstore"):
            bucket = "blockstore"
        elif mod.startswith("runtime" + os.sep + "engine") \
                or mod.startswith("runtime"):
            bucket = "engine"
    if bucket == "scheduler" and stack:
        leaf_file, leaf_func = stack[-1]
        if ("threading" in leaf_file or "concurrent" in leaf_file
                or "selectors" in leaf_file
                or leaf_func in ("wait", "sleep", "select", "poll")):
            bucket = "scheduler.wait"
    return bucket


class SamplingProfiler:
    """Samples every live thread's Python stack on a fixed tick."""

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S,
                 max_depth: int = 48) -> None:
        self.interval_s = max(0.0005, interval_s)
        self.max_depth = max_depth
        self.stacks: Counter = Counter()        # stack tuple -> samples
        self.buckets: Counter = Counter()       # bucket -> samples
        #: retained (t_ns, bucket, leaf_label) for the Chrome track
        self.samples: list[tuple[int, str, str]] = []
        self.sample_count = 0
        self.started_ns = 0
        self.wall_s = 0.0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self.started_ns = time.perf_counter_ns()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-sampler")
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        self.wall_s = (time.perf_counter_ns() - self.started_ns) / 1e9
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the sampler thread -----------------------------------------------
    def _run(self) -> None:
        me = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample(me)

    def _sample(self, skip_ident: int) -> None:
        now = time.perf_counter_ns() - self.started_ns
        frames = sys._current_frames()
        for ident, frame in frames.items():
            if ident == skip_ident:
                continue
            stack: list[tuple[str, str]] = []
            f: Any = frame
            while f is not None and len(stack) < self.max_depth:
                code = f.f_code
                stack.append((code.co_filename, code.co_name))
                f = f.f_back
            if not stack:
                continue
            stack.reverse()  # outer -> inner
            labels = tuple(_frame_label(fn, fu) for fn, fu in stack)
            bucket = classify_stack(stack)
            self.stacks[labels] += 1
            self.buckets[bucket] += 1
            self.sample_count += 1
            if len(self.samples) < SAMPLE_TRACK_CAP:
                self.samples.append((now, bucket, labels[-1]))

    # -- exports ----------------------------------------------------------
    def collapsed(self) -> str:
        """Collapsed-stack flamegraph text (one ``stack count`` line per
        distinct stack, sorted for determinism)."""
        lines = [f"{';'.join(stack)} {count}"
                 for stack, count in sorted(self.stacks.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.collapsed())

    def chrome_events(self, pid: Optional[int] = None) -> list[dict]:
        """Instant sample events for a dedicated ``sampler`` thread
        track, mergeable into a Chrome trace document."""
        pid = pid if pid is not None else os.getpid()
        events: list[dict] = [{
            "name": "thread_name", "cat": "__metadata", "ph": "M",
            "ts": 0, "pid": pid, "tid": SAMPLER_TID,
            "args": {"name": "sampler"},
        }]
        for t_ns, bucket, leaf in self.samples:
            events.append({
                "name": leaf, "cat": f"sample.{bucket}", "ph": "i",
                "ts": t_ns / 1e3, "s": "t", "pid": pid,
                "tid": SAMPLER_TID, "args": {"bucket": bucket},
            })
        return events

    def bucket_seconds(self) -> dict[str, float]:
        """Estimated wall seconds per bucket (samples x interval)."""
        return {b: n * self.interval_s for b, n in self.buckets.items()}

    def report(self) -> str:
        """The per-subsystem attribution table."""
        total = self.sample_count
        lines = [f"{'bucket':<16} {'samples':>8} {'est s':>8} {'share':>7}"]
        if not total:
            lines.append("(no samples collected)")
            return "\n".join(lines)
        ordered = [b for b in BUCKETS if b in self.buckets]
        ordered += sorted(set(self.buckets) - set(BUCKETS))
        for b in ordered:
            n = self.buckets[b]
            lines.append(f"{b:<16} {n:>8} {n * self.interval_s:>8.3f} "
                         f"{n / total:>6.1%}")
        lines.append(f"{'total':<16} {total:>8} "
                     f"{total * self.interval_s:>8.3f} {'100.0%':>7}")
        return "\n".join(lines)

    def publish(self, registry=None) -> None:
        """Publish per-bucket sample counts (``profile.samples.*``)."""
        from repro.obs.metrics import current_registry

        reg = registry if registry is not None else current_registry()
        reg.set("profile.samples", self.sample_count)
        for b, n in self.buckets.items():
            reg.set(f"profile.samples.{b}", n)
