"""The communication audit: certify zero cross-block accesses.

The paper's guarantee (Theorems 1-4) is that a partition built on
``Psi = span(X_1 ∪ ... ∪ X_k)`` needs *no* interprocessor communication:
every element a block touches lives in that block's data blocks.  The
auditor checks the guarantee on the concrete program, two ways:

**Static replay.**  Access coordinates are data-independent -- every
reference is ``A[H i + c]``, so the exact per-block read/write footprint
follows from the iteration blocks and the reference model alone,
identically for every execution engine.  The replay walks each block's
iterations (restricted to live computations under redundancy
elimination), computes each touched element, and classifies it against
the block's allocated data blocks.  Each cross-block access is
*attributed*: which reference touched the element, which block owns it,
through which owner reference -- and the escaping vectors, the
data-referenced vector ``r = c - c'`` (Definition 1) and the iteration
offset ``delta = i - i'``, with the verdict ``delta ∉ Psi`` naming
exactly why the partition missed it.

**Engine reconciliation.**  Each requested engine then runs the plan
for real; the auditor checks the run completed without a
:class:`~repro.machine.memory.RemoteAccessError`, touched zero remote
elements, and that its memory counters equal the static totals (reads,
writes, executed iterations).  A plan is *certified* when the static
replay finds zero cross-block accesses and every engine run reconciles.
The multiprocess engine reconciles on both lease paths: shared-memory
store workers count reads/writes per block with the compiled tier's
exact formulas and the scheduler merges them into the same per-block
memory counters the by-value path fills, so the static totals match
regardless of how the leases traveled.

:func:`inject_violation` builds a deliberately broken variant of a plan
(a finer partition than ``Psi`` allows, with single-owner data blocks)
so the failure path -- attribution, engine aborts, non-zero exit --
stays exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional, Sequence

from repro.core.partition import DataBlock, block_index_map, iteration_partition
from repro.core.plan import PartitionPlan
from repro.core.strategy import Strategy
from repro.machine.memory import RemoteAccessError
from repro.obs.metrics import MetricsRegistry, current_registry
from repro.obs.trace import Span, current_tracer
from repro.ratlinalg.matrix import RatVec

Coords = tuple[int, ...]

#: (strategy, eliminate_redundant) -> the theorem certifying the plan.
THEOREMS: dict[tuple[Strategy, bool], int] = {
    (Strategy.NONDUPLICATE, False): 1,
    (Strategy.DUPLICATE, False): 2,
    (Strategy.NONDUPLICATE, True): 3,
    (Strategy.DUPLICATE, True): 4,
}


@dataclass
class AccessFootprint:
    """What one block actually touches of one array (static replay)."""

    block: int
    array: str
    reads: int = 0
    writes: int = 0
    read_elements: set[Coords] = field(default_factory=set)
    write_elements: set[Coords] = field(default_factory=set)
    #: accesses to elements *outside* the block's data block
    cross: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def elements(self) -> set[Coords]:
        return self.read_elements | self.write_elements


@dataclass(frozen=True)
class AuditViolation:
    """One cross-block access, attributed per Definition 1.

    ``r`` is the data-referenced vector ``c - c'`` between the violating
    reference and the owner's reference; ``delta = i - i'`` the
    iteration offset connecting the two computations.  For a genuine
    violation ``delta ∉ Psi`` -- the partition split two iterations the
    reference pattern couples.
    """

    block: int
    array: str
    iteration: Coords
    element: Coords
    reference: str
    is_write: bool
    owner_block: Optional[int]
    owner_iteration: Optional[Coords]
    owner_reference: Optional[str]
    r: Optional[Coords]
    delta: Optional[Coords]
    delta_in_psi: Optional[bool]

    def describe(self) -> str:
        kind = "write" if self.is_write else "read"
        head = (f"block {self.block} @ it{list(self.iteration)}: remote {kind} "
                f"of {self.array}{list(self.element)} via {self.reference}")
        if self.owner_reference is None:
            owner = (f"owned by block {self.owner_block}"
                     if self.owner_block is not None else "owned by no block")
            return f"{head} -- {owner}"
        psi = "yes" if self.delta_in_psi else "no"
        return (f"{head} -- owner block {self.owner_block} @ "
                f"it{list(self.owner_iteration)} via {self.owner_reference}; "
                f"r = {list(self.r)}, delta = {list(self.delta)} "
                f"(delta in Psi: {psi})")


@dataclass
class EngineAuditRun:
    """One engine's run of the plan, reconciled against the static replay."""

    backend: str                 # requested backend name (or "default")
    resolved: str                # engine that actually ran
    completed: bool
    aborted: Optional[str] = None  # RemoteAccessError message, if any
    reads: int = 0
    writes: int = 0
    executed_iterations: int = 0
    remote_reads: int = 0
    remote_writes: int = 0
    matches_static: bool = False

    @property
    def remote_accesses(self) -> int:
        return self.remote_reads + self.remote_writes

    @property
    def ok(self) -> bool:
        return self.completed and self.remote_accesses == 0 and self.matches_static


@dataclass
class AuditReport:
    """The full audit: footprints, violations, engine reconciliation."""

    plan: PartitionPlan
    footprints: dict[tuple[int, str], AccessFootprint]
    violations: list[AuditViolation]
    cross_block_accesses: int        # total (violations above are capped)
    total_reads: int
    total_writes: int
    executed_computations: int
    executed_iterations: int
    reference_counts: dict[str, int]
    element_counts: dict[str, dict[Coords, int]]
    engine_runs: dict[str, EngineAuditRun] = field(default_factory=dict)

    @property
    def theorem(self) -> int:
        return THEOREMS[(self.plan.strategy,
                         self.plan.breakdown.eliminate_redundant)]

    @property
    def total_accesses(self) -> int:
        return self.total_reads + self.total_writes

    @property
    def communication_free(self) -> bool:
        """Static verdict: did the replay find zero cross-block accesses?"""
        return self.cross_block_accesses == 0

    @property
    def certified(self) -> bool:
        """Static verdict *and* every engine run reconciled."""
        return self.communication_free and all(
            r.ok for r in self.engine_runs.values())

    @property
    def ok(self) -> bool:
        """Summary-protocol alias for :attr:`certified`."""
        return self.certified

    def summary(self) -> str:
        """One-line verdict (the Summary protocol)."""
        return self.verdict()

    def to_json(self) -> dict:
        """Summary-protocol alias for :meth:`to_dict`."""
        return self.to_dict()

    def theorem_label(self) -> str:
        extra = (", redundancy-eliminated"
                 if self.plan.breakdown.eliminate_redundant else "")
        return f"Theorem {self.theorem} ({self.plan.strategy.value}{extra})"

    def verdict(self) -> str:
        runs = list(self.engine_runs.values())
        if self.certified:
            engines = (f"; {len(runs)}/{len(runs)} engine runs reconciled"
                       if runs else "")
            return (f"CERTIFIED communication-free under {self.theorem_label()}"
                    f": 0 cross-block accesses in {self.total_accesses} "
                    f"accesses{engines}")
        if self.communication_free:
            bad = [r for r in runs if not r.ok]
            return (f"NOT CERTIFIED: static replay is clean but "
                    f"{len(bad)}/{len(runs)} engine runs failed to reconcile "
                    f"({', '.join(r.resolved for r in bad)})")
        v = self.violations[0] if self.violations else None
        head = (f"VIOLATED: {self.cross_block_accesses} cross-block "
                f"accesses in {self.total_accesses} accesses")
        return f"{head}; first: {v.describe()}" if v else head

    def to_dict(self) -> dict:
        """JSON-ready representation (sets become sorted lists)."""
        return {
            "loop": self.plan.nest.name,
            "strategy": self.plan.strategy.value,
            "eliminate_redundant": self.plan.breakdown.eliminate_redundant,
            "theorem": self.theorem,
            "blocks": len(self.plan.blocks),
            "reads": self.total_reads,
            "writes": self.total_writes,
            "executed_computations": self.executed_computations,
            "executed_iterations": self.executed_iterations,
            "cross_block_accesses": self.cross_block_accesses,
            "communication_free": self.communication_free,
            "certified": self.certified,
            "violations": [
                {
                    "block": v.block, "array": v.array,
                    "iteration": list(v.iteration),
                    "element": list(v.element),
                    "reference": v.reference, "is_write": v.is_write,
                    "owner_block": v.owner_block,
                    "owner_iteration": (list(v.owner_iteration)
                                        if v.owner_iteration else None),
                    "owner_reference": v.owner_reference,
                    "r": list(v.r) if v.r is not None else None,
                    "delta": list(v.delta) if v.delta is not None else None,
                    "delta_in_psi": v.delta_in_psi,
                }
                for v in self.violations
            ],
            "engine_runs": {
                name: {
                    "backend": r.backend, "resolved": r.resolved,
                    "completed": r.completed, "aborted": r.aborted,
                    "reads": r.reads, "writes": r.writes,
                    "executed_iterations": r.executed_iterations,
                    "remote_reads": r.remote_reads,
                    "remote_writes": r.remote_writes,
                    "matches_static": r.matches_static, "ok": r.ok,
                }
                for name, r in self.engine_runs.items()
            },
            "verdict": self.verdict(),
        }

    def publish(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Publish the audit outcome as ``audit.*`` metrics."""
        reg = registry if registry is not None else current_registry()
        reg.inc("audit.runs")
        reg.inc("audit.engine_runs", len(self.engine_runs))
        reg.set("audit.accesses", self.total_accesses)
        reg.set("audit.cross_block_accesses", self.cross_block_accesses)
        reg.set("audit.certified", 1 if self.certified else 0)
        reg.set("audit.theorem", self.theorem)


def _attribute(plan: PartitionPlan, info, block, it: Coords, ref,
               element: Coords, indices) -> AuditViolation:
    """Name the owner of a remotely-touched element and the escaping vectors."""
    owners = plan.owners_of_element(info.name, element)
    live = plan.live
    # prefer the owner's *write* reference: that pairing is the flow
    # dependence the paper's data-referenced vectors model
    refs = sorted(info.references,
                  key=lambda r2: (not r2.is_write, r2.stmt_index, r2.slot))
    for ob in owners:
        if ob == block.index:
            continue
        for it2 in plan.blocks[ob].iterations:
            for ref2 in refs:
                if live is not None and (ref2.stmt_index, it2) not in live:
                    continue
                if info.element_at(it2, ref2.offset) != element:
                    continue
                delta = tuple(a - b for a, b in zip(it, it2))
                r = tuple(int(x) for x in (ref.offset - ref2.offset))
                return AuditViolation(
                    block=block.index, array=info.name, iteration=tuple(it),
                    element=element, reference=ref.describe(indices),
                    is_write=ref.is_write, owner_block=ob,
                    owner_iteration=tuple(it2),
                    owner_reference=ref2.describe(indices), r=r, delta=delta,
                    delta_in_psi=RatVec(list(delta)) in plan.psi,
                )
    return AuditViolation(
        block=block.index, array=info.name, iteration=tuple(it),
        element=element, reference=ref.describe(indices),
        is_write=ref.is_write,
        owner_block=owners[0] if owners else None, owner_iteration=None,
        owner_reference=None, r=None, delta=None, delta_in_psi=None,
    )


def _static_replay(plan: PartitionPlan, max_detail: int) -> AuditReport:
    model = plan.model
    live = plan.live
    indices = model.nest.indices
    nstmts = len(model.nest.statements)
    refs_by_stmt: dict[int, list] = {}
    for info in model.arrays.values():
        for ref in info.references:
            refs_by_stmt.setdefault(ref.stmt_index, []).append((info, ref))

    footprints: dict[tuple[int, str], AccessFootprint] = {}
    element_counts: dict[str, dict[Coords, int]] = {
        name: {} for name in model.arrays}
    reference_counts: dict[str, int] = {}
    violations: list[AuditViolation] = []
    cross = total_reads = total_writes = 0
    executed_comps = executed_iters = 0

    for b in plan.blocks:
        alloc = {name: plan.data_blocks[name][b.index].elements
                 for name in model.arrays}
        for name in model.arrays:
            footprints[(b.index, name)] = AccessFootprint(block=b.index,
                                                          array=name)
        for it in b.iterations:
            ran = False
            for k in range(nstmts):
                if live is not None and (k, it) not in live:
                    continue
                ran = True
                executed_comps += 1
                for info, ref in refs_by_stmt.get(k, ()):
                    e = info.element_at(it, ref.offset)
                    fp = footprints[(b.index, info.name)]
                    if ref.is_write:
                        fp.writes += 1
                        fp.write_elements.add(e)
                        total_writes += 1
                    else:
                        fp.reads += 1
                        fp.read_elements.add(e)
                        total_reads += 1
                    counts = element_counts[info.name]
                    counts[e] = counts.get(e, 0) + 1
                    d = ref.describe(indices)
                    reference_counts[d] = reference_counts.get(d, 0) + 1
                    if e not in alloc[info.name]:
                        cross += 1
                        if len(violations) < max_detail:
                            violations.append(
                                _attribute(plan, info, b, it, ref, e, indices))
            if ran:
                executed_iters += 1

    return AuditReport(
        plan=plan, footprints=footprints, violations=violations,
        cross_block_accesses=cross, total_reads=total_reads,
        total_writes=total_writes, executed_computations=executed_comps,
        executed_iterations=executed_iters,
        reference_counts=reference_counts, element_counts=element_counts,
    )


def block_cross_accesses(
    plan: PartitionPlan, block_index: int, max_detail: int = 1,
) -> tuple[int, list[AuditViolation]]:
    """Static cross-block access count for *one* block.

    The per-block slice of :func:`_static_replay`, cheap enough to run
    on demand: the fault-tolerant scheduler calls it before re-leasing
    a lost block to assert the block is disjoint (zero cross-block
    accesses), i.e. that re-execution is provably safe under the plan's
    theorem.  Returns the cross count and up to ``max_detail``
    attributed violations.
    """
    model = plan.model
    live = plan.live
    indices = model.nest.indices
    b = plan.blocks[block_index]
    alloc = {name: plan.data_blocks[name][b.index].elements
             for name in model.arrays}
    refs_by_stmt: dict[int, list] = {}
    for info in model.arrays.values():
        for ref in info.references:
            refs_by_stmt.setdefault(ref.stmt_index, []).append((info, ref))

    cross = 0
    violations: list[AuditViolation] = []
    for it in b.iterations:
        for k in range(len(model.nest.statements)):
            if live is not None and (k, it) not in live:
                continue
            for info, ref in refs_by_stmt.get(k, ()):
                e = info.element_at(it, ref.offset)
                if e not in alloc[info.name]:
                    cross += 1
                    if len(violations) < max_detail:
                        violations.append(
                            _attribute(plan, info, b, it, ref, e, indices))
    return cross, violations


def _run_engine_audit(plan: PartitionPlan, backend: Optional[str],
                      scalars: Optional[Mapping[str, float]],
                      report: AuditReport) -> EngineAuditRun:
    from repro.runtime.engine.base import resolve_engine
    from repro.runtime.parallel import _run_parallel

    engine = resolve_engine(backend)
    requested = backend or "default"
    try:
        res = _run_parallel(plan, scalars=scalars, backend=engine.name)
    except RemoteAccessError as exc:
        return EngineAuditRun(
            backend=requested, resolved=engine.name, completed=False,
            aborted=str(exc.args[0]) if exc.args else str(exc),
            remote_reads=0 if exc.is_write else 1,
            remote_writes=1 if exc.is_write else 0,
        )
    reads = sum(m.reads for m in res.memories.values())
    writes = sum(m.writes for m in res.memories.values())
    return EngineAuditRun(
        backend=requested, resolved=res.backend, completed=True,
        reads=reads, writes=writes,
        executed_iterations=res.executed_iterations,
        remote_reads=res.remote_reads, remote_writes=res.remote_writes,
        matches_static=(reads == report.total_reads
                        and writes == report.total_writes
                        and res.executed_iterations
                        == report.executed_iterations),
    )


def audit_plan(
    plan: PartitionPlan,
    scalars: Optional[Mapping[str, float]] = None,
    backends: Optional[Sequence[Optional[str]]] = None,
    run_engines: bool = True,
    max_detail: int = 8,
    registry: Optional[MetricsRegistry] = None,
) -> AuditReport:
    """Audit a plan for communication-freedom; see the module docstring.

    ``backends`` lists engines to reconcile (``None`` entries mean the
    default resolution); ``run_engines=False`` keeps the audit purely
    static.  At most ``max_detail`` violations carry full attribution;
    ``cross_block_accesses`` always counts all of them.
    """
    tracer = current_tracer()
    with tracer.span("audit.static", category="audit",
                     blocks=len(plan.blocks),
                     arrays=len(plan.model.arrays)) as sp:
        report = _static_replay(plan, max_detail=max_detail)
        sp.set(accesses=report.total_accesses,
               cross_block_accesses=report.cross_block_accesses)
    if run_engines:
        for backend in (backends if backends is not None else [None]):
            with tracer.span("audit.engine", category="audit",
                             backend=backend or "default") as sp:
                run = _run_engine_audit(plan, backend, scalars, report)
                sp.set(resolved=run.resolved, ok=run.ok,
                       completed=run.completed)
            report.engine_runs[run.resolved] = run
    report.publish(registry)
    return report


def inject_violation(plan: PartitionPlan) -> PartitionPlan:
    """A deliberately broken variant of ``plan`` for exercising the
    failure path.

    Repartitions the iteration space with ``Psi = {0}`` (every iteration
    its own block) while forcing *single-owner* data blocks: each
    referenced element is assigned to the block of the first live
    computation touching it, in sequential order.  Whenever the original
    plan needed ``dim(Psi) >= 1``, some reference pair couples two
    iterations that now sit in different blocks, so the replay (and any
    strict engine run) reports genuine cross-block accesses whose
    connecting ``delta`` escapes the broken ``Psi``.
    """
    model = plan.model
    from repro.ratlinalg.span import Subspace

    psi0 = Subspace.zero(model.nest.depth)
    blocks = iteration_partition(model.space, psi0)
    bmap = block_index_map(blocks)
    live = plan.live

    owner: dict[tuple[str, Coords], int] = {}
    for it in model.space.iterate():
        blk = bmap[tuple(it)]
        for name, info in model.arrays.items():
            for ref in info.references:
                if live is not None and (ref.stmt_index, tuple(it)) not in live:
                    continue
                owner.setdefault((name, info.element_at(it, ref.offset)), blk)

    data_blocks: dict[str, list[DataBlock]] = {}
    for name in model.arrays:
        per: list[set[Coords]] = [set() for _ in blocks]
        for (nm, e), blk in owner.items():
            if nm == name:
                per[blk].add(e)
        data_blocks[name] = [
            DataBlock(array=name, block_index=j, elements=frozenset(s))
            for j, s in enumerate(per)
        ]

    return PartitionPlan(
        nest=plan.nest, model=model,
        breakdown=replace(plan.breakdown, psi=psi0),
        blocks=blocks, data_blocks=data_blocks, _block_of=bmap,
    )


# ---------------------------------------------------------------------------
# the ASCII dashboard
# ---------------------------------------------------------------------------

#: Heatmaps are skipped for arrays with more distinct elements than this.
_HEATMAP_LIMIT = 400


def _span_rollup(spans: Sequence[Span]) -> list[str]:
    agg: dict[str, tuple[int, int]] = {}
    for s in spans:
        n, total = agg.get(s.name, (0, 0))
        agg[s.name] = (n + 1, total + s.duration_ns)
    rows = sorted(agg.items(), key=lambda kv: (-kv[1][1], kv[0]))
    lines = [f"{'span':<32} {'count':>5} {'total ms':>10}"]
    for name, (n, total) in rows:
        lines.append(f"{name:<32} {n:>5} {total / 1e6:>10.3f}")
    return lines


def render_audit_dashboard(report: AuditReport,
                           spans: Optional[Sequence[Span]] = None,
                           max_rows: int = 12,
                           heatmaps: bool = True) -> str:
    """Render the audit as an ASCII dashboard.

    ``spans`` (default: the current tracer's) feed the span rollup;
    the section is omitted when there are none.
    """
    from repro.viz.ascii import render_heatmap

    plan = report.plan
    b = plan.breakdown
    arrays = sorted(plan.model.arrays)
    out: list[str] = []
    out.append(f"=== communication audit: {plan.nest.name or '<anon>'} ===")
    out.append(f"strategy: {plan.strategy.value}; redundancy-eliminated: "
               f"{'yes' if b.eliminate_redundant else 'no'}; "
               f"theorem: {report.theorem}")
    out.append(f"Psi: {plan.psi!r} (dim {plan.psi.dim})")
    out.append(f"blocks: {len(plan.blocks)}; executed iterations: "
               f"{report.executed_iterations}; computations: "
               f"{report.executed_computations}")
    out.append(f"accesses: {report.total_reads} reads + "
               f"{report.total_writes} writes = {report.total_accesses} "
               f"({len(arrays)} arrays)")

    out.append("")
    out.append("-- per-block accesses --")
    out.append(f"{'block':>5} {'iters':>6} {'reads':>6} {'writes':>6} "
               f"{'cross':>6}")
    for blk in plan.blocks[:max_rows]:
        fps = [report.footprints[(blk.index, a)] for a in arrays]
        out.append(f"{blk.index:>5} {len(blk.iterations):>6} "
                   f"{sum(f.reads for f in fps):>6} "
                   f"{sum(f.writes for f in fps):>6} "
                   f"{sum(f.cross for f in fps):>6}")
    if len(plan.blocks) > max_rows:
        out.append(f"  ... ({len(plan.blocks) - max_rows} more blocks)")
    out.append(f"{'total':>5} "
               f"{sum(len(x.iterations) for x in plan.blocks):>6} "
               f"{report.total_reads:>6} {report.total_writes:>6} "
               f"{report.cross_block_accesses:>6}")

    out.append("")
    out.append("-- references --")
    for d, n in sorted(report.reference_counts.items(),
                       key=lambda kv: (-kv[1], kv[0])):
        out.append(f"{d:<32} {n:>6}")

    if heatmaps:
        for name in arrays:
            counts = report.element_counts[name]
            rank = plan.model.arrays[name].rank
            if rank != 2 or not counts or len(counts) > _HEATMAP_LIMIT:
                continue
            out.append("")
            out.append(render_heatmap(
                counts,
                title=f"-- array {name} access heatmap "
                      f"(reads+writes per element) --"))

    if report.engine_runs:
        out.append("")
        out.append("-- engine reconciliation --")
        out.append(f"{'backend':<14} {'resolved':<14} {'reads':>6} "
                   f"{'writes':>6} {'remote':>6}  status")
        for name in sorted(report.engine_runs):
            r = report.engine_runs[name]
            if not r.completed:
                status = f"aborted ({r.aborted})"
            elif not r.matches_static:
                status = "MISMATCH vs static replay"
            elif r.remote_accesses:
                status = "remote accesses"
            else:
                status = "ok"
            out.append(f"{r.backend:<14} {r.resolved:<14} {r.reads:>6} "
                       f"{r.writes:>6} {r.remote_accesses:>6}  {status}")

    if report.violations:
        out.append("")
        shown = len(report.violations)
        out.append(f"-- violations (showing {shown} of "
                   f"{report.cross_block_accesses}) --")
        for v in report.violations:
            out.append(f"  {v.describe()}")

    if spans is None:
        spans = current_tracer().spans
    if spans:
        out.append("")
        out.append("-- span rollup --")
        out.extend(_span_rollup(spans))

    out.append("")
    out.append(f"verdict: {report.verdict()}")
    return "\n".join(out)
