"""Whole-pipeline compiler report for one loop nest.

``compile_report(nest, p)`` runs everything the paper describes --
analysis, strategy comparison (with cost estimates), the chosen
partition, the transformed parallel form, the SPMD mapping -- and
renders a single human-readable report.  Used by ``python -m repro
report`` and handy as the one-call "what does the technique say about
my loop" entry point.

All stages run through the shared pass pipeline
(:func:`repro.pipeline.run_pipeline`): the analysis artifacts come from
the ``extract-refs``/``eliminate-redundancy`` passes, the selected
plan's transformation and mapping from the ``transform``/``map``
passes, and any structured diagnostics the passes emit are rendered in
their own report section.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.analysis import (
    build_reference_graph,
    data_referenced_vectors,
    is_fully_duplicable,
)
from repro.core.plan import PartitionPlan
from repro.lang.ast import LoopNest
from repro.lang.printer import to_source
from repro.machine.cost import CostModel, TRANSPUTER
from repro.perf.selector import SelectionResult, choose_strategy
from repro.pipeline import PipelineConfig, run_pipeline
from repro.runtime.verify import VerificationReport, _verify_plan
from repro.transform import to_pseudocode, to_spmd_pseudocode
from repro.viz.dot import to_dot


@dataclass
class CompileReport:
    """Everything the pipeline derived about one nest."""

    nest: LoopNest
    selection: SelectionResult
    plan: PartitionPlan                       # the selected plan
    pseudocode: str
    spmd_pseudocode: str
    balance_summary: str
    verification: Optional[VerificationReport]
    sections: list[tuple[str, str]] = field(default_factory=list)

    def render(self) -> str:
        out = []
        for title, body in self.sections:
            out.append(f"=== {title} ===")
            out.append(body)
            out.append("")
        return "\n".join(out)


def compile_report(
    nest: LoopNest,
    p: int = 16,
    cost: CostModel = TRANSPUTER,
    consider_elimination: bool = True,
    verify: bool = True,
    scalars=None,
    config: Optional[PipelineConfig] = None,
) -> CompileReport:
    """Run the full pipeline and assemble the report.

    ``config`` carries the CLI's shared flag plumbing (scalars,
    processors); strategy fields are chosen by the selector, so only
    its elimination/scalars settings matter here.
    """
    if config is not None:
        scalars = scalars if scalars is not None else (
            config.scalars_dict() or None)

    # -- analysis passes ----------------------------------------------------
    actx = run_pipeline(
        nest,
        PipelineConfig(eliminate_redundant=consider_elimination),
        upto="eliminate-redundancy",
    )
    model = actx.model
    sections: list[tuple[str, str]] = []

    sections.append(("input loop", to_source(nest)))

    lines = []
    for name, info in model.arrays.items():
        drvs = [tuple(int(x) for x in d.vector)
                for d in data_referenced_vectors(info)]
        kind = ("fully duplicable"
                if is_fully_duplicable(info, model.space)
                else "partially duplicable")
        lines.append(f"array {name}: H = {info.h!r}; DRVs {drvs}; {kind}")
        g = build_reference_graph(model, name)
        for s, d, k in g.edge_names():
            lines.append(f"  {s} -> {d} [{k}]")
    sections.append(("reference analysis", "\n".join(lines)))

    red = actx.redundancy
    if consider_elimination:
        sections.append(("redundancy analysis", red.summary()))

    from repro.analysis.summary import (format_dependence_table,
                                        summarize_dependences)

    sections.append(("dependence table",
                     format_dependence_table(
                         summarize_dependences(model, red))))

    # -- strategy comparison ------------------------------------------------
    selection = choose_strategy(nest, p, cost=cost,
                                consider_elimination=consider_elimination)
    sections.append((f"strategy comparison (p={p})", selection.table()))
    best = selection.best
    plan = best.plan
    sections.append(("selected plan", plan.summary()))

    from repro.core.provenance import (explain_partitioning_space,
                                       render_contributions)

    contribs = explain_partitioning_space(
        model,
        strategy=plan.strategy,
        duplicate_arrays=plan.breakdown.duplicated_arrays or None,
        eliminate_redundant=plan.breakdown.eliminate_redundant,
        redundancy=plan.breakdown.redundancy,
    )
    sections.append(("why Psi looks like this",
                     render_contributions(contribs, plan.psi)))

    # -- transformation + mapping via the pipeline --------------------------
    best_config = replace(
        PipelineConfig(
            strategy=plan.strategy,
            duplicate_arrays=(frozenset(best.duplicate_arrays)
                              if best.duplicate_arrays else None),
            eliminate_redundant=best.eliminate_redundant,
        ),
        processors=p,
    )
    bctx = run_pipeline(nest, best_config, upto="map", model=model)
    tnest = bctx.tnest
    pseudo = to_pseudocode(tnest)
    sections.append(("parallel form", pseudo))
    grid = bctx.grid
    spmd = to_spmd_pseudocode(tnest, grid)
    sections.append((f"SPMD form (grid {grid.dims})", spmd))
    from repro.mapping import workload_stats

    balance = workload_stats(bctx.assignment).summary()
    sections.append(("load balance", balance))

    # -- reference graphs as DOT --------------------------------------------
    dot = "\n\n".join(
        to_dot(build_reference_graph(model, name), title=f"G_{name}")
        for name in model.arrays
    )
    sections.append(("reference graphs (DOT)", dot))

    # -- simulated machine --------------------------------------------------
    # functional re-execution on the cost-charged multicomputer; feeds
    # the machine.* metrics and category-"machine" trace spans
    from repro.runtime.machine_run import run_on_machine

    backend = config.backend if config is not None else None
    mrun = run_on_machine(
        plan, p, cost=cost, scalars=scalars, verify=False,
        backend=None if backend == "all" else backend,
    )
    st = mrun.stats
    sections.append((
        f"simulated machine (p={mrun.machine.num_processors})",
        f"distribution time: {st.distribution_time:.6f}\n"
        f"max compute time: {st.max_compute_time:.6f}\n"
        f"makespan: {st.makespan:.6f}\n"
        f"messages: {st.messages} ({st.words_sent} words)\n"
        f"remote accesses: {st.remote_accesses}\n"
        f"communication-free: {mrun.communication_free}\n"
        f"{mrun.summary()}",
    ))

    # -- communication audit ------------------------------------------------
    # static replay only: the engine runs are covered by verification
    # below, and keeping this section purely analytic keeps it stable
    from repro.obs.audit import audit_plan

    audit = audit_plan(plan, scalars=scalars, run_engines=False)
    sections.append((
        "communication audit",
        f"theorem: {audit.theorem_label()}\n"
        f"accesses: {audit.total_reads} reads + {audit.total_writes} "
        f"writes across {len(plan.blocks)} blocks\n"
        f"cross-block accesses: {audit.cross_block_accesses}\n"
        f"{audit.verdict()}",
    ))

    # -- verification -------------------------------------------------------
    verification: Optional[VerificationReport] = None
    if verify:
        verification = _verify_plan(plan, scalars=scalars, backend=backend)
        body = (
            f"blocks: {verification.num_blocks}\n"
            f"remote accesses: {verification.remote_accesses}\n"
            f"parallel == sequential: {verification.equal}\n"
        )
        if verification.cross_checked:
            body += ("backends cross-checked: "
                     + ", ".join(sorted(verification.cross_checked)) + "\n")
        elif backend:
            body += f"backend: {verification.backend}\n"
        body += verification.summary() + "\n"
        body += "OK" if verification.ok else "FAILED"
        sections.append(("verification", body))

    # -- structured diagnostics ---------------------------------------------
    diags = list(actx.diagnostics) + [
        d for d in bctx.diagnostics if d not in actx.diagnostics.records
    ]
    if diags:
        sections.append(("diagnostics",
                         "\n".join(d.render() for d in diags)))

    # -- observability -------------------------------------------------------
    # deterministic view of the unified registry: scalar metrics by
    # value, histograms by sample count only (times vary run to run)
    from repro.obs.metrics import Histogram, current_registry

    reg = current_registry()
    obs_lines = []
    for name in reg.names():
        m = reg.get(name)
        if isinstance(m, Histogram):
            obs_lines.append(f"histogram {name}: {m.count} samples")
        else:
            v = m.value
            shown = int(v) if float(v).is_integer() else v
            obs_lines.append(f"{m.kind} {name}: {shown}")
    if obs_lines:
        sections.append(("observability", "\n".join(obs_lines)))

    return CompileReport(
        nest=nest, selection=selection, plan=plan,
        pseudocode=pseudo, spmd_pseudocode=spmd,
        balance_summary=balance, verification=verification,
        sections=sections,
    )
