"""Whole-pipeline compiler report for one loop nest.

``compile_report(nest, p)`` runs everything the paper describes --
analysis, strategy comparison (with cost estimates), the chosen
partition, the transformed parallel form, the SPMD mapping -- and
renders a single human-readable report.  Used by ``python -m repro
report`` and handy as the one-call "what does the technique say about
my loop" entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis import (
    analyze_redundancy,
    build_reference_graph,
    data_referenced_vectors,
    extract_references,
    is_fully_duplicable,
)
from repro.core.plan import PartitionPlan
from repro.lang.ast import LoopNest
from repro.lang.printer import to_source
from repro.machine.cost import CostModel, TRANSPUTER
from repro.mapping import assign_blocks, shape_grid, workload_stats
from repro.perf.selector import SelectionResult, choose_strategy
from repro.runtime.verify import VerificationReport, verify_plan
from repro.transform import to_pseudocode, to_spmd_pseudocode, transform_nest
from repro.viz.dot import to_dot


@dataclass
class CompileReport:
    """Everything the pipeline derived about one nest."""

    nest: LoopNest
    selection: SelectionResult
    plan: PartitionPlan                       # the selected plan
    pseudocode: str
    spmd_pseudocode: str
    balance_summary: str
    verification: Optional[VerificationReport]
    sections: list[tuple[str, str]] = field(default_factory=list)

    def render(self) -> str:
        out = []
        for title, body in self.sections:
            out.append(f"=== {title} ===")
            out.append(body)
            out.append("")
        return "\n".join(out)


def compile_report(
    nest: LoopNest,
    p: int = 16,
    cost: CostModel = TRANSPUTER,
    consider_elimination: bool = True,
    verify: bool = True,
    scalars=None,
) -> CompileReport:
    """Run the full pipeline and assemble the report."""
    model = extract_references(nest)
    sections: list[tuple[str, str]] = []

    sections.append(("input loop", to_source(nest)))

    # -- analysis -----------------------------------------------------------
    lines = []
    for name, info in model.arrays.items():
        drvs = [tuple(int(x) for x in d.vector)
                for d in data_referenced_vectors(info)]
        kind = ("fully duplicable"
                if is_fully_duplicable(info, model.space)
                else "partially duplicable")
        lines.append(f"array {name}: H = {info.h!r}; DRVs {drvs}; {kind}")
        g = build_reference_graph(model, name)
        for s, d, k in g.edge_names():
            lines.append(f"  {s} -> {d} [{k}]")
    sections.append(("reference analysis", "\n".join(lines)))

    red = None
    if consider_elimination:
        red = analyze_redundancy(model)
        sections.append(("redundancy analysis", red.summary()))

    from repro.analysis.summary import (format_dependence_table,
                                        summarize_dependences)

    sections.append(("dependence table",
                     format_dependence_table(
                         summarize_dependences(model, red))))

    # -- strategy comparison --------------------------------------------------
    selection = choose_strategy(nest, p, cost=cost,
                                consider_elimination=consider_elimination)
    sections.append((f"strategy comparison (p={p})", selection.table()))
    plan = selection.best.plan
    sections.append(("selected plan", plan.summary()))

    from repro.core.provenance import (explain_partitioning_space,
                                       render_contributions)

    contribs = explain_partitioning_space(
        model,
        strategy=plan.strategy,
        duplicate_arrays=plan.breakdown.duplicated_arrays or None,
        eliminate_redundant=plan.breakdown.eliminate_redundant,
        redundancy=plan.breakdown.redundancy,
    )
    sections.append(("why Psi looks like this",
                     render_contributions(contribs, plan.psi)))

    # -- transformation ---------------------------------------------------------
    tnest = transform_nest(nest, plan.psi)
    pseudo = to_pseudocode(tnest)
    sections.append(("parallel form", pseudo))
    grid = shape_grid(p, tnest.k)
    spmd = to_spmd_pseudocode(tnest, grid)
    sections.append((f"SPMD form (grid {grid.dims})", spmd))
    balance = workload_stats(assign_blocks(tnest, grid)).summary()
    sections.append(("load balance", balance))

    # -- reference graphs as DOT ------------------------------------------------
    dot = "\n\n".join(
        to_dot(build_reference_graph(model, name), title=f"G_{name}")
        for name in model.arrays
    )
    sections.append(("reference graphs (DOT)", dot))

    # -- verification ------------------------------------------------------------
    verification: Optional[VerificationReport] = None
    if verify:
        verification = verify_plan(plan, scalars=scalars)
        sections.append((
            "verification",
            f"blocks: {verification.num_blocks}\n"
            f"remote accesses: {verification.remote_accesses}\n"
            f"parallel == sequential: {verification.equal}\n"
            f"{'OK' if verification.ok else 'FAILED'}",
        ))

    return CompileReport(
        nest=nest, selection=selection, plan=plan,
        pseudocode=pseudo, spmd_pseudocode=spmd,
        balance_summary=balance, verification=verification,
        sections=sections,
    )
