"""The :class:`PartitionPlan` orchestrator and its static checks.

``build_plan`` runs the whole Section II-III pipeline: extract
references, (optionally) eliminate redundant computations, pick the
partitioning space for the requested strategy, partition iterations and
data.  Since the pass-pipeline refactor it is a thin, API-compatible
facade over :func:`repro.pipeline.run_pipeline` (passes ``extract-refs``
through ``partition``), which adds per-pass instrumentation, structured
diagnostics and content-addressed plan caching on top.  The three
``check_*`` functions assert the paper's guarantees on the concrete
result:

- the blocks partition the iteration space (Definition 2);
- under a non-duplicate strategy, data blocks are pairwise disjoint;
- no flow dependence crosses block boundaries (communication-freedom,
  Theorems 1-4) -- checked against the exact sequential trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.references import ReferenceModel
from repro.analysis.trace import CompId, SequentialTrace, build_trace
from repro.core.partition import DataBlock, IterationBlock
from repro.core.strategy import SpaceBreakdown, Strategy
from repro.lang.ast import LoopNest
from repro.ratlinalg.span import Subspace


@dataclass
class PartitionPlan:
    """Everything needed to place and run a communication-free loop."""

    nest: LoopNest
    model: ReferenceModel
    breakdown: SpaceBreakdown
    blocks: list[IterationBlock]
    data_blocks: dict[str, list[DataBlock]]
    _block_of: dict[tuple[int, ...], int] = field(default_factory=dict, repr=False)

    @property
    def psi(self) -> Subspace:
        return self.breakdown.psi

    @property
    def strategy(self) -> Strategy:
        return self.breakdown.strategy

    @property
    def live(self) -> Optional[set[CompId]]:
        red = self.breakdown.redundancy
        return red.live if red is not None else None

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def degree_of_parallelism(self) -> int:
        """Number of independently executable blocks."""
        return len(self.blocks)

    def block_of(self, iteration) -> int:
        return self._block_of[tuple(iteration)]

    def owners_of_element(self, array: str, element: tuple[int, ...]) -> list[int]:
        """Block indices whose data block holds ``element`` (1 for non-dup)."""
        return [db.block_index for db in self.data_blocks[array]
                if element in db.elements]

    def replication_factor(self, array: str) -> float:
        """Average number of copies per referenced element of ``array``."""
        total = sum(len(db) for db in self.data_blocks[array])
        distinct = len({e for db in self.data_blocks[array] for e in db.elements})
        return total / distinct if distinct else 0.0

    def executes(self, stmt_index: int, iteration: tuple[int, ...]) -> bool:
        """Does the parallel program execute this computation?

        With redundancy elimination, redundant computations are dropped.
        """
        live = self.live
        return live is None or (stmt_index, iteration) in live

    def summary(self) -> str:
        b = self.breakdown
        lines = [
            f"loop {self.nest.name or '<anon>'}: depth {self.nest.depth}, "
            f"{self.model.space.size()} iterations",
            f"strategy: {b.strategy.value}"
            + (f", duplicated={sorted(b.duplicated_arrays)}" if b.duplicated_arrays else "")
            + (", redundancy-eliminated" if b.eliminate_redundant else ""),
            f"Psi: {b.psi!r} (dim {b.dim}, {b.parallel_dims} forall dims)",
            f"blocks: {self.num_blocks}",
        ]
        for name, space in b.per_array.items():
            lines.append(f"  Psi_{name}: {space!r}")
        return "\n".join(lines)


def build_plan(
    nest: LoopNest,
    strategy: Strategy = Strategy.NONDUPLICATE,
    duplicate_arrays: Optional[Iterable[str]] = None,
    eliminate_redundant: bool = False,
    model: Optional[ReferenceModel] = None,
    use_cache: bool = True,
) -> PartitionPlan:
    """Run the full partitioning pipeline on a loop nest.

    Facade over the pass pipeline: runs ``extract-refs`` through
    ``partition`` under instrumentation, served from the global
    content-addressed plan cache when a structurally identical nest was
    already planned (``use_cache=False`` forces a fresh computation).
    """
    # local import: repro.pipeline builds PartitionPlan objects from here
    from repro.pipeline.context import PipelineConfig
    from repro.pipeline.passes import run_pipeline

    config = PipelineConfig(
        strategy=strategy,
        duplicate_arrays=(frozenset(duplicate_arrays)
                          if duplicate_arrays is not None else None),
        eliminate_redundant=eliminate_redundant,
        use_cache=use_cache,
    )
    ctx = run_pipeline(nest, config, upto="partition", model=model)
    return ctx.plan


# ---------------------------------------------------------------------------
# static checks (the paper's guarantees, validated on the concrete instance)
# ---------------------------------------------------------------------------

def check_partition_covers_space(plan: PartitionPlan) -> None:
    """Blocks are disjoint and their union is the iteration space.

    Runs off :meth:`~repro.lang.space.IterationSpace.rank_of` -- the
    same cached enumeration/closed-form rank the runtime uses for write
    stamps -- so no fresh point sets are materialized: one bit per
    iteration marks coverage, and an out-of-space rank is an "extra"
    iteration.
    """
    space = plan.model.space
    total = space.size()
    seen = bytearray(total)
    covered = 0
    extra: list[tuple[int, ...]] = []
    for b in plan.blocks:
        for it in b.iterations:
            try:
                r = space.rank_of(it)
            except ValueError:
                extra.append(it)
                continue
            if seen[r]:
                raise AssertionError(f"iteration {it} appears in two blocks")
            seen[r] = 1
            covered += 1
    if extra or covered != total:
        pts = space.points()
        missing = [p for r, p in enumerate(pts) if not seen[r]]
        raise AssertionError(
            f"partition mismatch: missing={sorted(missing)[:5]} extra={sorted(extra)[:5]}"
        )


def check_data_blocks_disjoint(plan: PartitionPlan) -> None:
    """Non-duplicate guarantee: each element lives in at most one block.

    Only meaningful for arrays *not* in the duplicated set.
    """
    for name, dblocks in plan.data_blocks.items():
        if name in plan.breakdown.duplicated_arrays:
            continue
        owner: dict[tuple[int, ...], int] = {}
        for db in dblocks:
            for e in db.elements:
                if e in owner and owner[e] != db.block_index:
                    raise AssertionError(
                        f"element {name}{list(e)} in blocks {owner[e]} and "
                        f"{db.block_index} under a non-duplicate strategy"
                    )
                owner[e] = db.block_index


def check_no_interblock_flow(plan: PartitionPlan,
                             trace: Optional[SequentialTrace] = None) -> None:
    """No executed read depends on a value written in another block.

    This is communication-freedom: on the exact sequential trace
    (restricted to live computations when redundancy is eliminated),
    every read's producing write -- the last *executed* write to the
    element before the read -- must be in the same iteration block.
    """
    if trace is None:
        trace = build_trace(plan.model)
    live = plan.live
    for element, events in trace.timelines.items():
        last_writer_block: Optional[int] = None
        for ev in events:
            k, it = ev.comp
            if live is not None and (k, it) not in live:
                continue
            blk = plan.block_of(it)
            if ev.is_write:
                last_writer_block = blk
            else:
                if last_writer_block is not None and last_writer_block != blk:
                    raise AssertionError(
                        f"flow dependence crosses blocks: {element} written in "
                        f"block {last_writer_block}, read in block {blk} at {ev.comp}"
                    )
    # For non-duplicate strategies every shared access (not just flow)
    # must stay inside one block, which is implied by disjoint data
    # blocks -- checked separately.


def check_all(plan: PartitionPlan) -> None:
    check_partition_covers_space(plan)
    check_data_blocks_disjoint(plan)
    check_no_interblock_flow(plan)
