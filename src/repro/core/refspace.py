"""Reference spaces: Definitions 4-5 and the minimal spaces of Sec. III.C.

Four spaces per array ``A``:

======================  ==============================================
``reference_space``     ``Psi_A`` = span(Ker(H_A) ∪ {t_j}) over all
                        data-referenced vectors whose equation
                        ``H_A t = r_j`` passes Definition 4's two
                        conditions (non-duplicate data, Theorem 1).
``reduced_...``         ``Psi_A^r``: span(φ) for fully duplicable
                        arrays; Ker ∪ {flow-dependence solutions} for
                        partially duplicable ones (Theorem 2).
``minimal_...``         ``Psi_A^min``: only vectors contributed by
                        *useful* dependences after redundant-computation
                        elimination (Theorem 3).
``minimal_reduced_...`` ``Psi_A^min^r``: only useful *flow* dependences
                        (Theorem 4).
======================  ==============================================

The paper assumes nonsingular ``H_A`` in Section III.C; we generalize by
adding ``Ker(H_A)`` whenever any useful dependence exists on the array
(for singular ``H`` every dependence-vector set is a coset of
``Ker(H_A)``, so the spanned space is the faithful generalization and
coincides with the paper's in the nonsingular case).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.dependence import (
    DependenceKind,
    dependence_between,
    is_fully_duplicable,
)
from repro.analysis.drv import data_referenced_vectors
from repro.analysis.redundancy import RedundancyAnalysis
from repro.analysis.references import ArrayInfo
from repro.lang.space import IterationSpace
from repro.ratlinalg.lattice import IntLattice
from repro.ratlinalg.matrix import RatVec
from repro.ratlinalg.rref import nullspace
from repro.ratlinalg.smith import solve_diophantine
from repro.ratlinalg.solve import solve_particular
from repro.ratlinalg.span import Subspace


def _condition2_holds(info: ArrayInfo, r: RatVec, space: IterationSpace) -> bool:
    """Definition 4 condition (2): some integer solution of ``H t = r``
    is a difference of two iterations of the space."""
    sol = solve_diophantine(info.h, r)
    if sol is None:
        return False
    lat = IntLattice(list(sol.lattice_basis), sol.particular)
    lo, hi = space.difference_box()
    if space.is_rectangular():
        return lat.any_point_in_box(lo, hi) is not None
    return lat.any_point_in_box_where(lo, hi, space.pair_exists) is not None


def reference_space(info: ArrayInfo, space: IterationSpace) -> Subspace:
    """``Psi_A`` (Definition 4)."""
    n = info.depth
    vectors: list[RatVec] = list(nullspace(info.h))
    for drv in data_referenced_vectors(info):
        t = solve_particular(info.h, drv.vector)  # condition (1)
        if t is None:
            continue
        if not _condition2_holds(info, drv.vector, space):  # condition (2)
            continue
        vectors.append(t)
    return Subspace(n, vectors)


def reduced_reference_space(info: ArrayInfo, space: IterationSpace) -> Subspace:
    """``Psi_A^r`` (Definition 5 / Theorem 2).

    Fully duplicable arrays (no flow dependence) reduce to ``span(φ)``;
    partially duplicable arrays keep ``Ker(H_A)`` plus the particular
    solutions of the equations whose data-referenced vectors lead to
    flow dependences.
    """
    n = info.depth
    flow_vectors: list[RatVec] = []
    for w in info.writes():
        for r in info.reads():
            if dependence_between(info, w, r, space) is None:
                continue
            t = solve_particular(info.h, w.offset - r.offset)
            if t is not None:
                flow_vectors.append(t)
    if not flow_vectors:
        return Subspace.zero(n)  # fully duplicable
    return Subspace(n, list(nullspace(info.h)) + flow_vectors)


def _minimal(info: ArrayInfo, redundancy: RedundancyAnalysis,
             flow_only: bool) -> Subspace:
    n = info.depth
    vectors = redundancy.useful_vectors(info.name, flow_only=flow_only)
    has_useful = any(
        dep.array == info.name
        and (not flow_only or dep.kind is DependenceKind.FLOW)
        for dep in redundancy.useful_edges
    )
    if has_useful:
        vectors = vectors + list(nullspace(info.h))
    return Subspace(n, vectors)


def minimal_reference_space(info: ArrayInfo,
                            redundancy: RedundancyAnalysis) -> Subspace:
    """``Psi_A^min`` (Theorem 3): vectors of useful dependences only.

    Note: for the *non-duplicate* combined space, singular ``H_A``
    additionally requires ``Ker(H_A)`` even without useful edges (two
    iterations can touch one element through a single live reference);
    :func:`repro.core.strategy.partitioning_space` handles that.
    """
    return _minimal(info, redundancy, flow_only=False)


def minimal_reduced_reference_space(info: ArrayInfo,
                                    redundancy: RedundancyAnalysis) -> Subspace:
    """``Psi_A^min^r`` (Theorem 4): useful *flow* dependences only."""
    return _minimal(info, redundancy, flow_only=True)


def kernel_space(info: ArrayInfo) -> Subspace:
    """``Ker(H_A)`` as a subspace of the iteration space."""
    return Subspace(info.depth, nullspace(info.h))
