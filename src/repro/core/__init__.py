"""Communication-free partitioning: the paper's primary contribution.

- :mod:`~repro.core.refspace`: reference spaces ``Psi_A`` (Def. 4),
  reduced spaces ``Psi_A^r`` (Def. 5 / Thm 2), and the minimal variants
  of Section III.C (Thms 3-4);
- :mod:`~repro.core.strategy`: strategy selection (non-duplicate /
  duplicate, optional per-array duplication, optional redundancy
  elimination) and the combined partitioning space;
- :mod:`~repro.core.partition`: the iteration partition ``P_Psi(I^n)``
  (Def. 2) and data partitions ``P_Psi(A)`` (Def. 3);
- :mod:`~repro.core.plan`: the :class:`PartitionPlan` orchestrator and
  static communication-freedom checks.
"""

from repro.core.refspace import (
    minimal_reduced_reference_space,
    minimal_reference_space,
    reduced_reference_space,
    reference_space,
)
from repro.core.strategy import Strategy, SpaceBreakdown, partitioning_space
from repro.core.partition import (
    DataBlock,
    IterationBlock,
    data_partition,
    iteration_partition,
)
from repro.core.plan import (
    PartitionPlan,
    build_plan,
    check_data_blocks_disjoint,
    check_no_interblock_flow,
    check_partition_covers_space,
)

__all__ = [
    "reference_space",
    "reduced_reference_space",
    "minimal_reference_space",
    "minimal_reduced_reference_space",
    "Strategy",
    "SpaceBreakdown",
    "partitioning_space",
    "IterationBlock",
    "DataBlock",
    "iteration_partition",
    "data_partition",
    "PartitionPlan",
    "build_plan",
    "check_partition_covers_space",
    "check_data_blocks_disjoint",
    "check_no_interblock_flow",
]
